"""repro.bus — distributed context-event bus with persistent replay log.

The AwareOffice's in-process :class:`~repro.appliances.bus.EventBus`
generalized across process boundaries, behind the same
``subscribe`` / ``publish`` surface (paper section 1: "the detected
situation information is then distributed to other appliances in the
AwareOffice environment").  Pieces:

* :mod:`~repro.bus.log` — append-only JSONL event log: global offsets,
  segment rotation, fsync group-commit, torn-tail crash recovery;
* :mod:`~repro.bus.broker` — partitioned broker core: credit-window
  backpressure, cumulative acks, tick-driven at-least-once redelivery,
  partition kill/revive for drills;
* :mod:`~repro.bus.server` — the asyncio TCP endpoint (shares the
  hardened JSONL framing with ``repro serve``) and a thread-hosted
  :class:`BrokerServer`;
* :mod:`~repro.bus.client` — :class:`BusClient`, the drop-in
  ``EventBus`` adapter doing consumer-side dedupe + reorder on
  ``(source, seq)``, over an in-process or TCP link;
* :mod:`~repro.bus.replay` — offset-addressed log replay into the
  golden-trace harness (bit-identical or it fails);
* :mod:`~repro.bus.faults` / :mod:`~repro.bus.drill` — frame-level
  fault injection and the failure-domain drills that prove convergence.

``python -m repro bus --help`` is the operational surface.
"""

from .broker import BrokerCore, BusConfig, partition_for
from .client import BusClient, InProcLink, SocketLink
from .drill import (DrillReport, run_inproc_fault_drill,
                    run_network_drill, scripted_pen_events)
from .faults import (FaultyChannel, FrameFault, FrameFaultSchedule,
                     ScheduledFrameFault)
from .log import EventLog
from .replay import (RunMeta, capture_bus_trace, check_replay,
                     dedupe_events, read_log_events, replay_log)
from .server import BrokerServer, serve_bus

__all__ = [
    "EventLog",
    "BrokerCore", "BusConfig", "partition_for",
    "BusClient", "InProcLink", "SocketLink",
    "BrokerServer", "serve_bus",
    "RunMeta", "capture_bus_trace", "check_replay", "dedupe_events",
    "read_log_events", "replay_log",
    "FaultyChannel", "FrameFault", "FrameFaultSchedule",
    "ScheduledFrameFault",
    "DrillReport", "run_inproc_fault_drill", "run_network_drill",
    "scripted_pen_events",
]
