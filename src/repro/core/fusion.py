"""Quality-weighted fusion of multiple context sources (paper section 5).

Future work in the paper: "support fusion and aggregation for higher level
contexts ... higher level context processors require a measure to decide
which of the simpler context information to believe."  The fusers here
combine :class:`QualifiedClassification` reports from several appliances
into one aggregate decision, weighting each vote by its CQM.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..exceptions import ConfigurationError
from ..types import ContextClass, QualifiedClassification


@dataclasses.dataclass(frozen=True)
class FusedContext:
    """Aggregate decision over several qualified reports."""

    context: ContextClass
    support: float            # total quality mass behind the winner
    total_mass: float         # total quality mass of all usable reports
    n_reports: int
    n_epsilon: int

    @property
    def confidence(self) -> float:
        """Winner mass over total mass (1.0 = unanimous)."""
        return self.support / self.total_mass if self.total_mass > 0 else 0.0


class QualityWeightedFusion:
    """Weighted majority vote with quality weights.

    Parameters
    ----------
    min_quality:
        Reports below this quality contribute nothing (pre-gate).
    epsilon_weight:
        Weight assigned to epsilon reports; 0 (default) discards them.
    """

    def __init__(self, min_quality: float = 0.0,
                 epsilon_weight: float = 0.0) -> None:
        if not 0.0 <= min_quality <= 1.0:
            raise ConfigurationError(
                f"min_quality must be in [0, 1], got {min_quality}")
        if epsilon_weight < 0:
            raise ConfigurationError(
                f"epsilon_weight must be >= 0, got {epsilon_weight}")
        self.min_quality = float(min_quality)
        self.epsilon_weight = float(epsilon_weight)

    def fuse(self, reports: Iterable[QualifiedClassification]
             ) -> Optional[FusedContext]:
        """Combine reports; returns None when nothing is usable."""
        mass: Dict[int, float] = {}
        contexts: Dict[int, ContextClass] = {}
        n_reports = 0
        n_epsilon = 0
        for report in reports:
            n_reports += 1
            if report.quality is None:
                n_epsilon += 1
                weight = self.epsilon_weight
            else:
                weight = report.quality if report.quality >= self.min_quality else 0.0
            if weight <= 0:
                continue
            idx = report.context.index
            mass[idx] = mass.get(idx, 0.0) + weight
            contexts[idx] = report.context
        if not mass:
            return None
        winner = max(mass, key=lambda k: mass[k])
        total = float(sum(mass.values()))
        return FusedContext(context=contexts[winner],
                            support=float(mass[winner]),
                            total_mass=total,
                            n_reports=n_reports,
                            n_epsilon=n_epsilon)


class TemporalAggregator:
    """Aggregate a stream of qualified reports over a sliding horizon.

    Higher-level context ("a writing session is in progress") emerges from
    many low-level windows; the aggregator maintains exponentially decayed
    quality mass per class and reports the current dominant context.
    """

    def __init__(self, decay: float = 0.8) -> None:
        if not 0.0 < decay < 1.0:
            raise ConfigurationError(f"decay must be in (0, 1), got {decay}")
        self.decay = float(decay)
        self._mass: Dict[int, float] = {}
        self._contexts: Dict[int, ContextClass] = {}

    def reset(self) -> None:
        """Forget all accumulated evidence."""
        self._mass.clear()
        self._contexts.clear()

    def update(self, report: QualifiedClassification
               ) -> Optional[Tuple[ContextClass, float]]:
        """Consume one report; returns the current ``(context, share)``."""
        for key in list(self._mass):
            self._mass[key] *= self.decay
        if report.quality is not None and report.quality > 0:
            idx = report.context.index
            self._mass[idx] = self._mass.get(idx, 0.0) + report.quality
            self._contexts[idx] = report.context
        if not self._mass:
            return None
        winner = max(self._mass, key=lambda k: self._mass[k])
        total = sum(self._mass.values())
        share = self._mass[winner] / total if total > 0 else 0.0
        return self._contexts[winner], share

    def dominant(self) -> Optional[ContextClass]:
        """The currently dominant context, if any evidence exists."""
        if not self._mass:
            return None
        winner = max(self._mass, key=lambda k: self._mass[k])
        return self._contexts[winner]


def fuse_streams(streams: List[List[QualifiedClassification]],
                 fusion: Optional[QualityWeightedFusion] = None
                 ) -> List[Optional[FusedContext]]:
    """Fuse several time-aligned report streams step by step.

    All streams must have equal length; step ``t`` fuses the ``t``-th
    report of every stream.
    """
    if not streams:
        return []
    lengths = {len(s) for s in streams}
    if len(lengths) != 1:
        raise ConfigurationError(
            f"streams must be time-aligned (equal length), got {lengths}")
    fuser = fusion if fusion is not None else QualityWeightedFusion()
    out: List[Optional[FusedContext]] = []
    for step in range(lengths.pop()):
        out.append(fuser.fuse(stream[step] for stream in streams))
    return out
