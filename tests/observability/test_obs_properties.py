"""Property tests for the observability layer (hypothesis).

Pins the documented guarantees:

* snapshot merging is deterministic — counters and histograms are
  shuffle-invariant, snapshot keys always come out sorted;
* in a span tree, the children's wall time never exceeds the parent's
  (so exclusive time is non-negative up to clock granularity);
* histogram quantiles are within one bin width of the exact
  inverted-CDF order statistic computed by numpy.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.observability.metrics import (UNIT_EDGES, Histogram,
                                         MetricsRegistry, merge_snapshots)
from repro.observability.spans import Tracer

# Counter increments are small ints, histogram samples are exact binary
# fractions so float summation commutes exactly across merge orders.
_names = st.sampled_from(["a.total", "b.total", "c.total"])
_exact_values = st.integers(min_value=0, max_value=64).map(
    lambda k: k / 64.0)


def _snapshot(counters, samples):
    reg = MetricsRegistry()
    for name, n in counters:
        reg.inc(name, n)
    if samples:
        reg.observe_many("h", samples, edges=UNIT_EDGES)
    return reg.snapshot()


class TestMergeDeterminism:
    @given(
        snaps=st.lists(
            st.tuples(
                st.lists(st.tuples(_names,
                                   st.integers(min_value=0, max_value=10)),
                         max_size=4),
                st.lists(_exact_values, max_size=6)),
            min_size=1, max_size=5),
        shuffle_seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=50, deadline=None)
    def test_counters_histograms_shuffle_invariant(self, snaps,
                                                   shuffle_seed):
        documents = [_snapshot(counters, samples)
                     for counters, samples in snaps]
        merged = merge_snapshots(documents)
        shuffled = list(documents)
        np.random.default_rng(shuffle_seed).shuffle(shuffled)
        remerged = merge_snapshots(shuffled)
        assert remerged["counters"] == merged["counters"]
        assert remerged["histograms"] == merged["histograms"]

    @given(
        snaps=st.lists(
            st.tuples(
                st.lists(st.tuples(_names,
                                   st.integers(min_value=0, max_value=10)),
                         max_size=4),
                st.lists(_exact_values, max_size=6)),
            min_size=1, max_size=4))
    @settings(max_examples=50, deadline=None)
    def test_merged_snapshot_keys_sorted(self, snaps):
        merged = merge_snapshots([_snapshot(c, s) for c, s in snaps])
        for section in ("counters", "gauges", "histograms"):
            assert list(merged[section]) == sorted(merged[section])


class TestSpanTreeProperty:
    @given(shape=st.recursive(
        st.just([]),
        lambda children: st.lists(children, min_size=1, max_size=3),
        max_leaves=10))
    @settings(max_examples=50, deadline=None)
    def test_children_wall_within_parent(self, shape):
        tracer = Tracer()

        def run(branches):
            with tracer.span("node"):
                for sub in branches:
                    run(sub)

        run(shape)
        (root,) = tracer.roots

        for span in root.walk():
            child_sum = sum(c.wall_s for c in span.children)
            # Children are timed strictly inside the parent, so their
            # inclusive wall time sums to at most the parent's (a hair
            # of slack for float rounding of the clock arithmetic).
            assert child_sum <= span.wall_s + 1e-9
            assert span.exclusive_wall_s >= -1e-9


class TestQuantileErrorBound:
    @given(samples=st.lists(st.floats(min_value=0.0, max_value=1.0),
                            min_size=1, max_size=200),
           q=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=200, deadline=None)
    def test_within_one_bin_width_of_numpy(self, samples, q):
        hist = Histogram(edges=UNIT_EDGES)
        hist.observe_many(samples)
        estimate = hist.quantile(q)
        exact = float(np.percentile(samples, q * 100.0,
                                    method="inverted_cdf"))
        bin_width = UNIT_EDGES[1] - UNIT_EDGES[0]
        assert abs(estimate - exact) <= bin_width + 1e-12

    @given(samples=st.lists(st.floats(min_value=-5.0, max_value=5.0),
                            min_size=1, max_size=100),
           q=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=100, deadline=None)
    def test_estimate_always_in_observed_range(self, samples, q):
        # Even with under/overflow samples the estimate stays inside
        # [min, max] of what was observed.
        hist = Histogram(edges=UNIT_EDGES)
        hist.observe_many(samples)
        estimate = hist.quantile(q)
        assert min(samples) <= estimate <= max(samples)
