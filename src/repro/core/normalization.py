"""Normalization of the raw quality-FIS output (paper section 2.1.3).

The automatically constructed TSK-FIS is trained toward designated outputs
0 (wrong) and 1 (right) but its mapping "is not restricted to a certain
interval"; residual training error scatters the outputs around 0 and 1.
The normalization function ``L`` maps the raw output onto the quality
interval ``Q = [0, 1]`` or onto the **error state epsilon**:

* values already in ``[0, 1]`` pass through unchanged;
* values in ``[-0.5, 0)`` "belong to zero with an error of mapping" and
  are reflected back into the interval (``x -> -x``);
* values in ``(1, 1.5]`` symmetrically belong to one and are reflected
  (``x -> 2 - x``);
* anything else cannot be mapped in a semantically correct way and
  becomes epsilon.

Note on the paper's formula: the printed third case reads ``1 - x`` for
``1 < x <= 1.5``, which would map onto ``[-0.5, 0)`` — *outside* the
declared codomain ``[0, 1]`` — contradicting both the stated codomain and
the stated semantics ("belongs to one with an error of mapping").  We
implement the reflection about 1 (``2 - x``), the reading consistent with
the text; the discrepancy is documented in DESIGN.md and pinned by tests.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

#: Sentinel for the error state epsilon.  ``None`` at the scalar API level;
#: NaN inside vectorized arrays.
EPSILON: None = None

#: Lower bound below which raw outputs are unmappable.
LOWER_LIMIT = -0.5
#: Upper bound above which raw outputs are unmappable.
UPPER_LIMIT = 1.5


def normalize_scalar(x: float) -> Optional[float]:
    """Apply ``L`` to one raw FIS output.

    Returns a quality in ``[0, 1]`` or ``None`` (epsilon).
    """
    x = float(x)
    if np.isnan(x):
        return EPSILON
    if 0.0 <= x <= 1.0:
        return x
    if LOWER_LIMIT <= x < 0.0:
        return -x
    if 1.0 < x <= UPPER_LIMIT:
        return 2.0 - x
    return EPSILON


def normalize_array(x: np.ndarray) -> np.ndarray:
    """Vectorized ``L``; epsilon is represented as ``NaN``.

    Use :func:`is_error_state` on the result to locate epsilon entries.
    """
    x = np.asarray(x, dtype=float)
    out = np.full(x.shape, np.nan)
    in_unit = (x >= 0.0) & (x <= 1.0)
    below = (x >= LOWER_LIMIT) & (x < 0.0)
    above = (x > 1.0) & (x <= UPPER_LIMIT)
    out[in_unit] = x[in_unit]
    out[below] = -x[below]
    out[above] = 2.0 - x[above]
    return out


def is_error_state(normalized: Union[float, np.ndarray, None]
                   ) -> Union[bool, np.ndarray]:
    """Epsilon test with an explicit scalar/array contract.

    * Scalar input — ``None`` (the scalar-API epsilon), a float, or a
      0-d array — returns a plain Python :class:`bool`.
    * Array input (1-d or higher) returns a boolean :class:`numpy.ndarray`
      of the same shape, ``True`` where the entry is NaN (the vectorized
      epsilon encoding).

    Earlier versions returned a 0-d ``np.bool_`` for the ``None`` path
    and whatever ``np.isnan`` produced otherwise, so scalar callers got
    a different type depending on which epsilon encoding reached them.
    """
    if normalized is None:
        return True
    mask = np.isnan(np.asarray(normalized, dtype=float))
    if mask.ndim == 0:
        return bool(mask)
    return mask


def mapping_error(x: Union[float, np.ndarray]) -> np.ndarray:
    """Distance the normalization had to move each raw value.

    Zero inside ``[0, 1]``; the reflection distance in the semi-mappable
    bands; ``NaN`` for epsilon values.  This quantifies the "error of
    mapping" the paper describes.
    """
    x = np.asarray(x, dtype=float)
    out = np.full(x.shape, np.nan)
    in_unit = (x >= 0.0) & (x <= 1.0)
    below = (x >= LOWER_LIMIT) & (x < 0.0)
    above = (x > 1.0) & (x <= UPPER_LIMIT)
    out[in_unit] = 0.0
    out[below] = -2.0 * x[below]     # |x - (-x)|
    out[above] = 2.0 * (x[above] - 1.0)
    return out
