"""Generalized-bell TSK systems and their hybrid training.

Jang's original ANFIS (1993) uses generalized bell membership functions

.. math::

    F_{ij}(x) = \\frac{1}{1 + |(x - c_{ij}) / a_{ij}|^{2 b_{ij}}}

where ``a`` controls the width, ``b`` the slope and ``c`` the center.
The paper's quality FIS uses Gaussians instead; this module provides the
bell alternative — inference, analytic premise gradients and a hybrid
trainer — so the antecedent-shape design choice can be ablated (see the
``conseq-linear``-style antecedent bench).

:class:`BellTSKSystem` is duck-type compatible with
:class:`repro.fuzzy.tsk.TSKSystem` for everything the LSE layer needs
(``n_rules``, ``n_inputs``, ``order``, ``normalized_firing_strengths``,
``rule_outputs``), so :func:`repro.anfis.lse.fit_consequents` works on it
unchanged.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

import numpy as np

from ..exceptions import ConfigurationError, DimensionError, TrainingError
from .lse import fit_consequents

#: Guards against division blow-ups at rule centers and dead inputs.
_MF_FLOOR = 1e-12
_WEIGHT_FLOOR = 1e-300
#: Slope parameters are kept at or above this so the gradients stay
#: defined (b < 1 makes dF/dc singular at the center).
_MIN_B = 1.0
_MIN_A = 1e-4


class BellTSKSystem:
    """TSK system with generalized-bell antecedents.

    Parameters
    ----------
    a, b, c:
        Arrays of shape ``(n_rules, n_inputs)``: widths (> 0), slopes
        (>= 1) and centers.
    coefficients:
        ``(n_rules, n_inputs + 1)`` consequent coefficients (last column
        is the constant term).
    order:
        0 (constant consequents) or 1 (linear consequents).
    """

    def __init__(self, a: np.ndarray, b: np.ndarray, c: np.ndarray,
                 coefficients: np.ndarray, order: int = 1) -> None:
        a = np.asarray(a, dtype=float)
        b = np.asarray(b, dtype=float)
        c = np.asarray(c, dtype=float)
        coefficients = np.asarray(coefficients, dtype=float)
        if order not in (0, 1):
            raise ConfigurationError(f"order must be 0 or 1, got {order}")
        if a.ndim != 2 or a.shape != b.shape or a.shape != c.shape:
            raise DimensionError(
                f"a/b/c must share a 2-D shape, got {a.shape}, {b.shape}, "
                f"{c.shape}")
        n_rules, n_inputs = a.shape
        if coefficients.shape != (n_rules, n_inputs + 1):
            raise DimensionError(
                f"coefficients must have shape {(n_rules, n_inputs + 1)}, "
                f"got {coefficients.shape}")
        if np.any(a <= 0):
            raise ConfigurationError("all widths a must be > 0")
        if np.any(b < _MIN_B):
            raise ConfigurationError(f"all slopes b must be >= {_MIN_B}")
        self.a = a
        self.b = b
        self.c = c
        self.coefficients = coefficients
        self.order = order

    # -- introspection --------------------------------------------------
    @property
    def n_rules(self) -> int:
        return self.a.shape[0]

    @property
    def n_inputs(self) -> int:
        return self.a.shape[1]

    def copy(self) -> "BellTSKSystem":
        return BellTSKSystem(self.a.copy(), self.b.copy(), self.c.copy(),
                             self.coefficients.copy(), order=self.order)

    # -- inference -------------------------------------------------------
    def _validate_input(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if x.ndim == 1:
            x = x.reshape(1, -1)
        if x.ndim != 2 or x.shape[1] != self.n_inputs:
            raise DimensionError(
                f"input must have {self.n_inputs} columns, got {x.shape}")
        return x

    def memberships(self, x: np.ndarray) -> np.ndarray:
        """Bell memberships, shape ``(n_samples, n_rules, n_inputs)``."""
        x = self._validate_input(x)
        z = np.abs((x[:, None, :] - self.c[None, :, :]) / self.a[None, :, :])
        return 1.0 / (1.0 + z ** (2.0 * self.b[None, :, :]))

    def firing_strengths(self, x: np.ndarray) -> np.ndarray:
        return np.prod(self.memberships(x), axis=2)

    def normalized_firing_strengths(self, x: np.ndarray) -> np.ndarray:
        w = self.firing_strengths(x)
        total = np.sum(w, axis=1, keepdims=True)
        dead = total <= _WEIGHT_FLOOR
        wbar = w / np.where(dead, 1.0, total)
        if np.any(dead):
            wbar = np.where(dead, 1.0 / self.n_rules, wbar)
        return wbar

    def rule_outputs(self, x: np.ndarray) -> np.ndarray:
        x = self._validate_input(x)
        if self.order == 0:
            return np.broadcast_to(self.coefficients[:, -1],
                                   (x.shape[0], self.n_rules)).copy()
        return x @ self.coefficients[:, :-1].T + self.coefficients[:, -1]

    def evaluate(self, x: np.ndarray) -> np.ndarray:
        x2 = self._validate_input(x)
        wbar = self.normalized_firing_strengths(x2)
        return np.sum(wbar * self.rule_outputs(x2), axis=1)


def bell_fis_from_clusters(centers: np.ndarray, widths: np.ndarray,
                           order: int = 1, slope: float = 2.0
                           ) -> BellTSKSystem:
    """Initial bell system from cluster centers and per-dimension widths.

    The bell half-width ``a`` is set to the Gaussian-equivalent width,
    slopes start at *slope* everywhere.
    """
    centers = np.asarray(centers, dtype=float)
    if centers.ndim != 2:
        raise DimensionError(
            f"centers must be 2-D, got shape {centers.shape}")
    m, d = centers.shape
    widths = np.asarray(widths, dtype=float)
    if widths.shape == (d,):
        widths = np.tile(widths, (m, 1))
    if widths.shape != (m, d):
        raise DimensionError(
            f"widths must broadcast to {(m, d)}, got {widths.shape}")
    a = np.maximum(widths * np.sqrt(2.0), _MIN_A)
    b = np.full((m, d), max(float(slope), _MIN_B))
    coefficients = np.zeros((m, d + 1))
    return BellTSKSystem(a=a, b=b, c=centers.copy(),
                         coefficients=coefficients, order=order)


@dataclasses.dataclass(frozen=True)
class BellGradients:
    """Gradients of the half-MSE loss w.r.t. the bell parameters."""

    d_a: np.ndarray
    d_b: np.ndarray
    d_c: np.ndarray
    loss: float


def bell_premise_gradients(system: BellTSKSystem, x: np.ndarray,
                           y: np.ndarray) -> BellGradients:
    """Analytic gradients of ``0.5 * mean((S(x) - y)^2)``.

    With ``u = ((x - c)/a)^2`` and ``F = 1 / (1 + u^b)``:

    * ``dF/da =  2 b u^b F^2 / a``
    * ``dF/dc =  2 b u^{b-1} (x - c) F^2 / a^2``
    * ``dF/db = -F^2 u^b ln(u)``  (0 at ``u = 0``)

    and ``dw/dF_ij = w / F_ij`` by the product rule.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float).ravel()
    if x.ndim != 2 or x.shape[1] != system.n_inputs:
        raise DimensionError(
            f"x must have shape (n, {system.n_inputs}), got {x.shape}")
    if y.shape[0] != x.shape[0]:
        raise DimensionError(
            f"y must have {x.shape[0]} entries, got {y.shape[0]}")
    n = x.shape[0]

    memberships = system.memberships(x)                  # (N, m, d)
    w = np.prod(memberships, axis=2)                     # (N, m)
    f = system.rule_outputs(x)                           # (N, m)
    total = np.maximum(np.sum(w, axis=1), _WEIGHT_FLOOR)
    s = np.sum(w * f, axis=1) / total
    err = s - y
    dl_dw = (err / total)[:, None] * (f - s[:, None])    # (N, m)

    diff = x[:, None, :] - system.c[None, :, :]          # (N, m, d)
    a3 = system.a[None, :, :]
    b3 = system.b[None, :, :]
    u = (diff / a3) ** 2                                 # (N, m, d)
    f_mf = np.maximum(memberships, _MF_FLOOR)
    f_sq = f_mf * f_mf
    u_b = np.where(u > 0, u ** b3, 0.0)
    # u^{b-1} (x - c): rewrite as u^b * a^2 / (x - c) is singular; use
    # u^{b-1} directly with the zero-u guard (b >= 1 keeps it finite).
    u_bm1 = np.where(u > 0, u ** (b3 - 1.0), 0.0)

    df_da = 2.0 * b3 * u_b * f_sq / a3
    df_dc = 2.0 * b3 * u_bm1 * diff * f_sq / (a3 * a3)
    with np.errstate(divide="ignore", invalid="ignore"):
        log_u = np.where(u > 0, np.log(u), 0.0)
    df_db = -f_sq * u_b * log_u

    w_over_f = w[:, :, None] / f_mf                      # dw/dF = w / F
    dl3 = dl_dw[:, :, None]
    d_a = np.sum(dl3 * w_over_f * df_da, axis=0) / n
    d_b = np.sum(dl3 * w_over_f * df_db, axis=0) / n
    d_c = np.sum(dl3 * w_over_f * df_dc, axis=0) / n
    loss = float(0.5 * np.mean(err ** 2))
    return BellGradients(d_a=d_a, d_b=d_b, d_c=d_c, loss=loss)


def apply_bell_gradient_step(system: BellTSKSystem, grads: BellGradients,
                             learning_rate: float) -> None:
    """Descend the bell gradients in place with parameter floors."""
    if learning_rate <= 0:
        raise ValueError(f"learning_rate must be > 0, got {learning_rate}")
    system.a -= learning_rate * grads.d_a
    system.b -= learning_rate * grads.d_b
    system.c -= learning_rate * grads.d_c
    np.maximum(system.a, _MIN_A, out=system.a)
    np.maximum(system.b, _MIN_B, out=system.b)


class BellHybridTrainer:
    """Hybrid LSE + gradient training for bell TSK systems.

    Mirrors :class:`repro.anfis.training.HybridTrainer`: backward pass on
    the bell premise parameters, forward LSE pass on the consequents,
    early stopping on a check set.
    """

    def __init__(self, epochs: int = 50, learning_rate: float = 0.02,
                 patience: int = 5) -> None:
        if epochs < 1:
            raise ConfigurationError(f"epochs must be >= 1, got {epochs}")
        if learning_rate <= 0:
            raise ConfigurationError(
                f"learning_rate must be > 0, got {learning_rate}")
        if patience < 1:
            raise ConfigurationError(f"patience must be >= 1, got {patience}")
        self.epochs = int(epochs)
        self.learning_rate = float(learning_rate)
        self.patience = int(patience)

    def train(self, system: BellTSKSystem,
              x_train: np.ndarray, y_train: np.ndarray,
              x_check: Optional[np.ndarray] = None,
              y_check: Optional[np.ndarray] = None) -> List[float]:
        """Tune *system* in place; returns per-epoch train RMSE."""
        x_train = np.asarray(x_train, dtype=float)
        y_train = np.asarray(y_train, dtype=float).ravel()
        if x_train.shape[0] != y_train.shape[0]:
            raise TrainingError("x_train/y_train size mismatch")
        has_check = x_check is not None and y_check is not None

        coefficients, _ = fit_consequents(system, x_train, y_train)
        system.coefficients = coefficients

        history: List[float] = []
        best_check = np.inf
        best = system.copy()
        streak = 0
        for _ in range(self.epochs):
            grads = bell_premise_gradients(system, x_train, y_train)
            apply_bell_gradient_step(system, grads, self.learning_rate)
            coefficients, _ = fit_consequents(system, x_train, y_train)
            system.coefficients = coefficients
            train_rmse = float(np.sqrt(np.mean(
                (system.evaluate(x_train) - y_train) ** 2)))
            history.append(train_rmse)
            if has_check:
                check_rmse = float(np.sqrt(np.mean(
                    (system.evaluate(x_check) - y_check) ** 2)))
                if check_rmse < best_check - 1e-12:
                    best_check = check_rmse
                    best = system.copy()
                    streak = 0
                else:
                    streak += 1
                    if streak >= self.patience:
                        break
        if has_check:
            system.a = best.a
            system.b = best.b
            system.c = best.c
            system.coefficients = best.coefficients
        return history


def numeric_bell_gradients(system: BellTSKSystem, x: np.ndarray,
                           y: np.ndarray, eps: float = 1e-6):
    """Finite-difference bell gradients (testing aid)."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float).ravel()

    def loss() -> float:
        err = system.evaluate(x) - y
        return float(0.5 * np.mean(err ** 2))

    outs = []
    for array in (system.a, system.b, system.c):
        grad = np.zeros_like(array)
        for j in range(array.shape[0]):
            for i in range(array.shape[1]):
                orig = array[j, i]
                array[j, i] = orig + eps
                hi = loss()
                array[j, i] = orig - eps
                lo = loss()
                array[j, i] = orig
                grad[j, i] = (hi - lo) / (2 * eps)
        outs.append(grad)
    return tuple(outs)
