"""Tests for repro.appliances.display — the dashboard appliance."""

import numpy as np
import pytest

from repro.appliances.bus import EventBus
from repro.appliances.display import OfficeDisplay
from repro.appliances.messages import ContextEvent
from repro.appliances.situation import WRITING_SESSION
from repro.exceptions import ConfigurationError
from repro.sensors.accelerometer import WRITING
from repro.sensors.chair import SITTING


def publish(bus, topic, context, quality, time_s=0.0):
    bus.publish(ContextEvent.create(source=topic.split(".")[-1],
                                    topic=topic, context=context,
                                    quality=quality, time_s=time_s))


class TestOfficeDisplay:
    def test_history_validated(self):
        with pytest.raises(ConfigurationError):
            OfficeDisplay(EventBus(), history=1)

    def test_records_context_events(self):
        bus = EventBus()
        display = OfficeDisplay(bus)
        publish(bus, "context.pen", WRITING, 0.9, 1.0)
        publish(bus, "context.chair", SITTING, 0.7, 1.0)
        assert display.mean_quality("context.pen") == pytest.approx(0.9)
        assert display.mean_quality("context.chair") == pytest.approx(0.7)

    def test_epsilon_counted_but_excluded_from_mean(self):
        bus = EventBus()
        display = OfficeDisplay(bus)
        publish(bus, "context.pen", WRITING, None)
        publish(bus, "context.pen", WRITING, 0.8)
        assert display.mean_quality("context.pen") == pytest.approx(0.8)
        assert display._panels["context.pen"].n_epsilon == 1

    def test_unknown_source_mean_is_none(self):
        display = OfficeDisplay(EventBus())
        assert display.mean_quality("context.nothing") is None

    def test_history_ring_buffer(self):
        bus = EventBus()
        display = OfficeDisplay(bus, history=5)
        for k in range(10):
            publish(bus, "context.pen", WRITING, k / 10.0)
        panel = display._panels["context.pen"]
        assert len(panel.history) == 5
        np.testing.assert_allclose(list(panel.history),
                                   [0.5, 0.6, 0.7, 0.8, 0.9])

    def test_situation_tracked(self):
        bus = EventBus()
        display = OfficeDisplay(bus)
        bus.publish(ContextEvent.create(
            source="detector", topic="situation.office",
            context=WRITING_SESSION, quality=0.8, time_s=3.0))
        assert display._situation == "writing-session"

    def test_render_contains_everything(self):
        bus = EventBus()
        display = OfficeDisplay(bus)
        publish(bus, "context.pen", WRITING, 0.9)
        bus.publish(ContextEvent.create(
            source="detector", topic="situation.office",
            context=WRITING_SESSION, quality=0.8, time_s=3.0))
        text = display.render()
        assert "situation: writing-session" in text
        assert "context.pen" in text
        assert "writing" in text
        assert "mean 0.90" in text

    def test_render_before_any_events(self):
        display = OfficeDisplay(EventBus())
        assert "(none yet)" in display.render()

    def test_describe(self):
        display = OfficeDisplay(EventBus())
        assert "OfficeDisplay" in display.describe()
