"""Maximum likelihood estimation of the right/wrong quality populations.

Paper section 2.3.1: the normal distributions of the quality measure for
right and for wrong classified data points are estimated by maximum
likelihood, which "requires knowledge for each data point, if its
classification was correct or wrong" — i.e. a second labeled data set
disjoint from the training set.

For a Gaussian the MLE of the mean is the sample mean and of the variance
the (biased, 1/N) sample variance; both are provided, along with a
two-component Gaussian mixture EM fit used for threshold determination on
*unlabeled* data (paper section 2.3.2: "the threshold value s ... can also
be determined via a MLE for a data set without secondary knowledge").
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

import numpy as np

from ..exceptions import CalibrationError
from .gaussian import Gaussian

#: Variance floor so degenerate populations (all-identical q values, as in
#: tiny test sets) still yield a usable density.
_MIN_SIGMA = 1e-3


def fit_gaussian_mle(data: np.ndarray, min_sigma: float = _MIN_SIGMA
                     ) -> Gaussian:
    """MLE Gaussian fit of 1-D *data* (mean, 1/N variance)."""
    data = np.asarray(data, dtype=float).ravel()
    if data.size == 0:
        raise CalibrationError("cannot fit a Gaussian to an empty sample")
    mu = float(np.mean(data))
    sigma = float(np.sqrt(np.mean((data - mu) ** 2)))
    return Gaussian(mu=mu, sigma=max(sigma, min_sigma))


@dataclasses.dataclass(frozen=True)
class PopulationEstimates:
    """MLE Gaussians for the right- and wrong-classification populations."""

    right: Gaussian
    wrong: Gaussian
    n_right: int
    n_wrong: int

    @property
    def separation(self) -> float:
        """Standardized mean distance (a d'-like separability score)."""
        pooled = np.sqrt(0.5 * (self.right.sigma ** 2 + self.wrong.sigma ** 2))
        return abs(self.right.mu - self.wrong.mu) / max(pooled, 1e-12)


def estimate_populations(qualities: np.ndarray, correct: np.ndarray,
                         min_sigma: float = _MIN_SIGMA) -> PopulationEstimates:
    """Fit the right/wrong Gaussians from labeled quality values.

    Parameters
    ----------
    qualities:
        CQM values ``q`` of the secondary (analysis) data set.
    correct:
        Boolean array: True where the underlying classification was right.
    """
    qualities = np.asarray(qualities, dtype=float).ravel()
    correct = np.asarray(correct, dtype=bool).ravel()
    if qualities.shape != correct.shape:
        raise CalibrationError(
            f"qualities {qualities.shape} and correct {correct.shape} "
            "must have the same shape")
    right_data = qualities[correct]
    wrong_data = qualities[~correct]
    if right_data.size == 0:
        raise CalibrationError(
            "no correctly classified points — cannot estimate the right "
            "population")
    if wrong_data.size == 0:
        raise CalibrationError(
            "no wrongly classified points — cannot estimate the wrong "
            "population")
    return PopulationEstimates(
        right=fit_gaussian_mle(right_data, min_sigma),
        wrong=fit_gaussian_mle(wrong_data, min_sigma),
        n_right=int(right_data.size),
        n_wrong=int(wrong_data.size),
    )


@dataclasses.dataclass(frozen=True)
class MixtureFit:
    """Two-component 1-D Gaussian mixture fitted by EM."""

    components: Tuple[Gaussian, Gaussian]
    weights: Tuple[float, float]
    log_likelihood: float
    n_iterations: int
    converged: bool

    @property
    def lower(self) -> Gaussian:
        """The component with the smaller mean (the 'wrong' population)."""
        return min(self.components, key=lambda g: g.mu)

    @property
    def upper(self) -> Gaussian:
        """The component with the larger mean (the 'right' population)."""
        return max(self.components, key=lambda g: g.mu)


def fit_two_component_mixture(data: np.ndarray, max_iter: int = 500,
                              tol: float = 1e-8,
                              seed: Optional[int] = 0) -> MixtureFit:
    """EM fit of a two-component Gaussian mixture to unlabeled q values.

    This is the "MLE without secondary knowledge" route to the threshold
    (paper section 2.3.2); with infinite data it converges to the same
    populations as :func:`estimate_populations`.
    """
    data = np.asarray(data, dtype=float).ravel()
    if data.size < 2:
        raise CalibrationError(
            "need at least two points for a mixture fit")

    # Deterministic quantile-based initialization (seed kept for API
    # stability; initialization does not need randomness).
    q25, q75 = np.percentile(data, [25.0, 75.0])
    mus = np.array([q25, q75], dtype=float)
    if np.isclose(mus[0], mus[1]):
        mus[1] = mus[0] + max(np.std(data), _MIN_SIGMA)
    sigmas = np.full(2, max(float(np.std(data)), _MIN_SIGMA))
    weights = np.array([0.5, 0.5])

    log_likelihood = -np.inf
    converged = False
    iteration = 0
    for iteration in range(1, max_iter + 1):
        # E step.
        dens = np.stack([
            Gaussian(mus[k], max(sigmas[k], _MIN_SIGMA)).pdf(data)
            for k in range(2)], axis=1)
        weighted = dens * weights[None, :]
        totals = np.maximum(np.sum(weighted, axis=1, keepdims=True), 1e-300)
        resp = weighted / totals
        new_ll = float(np.sum(np.log(totals)))
        # M step.
        nk = np.maximum(np.sum(resp, axis=0), 1e-12)
        weights = nk / data.size
        mus = (resp.T @ data) / nk
        sigmas = np.sqrt(
            np.maximum((resp * (data[:, None] - mus[None, :]) ** 2).sum(axis=0)
                       / nk, _MIN_SIGMA ** 2))
        if abs(new_ll - log_likelihood) < tol:
            log_likelihood = new_ll
            converged = True
            break
        log_likelihood = new_ll

    components = (Gaussian(float(mus[0]), float(max(sigmas[0], _MIN_SIGMA))),
                  Gaussian(float(mus[1]), float(max(sigmas[1], _MIN_SIGMA))))
    return MixtureFit(components=components,
                      weights=(float(weights[0]), float(weights[1])),
                      log_likelihood=log_likelihood,
                      n_iterations=iteration,
                      converged=converged)
