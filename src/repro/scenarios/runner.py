"""Execute a declarative scenario on any bus and trace the result.

The runner is the scenario layer's interpreter: it builds every sensor
node and appliance a spec declares, streams all sensor windows through
the appliance graph in global time order, and reduces the run into
plain-array reports.  The same spec runs bit-identically on the
in-process :class:`~repro.appliances.bus.EventBus` and on the
:mod:`repro.bus` broker (conformance matrix requirement c), and a run
reduces to a content-hashed :class:`~repro.verify.golden.GoldenTrace`
through the PR-5 golden harness (requirement b).

Determinism contract: per-sensor streams use
``np.random.default_rng([seed, sensor_index])``; windows merge sorted by
``(time_s, appliance order)``; appliances are constructed in spec order
so bus subscription order never depends on dict iteration.
"""

from __future__ import annotations

import dataclasses
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..appliances.base import Appliance
from ..appliances.awarepen import AwarePen
from ..appliances.bus import EventBus
from ..appliances.camera import WhiteboardCamera
from ..appliances.chair import AwareChair
from ..appliances.display import OfficeDisplay
from ..appliances.situation import SituationDetector
from ..core.filtering import QualityFilter
from ..exceptions import ScenarioError
from ..sensors.node import CueWindow
from ..verify.golden import ArrayRecord, GoldenTrace, StageRecord
from .activities import FAMILY_CLASSES, FAMILY_MODELS
from .models import model_for
from .spec import ApplianceSpec, ScenarioSpec

#: Transports the runner can execute a scenario on.
TRANSPORTS = ("eventbus", "broker")


# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class ApplianceEvents:
    """Per-window record of one sensing appliance's decisions."""

    name: str
    times: np.ndarray              # (n,) window times in s
    true_indices: np.ndarray       # (n,) ground-truth class indices
    predicted_indices: np.ndarray  # (n,) published class indices
    qualities: np.ndarray          # (n,) q in [0, 1]; NaN = epsilon


@dataclasses.dataclass(frozen=True)
class CameraReport:
    """One camera's gating and snapshot outcome."""

    name: str
    accepted_events: int
    rejected_events: int
    n_snapshots: int
    snapshot_times: np.ndarray


@dataclasses.dataclass(frozen=True)
class SituationReport:
    """One situation detector's fusion outcome."""

    name: str
    n_states: int
    ignored_events: int
    n_published: int
    confidences: np.ndarray        # confidence of every evaluated state


@dataclasses.dataclass(frozen=True)
class ScenarioRunResult:
    """Everything a scenario run produced, in deterministic order."""

    scenario: str
    seed: int
    n_windows: int
    n_correct: int
    n_wrong: int
    events: Tuple[ApplianceEvents, ...]
    cameras: Tuple[CameraReport, ...]
    situations: Tuple[SituationReport, ...]

    @property
    def accuracy(self) -> float:
        total = self.n_correct + self.n_wrong
        return self.n_correct / total if total else 0.0


# ----------------------------------------------------------------------
def run_scenario(spec: ScenarioSpec, seed: int = 7,
                 bus: Optional[EventBus] = None) -> ScenarioRunResult:
    """Validate and execute *spec*; deterministic for a fixed seed."""
    spec.validate()
    bus = bus if bus is not None else EventBus()
    styles = spec.resolved_styles()
    sensors = {s.name: s for s in spec.sensors}
    sensor_order = {s.name: i for i, s in enumerate(spec.sensors)}

    # Build appliances strictly in spec order (subscription order).
    built: Dict[str, Appliance] = {}
    sensing: List[ApplianceSpec] = []
    for app in spec.appliances:
        if app.kind in ("pen", "chair"):
            clf_spec = (app.classifier if app.classifier is not None
                        else spec.classifier)
            model = model_for(app.kind, clf_spec, seed)
            cls = AwarePen if app.kind == "pen" else AwareChair
            built[app.name] = cls(bus, model.augmented, name=app.name,
                                  topic=app.resolved_topic())
            sensing.append(app)
        elif app.kind == "camera":
            source = spec.appliance(app.inputs[0])
            gate = None
            if app.gated:
                clf_spec = (source.classifier if source.classifier is not None
                            else spec.classifier)
                threshold = (app.threshold if app.threshold is not None
                             else model_for(source.kind, clf_spec,
                                            seed).threshold)
                gate = QualityFilter(threshold=float(np.clip(threshold,
                                                             0.0, 1.0)))
            built[app.name] = WhiteboardCamera(
                bus, gate=gate, min_session_events=app.min_session_events,
                name=app.name, topic=source.resolved_topic())
        elif app.kind == "situation":
            topics = {}
            for ref in app.inputs:
                source = spec.appliance(ref)
                topics[source.kind] = source.resolved_topic()
            built[app.name] = SituationDetector(
                bus, source_topics=topics, min_quality=app.min_quality,
                name=app.name)
        elif app.kind == "display":
            built[app.name] = OfficeDisplay(bus, name=app.name)

    # Stream every sensor, then merge windows into global time order.
    merged: List[Tuple[float, int, CueWindow, str]] = []
    last_time: Dict[str, float] = {}
    for order, app in enumerate(sensing):
        sensor = sensors[app.sensor]
        node = sensor.build_node()
        segments = sensor.build_segments(styles,
                                         FAMILY_MODELS[sensor.family])
        rng = np.random.default_rng([seed, sensor_order[sensor.name]])
        windows = node.collect(segments, rng,
                               FAMILY_CLASSES[sensor.family])
        for window in windows:
            merged.append((window.time_s, order, window, app.name))
    merged.sort(key=lambda item: (item[0], item[1]))

    times: Dict[str, List[float]] = {a.name: [] for a in sensing}
    true_idx: Dict[str, List[int]] = {a.name: [] for a in sensing}
    pred_idx: Dict[str, List[int]] = {a.name: [] for a in sensing}
    qualities: Dict[str, List[float]] = {a.name: [] for a in sensing}
    n_correct = 0
    n_wrong = 0
    for time_s, _, window, name in merged:
        event = built[name].process_window(window.cues, time_s=time_s)
        last_time[name] = time_s
        times[name].append(time_s)
        true_idx[name].append(window.true_context.index)
        pred_idx[name].append(event.context.index)
        qualities[name].append(np.nan if event.quality is None
                               else float(event.quality))
        if event.context.index == window.true_context.index:
            n_correct += 1
        else:
            n_wrong += 1

    # Close every camera's open session with its source's last window time.
    events: List[ApplianceEvents] = []
    cameras: List[CameraReport] = []
    situations: List[SituationReport] = []
    for app in spec.appliances:
        obj = built[app.name]
        if app.kind in ("pen", "chair"):
            events.append(ApplianceEvents(
                name=app.name,
                times=np.asarray(times[app.name], dtype=float),
                true_indices=np.asarray(true_idx[app.name], dtype=int),
                predicted_indices=np.asarray(pred_idx[app.name], dtype=int),
                qualities=np.asarray(qualities[app.name], dtype=float),
            ))
        elif app.kind == "camera":
            obj.flush(last_time.get(app.inputs[0], 0.0))
            cameras.append(CameraReport(
                name=app.name,
                accepted_events=obj.accepted_events,
                rejected_events=obj.rejected_events,
                n_snapshots=len(obj.snapshots),
                snapshot_times=np.asarray(
                    [s.time_s for s in obj.snapshots], dtype=float),
            ))
        elif app.kind == "situation":
            situations.append(SituationReport(
                name=app.name,
                n_states=len(obj.states),
                ignored_events=obj.ignored_events,
                n_published=len(obj.published_events),
                confidences=np.asarray(
                    [s.confidence for s in obj.states], dtype=float),
            ))

    return ScenarioRunResult(
        scenario=spec.name,
        seed=seed,
        n_windows=len(merged),
        n_correct=n_correct,
        n_wrong=n_wrong,
        events=tuple(events),
        cameras=tuple(cameras),
        situations=tuple(situations),
    )


def run_scenario_on(spec: ScenarioSpec, seed: int = 7,
                    transport: str = "eventbus",
                    log_dir: Optional[Path] = None) -> ScenarioRunResult:
    """Run on a named transport: in-process bus or the repro.bus broker."""
    if transport not in TRANSPORTS:
        raise ScenarioError(
            f"transport {transport!r} is unknown; "
            f"available: {sorted(TRANSPORTS)}")
    if transport == "eventbus":
        return run_scenario(spec, seed=seed)
    from ..bus.broker import BrokerCore, BusConfig
    from ..bus.client import BusClient, InProcLink

    def _run(directory: Path) -> ScenarioRunResult:
        config = BusConfig(n_partitions=2, fsync_every=8)
        with BrokerCore(Path(directory), config) as core:
            client = BusClient(InProcLink(core))
            return run_scenario(spec, seed=seed, bus=client)

    if log_dir is not None:
        return _run(Path(log_dir))
    with tempfile.TemporaryDirectory(prefix="repro-scenario-") as tmp:
        return _run(Path(tmp))


# ----------------------------------------------------------------------
def capture_scenario_trace(result: ScenarioRunResult) -> GoldenTrace:
    """Reduce a run into a content-hashed trace (PR-5 golden harness)."""
    stages: List[StageRecord] = []
    for rec in result.events:
        stages.append(StageRecord(
            stage=f"events:{rec.name}",
            arrays=(
                ArrayRecord.capture("times", rec.times),
                ArrayRecord.capture("true_indices", rec.true_indices),
                ArrayRecord.capture("predicted_indices",
                                    rec.predicted_indices),
                ArrayRecord.capture("qualities", rec.qualities),
            )))
    for cam in result.cameras:
        counters = np.asarray([cam.accepted_events, cam.rejected_events,
                               cam.n_snapshots], dtype=float)
        stages.append(StageRecord(
            stage=f"camera:{cam.name}",
            arrays=(
                ArrayRecord.capture("counters", counters),
                ArrayRecord.capture("snapshot_times", cam.snapshot_times),
            )))
    for sit in result.situations:
        counters = np.asarray([sit.n_states, sit.ignored_events,
                               sit.n_published], dtype=float)
        stages.append(StageRecord(
            stage=f"situation:{sit.name}",
            arrays=(
                ArrayRecord.capture("counters", counters),
                ArrayRecord.capture("confidences", sit.confidences),
            )))
    summary = np.asarray([result.n_windows, result.n_correct,
                          result.n_wrong], dtype=float)
    stages.append(StageRecord(
        stage="summary",
        arrays=(ArrayRecord.capture("summary", summary),)))
    return GoldenTrace(seed=result.seed, stages=tuple(stages))
