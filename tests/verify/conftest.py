"""Shared fixtures for the verification-harness tests.

The differential runner and the golden capture both train a full
seed-7 experiment; the expensive reports are session-scoped so each is
paid once per test run.
"""

import pytest

from repro.verify import DifferentialRunner, capture_trace


@pytest.fixture(scope="session")
def seed7_report():
    """Full differential report over all stages for seed 7."""
    return DifferentialRunner(seeds=(7,)).run()


@pytest.fixture(scope="session")
def seed7_trace():
    """A freshly captured golden trace of the seed-7 pipeline."""
    return capture_trace(seed=7)
