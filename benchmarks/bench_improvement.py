"""Experiment ``improve33`` — the headline 33% improvement.

Paper: "Results indicate that the appliance can discard 33% of the
classifications, which equals all wrong contextual classifications, when
using the measure" — i.e. on the 24-point set filtering with q > s removes
exactly the wrong third and leaves only correct context decisions.
"""

from repro.core.filtering import EpsilonPolicy, evaluate_filtering


def test_improvement_on_evaluation_set(benchmark, experiment, report):
    material = experiment.material

    outcome = benchmark(evaluate_filtering, experiment.augmented,
                        material.evaluation, experiment.threshold,
                        EpsilonPolicy.REJECT)

    report.row("improve33", "discard fraction", "0.33 (8/24)",
               f"{outcome.discard_fraction:.3f} "
               f"({outcome.n_discarded}/{outcome.n_total})")
    report.row("improve33", "wrong classifications removed",
               "8/8 (all)",
               f"{outcome.n_wrong_total - outcome.n_wrong_kept}"
               f"/{outcome.n_wrong_total}")
    report.row("improve33", "accuracy before filter", "0.67",
               outcome.accuracy_before)
    report.row("improve33", "accuracy after filter", "1.00",
               outcome.accuracy_after)
    report.row("improve33", "improvement", "+0.33",
               f"+{outcome.improvement:.3f}")

    # Directional claims.
    assert outcome.improvement > 0.0
    assert outcome.wrong_elimination >= 0.5
    assert 0.05 <= outcome.discard_fraction <= 0.5


def test_camera_decision_improvement(benchmark, experiment, report):
    """End-to-end appliance view: the q-gated whiteboard camera accepts a
    cleaner event stream than the ungated one (paper's motivating use)."""
    import numpy as np

    from repro.appliances.office import AwareOffice
    from repro.core.filtering import QualityFilter
    from repro.datasets.activities import evaluation_script

    def run_gated():
        office = AwareOffice(experiment.augmented,
                             gate=QualityFilter(experiment.threshold))
        return office.run_scenario(
            evaluation_script(np.random.default_rng(123), blocks=3),
            np.random.default_rng(123))

    gated = benchmark(run_gated)

    office = AwareOffice(experiment.augmented, gate=None)
    ungated = office.run_scenario(
        evaluation_script(np.random.default_rng(123), blocks=3),
        np.random.default_rng(123))

    report.row("improve33", "camera events rejected by gate",
               "wrong ones", str(gated.rejected_events))
    report.row("improve33", "camera snapshots (gated vs ungated)",
               "fewer spurious",
               f"{gated.n_snapshots} vs {ungated.n_snapshots}")
    assert gated.rejected_events > 0
    assert gated.n_snapshots <= ungated.n_snapshots
