"""Gaussian density utilities used by the CQM statistical analysis.

Paper section 2.3.1 defines the density

.. math::

    \\varphi_{\\mu,\\sigma}(x) = \\frac{1}{\\sigma\\sqrt{2\\pi}}
        e^{-(x-\\mu)^2 / (2\\sigma^2)}

and section 2.3.3 uses its median cuts
``Phi(s) = integral_{-inf}^{s} phi`` and the complementary
``Phi^c(s) = integral_{s}^{inf} phi``.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Union

import numpy as np

from ..exceptions import ConfigurationError

ArrayLike = Union[float, np.ndarray]

_SQRT2 = math.sqrt(2.0)
_SQRT2PI = math.sqrt(2.0 * math.pi)

try:
    from scipy.special import erf as _erf_impl
except ImportError:  # pragma: no cover - scipy is an install dependency
    _erf_impl = np.vectorize(math.erf)


@dataclasses.dataclass(frozen=True)
class Gaussian:
    """A univariate normal distribution N(mu, sigma^2)."""

    mu: float
    sigma: float

    def __post_init__(self) -> None:
        if self.sigma <= 0:
            raise ConfigurationError(
                f"Gaussian sigma must be > 0, got {self.sigma}")
        if not math.isfinite(self.mu):
            raise ConfigurationError(f"Gaussian mu must be finite, got {self.mu}")

    def pdf(self, x: ArrayLike) -> ArrayLike:
        """Density ``phi_{mu,sigma}(x)``."""
        x = np.asarray(x, dtype=float)
        z = (x - self.mu) / self.sigma
        return np.exp(-0.5 * z * z) / (self.sigma * _SQRT2PI)

    def cdf(self, x: ArrayLike) -> ArrayLike:
        """Lower median cut ``Phi_{mu,sigma}(x)`` (paper section 2.3.3)."""
        x = np.asarray(x, dtype=float)
        z = (x - self.mu) / (self.sigma * _SQRT2)
        # vectorized erf via numpy's ufunc-compatible math
        return 0.5 * (1.0 + _erf(z))

    def survival(self, x: ArrayLike) -> ArrayLike:
        """Upper median cut ``integral_x^inf phi`` (the complementary cut)."""
        x = np.asarray(x, dtype=float)
        z = (x - self.mu) / (self.sigma * _SQRT2)
        return 0.5 * (1.0 - _erf(z))

    def log_likelihood(self, data: np.ndarray) -> float:
        """Sum of log densities of *data* under this Gaussian."""
        data = np.asarray(data, dtype=float)
        z = (data - self.mu) / self.sigma
        return float(np.sum(-0.5 * z * z
                            - math.log(self.sigma) - 0.5 * math.log(2 * math.pi)))

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw *n* samples using the supplied generator."""
        if n < 0:
            raise ConfigurationError(f"n must be >= 0, got {n}")
        return rng.normal(self.mu, self.sigma, size=n)


def _erf(z: np.ndarray) -> np.ndarray:
    """Vectorized error function (scipy when available)."""
    return _erf_impl(z)
