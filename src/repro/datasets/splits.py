"""Deterministic train/check/test splitting utilities.

The automated construction (paper section 2.2) needs *three* data roles:
a training set for clustering/LSE/backprop, a **check set** for the early
stopping of hybrid learning, and a disjoint secondary set for the
statistical analysis of section 2.3.
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

import numpy as np

from ..exceptions import ConfigurationError, EmptyDatasetError


@dataclasses.dataclass(frozen=True)
class Split:
    """Index-based two-way split of a dataset."""

    first: np.ndarray
    second: np.ndarray


def train_check_split(n: int, check_fraction: float = 0.3,
                      seed: int = 0, stratify_on: np.ndarray = None
                      ) -> Split:
    """Split ``range(n)`` into train/check index arrays.

    Parameters
    ----------
    n:
        Number of samples.
    check_fraction:
        Fraction assigned to the check (second) set.
    seed:
        Shuffle seed (deterministic).
    stratify_on:
        Optional integer labels; when given, the split preserves the label
        proportions in both halves (each label contributes at least one
        sample to the training half when it has any).
    """
    if n < 2:
        raise EmptyDatasetError(f"need >= 2 samples to split, got {n}")
    if not 0.0 < check_fraction < 1.0:
        raise ConfigurationError(
            f"check_fraction must be in (0, 1), got {check_fraction}")
    rng = np.random.default_rng(seed)
    if stratify_on is None:
        order = rng.permutation(n)
        n_check = max(1, int(round(n * check_fraction)))
        n_check = min(n_check, n - 1)
        return Split(first=np.sort(order[n_check:]),
                     second=np.sort(order[:n_check]))

    labels = np.asarray(stratify_on, dtype=int).ravel()
    if labels.shape[0] != n:
        raise ConfigurationError(
            f"stratify_on must have length {n}, got {labels.shape[0]}")
    first_parts = []
    second_parts = []
    for label in np.unique(labels):
        members = np.flatnonzero(labels == label)
        members = members[rng.permutation(len(members))]
        n_check = int(round(len(members) * check_fraction))
        n_check = min(max(n_check, 0), len(members) - 1)
        second_parts.append(members[:n_check])
        first_parts.append(members[n_check:])
    return Split(first=np.sort(np.concatenate(first_parts)),
                 second=np.sort(np.concatenate(second_parts)))


def three_way_split(n: int, check_fraction: float = 0.25,
                    test_fraction: float = 0.25, seed: int = 0
                    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Split ``range(n)`` into train/check/test index arrays."""
    if check_fraction + test_fraction >= 1.0:
        raise ConfigurationError(
            "check_fraction + test_fraction must be < 1, got "
            f"{check_fraction} + {test_fraction}")
    holdout = train_check_split(
        n, check_fraction=check_fraction + test_fraction, seed=seed)
    rest = holdout.second
    if len(rest) < 2:
        raise EmptyDatasetError("holdout too small to split further")
    inner_fraction = test_fraction / (check_fraction + test_fraction)
    inner = train_check_split(len(rest), check_fraction=inner_fraction,
                              seed=seed + 1)
    return holdout.first, rest[inner.first], rest[inner.second]
