"""Reliability analysis: is the CQM a calibrated probability?

The paper interprets ``q`` ordinally (higher = more trustworthy) and
thresholds it.  A stronger property would be *probability calibration*:
among decisions with ``q ≈ 0.8``, are ~80% actually right?  This module
computes the reliability diagram and the expected calibration error (ECE)
so that claim can be tested rather than assumed.
"""

from __future__ import annotations

import dataclasses
from typing import List

import numpy as np

from ..exceptions import CalibrationError, ConfigurationError


@dataclasses.dataclass(frozen=True)
class ReliabilityBin:
    """One bin of the reliability diagram."""

    lower: float
    upper: float
    n: int
    mean_quality: float
    empirical_accuracy: float

    @property
    def gap(self) -> float:
        """Calibration gap |accuracy - mean quality| (0 = calibrated)."""
        return abs(self.empirical_accuracy - self.mean_quality)


@dataclasses.dataclass(frozen=True)
class ReliabilityDiagram:
    """Binned calibration summary of a quality measure."""

    bins: List[ReliabilityBin]
    n_total: int

    @property
    def expected_calibration_error(self) -> float:
        """ECE: bin-weight-averaged |accuracy - confidence|."""
        if self.n_total == 0:
            return 0.0
        return float(sum(b.n * b.gap for b in self.bins) / self.n_total)

    @property
    def max_calibration_error(self) -> float:
        """Largest per-bin gap (MCE)."""
        occupied = [b.gap for b in self.bins if b.n > 0]
        return float(max(occupied)) if occupied else 0.0

    def to_text(self) -> str:
        """Readable diagram: one line per occupied bin."""
        lines = ["reliability diagram (q bin -> empirical accuracy):"]
        for b in self.bins:
            if b.n == 0:
                continue
            bar = "#" * int(round(b.empirical_accuracy * 30))
            lines.append(
                f"  [{b.lower:.2f}, {b.upper:.2f})  n={b.n:>4}  "
                f"acc={b.empirical_accuracy:.2f} "
                f"(mean q {b.mean_quality:.2f})  {bar}")
        lines.append(f"  ECE = {self.expected_calibration_error:.4f}, "
                     f"MCE = {self.max_calibration_error:.4f}")
        return "\n".join(lines)


def reliability_diagram(qualities: np.ndarray, correct: np.ndarray,
                        n_bins: int = 10) -> ReliabilityDiagram:
    """Bin quality values and compare mean q against empirical accuracy.

    NaN (epsilon) qualities are excluded; the final bin is right-closed
    so ``q = 1.0`` is counted.
    """
    if n_bins < 2:
        raise ConfigurationError(f"n_bins must be >= 2, got {n_bins}")
    qualities = np.asarray(qualities, dtype=float).ravel()
    correct = np.asarray(correct, dtype=bool).ravel()
    if qualities.shape != correct.shape:
        raise CalibrationError("qualities and correct must align")
    usable = ~np.isnan(qualities)
    q = qualities[usable]
    c = correct[usable]
    if q.size == 0:
        raise CalibrationError("no usable quality values")
    if np.any((q < 0) | (q > 1)):
        raise CalibrationError("qualities must lie in [0, 1]")

    edges = np.linspace(0.0, 1.0, n_bins + 1)
    bins: List[ReliabilityBin] = []
    for k in range(n_bins):
        lower, upper = float(edges[k]), float(edges[k + 1])
        if k == n_bins - 1:
            mask = (q >= lower) & (q <= upper)
        else:
            mask = (q >= lower) & (q < upper)
        n = int(np.sum(mask))
        bins.append(ReliabilityBin(
            lower=lower, upper=upper, n=n,
            mean_quality=float(np.mean(q[mask])) if n else 0.0,
            empirical_accuracy=float(np.mean(c[mask])) if n else 0.0))
    return ReliabilityDiagram(bins=bins, n_total=int(q.size))


def recalibration_map(qualities: np.ndarray, correct: np.ndarray,
                      n_bins: int = 10) -> np.ndarray:
    """Histogram-binning recalibration table.

    Returns an array of per-bin empirical accuracies; applying
    ``table[bin(q)]`` in place of ``q`` yields a histogram-calibrated
    measure (empty bins inherit their mean-q value as a neutral choice).
    """
    diagram = reliability_diagram(qualities, correct, n_bins=n_bins)
    table = np.empty(len(diagram.bins))
    for k, b in enumerate(diagram.bins):
        if b.n > 0:
            table[k] = b.empirical_accuracy
        else:
            table[k] = 0.5 * (b.lower + b.upper)
    return table


def apply_recalibration(qualities: np.ndarray,
                        table: np.ndarray) -> np.ndarray:
    """Map raw qualities through a recalibration table (NaN passes)."""
    qualities = np.asarray(qualities, dtype=float)
    table = np.asarray(table, dtype=float)
    if table.ndim != 1 or table.size < 2:
        raise ConfigurationError("table must be 1-D with >= 2 bins")
    out = np.full(qualities.shape, np.nan)
    usable = ~np.isnan(qualities)
    idx = np.clip((qualities[usable] * table.size).astype(int),
                  0, table.size - 1)
    out[usable] = table[idx]
    return out
