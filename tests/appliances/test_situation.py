"""Tests for repro.appliances.situation — higher-level fusion (paper §5)."""

import pytest

from repro.appliances.bus import EventBus
from repro.appliances.messages import ContextEvent
from repro.appliances.situation import (DISCUSSION, IDLE, SITUATION_TOPIC,
                                        SituationDetector, WRITING_SESSION)
from repro.exceptions import ConfigurationError
from repro.sensors.accelerometer import LYING, PLAYING, WRITING
from repro.sensors.chair import EMPTY, FIDGETING, SITTING


def publish(bus, topic, context, quality, time_s=0.0):
    bus.publish(ContextEvent.create(source=topic.split(".")[-1],
                                    topic=topic, context=context,
                                    quality=quality, time_s=time_s))


@pytest.fixture
def office_bus():
    bus = EventBus()
    detector = SituationDetector(bus, decay=0.5)
    return bus, detector


class TestConfiguration:
    def test_requires_pen_and_chair(self):
        with pytest.raises(ConfigurationError):
            SituationDetector(EventBus(), source_topics={"pen": "context.pen"})

    def test_min_quality_validated(self):
        with pytest.raises(ConfigurationError):
            SituationDetector(EventBus(), min_quality=1.5)

    def test_describe(self, office_bus):
        _, detector = office_bus
        assert "SituationDetector" in detector.describe()


class TestRuleEvaluation:
    def test_writing_plus_sitting_is_writing_session(self, office_bus):
        bus, detector = office_bus
        publish(bus, "context.pen", WRITING, 0.9)
        publish(bus, "context.chair", SITTING, 0.9)
        assert detector.current is not None
        assert detector.current.situation.name == "writing-session"

    def test_occupied_chair_quiet_pen_is_discussion(self, office_bus):
        bus, detector = office_bus
        publish(bus, "context.pen", LYING, 0.9)
        publish(bus, "context.chair", FIDGETING, 0.9)
        assert detector.current.situation is DISCUSSION

    def test_everything_still_is_idle(self, office_bus):
        bus, detector = office_bus
        publish(bus, "context.pen", LYING, 0.9)
        publish(bus, "context.chair", EMPTY, 0.9)
        assert detector.current.situation is IDLE

    def test_no_decision_before_both_sources_report(self, office_bus):
        bus, detector = office_bus
        publish(bus, "context.pen", WRITING, 0.9)
        assert detector.current is None

    def test_situation_changes_follow_evidence(self, office_bus):
        bus, detector = office_bus
        publish(bus, "context.pen", LYING, 0.9)
        publish(bus, "context.chair", EMPTY, 0.9)
        assert detector.current.situation is IDLE
        # Someone sits down and starts writing.
        for _ in range(4):
            publish(bus, "context.chair", SITTING, 0.9)
            publish(bus, "context.pen", WRITING, 0.9)
        assert detector.current.situation is WRITING_SESSION
        history = [c.name for c in detector.situation_history()]
        # A transient 'discussion' may appear while the chair has flipped
        # to sitting but the pen's belief still says lying.
        assert history[0] == "idle"
        assert history[-1] == "writing-session"
        assert set(history) <= {"idle", "discussion", "writing-session"}


class TestQualityGate:
    def test_low_quality_events_ignored(self):
        """The §5 point: the processor believes only trustworthy input."""
        bus = EventBus()
        detector = SituationDetector(bus, min_quality=0.6, decay=0.5)
        publish(bus, "context.pen", LYING, 0.9)
        publish(bus, "context.chair", EMPTY, 0.9)
        assert detector.current.situation is IDLE
        # A burst of *low-quality* wrong writing detections must not
        # flip the situation.
        for _ in range(5):
            publish(bus, "context.pen", WRITING, 0.2)
        assert detector.current.situation is IDLE
        assert detector.ignored_events == 5

    def test_epsilon_events_ignored(self):
        bus = EventBus()
        detector = SituationDetector(bus, decay=0.5)
        publish(bus, "context.pen", WRITING, None)
        publish(bus, "context.chair", SITTING, 0.9)
        assert detector.current is None
        assert detector.ignored_events == 1

    def test_confidence_reflects_source_shares(self, office_bus):
        bus, detector = office_bus
        publish(bus, "context.pen", WRITING, 0.9)
        publish(bus, "context.chair", SITTING, 0.9)
        unanimous = detector.current.confidence
        # Conflicting chair evidence lowers the chair share.
        publish(bus, "context.chair", EMPTY, 0.9)
        publish(bus, "context.chair", SITTING, 0.9)
        assert detector.current.confidence <= unanimous + 1e-9


class TestPublication:
    def test_publishes_only_on_change(self, office_bus):
        bus, detector = office_bus
        received = []
        bus.subscribe(SITUATION_TOPIC, received.append, name="display")
        for _ in range(3):
            publish(bus, "context.pen", WRITING, 0.9)
            publish(bus, "context.chair", SITTING, 0.9)
        assert len(received) == 1
        assert received[0].context is WRITING_SESSION
        assert received[0].quality is not None


class TestEndToEndWithRealAppliances:
    def test_office_with_pen_and_chair(self, experiment, rng):
        """Full pipeline: two sensing appliances with their own CQMs feed
        the situation detector."""
        import numpy as np

        from repro.appliances.awarepen import AwarePen
        from repro.appliances.chair import AwareChair
        from repro.classifiers import NearestCentroidClassifier
        from repro.core import (ConstructionConfig,
                                QualityAugmentedClassifier,
                                build_quality_measure)
        from repro.datasets.generator import generate_dataset
        from repro.sensors.chair import AWARECHAIR_CLASSES, CHAIR_MODELS
        from repro.sensors.node import Segment, SensorNode

        def chair_script(script_rng, repetitions=4):
            segments = []
            for _ in range(repetitions):
                for name in ("empty", "sitting", "fidgeting"):
                    segments.append(Segment(
                        CHAIR_MODELS[name],
                        duration_s=float(script_rng.uniform(4, 7))))
            return segments

        chair_train = generate_dataset(chair_script, seed=70,
                                       classes=AWARECHAIR_CLASSES)
        chair_quality_train = generate_dataset(chair_script, seed=71,
                                               classes=AWARECHAIR_CLASSES)
        chair_check = generate_dataset(
            lambda r: chair_script(r, repetitions=2), seed=72,
            classes=AWARECHAIR_CLASSES)

        chair_clf = NearestCentroidClassifier(AWARECHAIR_CLASSES)
        chair_clf.fit(chair_train.cues, chair_train.labels)
        chair_cqm = build_quality_measure(
            chair_clf, chair_quality_train, chair_check,
            config=ConstructionConfig(epochs=15))
        chair_augmented = QualityAugmentedClassifier(chair_clf,
                                                     chair_cqm.quality)

        bus = EventBus()
        pen = AwarePen(bus, experiment.augmented)
        chair = AwareChair(bus, chair_augmented)
        detector = SituationDetector(bus, min_quality=0.3, decay=0.6)

        node = SensorNode()
        # A writing session: pen writes, someone sits.
        from repro.sensors.accelerometer import ACTIVITY_MODELS
        pen_windows = node.collect(
            [Segment(ACTIVITY_MODELS["writing"], duration_s=10.0)],
            np.random.default_rng(1), experiment.augmented.classes)
        chair_windows = node.collect(
            [Segment(CHAIR_MODELS["sitting"], duration_s=10.0)],
            np.random.default_rng(2), AWARECHAIR_CLASSES)
        for pw, cw in zip(pen_windows, chair_windows):
            pen.process_window(pw.cues, time_s=pw.time_s)
            chair.process_window(cw.cues, time_s=cw.time_s)

        assert detector.current is not None
        assert detector.current.situation is WRITING_SESSION
