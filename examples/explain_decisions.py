#!/usr/bin/env python3
"""Why did the quality system reject that classification?

Because the CQM is a rule-based TSK FIS, every q value decomposes exactly
into per-rule contributions.  This example runs the evaluation set
through the pipeline, then explains the *lowest*- and *highest*-quality
decisions rule by rule, and shows the reliability diagram ("is q an
honest probability?") on the analysis set.

Run:  python examples/explain_decisions.py
"""

import numpy as np

from repro.core import explain
from repro.experiment import run_awarepen_experiment
from repro.stats.reliability import reliability_diagram

CUE_NAMES = ["std_x", "std_y", "std_z"]


def main() -> None:
    experiment = run_awarepen_experiment(seed=7)
    material = experiment.material
    quality = experiment.augmented.quality
    classifier = experiment.classifier

    cues = material.evaluation.cues
    predicted = classifier.predict_indices(cues)
    q = quality.measure_batch(cues, predicted.astype(float))
    correct = predicted == material.evaluation.labels
    usable = ~np.isnan(q)

    worst = int(np.nanargmin(np.where(usable, q, np.nan)))
    best = int(np.nanargmax(np.where(usable, q, np.nan)))

    for title, idx in (("lowest-quality decision", worst),
                       ("highest-quality decision", best)):
        name = classifier.class_for_index(int(predicted[idx])).name
        truth = material.evaluation.classes[0].__class__  # noqa: F841
        true_name = next(c.name for c in material.classes
                         if c.index == material.evaluation.labels[idx])
        verdict = "RIGHT" if correct[idx] else "WRONG"
        print(f"=== {title}: window {idx + 1}, classified '{name}' "
              f"(truth '{true_name}', {verdict}) ===")
        explanation = explain(quality, cues[idx], int(predicted[idx]))
        print(explanation.to_text(cue_names=CUE_NAMES))
        print()

    print("=== is q an honest probability? (analysis set) ===")
    analysis_pred = classifier.predict_indices(material.analysis.cues)
    analysis_q = quality.measure_batch(material.analysis.cues,
                                       analysis_pred.astype(float))
    analysis_correct = analysis_pred == material.analysis.labels
    print(reliability_diagram(analysis_q, analysis_correct,
                              n_bins=6).to_text())


if __name__ == "__main__":
    main()
