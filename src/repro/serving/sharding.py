"""Shard-per-process serving tier with consistent-hash stream routing.

One asyncio process tops out near ~2k rps on this workload
(``BENCH_serving.json``), and a naive process pool re-pickles the model
into every worker.  This module is the horizontal answer:

* **Shard processes** — ``n_shards`` spawned processes, each running the
  unmodified :class:`~repro.serving.service.InferenceService` behind the
  JSONL socket transport (:func:`~repro.serving.transport.
  serve_connections` with the control plane enabled).  Admission
  control, ε load-shedding, micro-batching and graceful drain are the
  *per-shard* semantics of PR 4, unchanged.
* **Shared-memory artifacts** — the model triple is pickled once into a
  named segment (:mod:`repro.serving.shm`); every shard attaches by
  name and builds its local :class:`~repro.serving.registry.
  ModelRegistry` replica from the same bytes.  Spawn arguments and
  hot-swap control frames carry only the tiny handle.
* **Consistent-hash routing** — the front-end :class:`ShardedService`
  routes each request by its stream key (appliance/user id; request id
  when absent) through a :class:`HashRing` with configurable virtual
  nodes, so one stream always lands on one shard — and therefore one
  stateful ε-gate — and resizing the fleet moves only ~K/N streams.
* **Coordinated hot-swap** — :meth:`ShardedService.publish_and_activate`
  quiesces admissions, waits for in-flight traffic to resolve, publishes
  the artifact to every shard (barrier), then activates everywhere.
  Every response fleet-wide is attributable to exactly one version, and
  the version sequence has a single clean transition point — no mixed
  fleet, no torn batch.

The router and the shards speak the ordinary JSONL wire protocol, so a
shard is also directly debuggable with ``repro loadgen --connect``.
"""

from __future__ import annotations

import asyncio
import bisect
import dataclasses
import hashlib
import json
import multiprocessing
import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from .. import observability as obs
from ..exceptions import ConfigurationError, ServiceClosedError
from .protocol import ServeRequest, ServeResponse
from .registry import ModelRegistry
from .service import ServingConfig
from .shm import (BACKENDS as SHM_BACKENDS, ShardArtifact, ShmHandle,
                  load_artifact, publish_artifact, unlink_artifact)

#: Start methods accepted by :class:`ShardingConfig`.
START_METHODS = ("spawn", "fork", "forkserver")


# ----------------------------------------------------------------------
class HashRing:
    """Consistent-hash ring over shard ids with virtual nodes.

    Each shard contributes ``vnodes`` points on a 64-bit ring (stable
    BLAKE2b positions — never Python's salted ``hash``); a key routes to
    the first point at or after its own hash.  The classic guarantee
    follows: growing the fleet from N to N+1 shards moves only the keys
    that now fall to the new shard (~K/(N+1) of them), everything else
    stays put — pinned by the hypothesis property tests.
    """

    def __init__(self, shards: Sequence[int], vnodes: int = 64) -> None:
        shard_list = list(shards)
        if not shard_list:
            raise ConfigurationError("hash ring needs at least one shard")
        if len(set(shard_list)) != len(shard_list):
            raise ConfigurationError(
                f"shard ids must be unique, got {shard_list}")
        if vnodes < 1:
            raise ConfigurationError(
                f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = int(vnodes)
        self.shards = tuple(shard_list)
        points = sorted(
            (self._hash(f"shard-{shard}#vnode-{v}"), shard)
            for shard in shard_list for v in range(self.vnodes))
        self._hashes = [h for h, _ in points]
        self._owners = [s for _, s in points]

    @staticmethod
    def _hash(key: str) -> int:
        """Stable 64-bit position, identical in every process."""
        digest = hashlib.blake2b(key.encode("utf-8"),
                                 digest_size=8).digest()
        return int.from_bytes(digest, "big")

    def shard_for(self, key: Union[str, int]) -> int:
        """The shard owning *key* (clockwise successor on the ring)."""
        h = self._hash(str(key))
        index = bisect.bisect_right(self._hashes, h) % len(self._hashes)
        return self._owners[index]

    def distribution(self, keys: Iterable[Union[str, int]]
                     ) -> Dict[int, int]:
        """Key count per shard — balance diagnostics and tests."""
        counts = {shard: 0 for shard in self.shards}
        for key in keys:
            counts[self.shard_for(key)] += 1
        return counts

    def __len__(self) -> int:
        return len(self._hashes)


# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class ShardingConfig:
    """Operating knobs of one :class:`ShardedService` fleet.

    ``serving`` is applied to every shard — so ``queue_capacity`` etc.
    are *per-shard* bounds, and aggregate admission capacity scales with
    the fleet.  ``start_method`` defaults to ``spawn``: the honest
    configuration in which nothing reaches a shard except through the
    shared-memory artifact (``fork`` would inherit the parent's model
    for free and hide a serialization regression).
    """

    n_shards: int = 2
    vnodes: int = 64
    host: str = "127.0.0.1"
    serving: ServingConfig = ServingConfig()
    shm_backend: str = "shm"
    start_method: str = "spawn"
    spawn_timeout_s: float = 60.0

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ConfigurationError(
                f"n_shards must be >= 1, got {self.n_shards}")
        if self.vnodes < 1:
            raise ConfigurationError(
                f"vnodes must be >= 1, got {self.vnodes}")
        if self.shm_backend not in SHM_BACKENDS:
            raise ConfigurationError(
                f"unknown shm backend {self.shm_backend!r}; choose one "
                f"of {', '.join(SHM_BACKENDS)}")
        if self.start_method not in START_METHODS:
            raise ConfigurationError(
                f"unknown start method {self.start_method!r}; choose "
                f"one of {', '.join(START_METHODS)}")
        if self.spawn_timeout_s <= 0:
            raise ConfigurationError(
                f"spawn_timeout_s must be > 0, got {self.spawn_timeout_s}")


def _shard_main(shard_id: int, conn, host: str,
                serving_config: ServingConfig,
                handle_doc: Dict[str, object]) -> None:  # pragma: no cover
    """Entry point of one shard process.

    Attaches the shared-memory artifact, replicates it into a local
    registry as v1, and serves JSONL on an OS-assigned port with the
    control plane enabled.  The only parent communication outside the
    socket is the pipe: ``("ready", shard_id, port)`` once listening,
    forwarded announcements, and ``("exit", shard_id)`` at teardown.

    Runs only in spawned children, which the parent's coverage
    recorder cannot observe; the logic is integration-tested end to
    end by ``tests/serving/test_sharding.py``.
    """
    artifact = load_artifact(ShmHandle.from_dict(handle_doc))
    registry = ModelRegistry()
    registry.publish_and_activate(artifact.package,
                                  classifier=artifact.classifier,
                                  tag=artifact.tag)

    async def _run() -> None:  # pragma: no cover - child process
        from .transport import serve_connections
        from .service import InferenceService
        service = InferenceService(registry, config=serving_config)
        await serve_connections(
            service, host, 0,
            describe=f"(shard {shard_id})",
            registry=registry,
            announce=lambda msg: conn.send(("announce", shard_id, msg)),
            allow_control=True,
            on_bound=lambda _h, port: conn.send(("ready", shard_id,
                                                 port)))

    try:  # pragma: no cover - child process
        asyncio.run(_run())
        conn.send(("exit", shard_id))
    except Exception as exc:  # noqa: BLE001 - report, then die
        try:
            conn.send(("failed", shard_id, f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass
        raise
    finally:
        conn.close()


def _recv_with_timeout(conn, timeout_s: float):
    """Blocking pipe receive with a deadline (runs in a thread)."""
    if conn.poll(timeout_s):
        return conn.recv()
    raise TimeoutError(f"no message within {timeout_s}s")


class _Shard:
    """Router-side state of one shard process."""

    def __init__(self, shard_id: int, process, conn,
                 capacity: int) -> None:
        self.shard_id = shard_id
        self.process = process
        self.conn = conn
        self.port: Optional[int] = None
        self.reader: Optional[asyncio.StreamReader] = None
        self.writer: Optional[asyncio.StreamWriter] = None
        self.reader_task: Optional["asyncio.Task[None]"] = None
        self.pending: Dict[int, "asyncio.Future[ServeResponse]"] = {}
        self.acks: "asyncio.Queue[dict]" = asyncio.Queue()
        self.window = asyncio.Semaphore(capacity)
        self.ctl_lock = asyncio.Lock()
        self.n_routed = 0


class ShardedService:
    """Consistent-hash front-end router over a fleet of shard processes.

    Mirrors the :class:`~repro.serving.service.InferenceService` surface
    (``submit``/``serve_stream``/``drain``, the ``n_*`` counters, async
    context manager), so the loadgen, the socket transport and the tests
    drive either interchangeably.

    Parameters
    ----------
    artifact:
        The model triple every shard replicates as version 1.
    config:
        Fleet shape; see :class:`ShardingConfig`.  ``config.serving``
        (queue bound, batching, ε-policy, workers) applies per shard.
    """

    def __init__(self, artifact: ShardArtifact,
                 config: ShardingConfig = ShardingConfig()) -> None:
        self._artifact = artifact
        self._config = config
        self._ring = HashRing(range(config.n_shards),
                              vnodes=config.vnodes)
        self._shards: List[_Shard] = []
        self._started = False
        self._closed = False
        self._drained = False
        self._admitting: Optional["asyncio.Event"] = None
        self._idle: Optional["asyncio.Event"] = None
        self._swap_lock: Optional["asyncio.Lock"] = None
        self._in_flight = 0
        self._next_wire_id = 0
        self._active_version: Optional[int] = None
        self._swaps: List[Tuple[Optional[int], int]] = []
        self._n_cues = int(artifact.package.quality.n_cues)
        self._has_classifier = artifact.classifier is not None
        # Plain counters, mirroring InferenceService.
        self.n_submitted = 0
        self.n_shed = 0
        self.n_completed = 0

    # ------------------------------------------------------------------
    @property
    def config(self) -> ShardingConfig:
        return self._config

    @property
    def ring(self) -> HashRing:
        return self._ring

    @property
    def n_shards(self) -> int:
        return self._config.n_shards

    @property
    def in_flight(self) -> int:
        """Routed requests whose response has not resolved yet."""
        return self._in_flight

    @property
    def active_version(self) -> Optional[int]:
        return self._active_version

    @property
    def swap_history(self) -> List[Tuple[Optional[int], int]]:
        """Fleet-wide ``(from, to)`` activations in barrier order."""
        return list(self._swaps)

    @property
    def queue_depth(self) -> int:
        """Router-side proxy: requests in flight across the fleet."""
        return self._in_flight

    # ------------------------------------------------------------------
    def start(self):
        """Launch the fleet; awaitable (``await service.start()``).

        Synchronous callers holding no loop should prefer ``async with``
        or :func:`serve_sharded_requests`.  Idempotent like the
        single-process ``start``.
        """
        return self._start()

    async def _start(self) -> "ShardedService":
        if self._started:
            return self
        self._started = True
        self._admitting = asyncio.Event()
        self._admitting.set()
        self._idle = asyncio.Event()
        self._idle.set()
        self._swap_lock = asyncio.Lock()
        context = multiprocessing.get_context(self._config.start_method)
        handle = publish_artifact(self._artifact,
                                  backend=self._config.shm_backend)
        capacity = self._config.serving.queue_capacity
        try:
            for shard_id in range(self._config.n_shards):
                parent_conn, child_conn = context.Pipe()
                process = context.Process(
                    target=_shard_main,
                    args=(shard_id, child_conn, self._config.host,
                          self._config.serving, handle.to_dict()),
                    name=f"repro-shard-{shard_id}", daemon=True)
                process.start()
                child_conn.close()
                self._shards.append(_Shard(shard_id, process, parent_conn,
                                           capacity))
            for shard in self._shards:
                await self._await_ready(shard)
            for shard in self._shards:
                shard.reader, shard.writer = await asyncio.open_connection(
                    self._config.host, shard.port)
                shard.reader_task = asyncio.get_running_loop().create_task(
                    self._read_responses(shard),
                    name=f"repro-router-read-{shard.shard_id}")
        except Exception:
            await self._terminate_fleet()
            raise
        finally:
            # Every shard has loaded (or startup failed); the published
            # bytes are no longer needed either way.
            unlink_artifact(handle)
        obs.set_gauge("serving.sharding.n_shards", self._config.n_shards)
        self._active_version = 1
        self._swaps.append((None, 1))
        return self

    async def _await_ready(self, shard: _Shard) -> None:
        deadline = time.monotonic() + self._config.spawn_timeout_s
        while True:
            budget = deadline - time.monotonic()
            if budget <= 0:
                raise ConfigurationError(
                    f"shard {shard.shard_id} did not report ready within "
                    f"{self._config.spawn_timeout_s}s")
            try:
                message = await asyncio.to_thread(
                    _recv_with_timeout, shard.conn, budget)
            except (TimeoutError, EOFError, OSError) as exc:
                raise ConfigurationError(
                    f"shard {shard.shard_id} failed during startup: "
                    f"{exc}") from exc
            if message[0] == "ready":
                shard.port = int(message[2])
                return
            if message[0] == "failed":
                raise ConfigurationError(
                    f"shard {shard.shard_id} failed during startup: "
                    f"{message[2]}")
            # "announce" frames are informational; keep waiting.

    async def _terminate_fleet(self) -> None:
        for shard in self._shards:
            if shard.reader_task is not None:
                shard.reader_task.cancel()
            if shard.writer is not None:
                shard.writer.close()
            if shard.process.is_alive():
                shard.process.terminate()
        for shard in self._shards:
            await asyncio.to_thread(shard.process.join, 5.0)
        self._shards = []

    async def __aenter__(self) -> "ShardedService":
        return await self._start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.drain()

    # ------------------------------------------------------------------
    async def _read_responses(self, shard: _Shard) -> None:
        """Demultiplex one shard connection: data, errors, control acks."""
        while True:
            line = await shard.reader.readline()
            if not line:
                break
            doc = json.loads(line.decode())
            if "ctl" in doc:
                shard.acks.put_nowait(doc)
                continue
            if "error" in doc:
                future = shard.pending.pop(int(doc.get("id", -1)), None)
                if future is not None and not future.done():
                    future.set_exception(ConfigurationError(
                        f"shard {shard.shard_id} rejected the request: "
                        f"{doc.get('error')}: {doc.get('message', '')}"))
                continue
            future = shard.pending.pop(int(doc["id"]), None)
            if future is not None and not future.done():
                future.set_result(ServeResponse.from_json(line.decode()))
        # EOF: during drain this is the expected goodbye; mid-traffic it
        # means the shard died — fail its in-flight futures loudly.
        for future in shard.pending.values():
            if not future.done():
                future.set_exception(ServiceClosedError(
                    f"shard {shard.shard_id} connection closed with "
                    f"requests in flight"))
        shard.pending.clear()

    def _route(self, key: Union[str, int]) -> _Shard:
        return self._shards[self._ring.shard_for(key)]

    def _validate(self, cues: np.ndarray, class_index: Optional[int],
                  request_id: int) -> np.ndarray:
        cues = np.asarray(cues, dtype=float).ravel()
        if cues.shape[0] != self._n_cues:
            raise ConfigurationError(
                f"request {request_id} has {cues.shape[0]} cues but the "
                f"active model expects {self._n_cues}")
        if class_index is None and not self._has_classifier:
            raise ConfigurationError(
                f"request {request_id} carries no class index and the "
                f"active model has no classifier")
        return cues

    async def submit(self, cues: np.ndarray,
                     class_index: Optional[int] = None,
                     request_id: Optional[int] = None,
                     wait: bool = False,
                     key: Optional[str] = None) -> ServeResponse:
        """Route one request to its shard; resolves with the response.

        ``key`` is the stream identity (appliance/user id); requests
        sharing a key always reach the same shard.  Without one the
        request id routes — uniform spread, no stream affinity.
        ``wait=True`` bounds in-flight per shard to the shard's queue
        capacity (closed-loop backpressure, never sheds); ``wait=False``
        forwards immediately and lets the shard's own admission control
        shed (the per-shard ε semantics).
        """
        future = await self._submit_future(cues, class_index=class_index,
                                           request_id=request_id,
                                           wait=wait, key=key)
        return await future

    async def serve_stream(self, requests: Iterable[ServeRequest]
                           ) -> List[ServeResponse]:
        """Serve a request stream with backpressure, in request order."""
        futures = [await self._submit_future(
            request.cues, class_index=request.class_index,
            request_id=request.request_id, wait=True,
            key=request.stream_key) for request in requests]
        return [await future for future in futures]

    async def _submit_future(self, cues: np.ndarray,
                             class_index: Optional[int],
                             request_id: Optional[int],
                             wait: bool, key: Optional[str]
                             ) -> "asyncio.Future[ServeResponse]":
        if not self._started:
            raise ServiceClosedError(
                "sharded service is not started; use 'async with' or "
                "await start()")
        if self._closed:
            raise ServiceClosedError(
                "sharded service is draining; no new requests are "
                "admitted")
        await self._admitting.wait()   # swap barrier: quiesced fleet
        if self._closed:
            raise ServiceClosedError(
                "sharded service is draining; no new requests are "
                "admitted")
        caller_id = (self.n_submitted if request_id is None
                     else int(request_id))
        cues = self._validate(cues, class_index, caller_id)
        wire_id = self._next_wire_id
        self._next_wire_id += 1
        shard = self._route(key if key is not None else caller_id)
        if wait:
            await shard.window.acquire()
        self.n_submitted += 1
        obs.inc("serving.sharding.routed_total")
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[ServeResponse]" = loop.create_future()
        enqueued_s = time.perf_counter()
        resolved: "asyncio.Future[ServeResponse]" = loop.create_future()
        shard.pending[wire_id] = future
        shard.n_routed += 1
        self._in_flight += 1
        self._idle.clear()

        def _finish(done: "asyncio.Future[ServeResponse]") -> None:
            if wait:
                shard.window.release()
            self._in_flight -= 1
            if self._in_flight == 0:
                self._idle.set()
            if resolved.cancelled():
                return
            try:
                response = done.result()
            except BaseException as exc:  # noqa: BLE001 - relay verbatim
                resolved.set_exception(exc)
                return
            if response.shed:
                self.n_shed += 1
            else:
                self.n_completed += 1
            resolved.set_result(dataclasses.replace(
                response, request_id=caller_id,
                latency_s=time.perf_counter() - enqueued_s))

        future.add_done_callback(_finish)
        request = ServeRequest(request_id=wire_id, cues=cues,
                               class_index=class_index, stream_key=key)
        shard.writer.write((request.to_json() + "\n").encode())
        await shard.writer.drain()
        return resolved

    # ------------------------------------------------------------------
    async def _control(self, shard: _Shard, frame: Dict[str, object]
                       ) -> dict:
        """One control round-trip on a shard connection (serialized)."""
        async with shard.ctl_lock:
            shard.writer.write((json.dumps(frame) + "\n").encode())
            await shard.writer.drain()
            reply = await asyncio.wait_for(
                shard.acks.get(), timeout=self._config.spawn_timeout_s)
        if not reply.get("ok"):
            raise ConfigurationError(
                f"shard {shard.shard_id} refused "
                f"{frame.get('ctl')!r}: {reply.get('error')}")
        return reply

    async def _quiesce(self) -> None:
        """Hold new admissions and wait for the fleet to go idle."""
        self._admitting.clear()
        await self._idle.wait()

    async def publish_and_activate(self, package, classifier=None,
                                   tag: str = "") -> int:
        """Coordinated fleet-wide hot swap; returns the new version.

        Two-phase with a quiesce barrier: (1) admissions pause and
        in-flight traffic resolves, (2) the artifact is published once
        into shared memory and **every** shard registers it (replicas
        agree on the version number), (3) every shard activates, (4)
        admissions resume and the segment is unlinked.  The fleet is
        never mixed-version for any admitted request: responses before
        the swap carry the old version, responses after carry the new
        one, on every shard.
        """
        if not self._started or self._closed:
            raise ServiceClosedError(
                "cannot swap: sharded service is not running")
        artifact = ShardArtifact(package=package, classifier=classifier,
                                 tag=tag)
        async with self._swap_lock:
            handle = publish_artifact(artifact,
                                      backend=self._config.shm_backend)
            try:
                await self._quiesce()
                replies = await asyncio.gather(*[
                    self._control(shard, {"ctl": "publish",
                                          "shm": handle.to_dict()})
                    for shard in self._shards])
                versions = {int(reply["version"]) for reply in replies}
                if len(versions) != 1:
                    raise ConfigurationError(
                        f"shard registries diverged: published versions "
                        f"{sorted(versions)}")
                version = versions.pop()
                await asyncio.gather(*[
                    self._control(shard, {"ctl": "activate",
                                          "version": version})
                    for shard in self._shards])
                self._swaps.append((self._active_version, version))
                self._active_version = version
                obs.inc("serving.sharding.swaps_total")
                obs.set_gauge("serving.sharding.active_version", version)
            finally:
                self._admitting.set()
                unlink_artifact(handle)
        return version

    async def stats(self) -> Dict[str, object]:
        """Aggregate router + per-shard counters (one control sweep)."""
        replies = await asyncio.gather(*[
            self._control(shard, {"ctl": "stats"})
            for shard in self._shards])
        per_shard = {shard.shard_id: dict(reply["stats"],
                                          n_routed=shard.n_routed)
                     for shard, reply in zip(self._shards, replies)}
        return {
            "n_shards": self._config.n_shards,
            "n_submitted": self.n_submitted,
            "n_completed": self.n_completed,
            "n_shed": self.n_shed,
            "in_flight": self.in_flight,
            "active_version": self._active_version,
            "shards": per_shard,
        }

    # ------------------------------------------------------------------
    async def drain(self) -> None:
        """Quiesce, drain every shard, join the fleet (idempotent)."""
        if not self._started or self._drained:
            return
        self._drained = True
        self._closed = True
        self._admitting.set()   # release waiters into the closed check
        await self._idle.wait()
        for shard in self._shards:
            try:
                await self._control(shard, {"ctl": "drain"})
            except (ConfigurationError, ConnectionError,
                    asyncio.TimeoutError):
                pass   # a dead shard cannot ack; join below regardless
            if shard.writer is not None:
                shard.writer.close()
        for shard in self._shards:
            if shard.reader_task is not None:
                try:
                    await asyncio.wait_for(shard.reader_task, timeout=10)
                except (asyncio.TimeoutError, asyncio.CancelledError):
                    shard.reader_task.cancel()
            await asyncio.to_thread(shard.process.join, 10.0)
            if shard.process.is_alive():   # pragma: no cover - stuck child
                shard.process.terminate()
                await asyncio.to_thread(shard.process.join, 5.0)
            shard.conn.close()
        obs.inc("serving.sharding.drains_total")


# ----------------------------------------------------------------------
def serve_sharded_requests(artifact: ShardArtifact,
                           requests: Sequence[ServeRequest],
                           config: ShardingConfig = ShardingConfig()
                           ) -> List[ServeResponse]:
    """Synchronous convenience: serve a fixed request set and drain.

    The sharded sibling of :func:`~repro.serving.service.
    serve_requests` — spins up the fleet, streams *requests* with
    backpressure, drains, and returns responses in request order (the
    entry point behind ``repro serve --shards N`` stdin mode and the
    sharded equivalence tests).
    """

    async def _run() -> List[ServeResponse]:
        async with ShardedService(artifact, config=config) as service:
            return await service.serve_stream(requests)

    return asyncio.run(_run())


async def serve_sharded_socket(artifact: ShardArtifact, host: str,
                               port: int,
                               config: ShardingConfig = ShardingConfig(),
                               ready: Optional["asyncio.Event"] = None,
                               stop: Optional["asyncio.Event"] = None,
                               max_requests: Optional[int] = None,
                               announce=None) -> None:
    """Public JSONL endpoint fronting a sharded fleet.

    The router terminates client connections exactly like ``repro
    serve --listen`` and consistent-hash forwards each request to its
    shard; the control plane stays **off** on the public side (clients
    cannot swap or drain the fleet).  Lifecycle knobs match
    :func:`~repro.serving.transport.serve_socket`.
    """
    from .transport import _announce, serve_connections
    service = ShardedService(artifact, config=config)
    await service.start()
    await serve_connections(
        service, host, port,
        describe=(f"({config.n_shards} shards, "
                  f"batch<={config.serving.max_batch}, "
                  f"queue={config.serving.queue_capacity}/shard)"),
        registry=None, ready=ready, stop=stop,
        max_requests=max_requests,
        announce=announce if announce is not None else _announce,
        allow_control=False)
