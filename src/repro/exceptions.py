"""Exception hierarchy for the :mod:`repro` package.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything raised by this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class ConfigurationError(ReproError):
    """An object was constructed or configured with invalid parameters."""


class NotFittedError(ReproError):
    """A model method requiring a fitted model was called before fitting."""


class DimensionError(ReproError):
    """An input array has the wrong shape or dimensionality."""


class TrainingError(ReproError):
    """Model training failed (e.g. degenerate data, no clusters found)."""


class CalibrationError(ReproError):
    """Threshold calibration failed (e.g. a population is empty)."""


class EmptyDatasetError(ReproError):
    """A dataset operation was attempted on an empty dataset."""


class ServiceClosedError(ReproError):
    """A request was submitted to a serving instance that is draining
    (or was never started); the request was not admitted."""


class BackendError(ConfigurationError):
    """An unknown or unusable numeric backend was requested.

    Subclasses :class:`ConfigurationError` (and therefore
    :class:`ReproError`) so a typo in ``$REPRO_BACKEND`` or
    ``--backend`` fails loudly instead of silently computing on the
    default backend.
    """


class ScenarioError(ConfigurationError):
    """A declarative scenario spec failed schema validation.

    Subclasses :class:`ConfigurationError` (and therefore
    :class:`ReproError`): a malformed scenario is a configuration
    problem, but callers of :mod:`repro.scenarios` can catch the
    narrower type to distinguish spec errors (with their actionable
    field-level messages) from other construction failures.
    """


class BusError(ReproError):
    """A distributed-bus operation failed (broker, log, or protocol).

    Raised for malformed bus frames, corrupt event-log segments and
    publishes that cannot be accepted — distinct from
    :class:`ConfigurationError`, which still covers bad construction
    parameters of bus objects.
    """


class ParallelExecutionError(ReproError):
    """A parallel backend failed outside the task's own code.

    Raised when a worker pool breaks (e.g. an unpicklable task on the
    process backend, or an OOM-killed worker) — distinct from an
    exception *raised by* a task, which propagates unchanged.
    """
