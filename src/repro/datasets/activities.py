"""Scripted AwareOffice activity scenarios.

Scenarios are sequences of :class:`repro.sensors.node.Segment` objects
describing what happens to the pen over time.  The evaluation script
mirrors the paper's motivating situation: "a user writing a text on the
board, then for some seconds playing with the pen when thinking and then
continuing writing" — short ambiguous stretches between longer clean
segments, performed partly by a user with an atypical style.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..sensors.accelerometer import (ACTIVITY_MODELS, DEFAULT_STYLE,
                                     ERRATIC_STYLE, LYING, PLAYING, WRITING,
                                     UserStyle)
from ..sensors.node import Segment


def _model(name: str):
    return ACTIVITY_MODELS[name]


def training_script(rng: np.random.Generator,
                    repetitions: int = 6,
                    segment_s: float = 8.0,
                    style: UserStyle = None) -> List[Segment]:
    """Clean training scenario: long, well-separated activity blocks.

    The pre-trained AwarePen classifier of the paper was built from
    controlled recordings of several users; each repetition cycles
    lying → writing → playing with slightly jittered durations, and the
    repetitions alternate between the default and the erratic user style
    so the classifier has seen both handwriting styles (errors then come
    from ambiguous windows, not from a wholly unknown user).
    """
    segments: List[Segment] = []
    for rep in range(repetitions):
        rep_style = style if style is not None else (
            DEFAULT_STYLE if rep % 2 == 0 else ERRATIC_STYLE)
        for name in (LYING.name, WRITING.name, PLAYING.name):
            duration = float(segment_s * rng.uniform(0.8, 1.2))
            segments.append(Segment(model=_model(name),
                                    duration_s=duration, style=rep_style))
    return segments


def evaluation_script(rng: np.random.Generator,
                      blocks: int = 4,
                      base_s: float = 6.0) -> List[Segment]:
    """Realistic evaluation scenario with the paper's hard cases.

    Alternates default-style and erratic-style users, inserts short
    "thinking" stretches (brief playing between writing bouts) and short
    rests — the transitions produce the ambiguous windows that the context
    classifier gets wrong and the CQM must flag.
    """
    segments: List[Segment] = []
    for block in range(blocks):
        style = DEFAULT_STYLE if block % 2 == 0 else ERRATIC_STYLE
        segments.append(Segment(_model(WRITING.name),
                                duration_s=base_s * rng.uniform(0.9, 1.3),
                                style=style))
        # Thinking: a short burst of playing inside a writing session.
        segments.append(Segment(_model(PLAYING.name),
                                duration_s=rng.uniform(1.5, 3.0),
                                style=style))
        segments.append(Segment(_model(WRITING.name),
                                duration_s=base_s * rng.uniform(0.7, 1.1),
                                style=style))
        segments.append(Segment(_model(LYING.name),
                                duration_s=rng.uniform(2.0, 4.0),
                                style=style))
    return segments


def stress_script(rng: np.random.Generator,
                  n_segments: int = 30,
                  min_s: float = 1.0,
                  max_s: float = 4.0) -> List[Segment]:
    """Adversarial scenario of rapid random activity switches.

    Used by the large-set bench: "for a large set of data the odds for
    separating the data are worse" — rapid switching floods the data with
    transition windows.
    """
    names = [LYING.name, WRITING.name, PLAYING.name]
    segments: List[Segment] = []
    previous = None
    for _ in range(n_segments):
        choices = [n for n in names if n != previous]
        name = choices[int(rng.integers(len(choices)))]
        previous = name
        style = ERRATIC_STYLE if rng.random() < 0.5 else DEFAULT_STYLE
        segments.append(Segment(_model(name),
                                duration_s=float(rng.uniform(min_s, max_s)),
                                style=style))
    return segments
