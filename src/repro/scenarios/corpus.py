"""Feed every zoo scenario's dataset generator into the verify fuzzer.

Each registered scenario contributes one degenerate-dataset case kind:
a duration-capped render of its first sensor stream (faults and all),
reduced to ``(cues, labels)`` arrays.  The fuzzer then drives the whole
construction/filtering pipeline over data shaped by dropouts, stuck
axes, miscalibration, novel activities, etc. — exactly the streams the
zoo declares — and enforces the global contract (ReproError-only
failures, q in [0, 1] or epsilon).

Rows whose cues are non-finite (a total dropout window) are removed
before handing data to the pipeline, since the construction contract
requires finite cue vectors; if nothing survives, a small gaussian
fallback keeps the case kind exercisable.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Tuple

import numpy as np

from .activities import FAMILY_CLASSES, FAMILY_MODELS
from .registry import iter_specs
from .spec import ScenarioSpec, SegmentSpec

#: Cap on the simulated duration of one corpus render, in seconds.
MAX_CORPUS_SECONDS = 8.0

CorpusCase = Callable[[np.random.Generator],
                      Tuple[np.ndarray, np.ndarray]]


def _capped_sensor(spec: ScenarioSpec):
    """The scenario's first sensor with durations scaled to the cap."""
    sensor = spec.sensors[0]
    total = sum(seg.duration_s for seg in sensor.segments)
    if total <= MAX_CORPUS_SECONDS:
        return sensor
    factor = MAX_CORPUS_SECONDS / total
    floor = max(sensor.window / sensor.rate_hz, 0.25)
    segments = tuple(
        dataclasses.replace(seg, duration_s=max(seg.duration_s * factor,
                                                floor))
        for seg in sensor.segments)
    return dataclasses.replace(sensor, segments=segments)


def scenario_case(spec: ScenarioSpec) -> CorpusCase:
    """Build the fuzz-case generator for one scenario."""
    def generate(rng: np.random.Generator
                 ) -> Tuple[np.ndarray, np.ndarray]:
        sensor = _capped_sensor(spec)
        node = sensor.build_node()
        segments = sensor.build_segments(spec.resolved_styles(),
                                         FAMILY_MODELS[sensor.family])
        windows = node.collect(segments, rng,
                               FAMILY_CLASSES[sensor.family])
        cues = np.vstack([w.cues for w in windows])
        labels = np.array([w.true_context.index for w in windows],
                          dtype=int)
        finite = np.all(np.isfinite(cues), axis=1)
        cues, labels = cues[finite], labels[finite]
        if cues.shape[0] < 4:
            cues = rng.normal(size=(12, 3))
            labels = rng.integers(0, 3, size=12)
        return cues, labels

    return generate


def scenario_corpus() -> Dict[str, CorpusCase]:
    """Case kinds for every registered scenario, ``scenario:<name>``."""
    return {f"scenario:{spec.name}": scenario_case(spec)
            for spec in iter_specs()}
