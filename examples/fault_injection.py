#!/usr/bin/env python3
"""Fault injection and graceful ε-degradation of the quality gate.

Deployment story: the AwarePen's accelerometer bus starts losing
samples mid-session (a failing solder joint), so cue windows arrive with
NaN gaps and the CQM reports the paper's error state ε (section 2.1.3)
instead of a quality.  The appliance must decide what an ε *means* —
this example contrasts the four degradation policies on the same faulted
stream, then draws the full fault-intensity degradation curves that
extend the paper's with/without-measure comparison to noisy deployments.

Run:  python examples/fault_injection.py
"""

import numpy as np

from repro.core import DegradationPolicy, GracefulDegrader, apply_policy
from repro.datasets import generate_dataset
from repro.datasets.activities import evaluation_script
from repro.evaluation.faults import run_faults_sweep
from repro.experiment import run_awarepen_experiment
from repro.sensors import (ADXL_SENSOR, DropoutFault, FaultInjectingSensor,
                           FaultSchedule, ScheduledFault, SensorNode)


def main():
    experiment = run_awarepen_experiment(seed=7)
    threshold = experiment.threshold
    print(f"clean pipeline: s = {threshold:.3f}, evaluation accuracy "
          f"{experiment.evaluation_outcome.accuracy_before:.3f} raw -> "
          f"{experiment.evaluation_outcome.accuracy_after:.3f} gated\n")

    # --- one faulted stream: the bus dies 20 s in, recovers at 50 s ----
    schedule = FaultSchedule((
        ScheduledFault(DropoutFault(rate=0.3, gap=5),
                       start_s=20.0, end_s=50.0),
    ))
    node = SensorNode(sensor=FaultInjectingSensor(base=ADXL_SENSOR,
                                                  fault=schedule))
    stream = generate_dataset(lambda rng: evaluation_script(rng, blocks=2),
                              seed=77, node=node)
    predicted = experiment.classifier.predict_indices(stream.cues)
    qualities = experiment.augmented.quality.measure_batch(
        stream.cues, predicted.astype(float))
    correct = predicted == stream.labels
    n_eps = int(np.sum(np.isnan(qualities)))
    print(f"scheduled dropout stream: {len(stream)} windows, "
          f"{n_eps} epsilon ({n_eps / len(stream) * 100:.0f}%)\n")

    print(f"{'policy':<20} {'accepted':>8} {'abstained':>9} "
          f"{'accuracy':>9}")
    for policy in DegradationPolicy:
        degrader = GracefulDegrader(threshold=threshold, policy=policy)
        outcome, _ = apply_policy(qualities, correct, threshold=threshold,
                                  degrader=degrader)
        print(f"{policy.value:<20} {outcome.n_accepted:>8d} "
              f"{outcome.n_abstained:>9d} {outcome.accuracy_after:>9.3f}")

    # --- the full degradation surface ---------------------------------
    print("\nfault-intensity sweep (policy: reject):")
    report = run_faults_sweep(seed=7, experiment=experiment)
    print(report.to_text())


if __name__ == "__main__":
    main()
