#!/usr/bin/env python3
"""Higher-level situations from two quality-aware appliances (paper §5).

The AwarePen and the AwareChair each run their own classifier + CQM and
publish qualified context events.  A :class:`SituationDetector` fuses the
two streams — believing only sufficiently trustworthy events — into
office situations: writing-session, discussion, idle.

The scenario: an empty office, a person sits down and discusses, then
writes on the board, then leaves.

Run:  python examples/office_situations.py
"""

import numpy as np

from repro.appliances import (AwareChair, AwarePen, EventBus,
                              SITUATION_TOPIC, SituationDetector)
from repro.classifiers import NearestCentroidClassifier
from repro.core import (ConstructionConfig, QualityAugmentedClassifier,
                        build_quality_measure)
from repro.datasets.generator import generate_dataset
from repro.experiment import run_awarepen_experiment
from repro.sensors.accelerometer import ACTIVITY_MODELS
from repro.sensors.chair import AWARECHAIR_CLASSES, CHAIR_MODELS
from repro.sensors.node import Segment, SensorNode


def build_chair_pipeline():
    """Train the chair's classifier + CQM (mirrors the pen pipeline)."""

    def chair_script(rng, repetitions=4):
        segments = []
        for _ in range(repetitions):
            for name in ("empty", "sitting", "fidgeting"):
                segments.append(Segment(CHAIR_MODELS[name],
                                        duration_s=float(rng.uniform(4, 7))))
        return segments

    train = generate_dataset(chair_script, seed=90,
                             classes=AWARECHAIR_CLASSES)
    quality_train = generate_dataset(chair_script, seed=91,
                                     classes=AWARECHAIR_CLASSES)
    check = generate_dataset(lambda r: chair_script(r, repetitions=2),
                             seed=92, classes=AWARECHAIR_CLASSES)
    classifier = NearestCentroidClassifier(AWARECHAIR_CLASSES)
    classifier.fit(train.cues, train.labels)
    result = build_quality_measure(classifier, quality_train, check,
                                   config=ConstructionConfig(epochs=20))
    return QualityAugmentedClassifier(classifier, result.quality)


def main() -> None:
    pen_experiment = run_awarepen_experiment(seed=7)
    chair_augmented = build_chair_pipeline()
    print("pipelines ready: pen CQM "
          f"({pen_experiment.construction.n_rules} rules), chair CQM "
          f"({chair_augmented.quality.n_rules} rules)\n")

    bus = EventBus()
    pen = AwarePen(bus, pen_experiment.augmented)
    chair = AwareChair(bus, chair_augmented)
    detector = SituationDetector(bus, min_quality=0.3, decay=0.6)
    bus.subscribe(SITUATION_TOPIC,
                  lambda e: print(f"  t={e.time_s:6.1f}s  SITUATION -> "
                                  f"{e.context.name} "
                                  f"(confidence {e.quality:.2f})"),
                  name="console")

    # Scripted morning: empty office -> discussion -> writing -> empty.
    pen_script = [
        Segment(ACTIVITY_MODELS["lying"], duration_s=8.0),
        Segment(ACTIVITY_MODELS["lying"], duration_s=8.0),
        Segment(ACTIVITY_MODELS["writing"], duration_s=10.0),
        Segment(ACTIVITY_MODELS["lying"], duration_s=8.0),
    ]
    chair_script = [
        Segment(CHAIR_MODELS["empty"], duration_s=8.0),
        Segment(CHAIR_MODELS["fidgeting"], duration_s=8.0),
        Segment(CHAIR_MODELS["sitting"], duration_s=10.0),
        Segment(CHAIR_MODELS["empty"], duration_s=8.0),
    ]

    node = SensorNode()
    pen_windows = node.collect(pen_script, np.random.default_rng(1),
                               pen_experiment.augmented.classes)
    chair_windows = node.collect(chair_script, np.random.default_rng(2),
                                 AWARECHAIR_CLASSES)

    print("event log (situation changes only):")
    for pw, cw in zip(pen_windows, chair_windows):
        pen.process_window(pw.cues, time_s=pw.time_s)
        chair.process_window(cw.cues, time_s=cw.time_s)

    print(f"\n{detector.ignored_events} low-quality/epsilon events were "
          "ignored by the situation detector")
    final = detector.current
    if final is not None:
        print(f"final situation: {final.situation.name} "
              f"(pen={final.source_contexts['pen']}, "
              f"chair={final.source_contexts['chair']})")


if __name__ == "__main__":
    main()
