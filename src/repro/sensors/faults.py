"""Composable sensor fault injection (the ε story of paper section 2.1.3).

The normalization ``L`` defines an explicit error state ε for quality
outputs that cannot be mapped onto ``[0, 1]`` — but in a clean simulation
ε almost never occurs.  In a deployment it does: accelerometer streams
drop samples, axes freeze, ADCs saturate, radio buses burst-corrupt the
signal.  This module makes those failure modes first-class, seeded and
composable so the pipeline's behaviour *under* fault is a measurable
scenario instead of an accident:

* :class:`DropoutFault` — lost samples become NaN gaps (data that truly
  never arrived, as opposed to the sample-and-hold behaviour of
  :class:`repro.sensors.signal.FaultySensorModel`);
* :class:`StuckAtFault` — axes freeze at their last healthy value (or a
  fixed level) for the tail of the stream;
* :class:`SpikeFault` — impulsive outliers (loose wiring, ESD hits);
* :class:`NoiseBurstFault` — contiguous windows of heavy additive noise
  (motor interference, RF bursts);
* :class:`SaturationFault` — a reduced clipping range (mechanical
  over-range or a mis-configured ADC reference);
* :class:`JitterFault` — sample-timing jitter: samples swap with close
  neighbours, smearing the spectrum.

Every fault is a frozen dataclass with a ``scaled(intensity)`` view, so a
sweep over fault severity is ``fault.scaled(i) for i in grid``.  A
:class:`FaultChain` composes faults; a :class:`FaultSchedule` turns them
on and off over scenario time; and :class:`FaultInjectingSensor` wraps a
healthy :class:`~repro.sensors.signal.SensorModel` so any
:class:`~repro.sensors.node.SensorNode` can stream faulted cues without
code changes.

All randomness flows through the ``rng`` handed to :meth:`FaultModel.apply`
— the same generator discipline as the rest of the sensing substrate — so
faulted scenarios are exactly reproducible per seed.
"""

from __future__ import annotations

import abc
import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..exceptions import ConfigurationError
from .signal import ADXL_SENSOR, SensorModel


def _as_signal(signal: np.ndarray) -> np.ndarray:
    """Validate a ``(n_samples, n_axes)`` signal and return a float copy."""
    signal = np.array(signal, dtype=float)
    if signal.ndim != 2:
        raise ConfigurationError(
            f"signal must be 2-D (samples x axes), got {signal.shape}")
    return signal


def _check_unit(name: str, value: float, *, closed_top: bool = True) -> None:
    top_ok = value <= 1.0 if closed_top else value < 1.0
    if not (0.0 <= value and top_ok):
        bracket = "]" if closed_top else ")"
        raise ConfigurationError(
            f"{name} must be in [0, 1{bracket}, got {value}")


class FaultModel(abc.ABC):
    """One parametric fault applied to a ``(n_samples, n_axes)`` signal.

    Implementations never modify the input array and must tolerate being
    applied to a slice of a longer stream (the :class:`FaultSchedule`
    hands them windows).  A faulted signal may contain NaN — downstream
    cue extraction propagates the NaN and the CQM reports ε, which is
    exactly the paper's "cannot be mapped in a semantically correct way".
    """

    @abc.abstractmethod
    def apply(self, signal: np.ndarray,
              rng: np.random.Generator) -> np.ndarray:
        """Return a faulted copy of *signal*."""

    @abc.abstractmethod
    def scaled(self, intensity: float) -> "FaultModel":
        """This fault at a fraction of its configured severity.

        ``intensity`` is in ``[0, 1]``: 0 is (near-)benign, 1 is the
        configured fault unchanged.  Used by the fault-intensity sweep.
        """

    @property
    def name(self) -> str:
        """Short kebab-case identifier used in reports."""
        return type(self).__name__.replace("Fault", "").lower()


@dataclasses.dataclass(frozen=True)
class DropoutFault(FaultModel):
    """Samples lost in transit become NaN across all axes.

    Parameters
    ----------
    rate:
        Per-sample loss probability in ``[0, 1)``.
    gap:
        Minimum run length of each loss event in samples; losses come in
        bursts of at least this length (a dying bus loses stretches, not
        isolated samples).
    """

    rate: float = 0.2
    gap: int = 3

    def __post_init__(self) -> None:
        _check_unit("rate", self.rate, closed_top=False)
        if self.gap < 1:
            raise ConfigurationError(f"gap must be >= 1, got {self.gap}")

    def apply(self, signal: np.ndarray,
              rng: np.random.Generator) -> np.ndarray:
        out = _as_signal(signal)
        n = out.shape[0]
        if self.rate <= 0.0 or n == 0:
            return out
        # Seed gaps so the expected lost fraction matches ``rate``.
        starts = rng.random(n) < self.rate / self.gap
        lost = np.zeros(n, dtype=bool)
        for offset in range(self.gap):
            lost[offset:] |= starts[:n - offset]
        out[lost] = np.nan
        return out

    def scaled(self, intensity: float) -> "DropoutFault":
        _check_unit("intensity", intensity)
        return dataclasses.replace(self, rate=self.rate * intensity)


@dataclasses.dataclass(frozen=True)
class StuckAtFault(FaultModel):
    """Axes freeze for the last ``fraction`` of the stream.

    Parameters
    ----------
    fraction:
        Fraction of the stream (from the tail) that is stuck.
    axes:
        Affected axis indices (default: all axes).
    level:
        Value the stuck axes hold; ``None`` holds the last healthy
        sample (frozen ADC), a float models a rail-stuck output.
    """

    fraction: float = 0.5
    axes: Optional[Tuple[int, ...]] = None
    level: Optional[float] = None

    def __post_init__(self) -> None:
        _check_unit("fraction", self.fraction)

    def apply(self, signal: np.ndarray,
              rng: np.random.Generator) -> np.ndarray:
        out = _as_signal(signal)
        n, n_axes = out.shape
        onset = n - int(round(self.fraction * n))
        if onset >= n:
            return out
        affected = (tuple(range(n_axes)) if self.axes is None
                    else tuple(self.axes))
        for axis in affected:
            if not 0 <= axis < n_axes:
                raise ConfigurationError(
                    f"stuck axis {axis} outside 0..{n_axes - 1}")
            held = (out[onset, axis] if self.level is None
                    else float(self.level))
            out[onset:, axis] = held
        return out

    def scaled(self, intensity: float) -> "StuckAtFault":
        _check_unit("intensity", intensity)
        return dataclasses.replace(self, fraction=self.fraction * intensity)


@dataclasses.dataclass(frozen=True)
class SpikeFault(FaultModel):
    """Impulsive outliers added to random samples.

    Parameters
    ----------
    rate:
        Per-sample spike probability.
    magnitude:
        Spike amplitude in g; each spike is ``+-magnitude`` with random
        sign, on one random axis.
    """

    rate: float = 0.02
    magnitude: float = 4.0

    def __post_init__(self) -> None:
        _check_unit("rate", self.rate, closed_top=False)
        if self.magnitude <= 0:
            raise ConfigurationError(
                f"magnitude must be > 0, got {self.magnitude}")

    def apply(self, signal: np.ndarray,
              rng: np.random.Generator) -> np.ndarray:
        out = _as_signal(signal)
        n, n_axes = out.shape
        if self.rate <= 0.0 or n == 0:
            return out
        hit = np.flatnonzero(rng.random(n) < self.rate)
        axes = rng.integers(0, n_axes, size=hit.size)
        signs = rng.choice((-1.0, 1.0), size=hit.size)
        out[hit, axes] += signs * self.magnitude
        return out

    def scaled(self, intensity: float) -> "SpikeFault":
        _check_unit("intensity", intensity)
        return dataclasses.replace(self, rate=self.rate * intensity)


@dataclasses.dataclass(frozen=True)
class NoiseBurstFault(FaultModel):
    """Contiguous windows of heavy additive Gaussian noise.

    Parameters
    ----------
    fraction:
        Total fraction of the stream covered by bursts.
    noise_std:
        Noise standard deviation inside a burst, in g.
    n_bursts:
        Number of bursts the covered fraction is split into.
    """

    fraction: float = 0.4
    noise_std: float = 0.5
    n_bursts: int = 3

    def __post_init__(self) -> None:
        _check_unit("fraction", self.fraction)
        if self.noise_std <= 0:
            raise ConfigurationError(
                f"noise_std must be > 0, got {self.noise_std}")
        if self.n_bursts < 1:
            raise ConfigurationError(
                f"n_bursts must be >= 1, got {self.n_bursts}")

    def apply(self, signal: np.ndarray,
              rng: np.random.Generator) -> np.ndarray:
        out = _as_signal(signal)
        n, n_axes = out.shape
        burst_len = int(round(self.fraction * n / self.n_bursts))
        if burst_len < 1 or n == 0:
            return out
        for _ in range(self.n_bursts):
            start = int(rng.integers(0, max(1, n - burst_len + 1)))
            stop = min(n, start + burst_len)
            out[start:stop] += rng.normal(
                0.0, self.noise_std, size=(stop - start, n_axes))
        return out

    def scaled(self, intensity: float) -> "NoiseBurstFault":
        _check_unit("intensity", intensity)
        return dataclasses.replace(self, fraction=self.fraction * intensity)


@dataclasses.dataclass(frozen=True)
class SaturationFault(FaultModel):
    """Clipping at a reduced full-scale range.

    The effective clip limit interpolates from ``full_scale`` (severity 0,
    the healthy part) down to ``min_limit`` (severity 1): a severely
    saturated stream flattens every active window toward identical cues.

    Parameters
    ----------
    severity:
        How far toward ``min_limit`` the range shrinks, in ``[0, 1]``.
    full_scale:
        Healthy clip magnitude in g.
    min_limit:
        Clip magnitude at full severity.
    """

    severity: float = 1.0
    full_scale: float = 2.0
    min_limit: float = 0.15

    def __post_init__(self) -> None:
        _check_unit("severity", self.severity)
        if not 0 < self.min_limit <= self.full_scale:
            raise ConfigurationError(
                f"need 0 < min_limit <= full_scale, got "
                f"min_limit={self.min_limit}, full_scale={self.full_scale}")

    @property
    def limit(self) -> float:
        """Effective clip magnitude at the configured severity."""
        return (self.full_scale
                - self.severity * (self.full_scale - self.min_limit))

    def apply(self, signal: np.ndarray,
              rng: np.random.Generator) -> np.ndarray:
        out = _as_signal(signal)
        np.clip(out, -self.limit, self.limit, out=out)
        return out

    def scaled(self, intensity: float) -> "SaturationFault":
        _check_unit("intensity", intensity)
        return dataclasses.replace(self, severity=self.severity * intensity)


@dataclasses.dataclass(frozen=True)
class JitterFault(FaultModel):
    """Sample-timing jitter: samples swap with nearby neighbours.

    Parameters
    ----------
    rate:
        Per-sample probability of being read at a jittered time.
    max_shift:
        Maximum displacement in samples (either direction).
    """

    rate: float = 0.5
    max_shift: int = 4

    def __post_init__(self) -> None:
        _check_unit("rate", self.rate)
        if self.max_shift < 1:
            raise ConfigurationError(
                f"max_shift must be >= 1, got {self.max_shift}")

    def apply(self, signal: np.ndarray,
              rng: np.random.Generator) -> np.ndarray:
        out = _as_signal(signal)
        n = out.shape[0]
        if self.rate <= 0.0 or n == 0:
            return out
        jittered = rng.random(n) < self.rate
        shifts = rng.integers(-self.max_shift, self.max_shift + 1, size=n)
        index = np.arange(n)
        index[jittered] = np.clip(index[jittered] + shifts[jittered],
                                  0, n - 1)
        return out[index]

    def scaled(self, intensity: float) -> "JitterFault":
        _check_unit("intensity", intensity)
        return dataclasses.replace(self, rate=self.rate * intensity)


@dataclasses.dataclass(frozen=True)
class MiscalibrationFault(FaultModel):
    """A mis-calibrated signal chain: wrong gain and a constant offset.

    Models a part whose sensitivity drifted from its datasheet value (or
    whose calibration constants were written for a different batch): the
    whole stream is scaled by ``gain`` and shifted by ``offset``.  Unlike
    the stochastic faults this one is deterministic — the same window
    always miscalibrates the same way — which is exactly what makes it
    insidious: every cue is consistently, quietly wrong.

    Parameters
    ----------
    gain:
        Multiplicative sensitivity error (1.0 is healthy); must be > 0.
    offset:
        Additive bias in g applied to all axes.
    """

    gain: float = 1.5
    offset: float = 0.1

    def __post_init__(self) -> None:
        if self.gain <= 0:
            raise ConfigurationError(
                f"gain must be > 0, got {self.gain}")

    def apply(self, signal: np.ndarray,
              rng: np.random.Generator) -> np.ndarray:
        out = _as_signal(signal)
        return out * self.gain + self.offset

    def scaled(self, intensity: float) -> "MiscalibrationFault":
        _check_unit("intensity", intensity)
        return dataclasses.replace(
            self,
            gain=1.0 + (self.gain - 1.0) * intensity,
            offset=self.offset * intensity)


@dataclasses.dataclass(frozen=True)
class FaultChain(FaultModel):
    """Faults applied in sequence (left to right) to the whole stream."""

    faults: Tuple[FaultModel, ...]

    def __post_init__(self) -> None:
        if not self.faults:
            raise ConfigurationError("fault chain needs >= 1 fault")

    def apply(self, signal: np.ndarray,
              rng: np.random.Generator) -> np.ndarray:
        out = _as_signal(signal)
        for fault in self.faults:
            out = fault.apply(out, rng)
        return out

    def scaled(self, intensity: float) -> "FaultChain":
        return FaultChain(tuple(f.scaled(intensity) for f in self.faults))

    @property
    def name(self) -> str:
        return "+".join(f.name for f in self.faults)


@dataclasses.dataclass(frozen=True)
class ScheduledFault:
    """One fault active during ``[start_s, end_s)`` of scenario time."""

    fault: FaultModel
    start_s: float = 0.0
    end_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.start_s < 0:
            raise ConfigurationError(
                f"start_s must be >= 0, got {self.start_s}")
        if self.end_s is not None and self.end_s <= self.start_s:
            raise ConfigurationError(
                f"end_s must be > start_s, got [{self.start_s}, {self.end_s})")

    def active_at(self, t_s: float) -> bool:
        """Whether the fault is active at scenario time *t_s*."""
        return (t_s >= self.start_s
                and (self.end_s is None or t_s < self.end_s))


@dataclasses.dataclass(frozen=True)
class FaultSchedule:
    """Faults turning on and off over scenario time.

    Each entry's fault is applied to the sample slice its time window
    covers; entries apply **strictly in entry order**, so overlapping
    windows compose like a :class:`FaultChain` over the overlap: the
    second entry sees (and further degrades) the first entry's output.
    This order is part of the schedule's contract — swapping two
    overlapping entries is a different schedule (pinned by the
    composition-order regression tests) — so scenarios that declare
    several concurrent faults are exactly reproducible.
    """

    entries: Tuple[ScheduledFault, ...]

    def __post_init__(self) -> None:
        if not self.entries:
            raise ConfigurationError("fault schedule needs >= 1 entry")

    @classmethod
    def merged(cls, schedules: Sequence["FaultSchedule"]) -> "FaultSchedule":
        """Compose several schedules into one, schedule-major.

        The merged entry order is deterministic: all entries of the
        first schedule (in their order), then all entries of the second,
        and so on.  Where two schedules overlap the same time window the
        earlier schedule's faults therefore apply first and the later
        schedule's faults degrade their output — the same left-to-right
        composition a :class:`FaultChain` uses.
        """
        if not schedules:
            raise ConfigurationError("merged() needs >= 1 schedule")
        entries: List[ScheduledFault] = []
        for schedule in schedules:
            entries.extend(schedule.entries)
        return cls(entries=tuple(entries))

    def faults_at(self, t_s: float) -> List[FaultModel]:
        """Every fault active at scenario time *t_s*, in entry order."""
        return [e.fault for e in self.entries if e.active_at(t_s)]

    def apply(self, signal: np.ndarray, rng: np.random.Generator,
              rate_hz: float) -> np.ndarray:
        """Fault-inject *signal* sampled at *rate_hz*."""
        if rate_hz <= 0:
            raise ConfigurationError(f"rate_hz must be > 0, got {rate_hz}")
        out = _as_signal(signal)
        n = out.shape[0]
        for entry in self.entries:
            start = min(n, int(round(entry.start_s * rate_hz)))
            stop = (n if entry.end_s is None
                    else min(n, int(round(entry.end_s * rate_hz))))
            if start < stop:
                out[start:stop] = entry.fault.apply(out[start:stop], rng)
        return out

    def scaled(self, intensity: float) -> "FaultSchedule":
        """Every scheduled fault scaled to *intensity*."""
        return FaultSchedule(tuple(
            dataclasses.replace(e, fault=e.fault.scaled(intensity))
            for e in self.entries))


@dataclasses.dataclass(frozen=True)
class FaultInjectingSensor:
    """A :class:`SensorModel`-compatible wrapper that injects faults.

    Drop-in for the ``sensor=`` argument of
    :class:`~repro.sensors.node.SensorNode`: the healthy imperfection
    model runs first (noise, bias walk, quantization), then the fault —
    mirroring a physically degraded part feeding an otherwise healthy
    signal chain.

    Parameters
    ----------
    base:
        Healthy degradation model applied before the fault.
    fault:
        A :class:`FaultModel` applied to the whole stream, or a
        :class:`FaultSchedule` applied over scenario time.
    rate_hz:
        Sampling rate used to convert schedule times to samples; must
        match the node's rate when a schedule is used.
    """

    base: SensorModel = ADXL_SENSOR
    fault: Union[FaultModel, FaultSchedule, None] = None
    rate_hz: float = 100.0

    def __post_init__(self) -> None:
        if self.rate_hz <= 0:
            raise ConfigurationError(
                f"rate_hz must be > 0, got {self.rate_hz}")

    def apply(self, ideal: np.ndarray,
              rng: np.random.Generator) -> np.ndarray:
        """Degrade then fault-inject an ideal signal."""
        out = self.base.apply(ideal, rng)
        if self.fault is None:
            return out
        if isinstance(self.fault, FaultSchedule):
            return self.fault.apply(out, rng, self.rate_hz)
        return self.fault.apply(out, rng)


def standard_fault_suite() -> Dict[str, FaultModel]:
    """The named full-intensity faults the degradation sweep runs over.

    Values are the ``intensity = 1.0`` configurations; sweep cells call
    ``fault.scaled(intensity)`` to move along the severity axis.
    """
    return {
        "dropout": DropoutFault(rate=0.35, gap=5),
        "stuck": StuckAtFault(fraction=0.6),
        "spikes": SpikeFault(rate=0.06, magnitude=3.0),
        "noise-burst": NoiseBurstFault(fraction=0.6, noise_std=0.6),
        "saturation": SaturationFault(severity=1.0),
        "jitter": JitterFault(rate=0.8, max_shift=6),
    }
