"""Defuzzification methods for Mamdani output fuzzy sets.

These operate on a sampled output universe ``x`` and an aggregated
membership curve ``mu`` (both 1-D arrays of equal length).  The TSK systems
in :mod:`repro.fuzzy.tsk` do not need these — their weighted sum average is
a built-in defuzzifier — but the Mamdani substrate and ablations do.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from ..exceptions import ConfigurationError, DimensionError

#: numpy renamed trapz -> trapezoid in 2.0.
_trapz = getattr(np, "trapezoid", None) or np.trapz


def _validate(x: np.ndarray, mu: np.ndarray) -> None:
    x = np.asarray(x, dtype=float)
    mu = np.asarray(mu, dtype=float)
    if x.ndim != 1 or mu.ndim != 1:
        raise DimensionError("x and mu must be 1-D arrays")
    if x.shape != mu.shape:
        raise DimensionError(
            f"x shape {x.shape} and mu shape {mu.shape} must match")
    if x.size < 2:
        raise DimensionError("need at least two sample points")
    if np.any(mu < -1e-12):
        raise ConfigurationError("membership values must be non-negative")


def centroid(x: np.ndarray, mu: np.ndarray) -> float:
    """Center of area: ``integral(x mu) / integral(mu)``."""
    _validate(x, mu)
    x = np.asarray(x, dtype=float)
    mu = np.clip(np.asarray(mu, dtype=float), 0.0, None)
    area = _trapz(mu, x)
    if area <= 0.0:
        raise ConfigurationError(
            "cannot defuzzify an all-zero membership curve")
    return float(_trapz(mu * x, x) / area)


def bisector(x: np.ndarray, mu: np.ndarray) -> float:
    """The abscissa splitting the area under *mu* into two equal halves."""
    _validate(x, mu)
    x = np.asarray(x, dtype=float)
    mu = np.clip(np.asarray(mu, dtype=float), 0.0, None)
    # Cumulative area via trapezoids between consecutive samples.
    seg = 0.5 * (mu[1:] + mu[:-1]) * np.diff(x)
    total = np.sum(seg)
    if total <= 0.0:
        raise ConfigurationError(
            "cannot defuzzify an all-zero membership curve")
    cumulative = np.concatenate([[0.0], np.cumsum(seg)])
    half = total / 2.0
    idx = int(np.searchsorted(cumulative, half))
    idx = min(max(idx, 1), len(x) - 1)
    # Linearly interpolate inside the segment containing the half-area point.
    span = cumulative[idx] - cumulative[idx - 1]
    frac = 0.5 if span <= 0 else (half - cumulative[idx - 1]) / span
    return float(x[idx - 1] + frac * (x[idx] - x[idx - 1]))


def mean_of_maximum(x: np.ndarray, mu: np.ndarray) -> float:
    """Mean of the abscissas attaining the maximal membership."""
    _validate(x, mu)
    mu = np.asarray(mu, dtype=float)
    peak = np.max(mu)
    if peak <= 0.0:
        raise ConfigurationError(
            "cannot defuzzify an all-zero membership curve")
    mask = np.isclose(mu, peak)
    return float(np.mean(np.asarray(x, dtype=float)[mask]))


def smallest_of_maximum(x: np.ndarray, mu: np.ndarray) -> float:
    """Smallest abscissa attaining the maximal membership."""
    _validate(x, mu)
    mu = np.asarray(mu, dtype=float)
    peak = np.max(mu)
    if peak <= 0.0:
        raise ConfigurationError(
            "cannot defuzzify an all-zero membership curve")
    return float(np.asarray(x, dtype=float)[np.isclose(mu, peak)][0])


def largest_of_maximum(x: np.ndarray, mu: np.ndarray) -> float:
    """Largest abscissa attaining the maximal membership."""
    _validate(x, mu)
    mu = np.asarray(mu, dtype=float)
    peak = np.max(mu)
    if peak <= 0.0:
        raise ConfigurationError(
            "cannot defuzzify an all-zero membership curve")
    return float(np.asarray(x, dtype=float)[np.isclose(mu, peak)][-1])


DEFUZZIFIERS: Dict[str, Callable[[np.ndarray, np.ndarray], float]] = {
    "centroid": centroid,
    "bisector": bisector,
    "mom": mean_of_maximum,
    "som": smallest_of_maximum,
    "lom": largest_of_maximum,
}


def get_defuzzifier(name: str) -> Callable[[np.ndarray, np.ndarray], float]:
    """Look up a defuzzifier by name."""
    try:
        return DEFUZZIFIERS[name]
    except KeyError:
        raise KeyError(
            f"unknown defuzzifier {name!r}; options: "
            f"{sorted(DEFUZZIFIERS)}") from None
