"""Fixtures for the observability suite."""

import pytest

from repro import observability as obs


@pytest.fixture(autouse=True)
def clean_observability_state():
    """Every test starts and ends with instrumentation off and empty."""
    prior = (obs.STATE.enabled, obs.STATE.registry, obs.STATE.tracer)
    obs.disable()
    obs.STATE.registry = obs.MetricsRegistry()
    obs.STATE.tracer = obs.Tracer()
    yield
    obs.STATE.enabled, obs.STATE.registry, obs.STATE.tracer = prior
