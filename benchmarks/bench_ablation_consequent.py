"""Experiment ``conseq-linear`` — constant vs linear TSK consequents.

Paper 2.1.2: "In our system the linear functional consequence is used,
since the results for the reliability determination are better."  This
ablation builds the quality FIS with zero-order (constant) and first-order
(linear) consequents and compares check-set RMSE and ranking quality.
"""

import numpy as np

from repro.core import (ConstructionConfig, QualityAugmentedClassifier,
                        build_quality_measure, calibrate)
from repro.core.construction import quality_training_data
from repro.stats.metrics import auc


def _build(experiment, order):
    material = experiment.material
    result = build_quality_measure(
        experiment.classifier, material.quality_train,
        material.quality_check,
        config=ConstructionConfig(order=order, epochs=40))
    return result


def _check_rmse(experiment, result):
    material = experiment.material
    v_check, y_check, _ = quality_training_data(
        experiment.classifier, material.quality_check)
    predictions = result.quality.system.evaluate(v_check)
    return float(np.sqrt(np.mean((predictions - y_check) ** 2)))


def _analysis_auc(experiment, result):
    augmented = QualityAugmentedClassifier(experiment.classifier,
                                           result.quality)
    cal = calibrate(augmented, experiment.material.analysis)
    usable = cal.data.usable
    return auc(cal.data.qualities[usable], cal.data.correct[usable])


def test_linear_consequents_better(benchmark, experiment, report):
    linear = benchmark(_build, experiment, 1)
    constant = _build(experiment, 0)

    rmse_linear = _check_rmse(experiment, linear)
    rmse_constant = _check_rmse(experiment, constant)
    auc_linear = _analysis_auc(experiment, linear)
    auc_constant = _analysis_auc(experiment, constant)

    report.row("conseq-linear", "check RMSE (linear)", "lower", rmse_linear)
    report.row("conseq-linear", "check RMSE (constant)", "higher",
               rmse_constant)
    report.row("conseq-linear", "analysis AUC (linear)", "better",
               auc_linear)
    report.row("conseq-linear", "analysis AUC (constant)", "worse",
               auc_constant)

    # The paper's claim, allowing simulator noise: linear never loses on
    # fit quality by a meaningful margin.
    assert rmse_linear <= rmse_constant + 0.02
    assert auc_linear >= auc_constant - 0.05
