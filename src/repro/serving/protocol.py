"""Request/response records and the JSONL wire format of the service.

One :class:`ServeRequest` is the serving-boundary form of the paper's
quality input vector ``v_Q = (v_1, ..., v_n, c)``: the cue vector plus —
optionally — a class identifier produced by an external black box.  When
``class_index`` is omitted the service runs the registered classifier
itself, mirroring :class:`repro.core.interconnection.
QualityAugmentedClassifier`.

A :class:`ServeResponse` carries everything the appliance needs to act:
the (possibly classifier-produced) class, the CQM ``q`` (``None`` is the
paper's error state ε), the gate's :class:`~repro.core.degradation.
GateAction` under the configured ε-policy, and the provenance fields
that make serving auditable — the package version that produced the
answer, the micro-batch size it rode in, and whether admission control
shed it before it ever reached a model.

Both records round-trip through single-line JSON so ``repro serve`` can
speak JSONL over stdin/stdout or a TCP socket with no framing beyond
newlines.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, Optional

import numpy as np

from ..core.degradation import GateAction
from ..exceptions import ConfigurationError

#: Wire format tag included in every serialized line.
WIRE_VERSION = 1


@dataclasses.dataclass(frozen=True)
class ServeRequest:
    """One inference request entering the service.

    Attributes
    ----------
    request_id:
        Caller-chosen correlation id echoed back on the response.
    cues:
        The cue vector ``v_C``.
    class_index:
        Optional externally produced class identifier ``c``; when
        ``None`` the service's registered classifier predicts it.
    stream_key:
        Optional stable stream identity (appliance id, user id).  The
        sharded router consistent-hashes it so every request of one
        stream lands on the same shard (and therefore the same stateful
        ε-gate); without it, routing falls back to the request id.  The
        single-process service ignores it.
    """

    request_id: int
    cues: np.ndarray
    class_index: Optional[int] = None
    stream_key: Optional[str] = None

    def __post_init__(self) -> None:
        cues = np.asarray(self.cues, dtype=float).ravel()
        object.__setattr__(self, "cues", cues)
        if cues.size == 0:
            raise ConfigurationError(
                f"request {self.request_id} has an empty cue vector")

    def to_json(self) -> str:
        doc: Dict[str, object] = {"id": int(self.request_id),
                                  "cues": self.cues.tolist()}
        if self.class_index is not None:
            doc["class_index"] = int(self.class_index)
        if self.stream_key is not None:
            doc["key"] = self.stream_key
        return json.dumps(doc)

    @classmethod
    def from_json(cls, line: str) -> "ServeRequest":
        try:
            doc = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"request line is not valid JSON: {line!r}") from exc
        if not isinstance(doc, dict) or "cues" not in doc:
            raise ConfigurationError(
                f"request line must be an object with 'cues': {line!r}")
        class_index = doc.get("class_index")
        stream_key = doc.get("key")
        try:
            request_id = int(doc.get("id", 0))
            cues = np.asarray(doc["cues"], dtype=float)
            class_index = (None if class_index is None
                           else int(class_index))
            if stream_key is not None and not isinstance(
                    stream_key, (str, int)):
                raise ValueError("stream key must be a string or int")
            stream_key = None if stream_key is None else str(stream_key)
        except (TypeError, ValueError) as exc:
            # Non-numeric ids, ragged or non-numeric cue payloads: a
            # malformed frame must surface as a protocol error, never as
            # a bare NumPy/int conversion crash.
            raise ConfigurationError(
                f"request fields are malformed: {line!r}") from exc
        return cls(request_id=request_id, cues=cues,
                   class_index=class_index, stream_key=stream_key)


@dataclasses.dataclass(frozen=True)
class ServeResponse:
    """One gated inference result leaving the service.

    ``shed=True`` marks a request refused by admission control: it never
    reached a model, its quality is the error state ε (``None``) and its
    ``package_version`` is ``None`` — the serving-layer analogue of the
    paper's "no semantically correct statement about the quality is
    possible".  Every non-shed response is attributable to exactly one
    package version.
    """

    request_id: int
    class_index: Optional[int]
    class_name: Optional[str]
    quality: Optional[float]
    action: GateAction
    degraded: bool
    shed: bool
    package_version: Optional[int]
    batch_size: int
    latency_s: float

    @property
    def is_error_state(self) -> bool:
        """Whether the CQM reported ε for this response."""
        return self.quality is None

    @property
    def accepted(self) -> bool:
        return self.action is GateAction.ACCEPT

    def key(self) -> tuple:
        """The deterministic fields, for equivalence comparisons.

        Excludes ``latency_s``, ``batch_size`` and ``package_version`` —
        scheduling-dependent provenance that may legitimately differ
        between two runs producing the same answers.
        """
        return (self.request_id, self.class_index, self.quality,
                self.action, self.degraded, self.shed)

    def to_json(self) -> str:
        doc: Dict[str, object] = {
            "wire": WIRE_VERSION,
            "id": int(self.request_id),
            "class_index": self.class_index,
            "class": self.class_name,
            "q": self.quality,
            "action": self.action.value,
            "degraded": self.degraded,
            "shed": self.shed,
            "version": self.package_version,
            "batch_size": int(self.batch_size),
            "latency_ms": round(self.latency_s * 1e3, 4),
        }
        return json.dumps(doc)

    @classmethod
    def from_json(cls, line: str) -> "ServeResponse":
        try:
            doc = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"response line is not valid JSON: {line!r}") from exc
        return cls(
            request_id=int(doc["id"]),
            class_index=(None if doc.get("class_index") is None
                         else int(doc["class_index"])),
            class_name=doc.get("class"),
            quality=None if doc.get("q") is None else float(doc["q"]),
            action=GateAction(doc["action"]),
            degraded=bool(doc["degraded"]),
            shed=bool(doc["shed"]),
            package_version=(None if doc.get("version") is None
                             else int(doc["version"])),
            batch_size=int(doc.get("batch_size", 1)),
            latency_s=float(doc.get("latency_ms", 0.0)) / 1e3,
        )
