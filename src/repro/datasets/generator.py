"""Dataset generation for the AwarePen experiments.

Couples the sensing substrate (scenario scripts → sensor node → cue
windows) into plain arrays, and assembles the paper's full experimental
material: a training set, a check set for early stopping, an *analysis*
set with correctness labels for the MLE (the "second data set different
from the training set", section 2.3.1), and the small evaluation set —
24 points in the paper's Fig. 5.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..exceptions import ConfigurationError, EmptyDatasetError
from ..sensors.accelerometer import AWAREPEN_CLASSES
from ..sensors.node import CueWindow, Segment, SensorNode
from ..types import ContextClass
from .activities import evaluation_script, training_script


@dataclasses.dataclass(frozen=True)
class WindowDataset:
    """Plain-array dataset of cue windows with ground truth."""

    cues: np.ndarray           # (n, d)
    labels: np.ndarray         # (n,) true class indices
    transition: np.ndarray     # (n,) bool: ambiguous/transition windows
    classes: Sequence[ContextClass]

    def __post_init__(self) -> None:
        if self.cues.ndim != 2:
            raise ConfigurationError(
                f"cues must be 2-D, got shape {self.cues.shape}")
        n = self.cues.shape[0]
        if self.labels.shape != (n,) or self.transition.shape != (n,):
            raise ConfigurationError("labels/transition must align with cues")

    def __len__(self) -> int:
        return self.cues.shape[0]

    def subset(self, indices: np.ndarray) -> "WindowDataset":
        """Row-subset view (copies) of the dataset."""
        indices = np.asarray(indices, dtype=int)
        return WindowDataset(cues=self.cues[indices],
                             labels=self.labels[indices],
                             transition=self.transition[indices],
                             classes=self.classes)

    def class_counts(self) -> dict:
        """Mapping class name -> sample count."""
        out = {}
        for cls in self.classes:
            out[cls.name] = int(np.sum(self.labels == cls.index))
        return out


def windows_to_dataset(windows: List[CueWindow],
                       classes: Sequence[ContextClass]) -> WindowDataset:
    """Convert streamed :class:`CueWindow` objects into arrays."""
    if not windows:
        raise EmptyDatasetError("no windows to convert")
    cues = np.vstack([w.cues for w in windows])
    labels = np.array([w.true_context.index for w in windows], dtype=int)
    transition = np.array([w.is_transition for w in windows], dtype=bool)
    return WindowDataset(cues=cues, labels=labels, transition=transition,
                         classes=tuple(classes))


def generate_dataset(script: Callable[[np.random.Generator], List[Segment]],
                     seed: int, node: Optional[SensorNode] = None,
                     classes: Sequence[ContextClass] = AWAREPEN_CLASSES
                     ) -> WindowDataset:
    """Render one scripted scenario into a :class:`WindowDataset`."""
    rng = np.random.default_rng(seed)
    sensor_node = node if node is not None else SensorNode()
    windows = sensor_node.collect(script(rng), rng, classes)
    return windows_to_dataset(windows, classes)


@dataclasses.dataclass(frozen=True)
class AwarePenMaterial:
    """All data roles of the paper's experiment, disjointly generated.

    Attributes
    ----------
    classifier_train:
        Clean recordings used to pre-train the context classifier.
    quality_train:
        Realistic scenario for training the quality FIS (inputs ``v_Q``
        with designated outputs 1/0 come from classifying these windows).
    quality_check:
        Check set for hybrid-learning early stopping.
    analysis:
        The "second data set" for the MLE / threshold statistics.
    evaluation:
        The small test set (24 windows in the paper's Fig. 5).
    """

    classifier_train: WindowDataset
    quality_train: WindowDataset
    quality_check: WindowDataset
    analysis: WindowDataset
    evaluation: WindowDataset
    classes: Sequence[ContextClass]


def make_awarepen_material(seed: int = 7,
                           evaluation_size: int = 24,
                           node: Optional[SensorNode] = None,
                           quality_blocks: int = 6,
                           analysis_blocks: int = 4
                           ) -> AwarePenMaterial:
    """Generate the complete, disjoint experimental material.

    Every role uses an independent seeded scenario so that no window is
    shared between roles (the paper stresses the analysis set must differ
    from the training set).  *evaluation_size* windows are drawn from a
    realistic evaluation scenario; the paper used 24.
    """
    if evaluation_size < 4:
        raise ConfigurationError(
            f"evaluation_size must be >= 4, got {evaluation_size}")
    sensor_node = node if node is not None else SensorNode()

    classifier_train = generate_dataset(
        lambda rng: training_script(rng, repetitions=6),
        seed=seed, node=sensor_node)
    quality_train = generate_dataset(
        lambda rng: evaluation_script(rng, blocks=quality_blocks),
        seed=seed + 1, node=sensor_node)
    quality_check = generate_dataset(
        lambda rng: evaluation_script(rng, blocks=max(2, quality_blocks // 2)),
        seed=seed + 2, node=sensor_node)
    analysis = generate_dataset(
        lambda rng: evaluation_script(rng, blocks=analysis_blocks),
        seed=seed + 3, node=sensor_node)

    evaluation_full = generate_dataset(
        lambda rng: evaluation_script(rng, blocks=4),
        seed=seed + 4, node=sensor_node)
    if len(evaluation_full) < evaluation_size:
        raise EmptyDatasetError(
            f"evaluation scenario produced {len(evaluation_full)} windows, "
            f"need {evaluation_size}; lengthen the scenario")
    pick_rng = np.random.default_rng(seed + 5)
    picked = np.sort(pick_rng.choice(len(evaluation_full),
                                     size=evaluation_size, replace=False))
    evaluation = evaluation_full.subset(picked)

    return AwarePenMaterial(
        classifier_train=classifier_train,
        quality_train=quality_train,
        quality_check=quality_check,
        analysis=analysis,
        evaluation=evaluation,
        classes=tuple(AWAREPEN_CLASSES),
    )
