"""Failure-domain drills: prove convergence under injected failures.

A drill is an executable claim about the bus: *kill a partition
mid-stream, mangle frames on the wire, and the appliances still end in
exactly the state of a clean run* — because delivery is at-least-once
(acks + retry + partition revive) and consumers dedupe on
``(source, seq)``.  Two drills:

* :func:`run_inproc_fault_drill` — single process, deterministic, no
  wall clock: a scripted pen-event stream drives a whiteboard camera
  once over a plain :class:`~repro.appliances.bus.EventBus` (the clean
  baseline) and once over the broker with a
  :class:`~repro.bus.faults.FaultyChannel` dropping, duplicating and
  delaying frames plus a partition kill/revive in the middle.  The two
  runs' golden traces must be identical, and the replayed event log
  must reproduce them.
* :func:`run_network_drill` — a real TCP broker, publisher OS
  *processes*, a consumer holding its acks so the kill provably loses
  inflight frames; asserts zero loss after redelivery and that
  ``replay_log`` diverges nowhere.  This is the CI smoke.

Both return a :class:`DrillReport` whose counters show the faults
actually fired (a drill that never dropped anything proves nothing).
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import pathlib
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..appliances.bus import EventBus
from ..appliances.camera import WhiteboardCamera
from ..appliances.messages import ContextEvent
from ..core.filtering import QualityFilter
from ..exceptions import BusError, ConfigurationError
from ..sensors.accelerometer import AWAREPEN_CLASSES, WRITING
from ..verify.golden import diff_traces
from .broker import BrokerCore, BusConfig, partition_for
from .client import BusClient, InProcLink, SocketLink
from .faults import (FaultyChannel, FrameFault, FrameFaultSchedule,
                     ScheduledFrameFault)
from .replay import RunMeta, capture_bus_trace, replay_log
from .server import BrokerServer

PEN_TOPIC = "context.pen"


@dataclasses.dataclass(frozen=True)
class DrillReport:
    """Outcome and evidence of one failure-domain drill."""

    name: str
    n_events: int
    n_delivered: int
    n_redelivered: int
    dedupe_dropped: int
    lost_inflight: int
    fault_counters: Dict[str, int]
    converged: bool
    replay_passed: bool
    first_diverging_stage: Optional[str] = None

    @property
    def passed(self) -> bool:
        return self.converged and self.replay_passed

    def to_dict(self) -> Dict[str, object]:
        payload = dataclasses.asdict(self)
        payload["passed"] = self.passed
        return payload

    def to_text(self) -> str:
        lines = [
            f"drill {self.name}: {'PASS' if self.passed else 'FAIL'}",
            f"  events: {self.n_events} published, "
            f"{self.n_delivered} delivered, "
            f"{self.n_redelivered} redelivered, "
            f"{self.dedupe_dropped} duplicates deduped",
            f"  failures injected: {self.lost_inflight} inflight lost, "
            + ", ".join(f"{k}={v}" for k, v in
                        sorted(self.fault_counters.items())),
            f"  converged to clean state: {self.converged}",
            f"  log replay identical: {self.replay_passed}"
            + (f" (diverges at {self.first_diverging_stage})"
               if not self.replay_passed else ""),
        ]
        return "\n".join(lines)


class _Recorder:
    """A subscriber that just remembers what it was handed."""

    def __init__(self) -> None:
        self.events: List[ContextEvent] = []

    def __call__(self, event: ContextEvent) -> None:
        self.events.append(event)


def scripted_pen_events(seed: int, n_events: int,
                        source: str = "awarepen",
                        topic: str = PEN_TOPIC) -> List[ContextEvent]:
    """A deterministic pen-event stream for drills and the CLI.

    Alternates writing bursts with other contexts so the camera has
    sessions to photograph; qualities are seeded draws with occasional
    ε (``None``) events.
    """
    if n_events < 1:
        raise ConfigurationError(f"n_events must be >= 1, got {n_events}")
    rng = np.random.default_rng(seed)
    events = []
    for i in range(n_events):
        # 4-long writing bursts separated by 3 other-context events.
        writing = (i % 7) < 4
        others = [c for c in AWAREPEN_CLASSES if c.index != WRITING.index]
        cls = WRITING if writing else others[
            int(rng.integers(0, len(others)))]
        quality = (None if rng.random() < 0.05
                   else float(np.round(rng.uniform(0.3, 1.0), 6)))
        events.append(ContextEvent.create(
            source=source, topic=topic, context=cls, quality=quality,
            time_s=round(i * 0.5, 3), seq=i + 1))
    return events


def _run_clean(events: List[ContextEvent],
               gate: Optional[QualityFilter]) -> Tuple[_Recorder,
                                                       WhiteboardCamera]:
    bus = EventBus()
    camera = WhiteboardCamera(bus, gate=gate)
    recorder = _Recorder()
    bus.subscribe(PEN_TOPIC, recorder, name="recorder")
    for event in events:
        bus.publish(event)
    camera.flush(events[-1].time_s)
    return recorder, camera


def run_inproc_fault_drill(log_dir, seed: int = 7, n_events: int = 140,
                           gate: Optional[QualityFilter] = None,
                           config: Optional[BusConfig] = None,
                           max_rounds: int = 500) -> DrillReport:
    """Deterministic single-process drill; see the module docstring.

    Writes the faulted run's event log (and ``meta.json``) under
    *log_dir*, so the replay check exercises the real on-disk path.
    """
    config = config if config is not None else BusConfig(
        n_partitions=2, credits=8, redelivery_ticks=2, fsync_every=32)
    events = scripted_pen_events(seed, n_events)
    source = events[0].source
    clean_recorder, clean_camera = _run_clean(events, gate)

    schedule = FrameFaultSchedule((
        # Reordering throughout, duplication throughout, and a lossy
        # window in the middle third of the scenario.
        ScheduledFrameFault(FrameFault("delay", every=5)),
        ScheduledFrameFault(FrameFault("duplicate", every=6)),
        ScheduledFrameFault(FrameFault("drop", every=4),
                            start_s=events[len(events) // 3].time_s,
                            end_s=events[2 * len(events) // 3].time_s),
    ))
    channels: List[FaultyChannel] = []

    def wrap_send(send):
        channel = FaultyChannel(send, schedule)
        channels.append(channel)
        return channel

    core = BrokerCore(log_dir, config)
    client = BusClient(InProcLink(core, wrap_send=wrap_send),
                       from_start=True)
    camera = WhiteboardCamera(client, gate=gate)
    recorder = _Recorder()
    client.subscribe(PEN_TOPIC, recorder, name="recorder")

    target = partition_for(source, config.n_partitions)
    half = len(events) // 2
    for event in events[:half]:
        client.publish(event)
    # Hold acks, publish a burst that fills the credit window, then
    # kill the source's partition: those inflight frames are provably
    # lost and only the revive rewind can bring them back.
    client.hold_acks()
    for event in events[half:half + 2 * config.credits]:
        client.publish(event)
    lost = core.kill_partition(target)
    for event in events[half + 2 * config.credits:]:
        client.publish(event)  # logged but undeliverable: partition down
    core.revive_partition(target)
    client.release_acks()

    expected = {e.seq for e in events}
    rounds = 0
    while rounds < max_rounds:
        got = {e.seq for e in recorder.events}
        if got == expected and client.n_pending == 0:
            break
        core.tick()
        for channel in channels:
            channel.flush()
        rounds += 1
    converged = {e.seq for e in recorder.events} == expected
    camera.flush(events[-1].time_s)

    counters: Dict[str, int] = {}
    for channel in channels:
        for key, value in channel.counters().items():
            counters[key] = counters.get(key, 0) + value

    clean_trace = capture_bus_trace(seed, clean_recorder.events,
                                    camera=clean_camera)
    live_trace = capture_bus_trace(seed, recorder.events, camera=camera)
    state_diff = diff_traces(live_trace, clean_trace, rtol=0.0, atol=0.0)
    converged = converged and state_diff.passed

    meta = RunMeta(seed=seed,
                   gate_threshold=(None if gate is None
                                   else gate.threshold),
                   gate_epsilon_policy=(gate.epsilon_policy.value
                                        if gate is not None else "reject"),
                   camera_topic=PEN_TOPIC)
    meta.save(log_dir)
    core.close()
    replay_diff = diff_traces(replay_log(log_dir, meta=meta), clean_trace,
                              rtol=0.0, atol=0.0)

    return DrillReport(
        name="inproc-fault",
        n_events=len(events),
        n_delivered=core.n_delivered,
        n_redelivered=core.n_redelivered,
        dedupe_dropped=client.dedupe_dropped,
        lost_inflight=lost,
        fault_counters=counters,
        converged=converged,
        replay_passed=replay_diff.passed,
        first_diverging_stage=(None if replay_diff.passed
                               else replay_diff.first_diverging_stage),
    )


# ----------------------------------------------------------------------
# Network drill
# ----------------------------------------------------------------------
def _publish_stream(host: str, port: int, source: str, topic: str,
                    n_events: int, seed: int) -> None:
    """Publisher process body: stream one source's events over TCP."""
    link = SocketLink(host, port)
    try:
        for event in scripted_pen_events(seed, n_events, source=source,
                                         topic=topic):
            link.publish(event.to_wire())
    finally:
        link.close()


def _wait_for(predicate, timeout_s: float, what: str,
              poll_s: float = 0.02) -> None:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(poll_s)
    raise BusError(f"drill timed out after {timeout_s}s waiting for {what}")


def run_network_drill(log_dir, n_publishers: int = 2,
                      events_per_publisher: int = 250, seed: int = 7,
                      timeout_s: float = 60.0,
                      golden_out: Optional[pathlib.Path] = None
                      ) -> DrillReport:
    """Kill a partition under real processes; verify zero loss + replay.

    Starts a TCP broker over *log_dir*, fans out *n_publishers* OS
    processes each publishing its own source's stream, and runs one
    consumer that holds its acks so every delivered frame is unacked
    when partition 0 dies.  After revive and redelivery the consumer
    must hold every published event exactly once, and replaying the
    log must reproduce its trace bit-for-bit.
    """
    if n_publishers < 1:
        raise ConfigurationError(
            f"n_publishers must be >= 1, got {n_publishers}")
    total = n_publishers * events_per_publisher
    sources = [f"pen-{i}" for i in range(n_publishers)]
    config = BusConfig(n_partitions=2, credits=16, redelivery_ticks=2)

    server = BrokerServer(log_dir, config=config, tick_interval_s=0.02)
    host, port = server.start()
    consumer_link = SocketLink(host, port, timeout_s=timeout_s)
    client = BusClient(consumer_link, from_start=True)
    recorder = _Recorder()
    client.subscribe("context.*", recorder, name="drill-consumer")
    client.hold_acks()

    mp = multiprocessing.get_context("spawn")
    publishers = [
        mp.Process(target=_publish_stream,
                   args=(host, port, sources[i], PEN_TOPIC,
                         events_per_publisher, seed + i))
        for i in range(n_publishers)]
    try:
        for proc in publishers:
            proc.start()
        for proc in publishers:
            proc.join(timeout_s)
            if proc.is_alive():
                proc.terminate()
                raise BusError("publisher process did not finish in time")
            if proc.exitcode != 0:
                raise BusError(f"publisher exited with {proc.exitcode}")
        _wait_for(lambda: consumer_link.stats()["n_published"] >= total,
                  timeout_s, "all publishes to reach the broker")

        # The consumer is holding acks: every frame delivered so far is
        # inflight (and being re-sent by the retry timer).  Take the
        # first source's partition down mid-stream, then revive it.
        target = partition_for(sources[0], config.n_partitions)
        lost = consumer_link.kill_partition(target)
        client.release_acks()
        consumer_link.revive_partition(target)

        expected = {(s, seq) for s in sources
                    for seq in range(1, events_per_publisher + 1)}
        _wait_for(lambda: {(e.source, e.seq)
                           for e in recorder.events} == expected,
                  timeout_s, "redelivery to close every gap")
        converged = ({(e.source, e.seq) for e in recorder.events}
                     == expected and client.n_pending == 0)
        stats = consumer_link.stats()
    finally:
        for proc in publishers:
            if proc.is_alive():
                proc.terminate()
        try:
            consumer_link.close()
        finally:
            server.stop()

    trace = capture_bus_trace(seed, recorder.events)
    meta = RunMeta(seed=seed)
    meta.save(log_dir)
    if golden_out is not None:
        trace.save(pathlib.Path(golden_out))
    replay_diff = diff_traces(replay_log(log_dir, meta=meta), trace,
                              rtol=0.0, atol=0.0)

    return DrillReport(
        name="network-partition-kill",
        n_events=total,
        n_delivered=int(stats["n_delivered"]),
        n_redelivered=int(stats["n_redelivered"]),
        dedupe_dropped=client.dedupe_dropped,
        lost_inflight=lost,
        fault_counters={f"killed_partition_{target}": 1},
        converged=converged,
        replay_passed=replay_diff.passed,
        first_diverging_stage=(None if replay_diff.passed
                               else replay_diff.first_diverging_stage),
    )
