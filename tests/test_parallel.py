"""Tests for repro.parallel — the execution-backend abstraction."""

import os

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.parallel import (BACKENDS, ENV_VAR, ParallelExecutor, as_executor,
                            default_workers, resolve_backend, spawn_seeds)


def _square(x):
    return x * x


def _fail_on_three(x):
    if x == 3:
        raise ValueError("three")
    return x


def _chunk_sum(chunk):
    return sum(chunk)


class TestResolveBackend:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert resolve_backend() == "serial"

    def test_env_var_respected(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "thread")
        assert resolve_backend() == "thread"

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "thread")
        assert resolve_backend("process") == "process"

    def test_case_and_whitespace_forgiven(self):
        assert resolve_backend("  Thread ") == "thread"

    def test_unknown_backend_rejected(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        with pytest.raises(ConfigurationError, match="bogus"):
            resolve_backend("bogus")

    def test_bad_env_var_fails_loudly(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "paralel")
        with pytest.raises(ConfigurationError):
            resolve_backend()

    def test_all_names_valid(self):
        for name in BACKENDS:
            assert resolve_backend(name) == name


class TestParallelExecutor:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_map_preserves_order(self, backend):
        executor = ParallelExecutor(backend=backend, max_workers=2)
        assert executor.map(_square, range(10)) == [i * i for i in range(10)]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_empty_input(self, backend):
        assert ParallelExecutor(backend=backend).map(_square, []) == []

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_exception_propagates(self, backend):
        executor = ParallelExecutor(backend=backend, max_workers=2)
        with pytest.raises(ValueError, match="three"):
            executor.map(_fail_on_three, range(6))

    def test_invalid_workers_rejected(self):
        with pytest.raises(ConfigurationError):
            ParallelExecutor(max_workers=0)

    def test_starmap(self):
        executor = ParallelExecutor(backend="thread", max_workers=2)
        assert executor.starmap(pow, [(2, 3), (3, 2)]) == [8, 9]

    @pytest.mark.parametrize("backend", ("serial", "thread"))
    def test_map_chunked_covers_all_items(self, backend):
        executor = ParallelExecutor(backend=backend, max_workers=3)
        chunks = executor.map_chunked(list, list(range(10)))
        flat = [x for chunk in chunks for x in chunk]
        assert flat == list(range(10))

    def test_map_chunked_explicit_chunks(self):
        executor = ParallelExecutor(backend="serial")
        sums = executor.map_chunked(_chunk_sum, list(range(10)), n_chunks=2)
        assert sum(sums) == sum(range(10))
        assert len(sums) == 2

    def test_map_chunked_empty(self):
        assert ParallelExecutor().map_chunked(_chunk_sum, []) == []

    def test_default_workers_positive(self):
        assert default_workers() >= 1


class TestAsExecutor:
    def test_passthrough(self):
        executor = ParallelExecutor(backend="thread")
        assert as_executor(executor) is executor

    def test_from_name(self):
        assert as_executor("process").backend == "process"

    def test_none_resolves_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "thread")
        assert as_executor(None).backend == "thread"


class TestSpawnSeeds:
    def test_deterministic_and_independent(self):
        a = spawn_seeds(42, 4)
        b = spawn_seeds(42, 4)
        values_a = [np.random.default_rng(s).integers(0, 1000) for s in a]
        values_b = [np.random.default_rng(s).integers(0, 1000) for s in b]
        assert values_a == values_b
        assert len(set(values_a)) > 1

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            spawn_seeds(0, -1)

    def test_zero_tasks(self):
        assert spawn_seeds(0, 0) == []


@pytest.mark.skipif(os.name != "posix", reason="process backend smoke")
def test_process_backend_runs_module_level_function():
    executor = ParallelExecutor(backend="process", max_workers=2)
    assert executor.map(_square, [1, 2, 3]) == [1, 4, 9]


def _die(x):
    # Kills the worker process without raising a picklable exception —
    # the pool can only report this as "broken".
    os._exit(13)


class TestDefaultWorkers:
    def test_positive_int(self):
        got = default_workers()
        assert isinstance(got, int) and got >= 1

    def test_uses_sched_getaffinity_when_available(self, monkeypatch):
        monkeypatch.setattr(os, "sched_getaffinity",
                            lambda pid: {0, 2, 5}, raising=False)
        assert default_workers() == 3

    def test_falls_back_to_cpu_count(self, monkeypatch):
        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 4)
        assert default_workers() == 4

    def test_fallback_survives_unknown_cpu_count(self, monkeypatch):
        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: None)
        assert default_workers() == 1


class TestFailureDiagnostics:
    """Task failures must name the failing task and backend (ISSUE PR 2
    satellite) without changing the exception's type or message."""

    @pytest.mark.parametrize("backend", ("thread", "process"))
    def test_failing_task_index_noted(self, backend):
        executor = ParallelExecutor(backend=backend, max_workers=2)
        with pytest.raises(ValueError) as excinfo:
            executor.map(_fail_on_three, range(6))
        notes = getattr(excinfo.value, "__notes__", [])
        assert any("task 3 of 6" in note and repr(backend) in note
                   for note in notes), notes

    def test_serial_exception_unannotated(self):
        # The serial loop is the reference semantics: the exception is
        # the task's own, with no pool framing.
        with pytest.raises(ValueError, match="three") as excinfo:
            ParallelExecutor(backend="serial").map(_fail_on_three, range(6))
        assert not getattr(excinfo.value, "__notes__", [])

    @pytest.mark.skipif(os.name != "posix", reason="needs fork semantics")
    def test_broken_pool_raises_parallel_execution_error(self):
        from repro.exceptions import ParallelExecutionError, ReproError

        executor = ParallelExecutor(backend="process", max_workers=2)
        with pytest.raises(ParallelExecutionError) as excinfo:
            executor.map(_die, range(4))
        message = str(excinfo.value)
        assert "'process'" in message
        assert "task" in message
        assert "serial" in message          # actionable debugging hint
        assert isinstance(excinfo.value, ReproError)
        assert isinstance(excinfo.value.__cause__,
                          __import__("concurrent.futures", fromlist=[""])
                          .BrokenExecutor)

    def test_unpicklable_task_is_diagnosed(self):
        executor = ParallelExecutor(backend="process", max_workers=2)
        from repro.exceptions import ParallelExecutionError

        with pytest.raises((ParallelExecutionError, TypeError,
                            AttributeError)) as excinfo:
            executor.map(lambda x: x, [1, 2])
        # Whichever layer catches it, the message must mention pickling.
        text = str(excinfo.value).lower()
        notes = " ".join(getattr(excinfo.value, "__notes__", [])).lower()
        assert "pickl" in text or "pickl" in notes


class TestThreadVsProcessDifferential:
    """Thread and process backends must agree with *each other*.

    The integration suite pins each pooled backend against the serial
    reference; this differential closes the triangle — a bug that
    shifted both pooled paths identically away from serial would still
    be caught by those tests, but one that made thread and process
    disagree (e.g. fork-time state leaking into a worker) is caught
    here directly, on the real multiseed and crossval drivers.
    """

    @staticmethod
    def _metrics_equal(a: dict, b: dict) -> None:
        import math

        assert set(a) == set(b)
        for key in a:
            same = (a[key] == b[key]
                    or (isinstance(a[key], float)
                        and math.isnan(a[key]) and math.isnan(b[key])))
            assert same, f"metric {key!r}: {a[key]!r} != {b[key]!r}"

    def test_multiseed_thread_equals_process(self):
        from repro.core import ConstructionConfig
        from repro.evaluation import MultiSeedRunner

        cheap = ConstructionConfig(epochs=10)
        threaded = MultiSeedRunner(seeds=(7, 11), config=cheap,
                                   parallel="thread", max_workers=2).run()
        processed = MultiSeedRunner(seeds=(7, 11), config=cheap,
                                    parallel="process",
                                    max_workers=2).run()
        assert len(threaded.per_seed) == len(processed.per_seed)
        for thread_metrics, process_metrics in zip(threaded.per_seed,
                                                   processed.per_seed):
            self._metrics_equal(thread_metrics, process_metrics)

    def test_crossval_thread_equals_process(self, experiment):
        import dataclasses

        from repro.core import ConstructionConfig
        from repro.datasets import evaluation_script, generate_dataset
        from repro.evaluation import ScenarioCrossValidator

        cheap = ConstructionConfig(epochs=10)

        def factory(seed):
            return generate_dataset(
                lambda rng: evaluation_script(rng, blocks=2), seed=seed)

        def run(backend):
            cv = ScenarioCrossValidator(experiment.classifier, factory,
                                        n_folds=2, config=cheap,
                                        parallel=backend, max_workers=2)
            return cv.run().folds

        thread_folds = run("thread")
        process_folds = run("process")
        assert len(thread_folds) == len(process_folds)
        for thread_fold, process_fold in zip(thread_folds, process_folds):
            self._metrics_equal(dataclasses.asdict(thread_fold),
                                dataclasses.asdict(process_fold))
