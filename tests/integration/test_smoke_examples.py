"""Smoke tests: every example runs, every benchmark module imports.

The examples are the user-facing documentation; a refactor that breaks
one is a regression even when the library tests stay green.  Each runs
as a real subprocess (fresh interpreter, ``PYTHONPATH=src``) exactly as
the README tells users to run them.  The benchmark modules are imported
the same way ``pytest benchmarks/`` would collect them, catching
top-level breakage (renamed imports, moved helpers) without paying for
a full benchmark run.
"""

import importlib.util
import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
EXAMPLES = sorted((REPO_ROOT / "examples").glob("*.py"))
BENCHMARKS = sorted((REPO_ROOT / "benchmarks").glob("bench_*.py"))


def _example_env():
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def test_examples_exist():
    assert len(EXAMPLES) >= 10
    assert len(BENCHMARKS) >= 20


@pytest.mark.parametrize("example", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(example):
    result = subprocess.run(
        [sys.executable, str(example)], env=_example_env(),
        cwd=str(REPO_ROOT), capture_output=True, text=True, timeout=300)
    assert result.returncode == 0, (
        f"{example.name} failed\n"
        f"stdout:\n{result.stdout}\nstderr:\n{result.stderr}")
    assert result.stdout.strip(), f"{example.name} printed nothing"


@pytest.mark.parametrize("bench", BENCHMARKS, ids=lambda p: p.stem)
def test_benchmark_module_imports(bench):
    name = f"_smoke_{bench.stem}"
    spec = importlib.util.spec_from_file_location(name, bench)
    module = importlib.util.module_from_spec(spec)
    try:
        sys.modules[name] = module
        spec.loader.exec_module(module)
    finally:
        sys.modules.pop(name, None)
    # Every bench module defines at least one pytest-collectable test.
    assert any(attr.startswith(("test_", "Test"))
               for attr in dir(module)), bench.name
