"""Tests for repro.fuzzy.defuzz."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DimensionError
from repro.fuzzy import defuzz


@pytest.fixture
def symmetric_triangle():
    x = np.linspace(0.0, 2.0, 401)
    mu = np.maximum(0.0, 1.0 - np.abs(x - 1.0))
    return x, mu


class TestCentroid:
    def test_symmetric_shape_centers(self, symmetric_triangle):
        x, mu = symmetric_triangle
        assert defuzz.centroid(x, mu) == pytest.approx(1.0, abs=1e-6)

    def test_asymmetric_shifts_toward_mass(self):
        x = np.linspace(0.0, 1.0, 201)
        mu = x  # ramp: more mass to the right
        assert defuzz.centroid(x, mu) > 0.5

    def test_all_zero_raises(self):
        x = np.linspace(0, 1, 11)
        with pytest.raises(ConfigurationError):
            defuzz.centroid(x, np.zeros_like(x))

    def test_shape_mismatch_raises(self):
        with pytest.raises(DimensionError):
            defuzz.centroid(np.zeros(4), np.zeros(5))


class TestBisector:
    def test_symmetric_shape(self, symmetric_triangle):
        x, mu = symmetric_triangle
        assert defuzz.bisector(x, mu) == pytest.approx(1.0, abs=1e-3)

    def test_uniform_curve(self):
        x = np.linspace(0.0, 4.0, 101)
        mu = np.ones_like(x)
        assert defuzz.bisector(x, mu) == pytest.approx(2.0, abs=1e-6)

    def test_halves_have_equal_area(self):
        x = np.linspace(0.0, 1.0, 501)
        mu = x ** 2
        b = defuzz.bisector(x, mu)
        left = np.trapezoid(np.where(x <= b, mu, 0.0), x)
        right = np.trapezoid(np.where(x > b, mu, 0.0), x)
        assert left == pytest.approx(right, rel=0.02)


class TestMaximumFamily:
    def test_mom_plateau(self):
        x = np.linspace(0.0, 3.0, 301)
        mu = np.where((x >= 1.0) & (x <= 2.0), 1.0, 0.0)
        assert defuzz.mean_of_maximum(x, mu) == pytest.approx(1.5, abs=1e-2)
        assert defuzz.smallest_of_maximum(x, mu) == pytest.approx(1.0, abs=1e-2)
        assert defuzz.largest_of_maximum(x, mu) == pytest.approx(2.0, abs=1e-2)

    def test_single_peak(self, symmetric_triangle):
        x, mu = symmetric_triangle
        assert defuzz.mean_of_maximum(x, mu) == pytest.approx(1.0, abs=1e-6)

    def test_zero_curve_raises(self):
        x = np.linspace(0, 1, 11)
        for fn in (defuzz.mean_of_maximum, defuzz.smallest_of_maximum,
                   defuzz.largest_of_maximum):
            with pytest.raises(ConfigurationError):
                fn(x, np.zeros_like(x))


class TestLookup:
    def test_all_registered(self):
        for name in ("centroid", "bisector", "mom", "som", "lom"):
            assert callable(defuzz.get_defuzzifier(name))

    def test_unknown_raises(self):
        with pytest.raises(KeyError, match="centroid"):
            defuzz.get_defuzzifier("unknown")

    def test_negative_membership_rejected(self):
        x = np.linspace(0, 1, 11)
        mu = np.full_like(x, -0.1)
        with pytest.raises(ConfigurationError):
            defuzz.centroid(x, mu)
