"""Scenario-level cross-validation of the quality pipeline.

Window-level random splits leak temporal correlation (adjacent windows
overlap by construction); honest validation must hold out *whole
scenarios*.  :class:`ScenarioCrossValidator` generates K independent
scenario datasets, trains the quality FIS on K-1 of them (concatenated)
and evaluates on the held-out one — rotating through all folds.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..classifiers.base import ContextClassifier
from ..core.calibration import calibrate
from ..core.construction import (ConstructionConfig, build_quality_measure)
from ..core.filtering import evaluate_filtering
from ..core.interconnection import QualityAugmentedClassifier
from ..datasets.generator import WindowDataset
from ..exceptions import ConfigurationError
from ..parallel import ParallelSpec, as_executor
from ..sensors.accelerometer import AWAREPEN_CLASSES
from ..stats.metrics import auc


def concatenate_datasets(datasets: Sequence[WindowDataset]) -> WindowDataset:
    """Stack several window datasets over the same classes."""
    if not datasets:
        raise ConfigurationError("need at least one dataset")
    classes = datasets[0].classes
    for ds in datasets[1:]:
        if tuple(c.index for c in ds.classes) != tuple(
                c.index for c in classes):
            raise ConfigurationError(
                "datasets must share the same class set")
    return WindowDataset(
        cues=np.vstack([ds.cues for ds in datasets]),
        labels=np.concatenate([ds.labels for ds in datasets]),
        transition=np.concatenate([ds.transition for ds in datasets]),
        classes=classes,
    )


@dataclasses.dataclass(frozen=True)
class FoldResult:
    """Evaluation metrics of one held-out fold."""

    fold: int
    threshold: float
    quality_auc: float
    accuracy_before: float
    accuracy_after: float
    n_windows: int


@dataclasses.dataclass(frozen=True)
class CrossValidationReport:
    """All folds plus simple aggregates."""

    folds: List[FoldResult]

    @property
    def mean_auc(self) -> float:
        return float(np.mean([f.quality_auc for f in self.folds]))

    @property
    def mean_improvement(self) -> float:
        return float(np.mean([f.accuracy_after - f.accuracy_before
                              for f in self.folds]))

    def to_text(self) -> str:
        lines = [f"{len(self.folds)}-fold scenario cross-validation:"]
        for f in self.folds:
            lines.append(
                f"  fold {f.fold}: AUC {f.quality_auc:.3f}, "
                f"acc {f.accuracy_before:.3f} -> {f.accuracy_after:.3f}, "
                f"s = {f.threshold:.3f} ({f.n_windows} windows)")
        lines.append(f"  mean AUC {self.mean_auc:.3f}, "
                     f"mean improvement {self.mean_improvement:+.3f}")
        return "\n".join(lines)


def _evaluate_fold(task: tuple) -> FoldResult:
    """Train and evaluate one fold rotation.

    Module-level (picklable) worker for the process backend.  *task* is
    ``(fold_index, train, check, held_out, classifier, config)`` — the
    datasets are assembled by the parent so the (possibly unpicklable)
    ``dataset_factory`` closure never crosses a process boundary.
    """
    k, train, check, held_out, classifier, config = task
    result = build_quality_measure(classifier, train, check, config=config)
    augmented = QualityAugmentedClassifier(classifier, result.quality)
    calibration = calibrate(augmented, train)
    outcome = evaluate_filtering(augmented, held_out,
                                 threshold=calibration.s)
    predicted = classifier.predict_indices(held_out.cues)
    q = result.quality.measure_batch(held_out.cues,
                                     predicted.astype(float))
    correct = predicted == held_out.labels
    usable = ~np.isnan(q)
    fold_auc = (auc(q[usable], correct[usable])
                if np.any(usable & correct)
                and np.any(usable & ~correct) else float("nan"))
    return FoldResult(
        fold=k, threshold=calibration.s, quality_auc=fold_auc,
        accuracy_before=outcome.accuracy_before,
        accuracy_after=outcome.accuracy_after,
        n_windows=len(held_out))


class ScenarioCrossValidator:
    """K-fold cross-validation over independently generated scenarios.

    Parameters
    ----------
    classifier:
        The pre-fitted black box under evaluation.
    dataset_factory:
        Callable ``seed -> WindowDataset`` generating one scenario.
    n_folds:
        Number of scenario folds (>= 2).
    base_seed:
        Fold ``k`` uses seed ``base_seed + k``.
    config:
        Quality-FIS construction configuration.
    parallel:
        Execution backend for the fold evaluations (name, executor, or
        ``None`` for ``$REPRO_PARALLEL``).  Scenario generation stays in
        the parent and every fold is deterministic given its datasets,
        so all backends produce bit-identical reports.
    max_workers:
        Pool size for the pooled backends.
    """

    def __init__(self, classifier: ContextClassifier,
                 dataset_factory: Callable[[int], WindowDataset],
                 n_folds: int = 4, base_seed: int = 1000,
                 config: Optional[ConstructionConfig] = None,
                 parallel: ParallelSpec = None,
                 max_workers: Optional[int] = None) -> None:
        if n_folds < 2:
            raise ConfigurationError(f"n_folds must be >= 2, got {n_folds}")
        self.classifier = classifier
        self.dataset_factory = dataset_factory
        self.n_folds = int(n_folds)
        self.base_seed = int(base_seed)
        self.config = config if config is not None else ConstructionConfig()
        self.executor = as_executor(parallel, max_workers=max_workers)

    def run(self) -> CrossValidationReport:
        """Train/evaluate on every fold rotation."""
        scenarios = [self.dataset_factory(self.base_seed + k)
                     for k in range(self.n_folds)]
        tasks = []
        for k in range(self.n_folds):
            held_out = scenarios[k]
            train_pool = [s for i, s in enumerate(scenarios) if i != k]
            # Last training scenario doubles as the check set.
            check = train_pool[-1]
            train = concatenate_datasets(train_pool[:-1]) if len(
                train_pool) > 1 else train_pool[0]
            tasks.append((k, train, check, held_out, self.classifier,
                          self.config))
        folds: List[FoldResult] = self.executor.map(_evaluate_fold, tasks)
        return CrossValidationReport(folds=folds)
