"""Graceful ε-degradation policies for quality-gated appliances.

The normalization ``L`` (paper section 2.1.3) maps unmappable quality
outputs onto the explicit error state ε.  The paper leaves open what an
appliance should *do* with an ε — and in a faulted deployment (see
:mod:`repro.sensors.faults`) ε stops being rare.  This module makes the
policy explicit and stateful:

* ``reject`` — ε is treated like a below-threshold quality: the
  classification is discarded (the safe default, matching
  :class:`repro.core.filtering.EpsilonPolicy.REJECT`);
* ``hold-last-good`` — the gate reuses the most recent non-ε quality,
  provided it is at most ``hold_ttl`` decisions old: a brief sensor
  glitch should not blank an appliance that was confidently right a
  moment ago;
* ``fallback-threshold`` — the gate falls back to the *recent track
  record*: accept the ε-classification only if the exponentially
  weighted mean of recent good qualities clears a stricter
  ``fallback_threshold`` (trust the stream, not the sample);
* ``abstain`` — ε yields an explicit third outcome: the appliance takes
  no action at all, distinct from actively rejecting (a camera that
  neither snapshots nor resets its session).

On non-ε qualities every policy behaves identically (``q > s``), so
policies only diverge where the paper's measure genuinely has nothing to
say — pinned by the equivalence tests.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import List, Optional, Tuple, Union

import numpy as np

from .. import observability as obs
from ..exceptions import ConfigurationError


class DegradationPolicy(enum.Enum):
    """How a gate degrades when the CQM reports the error state ε."""

    REJECT = "reject"
    HOLD_LAST_GOOD = "hold-last-good"
    FALLBACK_THRESHOLD = "fallback-threshold"
    ABSTAIN = "abstain"

    @classmethod
    def coerce(cls, value: Union["DegradationPolicy", str]
               ) -> "DegradationPolicy":
        """Accept a policy instance or its string value."""
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value))
        except ValueError:
            raise ConfigurationError(
                f"unknown degradation policy {value!r}; choose one of "
                f"{', '.join(p.value for p in cls)}") from None


class GateAction(enum.Enum):
    """Outcome of one gate decision."""

    ACCEPT = "accept"
    REJECT = "reject"
    ABSTAIN = "abstain"


@dataclasses.dataclass(frozen=True)
class DegradationDecision:
    """One gate decision with its provenance.

    ``quality_used`` is the value the gate actually compared — the
    measured quality on the healthy path, the held or fallback estimate
    on a degraded path, ``None`` when no usable estimate existed.
    """

    action: GateAction
    quality_used: Optional[float]
    degraded: bool

    @property
    def accepted(self) -> bool:
        return self.action is GateAction.ACCEPT


class GracefulDegrader:
    """Stateful quality gate with an explicit ε-degradation policy.

    Parameters
    ----------
    threshold:
        Calibrated acceptance threshold ``s``; accept when ``q > s``.
    policy:
        ε-handling policy (a :class:`DegradationPolicy` or its string
        value).
    fallback_threshold:
        Stricter bar used by ``fallback-threshold``; defaults to
        ``min(1, s + 0.1)``.
    hold_ttl:
        Maximum age (in decisions) of a held quality for
        ``hold-last-good``; older holds expire and ε is rejected.
    ew_alpha:
        Update rate of the exponentially weighted good-quality mean the
        fallback policy consults.
    """

    def __init__(self, threshold: float,
                 policy: Union[DegradationPolicy, str]
                 = DegradationPolicy.REJECT,
                 fallback_threshold: Optional[float] = None,
                 hold_ttl: int = 5, ew_alpha: float = 0.2) -> None:
        if not 0.0 <= threshold <= 1.0:
            raise ConfigurationError(
                f"threshold must be in [0, 1], got {threshold}")
        self.policy = DegradationPolicy.coerce(policy)
        if fallback_threshold is None:
            fallback_threshold = min(1.0, threshold + 0.1)
        if not 0.0 <= fallback_threshold <= 1.0:
            raise ConfigurationError(
                f"fallback_threshold must be in [0, 1], "
                f"got {fallback_threshold}")
        if hold_ttl < 1:
            raise ConfigurationError(
                f"hold_ttl must be >= 1, got {hold_ttl}")
        if not 0.0 < ew_alpha <= 1.0:
            raise ConfigurationError(
                f"ew_alpha must be in (0, 1], got {ew_alpha}")
        self.threshold = float(threshold)
        self.fallback_threshold = float(fallback_threshold)
        self.hold_ttl = int(hold_ttl)
        self.ew_alpha = float(ew_alpha)
        self.reset()

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Clear held state and counters (e.g. at a session boundary)."""
        self._last_good: Optional[float] = None
        self._last_good_age = 0
        self._ew_mean: Optional[float] = None
        self.n_decisions = 0
        self.n_epsilon = 0
        self.n_abstained = 0

    @property
    def epsilon_fraction(self) -> float:
        """Fraction of decisions that hit the ε path so far."""
        return self.n_epsilon / self.n_decisions if self.n_decisions else 0.0

    # ------------------------------------------------------------------
    def decide(self, quality: Optional[float]) -> DegradationDecision:
        """Gate one quality value (``None``/NaN marks ε)."""
        self.n_decisions += 1
        is_eps = quality is None or (isinstance(quality, float)
                                     and np.isnan(quality))
        if not is_eps:
            q = float(quality)
            self._last_good = q
            self._last_good_age = 0
            self._ew_mean = (q if self._ew_mean is None else
                             (1.0 - self.ew_alpha) * self._ew_mean
                             + self.ew_alpha * q)
            action = (GateAction.ACCEPT if q > self.threshold
                      else GateAction.REJECT)
            decision = DegradationDecision(action=action, quality_used=q,
                                           degraded=False)
        else:
            self.n_epsilon += 1
            self._last_good_age += 1
            decision = self._decide_epsilon()
            if decision.action is GateAction.ABSTAIN:
                self.n_abstained += 1
        if obs.STATE.enabled:
            registry = obs.get_registry()
            registry.inc("degradation.decisions_total")
            registry.inc(f"degradation.{decision.action.value}_total")
            if is_eps:
                registry.inc("degradation.epsilon_total")
            if decision.degraded:
                registry.inc("degradation.degraded_total")
        return decision

    def _decide_epsilon(self) -> DegradationDecision:
        if self.policy is DegradationPolicy.ABSTAIN:
            return DegradationDecision(action=GateAction.ABSTAIN,
                                       quality_used=None, degraded=True)
        if self.policy is DegradationPolicy.HOLD_LAST_GOOD:
            if (self._last_good is not None
                    and self._last_good_age <= self.hold_ttl):
                action = (GateAction.ACCEPT
                          if self._last_good > self.threshold
                          else GateAction.REJECT)
                return DegradationDecision(action=action,
                                           quality_used=self._last_good,
                                           degraded=True)
            return DegradationDecision(action=GateAction.REJECT,
                                       quality_used=None, degraded=True)
        if self.policy is DegradationPolicy.FALLBACK_THRESHOLD:
            if self._ew_mean is not None:
                action = (GateAction.ACCEPT
                          if self._ew_mean > self.fallback_threshold
                          else GateAction.REJECT)
                return DegradationDecision(action=action,
                                           quality_used=self._ew_mean,
                                           degraded=True)
            return DegradationDecision(action=GateAction.REJECT,
                                       quality_used=None, degraded=True)
        # REJECT: the safe default.
        return DegradationDecision(action=GateAction.REJECT,
                                   quality_used=None, degraded=True)

    def decide_batch(self, qualities: np.ndarray
                     ) -> List[DegradationDecision]:
        """Gate a quality array in stream order (NaN marks ε).

        Stateful policies depend on decision order, so the batch is
        processed sequentially — identical to calling :meth:`decide`
        value by value.
        """
        qualities = np.asarray(qualities, dtype=float).ravel()
        return [self.decide(None if np.isnan(q) else float(q))
                for q in qualities]


@dataclasses.dataclass(frozen=True)
class DegradedOutcome:
    """Filtering outcome under an ε-degradation policy.

    Abstentions are windows the appliance took no action on; they count
    as not-accepted in the accounting but are reported separately so a
    high abstention rate is visible, not silently folded into discards.
    """

    policy: DegradationPolicy
    n_total: int
    n_accepted: int
    n_abstained: int
    n_epsilon: int
    n_degraded_accepts: int
    accuracy_before: float
    accuracy_after: float

    @property
    def accept_fraction(self) -> float:
        return self.n_accepted / self.n_total if self.n_total else 0.0

    @property
    def epsilon_fraction(self) -> float:
        return self.n_epsilon / self.n_total if self.n_total else 0.0

    @property
    def improvement(self) -> float:
        """Absolute accuracy gain of gating over acting on everything."""
        return self.accuracy_after - self.accuracy_before


def apply_policy(qualities: np.ndarray, correct: np.ndarray,
                 threshold: float,
                 policy: Union[DegradationPolicy, str]
                 = DegradationPolicy.REJECT,
                 degrader: Optional[GracefulDegrader] = None
                 ) -> Tuple[DegradedOutcome, List[DegradationDecision]]:
    """Run a quality stream through a degrader and account the outcome.

    ``accuracy_after`` over zero accepted windows falls back to
    ``accuracy_before`` (the appliance acts on nothing, so gating neither
    helped nor hurt), mirroring
    :func:`repro.stats.metrics.filter_outcome`.
    """
    qualities = np.asarray(qualities, dtype=float).ravel()
    correct = np.asarray(correct, dtype=bool).ravel()
    if qualities.shape != correct.shape:
        raise ConfigurationError("qualities and correct must align")
    if qualities.size == 0:
        raise ConfigurationError("cannot gate an empty stream")
    if degrader is None:
        degrader = GracefulDegrader(threshold=threshold, policy=policy)
    decisions = degrader.decide_batch(qualities)
    accepted = np.array([d.accepted for d in decisions], dtype=bool)
    n_accepted = int(np.sum(accepted))
    accuracy_before = float(np.mean(correct))
    accuracy_after = (float(np.mean(correct[accepted])) if n_accepted
                      else accuracy_before)
    outcome = DegradedOutcome(
        policy=degrader.policy,
        n_total=int(qualities.size),
        n_accepted=n_accepted,
        n_abstained=degrader.n_abstained,
        n_epsilon=degrader.n_epsilon,
        n_degraded_accepts=int(sum(1 for d in decisions
                                   if d.degraded and d.accepted)),
        accuracy_before=accuracy_before,
        accuracy_after=accuracy_after,
    )
    return outcome, decisions


def evaluate_degraded(augmented, dataset, threshold: float,
                      policy: Union[DegradationPolicy, str]
                      = DegradationPolicy.REJECT,
                      degrader: Optional[GracefulDegrader] = None
                      ) -> DegradedOutcome:
    """Measure a quality gate with an ε-policy on a labeled dataset.

    The policy-aware sibling of
    :func:`repro.core.filtering.evaluate_filtering`: classifications run
    through the black box, the CQM qualifies them, and the degrader
    gates the resulting quality stream in window order.
    """
    predicted = augmented.classifier.predict_indices(dataset.cues)
    qualities = augmented.quality.measure_batch(
        dataset.cues, predicted.astype(float))
    correct = predicted == dataset.labels
    outcome, _ = apply_policy(qualities, correct, threshold=threshold,
                              policy=policy, degrader=degrader)
    return outcome
