"""Deterministic classifier + quality-system construction for scenarios.

Every sensing appliance of a scenario needs a trained black box and its
quality FIS.  Building one is the expensive part of a run, so models are
cached per ``(family, classifier spec, seed)`` — two scenarios sharing
the default AwarePen stack build it once, and the test suite can prime
the cache from its session-scoped experiment fixture.

The pen family with the default TSK classifier reuses the *exact* paper
pipeline (:func:`repro.experiment.run_awarepen_experiment`), so the
declarative ``awarepen-baseline`` scenario runs the same model the
hard-coded experiment does.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Sequence, Tuple

from ..classifiers import (ContextClassifier, KNNClassifier, MLPClassifier,
                           NearestCentroidClassifier, TSKClassifier,
                           VotingEnsemble)
from ..core.calibration import calibrate
from ..core.construction import ConstructionConfig, build_quality_measure
from ..core.interconnection import QualityAugmentedClassifier
from ..datasets.generator import (WindowDataset, generate_dataset,
                                  make_awarepen_material)
from ..exceptions import CalibrationError, ScenarioError
from ..experiment import run_awarepen_experiment
from ..sensors.accelerometer import AWAREPEN_CLASSES
from ..sensors.chair import AWARECHAIR_CLASSES
from ..types import ContextClass
from .activities import chair_mixed_script, chair_training_script
from .spec import ClassifierSpec

#: Threshold used when calibration degenerates (documented fallback).
FALLBACK_THRESHOLD = 0.5

#: The spec value meaning "the paper's default AwarePen stack".
DEFAULT_CLASSIFIER = ClassifierSpec()


@dataclasses.dataclass(frozen=True)
class ScenarioModel:
    """A trained, quality-augmented classifier plus its threshold."""

    augmented: QualityAugmentedClassifier
    threshold: float


_Roles = Tuple[WindowDataset, WindowDataset, WindowDataset, WindowDataset,
               Tuple[ContextClass, ...]]

_MODELS: Dict[Tuple[str, ClassifierSpec, int], ScenarioModel] = {}
_MATERIALS: Dict[Tuple[str, int], _Roles] = {}


def clear_cache() -> None:
    """Drop all cached models and materials (test isolation helper)."""
    _MODELS.clear()
    _MATERIALS.clear()


def prime_pen_model(augmented: QualityAugmentedClassifier,
                    threshold: float, seed: int = 7) -> None:
    """Inject a pre-built default pen model (e.g. a test fixture)."""
    _MODELS[("pen", DEFAULT_CLASSIFIER, seed)] = ScenarioModel(
        augmented=augmented, threshold=float(threshold))


def prime_pen_material(material, seed: int = 7) -> None:
    """Inject pre-generated AwarePen material (e.g. a test fixture)."""
    _MATERIALS[("pen", seed)] = (
        material.classifier_train, material.quality_train,
        material.quality_check, material.analysis,
        tuple(AWAREPEN_CLASSES))


def build_classifier(spec: ClassifierSpec,
                     classes: Sequence[ContextClass]) -> ContextClassifier:
    """Construct the (untrained) black box a classifier spec declares."""
    params = dict(spec.params)
    if spec.kind == "tsk":
        return TSKClassifier(classes, radius=float(params.get("radius", 0.5)))
    if spec.kind == "centroid":
        return NearestCentroidClassifier(classes)
    if spec.kind == "knn":
        return KNNClassifier(classes, k=int(params.get("k", 5)))
    if spec.kind == "mlp":
        return MLPClassifier(classes, hidden=int(params.get("hidden", 16)),
                             epochs=int(params.get("epochs", 150)),
                             seed=int(params.get("seed", 0)))
    if spec.kind == "ensemble":
        members = [build_classifier(ClassifierSpec(kind=m), classes)
                   for m in spec.members]
        return VotingEnsemble(classes, members)
    raise ScenarioError(f"classifier kind {spec.kind!r} is unknown")


def _material(family: str, seed: int) -> _Roles:
    key = (family, seed)
    if key in _MATERIALS:
        return _MATERIALS[key]
    if family == "pen":
        m = make_awarepen_material(seed=seed)
        roles: _Roles = (m.classifier_train, m.quality_train,
                         m.quality_check, m.analysis,
                         tuple(AWAREPEN_CLASSES))
    elif family == "chair":
        base = seed + 40
        roles = (
            generate_dataset(lambda rng: chair_training_script(rng, 3),
                             seed=base, classes=AWARECHAIR_CLASSES),
            generate_dataset(lambda rng: chair_mixed_script(rng, 3),
                             seed=base + 1, classes=AWARECHAIR_CLASSES),
            generate_dataset(lambda rng: chair_mixed_script(rng, 2),
                             seed=base + 2, classes=AWARECHAIR_CLASSES),
            generate_dataset(lambda rng: chair_mixed_script(rng, 3),
                             seed=base + 3, classes=AWARECHAIR_CLASSES),
            tuple(AWARECHAIR_CLASSES),
        )
    else:
        raise ScenarioError(f"sensor family {family!r} is unknown")
    _MATERIALS[key] = roles
    return roles


def model_for(family: str, spec: ClassifierSpec, seed: int) -> ScenarioModel:
    """The trained quality-augmented model for one sensing appliance."""
    key = (family, spec, seed)
    if key in _MODELS:
        return _MODELS[key]
    if family == "pen" and spec == DEFAULT_CLASSIFIER:
        result = run_awarepen_experiment(seed=seed)
        model = ScenarioModel(augmented=result.augmented,
                              threshold=float(result.threshold))
    else:
        train, q_train, q_check, analysis, classes = _material(family, seed)
        classifier = build_classifier(spec, classes)
        classifier.fit(train.cues, train.labels)
        construction = build_quality_measure(
            classifier, q_train, q_check,
            config=ConstructionConfig(epochs=10))
        augmented = QualityAugmentedClassifier(classifier,
                                               construction.quality)
        try:
            threshold = float(calibrate(augmented, analysis).s)
        except CalibrationError:
            threshold = FALLBACK_THRESHOLD
        model = ScenarioModel(augmented=augmented, threshold=threshold)
    _MODELS[key] = model
    return model
