"""Fixtures for the serving suite.

The expensive part — training the quality package and classifier — is
done once per session (reusing the root conftest's ``experiment``);
each test builds cheap registries and services on top.
"""

from __future__ import annotations

import asyncio
import contextlib

import numpy as np
import pytest

from repro.core.persistence import QualityPackage
from repro.serving import (ModelRegistry, ServeRequest, ServingConfig,
                           serve_socket)


@pytest.fixture(autouse=True)
def _isolate_cwd(tmp_path, monkeypatch):
    """Run every serving test from a private tmp directory.

    Any incidental artifact write (saved packages, reports, metrics
    dumps) lands in ``tmp_path`` instead of leaking into the repo, and
    parallel test runs can't collide on shared relative paths.
    """
    monkeypatch.chdir(tmp_path)


@contextlib.asynccontextmanager
async def socket_server(registry, config: ServingConfig = None,
                        max_requests: int = None):
    """Serve JSONL over TCP on an OS-assigned free port (port 0).

    Yields the bound port; always binds port 0 so concurrent test
    sessions never race for a fixed port number.  On exit the server is
    stopped (or, with ``max_requests``, awaited to retire on its own).
    """
    announcements = []
    ready = asyncio.Event()
    stop = asyncio.Event()
    task = asyncio.get_running_loop().create_task(
        serve_socket(registry, "127.0.0.1", 0,
                     config=config if config is not None else
                     ServingConfig(),
                     ready=ready, stop=stop, max_requests=max_requests,
                     announce=announcements.append))
    await asyncio.wait_for(ready.wait(), timeout=5)
    port = int(announcements[0].split()[2].rsplit(":", 1)[1])
    try:
        yield port
    finally:
        if max_requests is not None:
            await asyncio.wait_for(task, timeout=10)
        else:
            stop.set()
            await asyncio.wait_for(task, timeout=10)


@pytest.fixture(scope="session")
def package(experiment):
    return QualityPackage.from_calibration(
        experiment.augmented.quality, experiment.calibration)


@pytest.fixture
def registry(package, experiment):
    """Fresh registry with the trained package active as v1."""
    reg = ModelRegistry()
    reg.publish_and_activate(package, classifier=experiment.classifier,
                             tag="test")
    return reg


@pytest.fixture(scope="session")
def cue_pool(experiment):
    return experiment.material.analysis.cues


def make_requests(cue_pool: np.ndarray, n: int, seed: int = 3,
                  with_class_index: bool = False):
    """Seeded request stream drawn from real cue data."""
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, cue_pool.shape[0], size=n)
    requests = []
    for k, row in enumerate(rows):
        class_index = int(rng.integers(0, 3)) if with_class_index else None
        requests.append(ServeRequest(request_id=k, cues=cue_pool[int(row)],
                                     class_index=class_index))
    return requests
