"""Tests for repro.appliances.bus and messages."""

import pytest

from repro.appliances.bus import EventBus
from repro.appliances.messages import ContextEvent
from repro.exceptions import ConfigurationError
from repro.types import ContextClass

CTX = ContextClass(1, "writing")


def make_event(topic="context.pen", quality=0.9):
    return ContextEvent.create(source="pen", topic=topic, context=CTX,
                               quality=quality, time_s=1.0)


class TestContextEvent:
    def test_ids_monotonic(self):
        a = make_event()
        b = make_event()
        assert b.event_id > a.event_id

    def test_has_quality(self):
        assert make_event(quality=0.5).has_quality
        assert not make_event(quality=None).has_quality


class TestEventBus:
    def test_exact_topic_delivery(self):
        bus = EventBus()
        received = []
        bus.subscribe("context.pen", received.append, name="camera")
        delivered = bus.publish(make_event())
        assert delivered == 1
        assert len(received) == 1

    def test_no_delivery_on_other_topic(self):
        bus = EventBus()
        received = []
        bus.subscribe("context.chair", received.append)
        assert bus.publish(make_event()) == 0
        assert received == []

    def test_wildcard_prefix(self):
        bus = EventBus()
        received = []
        bus.subscribe("context.*", received.append)
        bus.publish(make_event("context.pen"))
        bus.publish(make_event("context.chair"))
        bus.publish(make_event("status.pen"))
        assert len(received) == 2

    def test_multiple_subscribers(self):
        bus = EventBus()
        a, b = [], []
        bus.subscribe("context.pen", a.append)
        bus.subscribe("context.*", b.append)
        assert bus.publish(make_event()) == 2
        assert len(a) == 1 and len(b) == 1

    def test_failure_isolation(self):
        """A raising subscriber must not block other deliveries."""
        bus = EventBus()
        received = []

        def broken(event):
            raise RuntimeError("camera offline")

        bus.subscribe("context.pen", broken, name="broken-camera")
        bus.subscribe("context.pen", received.append, name="good-camera")
        delivered = bus.publish(make_event())
        assert delivered == 1
        assert len(received) == 1
        errors = bus.delivery_errors
        assert len(errors) == 1
        assert errors[0].subscriber == "broken-camera"
        assert "camera offline" in errors[0].error

    def test_unsubscribe(self):
        bus = EventBus()
        received = []
        bus.subscribe("context.pen", received.append)
        assert bus.unsubscribe(received.append) == 1
        bus.publish(make_event())
        assert received == []

    def test_empty_pattern_rejected(self):
        with pytest.raises(ConfigurationError):
            EventBus().subscribe("", lambda e: None)

    def test_counters(self):
        bus = EventBus()
        bus.publish(make_event())
        bus.publish(make_event())
        assert bus.n_published == 2

    def test_subscriber_names(self):
        bus = EventBus()
        bus.subscribe("context.*", lambda e: None, name="camera")
        assert bus.subscriber_names() == {"context.*": ["camera"]}
