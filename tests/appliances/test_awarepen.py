"""Tests for repro.appliances.awarepen."""

import numpy as np
import pytest

from repro.appliances.awarepen import PEN_TOPIC, AwarePen
from repro.appliances.bus import EventBus


@pytest.fixture
def pen(experiment):
    return AwarePen(EventBus(), experiment.augmented)


class TestAwarePen:
    def test_process_window_publishes(self, pen, material):
        received = []
        pen.bus.subscribe(PEN_TOPIC, received.append)
        event = pen.process_window(material.evaluation.cues[0], time_s=1.5)
        assert len(received) == 1
        assert received[0] is event
        assert event.source == "awarepen"
        assert event.time_s == 1.5

    def test_event_matches_augmented_classifier(self, pen, material,
                                                experiment):
        cues = material.evaluation.cues[0]
        event = pen.process_window(cues)
        direct = experiment.augmented.classify(cues)
        assert event.context.index == direct.context.index
        if direct.quality is None:
            assert event.quality is None
        else:
            assert event.quality == pytest.approx(direct.quality)

    def test_history_accumulates(self, pen, material):
        for cues in material.evaluation.cues[:5]:
            pen.process_window(cues)
        assert len(pen.history) == 5
        assert len(pen.published_events) == 5

    def test_last_quality(self, pen, material):
        assert pen.last_quality() is None
        pen.process_window(material.evaluation.cues[0])
        last = pen.last_quality()
        assert last is None or 0.0 <= last <= 1.0

    def test_process_stream(self, pen, material, rng):
        from repro.datasets.activities import evaluation_script
        from repro.sensors.node import SensorNode
        node = SensorNode()
        windows = node.collect(evaluation_script(rng, blocks=1), rng,
                               pen.augmented.classes)
        events = pen.process_stream(windows)
        assert len(events) == len(windows)
        times = [e.time_s for e in events]
        assert times == sorted(times)

    def test_describe(self, pen):
        assert "AwarePen" in pen.describe()
