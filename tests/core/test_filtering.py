"""Tests for repro.core.filtering — quality gates and baselines."""

import numpy as np
import pytest

from repro.core.filtering import (ConstantQualityBaseline, EpsilonPolicy,
                                  QualityFilter, evaluate_constant_baseline,
                                  evaluate_filtering)
from repro.exceptions import ConfigurationError
from repro.types import Classification, ContextClass, QualifiedClassification


def qualified(quality, index=0):
    return QualifiedClassification(
        classification=Classification(cues=np.zeros(3),
                                      context=ContextClass(index, f"c{index}")),
        quality=quality)


class TestQualityFilter:
    def test_threshold_validated(self):
        with pytest.raises(ConfigurationError):
            QualityFilter(threshold=1.5)

    def test_accept_above_threshold(self):
        gate = QualityFilter(threshold=0.6)
        assert gate.accepts(qualified(0.7))
        assert not gate.accepts(qualified(0.6))  # strict >
        assert not gate.accepts(qualified(0.5))

    def test_epsilon_policies(self):
        reject = QualityFilter(threshold=0.5,
                               epsilon_policy=EpsilonPolicy.REJECT)
        accept = QualityFilter(threshold=0.5,
                               epsilon_policy=EpsilonPolicy.ACCEPT)
        assert not reject.accepts(qualified(None))
        assert accept.accepts(qualified(None))

    def test_split(self):
        gate = QualityFilter(threshold=0.5)
        items = [qualified(0.9), qualified(0.1), qualified(None)]
        accepted, rejected = gate.split(items)
        assert len(accepted) == 1
        assert len(rejected) == 2

    def test_accept_mask(self):
        gate = QualityFilter(threshold=0.5)
        mask = gate.accept_mask(np.array([0.9, 0.1, np.nan]))
        np.testing.assert_array_equal(mask, [True, False, False])

    def test_accept_mask_epsilon_accept(self):
        gate = QualityFilter(threshold=0.5,
                             epsilon_policy=EpsilonPolicy.ACCEPT)
        mask = gate.accept_mask(np.array([0.1, np.nan]))
        np.testing.assert_array_equal(mask, [False, True])


class TestEvaluateFiltering:
    def test_improves_accuracy(self, material, experiment):
        outcome = evaluate_filtering(experiment.augmented,
                                     material.evaluation,
                                     threshold=experiment.threshold)
        assert outcome.accuracy_after >= outcome.accuracy_before
        assert outcome.n_total == len(material.evaluation)

    def test_zero_threshold_keeps_everything_defined(self, material,
                                                     experiment):
        outcome = evaluate_filtering(experiment.augmented,
                                     material.evaluation, threshold=0.0,
                                     epsilon_policy=EpsilonPolicy.ACCEPT)
        assert outcome.n_kept == outcome.n_total

    def test_large_threshold_discards_everything(self, material, experiment):
        outcome = evaluate_filtering(experiment.augmented,
                                     material.evaluation, threshold=1.0)
        assert outcome.n_kept == 0


class TestConstantBaseline:
    def test_from_training(self):
        predicted = np.array([0, 0, 0, 1, 1])
        correct = np.array([True, True, False, True, False])
        baseline = ConstantQualityBaseline.from_training(predicted, correct)
        assert baseline.class_quality[0] == pytest.approx(2 / 3)
        assert baseline.class_quality[1] == pytest.approx(0.5)

    def test_qualities_for_unseen_class(self):
        baseline = ConstantQualityBaseline(class_quality={0: 0.9})
        out = baseline.qualities_for(np.array([0, 5]))
        np.testing.assert_allclose(out, [0.9, 0.5])

    def test_alignment_validated(self):
        with pytest.raises(ConfigurationError):
            ConstantQualityBaseline.from_training(np.zeros(3, int),
                                                  np.zeros(2, bool))

    def test_constant_baseline_weaker_than_cqm(self, material, experiment):
        """The paper's core motivation: per-classification quality beats a
        constant per-class quality.

        The constant baseline can only drop *entire classes*, so it buys
        accuracy by destroying coverage.  The fair comparison is the
        number of correct classifications retained: the CQM keeps more
        right decisions while still improving accuracy.
        """
        cqm = evaluate_filtering(experiment.augmented, material.analysis,
                                 threshold=experiment.threshold)
        const = evaluate_constant_baseline(
            experiment.augmented, material.quality_train,
            material.analysis)
        cqm_right_kept = cqm.n_kept - cqm.n_wrong_kept
        const_right_kept = const.n_kept - const.n_wrong_kept
        assert cqm_right_kept > const_right_kept
        assert cqm.accuracy_after > cqm.accuracy_before

    def test_uniform_constants_cannot_filter(self, material, experiment):
        outcome = evaluate_constant_baseline(
            experiment.augmented, material.quality_train,
            material.evaluation, threshold=0.0)
        assert outcome.n_kept == outcome.n_total

    def test_vectorized_lookup_matches_dict_probe(self):
        rng = np.random.default_rng(3)
        predicted = rng.integers(0, 6, size=200)
        correct = rng.random(200) < 0.7
        baseline = ConstantQualityBaseline.from_training(predicted, correct)
        queries = rng.integers(-2, 9, size=100)  # includes unseen classes
        out = baseline.qualities_for(queries)
        expected = [baseline.class_quality.get(int(p), 0.5)
                    for p in queries]
        np.testing.assert_array_equal(out, expected)

    def test_empty_baseline_defaults_everywhere(self):
        baseline = ConstantQualityBaseline(class_quality={})
        np.testing.assert_array_equal(
            baseline.qualities_for(np.array([1, 2, 3])), [0.5, 0.5, 0.5])

    def test_from_training_matches_per_class_means(self):
        rng = np.random.default_rng(11)
        predicted = rng.integers(0, 4, size=300)
        correct = rng.random(300) < 0.6
        baseline = ConstantQualityBaseline.from_training(predicted, correct)
        for label in np.unique(predicted):
            mask = predicted == label
            assert baseline.class_quality[int(label)] == pytest.approx(
                np.mean(correct[mask]))


class TestHysteresisGate:
    def make(self, **kwargs):
        from repro.core.filtering import HysteresisGate
        defaults = dict(high=0.7, low=0.4, k_enter=2, k_exit=2)
        defaults.update(kwargs)
        return HysteresisGate(**defaults)

    def test_validation(self):
        from repro.core.filtering import HysteresisGate
        with pytest.raises(ConfigurationError):
            HysteresisGate(high=0.3, low=0.5)
        with pytest.raises(ConfigurationError):
            HysteresisGate(high=0.7, low=0.4, k_enter=0)

    def test_opens_after_k_consecutive(self):
        gate = self.make()
        assert not gate.update(0.9)
        assert gate.update(0.9)
        assert gate.is_open

    def test_single_spike_does_not_open(self):
        gate = self.make()
        gate.update(0.9)
        gate.update(0.5)  # breaks the streak (not > high)
        gate.update(0.9)
        assert not gate.is_open

    def test_closes_after_k_consecutive_low(self):
        gate = self.make()
        gate.update(0.9)
        gate.update(0.9)
        assert gate.is_open
        gate.update(0.2)
        assert gate.is_open  # one low event is not enough
        gate.update(0.2)
        assert not gate.is_open

    def test_mid_band_maintains_state(self):
        # Between low and high: no evidence in either direction.
        gate = self.make()
        gate.update(0.9)
        gate.update(0.9)
        for _ in range(10):
            gate.update(0.55)
        assert gate.is_open

    def test_epsilon_counts_as_closing(self):
        gate = self.make(k_exit=1)
        gate.update(0.9)
        gate.update(0.9)
        gate.update(None)
        assert not gate.is_open

    def test_reset(self):
        gate = self.make()
        gate.update(0.9)
        gate.update(0.9)
        gate.reset()
        assert not gate.is_open

    def test_less_churn_than_plain_gate(self, rng):
        """The design goal: on noisy qualities the hysteresis gate flips
        far less often than the memoryless threshold."""
        from repro.core.filtering import HysteresisGate
        qualities = np.clip(0.55 + rng.normal(0, 0.25, size=400), 0, 1)
        plain_flips = int(np.sum(np.diff(
            (qualities > 0.55).astype(int)) != 0))
        gate = HysteresisGate(high=0.7, low=0.4, k_enter=2, k_exit=2)
        states = [gate.update(q) for q in qualities]
        hysteresis_flips = int(np.sum(np.diff(
            np.array(states).astype(int)) != 0))
        assert hysteresis_flips < plain_flips / 2
