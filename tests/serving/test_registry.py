"""Versioned registry: publication, atomic activation, audit trail."""

import pytest

from repro import observability as obs
from repro.core.degradation import DegradationPolicy
from repro.exceptions import ConfigurationError
from repro.serving import ModelRegistry


class TestModelRegistry:
    def test_empty_registry_has_no_current(self):
        registry = ModelRegistry()
        assert registry.active_version is None
        with pytest.raises(ConfigurationError, match="no active model"):
            registry.current()

    def test_publish_assigns_dense_versions(self, package):
        registry = ModelRegistry()
        assert registry.publish(package) == 1
        assert registry.publish(package) == 2
        assert registry.versions() == [1, 2]
        assert len(registry) == 2
        # Publishing alone does not activate.
        assert registry.active_version is None

    def test_publish_and_activate(self, package, experiment):
        registry = ModelRegistry()
        version = registry.publish_and_activate(
            package, classifier=experiment.classifier, tag="v1")
        assert version == 1
        model = registry.current()
        assert model.version == 1
        assert model.tag == "v1"
        assert model.threshold == package.threshold
        assert model.quality is package.quality

    def test_activate_unknown_version(self, package):
        registry = ModelRegistry()
        registry.publish(package)
        with pytest.raises(ConfigurationError, match="unknown model version"):
            registry.activate(9)

    def test_swap_history_records_transitions(self, package):
        registry = ModelRegistry()
        registry.publish_and_activate(package)
        registry.publish(package)
        registry.activate(2)
        registry.activate(1)
        assert registry.swap_history == [(None, 1), (1, 2), (2, 1)]
        assert registry.active_version == 1

    def test_get_returns_any_published_version(self, package):
        registry = ModelRegistry()
        registry.publish_and_activate(package, tag="a")
        registry.publish_and_activate(package, tag="b")
        assert registry.get(1).tag == "a"
        assert registry.get(2).tag == "b"
        with pytest.raises(ConfigurationError, match="unknown model"):
            registry.get(3)

    def test_make_degrader_uses_package_threshold(self, package):
        registry = ModelRegistry()
        registry.publish_and_activate(package)
        degrader = registry.current().make_degrader(
            DegradationPolicy.ABSTAIN)
        assert degrader.threshold == package.threshold
        assert degrader.policy is DegradationPolicy.ABSTAIN

    def test_registry_metrics(self, package):
        with obs.observed(fresh=True) as (registry_obs, _):
            registry = ModelRegistry()
            registry.publish_and_activate(package)
            registry.publish_and_activate(package)
            snapshot = registry_obs.snapshot()
        assert snapshot["counters"]["serving.registry.published_total"] == 2
        assert snapshot["counters"]["serving.registry.swaps_total"] == 2
        assert snapshot["gauges"]["serving.registry.active_version"] == 2
