"""Versioned registry: publication, atomic activation, audit trail."""

import threading

import pytest

from repro import observability as obs
from repro.core.degradation import DegradationPolicy
from repro.exceptions import ConfigurationError
from repro.serving import ModelRegistry


class TestModelRegistry:
    def test_empty_registry_has_no_current(self):
        registry = ModelRegistry()
        assert registry.active_version is None
        with pytest.raises(ConfigurationError, match="no active model"):
            registry.current()

    def test_publish_assigns_dense_versions(self, package):
        registry = ModelRegistry()
        assert registry.publish(package) == 1
        assert registry.publish(package) == 2
        assert registry.versions() == [1, 2]
        assert len(registry) == 2
        # Publishing alone does not activate.
        assert registry.active_version is None

    def test_publish_and_activate(self, package, experiment):
        registry = ModelRegistry()
        version = registry.publish_and_activate(
            package, classifier=experiment.classifier, tag="v1")
        assert version == 1
        model = registry.current()
        assert model.version == 1
        assert model.tag == "v1"
        assert model.threshold == package.threshold
        assert model.quality is package.quality

    def test_activate_unknown_version(self, package):
        registry = ModelRegistry()
        registry.publish(package)
        with pytest.raises(ConfigurationError, match="unknown model version"):
            registry.activate(9)

    def test_swap_history_records_transitions(self, package):
        registry = ModelRegistry()
        registry.publish_and_activate(package)
        registry.publish(package)
        registry.activate(2)
        registry.activate(1)
        assert registry.swap_history == [(None, 1), (1, 2), (2, 1)]
        assert registry.active_version == 1

    def test_get_returns_any_published_version(self, package):
        registry = ModelRegistry()
        registry.publish_and_activate(package, tag="a")
        registry.publish_and_activate(package, tag="b")
        assert registry.get(1).tag == "a"
        assert registry.get(2).tag == "b"
        with pytest.raises(ConfigurationError, match="unknown model"):
            registry.get(3)

    def test_make_degrader_uses_package_threshold(self, package):
        registry = ModelRegistry()
        registry.publish_and_activate(package)
        degrader = registry.current().make_degrader(
            DegradationPolicy.ABSTAIN)
        assert degrader.threshold == package.threshold
        assert degrader.policy is DegradationPolicy.ABSTAIN

    def test_registry_metrics(self, package):
        with obs.observed(fresh=True) as (registry_obs, _):
            registry = ModelRegistry()
            registry.publish_and_activate(package)
            registry.publish_and_activate(package)
            snapshot = registry_obs.snapshot()
        assert snapshot["counters"]["serving.registry.published_total"] == 2
        assert snapshot["counters"]["serving.registry.swaps_total"] == 2
        assert snapshot["gauges"]["serving.registry.active_version"] == 2


class TestConcurrentPublishAndActivate:
    """publish_and_activate is one atomic operation, not two.

    Regression: publication and activation used to take the lock twice,
    so two racing callers could interleave as publish(A)=1,
    publish(B)=2, activate(2), activate(1) — caller B gets version 2
    back while version 1 ends up active, and ``swap_history`` shows a
    transition chain that never happened.
    """

    N_THREADS = 8
    N_SWAPS = 25

    def test_threaded_swap_history_stays_a_chain(self, package):
        registry = ModelRegistry()
        start = threading.Event()
        results = [[] for _ in range(self.N_THREADS)]

        def hammer(slot):
            start.wait()
            for k in range(self.N_SWAPS):
                results[slot].append(registry.publish_and_activate(
                    package, tag=f"t{slot}.{k}"))

        threads = [threading.Thread(target=hammer, args=(slot,))
                   for slot in range(self.N_THREADS)]
        for t in threads:
            t.start()
        start.set()
        for t in threads:
            t.join()

        n_total = self.N_THREADS * self.N_SWAPS
        history = registry.swap_history
        assert len(history) == n_total
        # Every activation starts where the previous one ended: a
        # connected chain, no interleaved publish/activate pairs.
        assert history[0][0] is None
        for (_, to_a), (from_b, _) in zip(history, history[1:]):
            assert to_a == from_b
        # The active version is the last link of the chain, and each
        # caller activated exactly the version it was handed back.
        assert registry.active_version == history[-1][1]
        versions = sorted(v for slot in results for v in slot)
        assert versions == list(range(1, n_total + 1))
        for slot, version in [(s, v) for s in range(self.N_THREADS)
                              for v in results[s]]:
            assert registry.get(version).tag.startswith(f"t{slot}.")
