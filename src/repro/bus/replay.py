"""Offset-addressed replay of the bus event log into golden traces.

The payoff of logging every accepted publish
(:class:`~repro.bus.log.EventLog`): any bus run — an office scenario, a
failure drill, a production incident — can be re-derived from its log
alone and compared bit-for-bit against what the live consumers saw,
using the PR-5 golden-trace harness (:mod:`repro.verify.golden`).

A **bus trace** is a :class:`~repro.verify.golden.GoldenTrace` with two
kinds of stages:

* ``events:<source>`` — per publishing source, arrays of the sequence
  numbers, qualities (ε encoded as NaN), timestamps and context indices
  of its events *after* dedupe, in sequence order.  Per-source arrays
  make the trace insensitive to cross-source interleaving, which
  at-least-once delivery does not (and need not) pin.
* ``camera`` — the whiteboard camera's decisions (snapshot times,
  session starts, writing-event counts, accepted/rejected totals) when
  the run drove one; this pins the *appliance-visible* outcome, the
  paper's actual object of interest.

:func:`replay_log` rebuilds the same trace from the log: read records
in offset order, drop publisher-retry duplicates on ``(source, seq)``,
re-run a fresh camera over the deduped stream.  A live trace recorded
with :func:`capture_bus_trace` then diffs clean against the replay —
``repro bus replay --golden`` is that check as a command.

A ``meta.json`` sidecar in the log directory carries what the log
itself cannot: the run's seed and the camera gate configuration.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..appliances.bus import EventBus
from ..appliances.camera import WhiteboardCamera
from ..appliances.messages import ContextEvent
from ..core.filtering import EpsilonPolicy, QualityFilter
from ..exceptions import BusError, ConfigurationError
from ..verify.golden import ArrayRecord, GoldenDiff, GoldenTrace, \
    StageRecord, diff_traces
from .log import EventLog

META_NAME = "meta.json"


@dataclasses.dataclass(frozen=True)
class RunMeta:
    """Replay sidecar: the run parameters the event log cannot carry."""

    seed: int
    gate_threshold: Optional[float] = None
    gate_epsilon_policy: str = "reject"
    camera_topic: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        return {"kind": "bus_run_meta", "seed": self.seed,
                "gate_threshold": self.gate_threshold,
                "gate_epsilon_policy": self.gate_epsilon_policy,
                "camera_topic": self.camera_topic}

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "RunMeta":
        if payload.get("kind") != "bus_run_meta":
            raise ConfigurationError(
                f"not a bus run meta: kind={payload.get('kind')!r}")
        threshold = payload.get("gate_threshold")
        return cls(seed=int(payload["seed"]),  # type: ignore[arg-type]
                   gate_threshold=(None if threshold is None
                                   else float(threshold)),  # type: ignore[arg-type]
                   gate_epsilon_policy=str(
                       payload.get("gate_epsilon_policy", "reject")),
                   camera_topic=(None if payload.get("camera_topic") is None
                                 else str(payload["camera_topic"])))

    def gate(self) -> Optional[QualityFilter]:
        if self.gate_threshold is None:
            return None
        return QualityFilter(
            threshold=self.gate_threshold,
            epsilon_policy=EpsilonPolicy(self.gate_epsilon_policy))

    def save(self, log_dir) -> pathlib.Path:
        path = pathlib.Path(log_dir) / META_NAME
        path.write_text(json.dumps(self.to_dict(), indent=2,
                                   sort_keys=True) + "\n")
        return path

    @classmethod
    def load(cls, log_dir) -> "RunMeta":
        path = pathlib.Path(log_dir) / META_NAME
        if not path.exists():
            raise BusError(f"no {META_NAME} sidecar in {log_dir}")
        return cls.from_dict(json.loads(path.read_text()))


def dedupe_events(events: Sequence[ContextEvent]) -> List[ContextEvent]:
    """Drop repeated ``(source, seq)`` identities, keeping first arrival.

    The consumer-side at-least-once contract applied offline: publisher
    retries and broker redeliveries may both put the same identity in
    front of us more than once; only the first counts.
    """
    seen: Set[Tuple[str, int]] = set()
    out: List[ContextEvent] = []
    for event in events:
        key = (event.source, event.seq)
        if key in seen:
            continue
        seen.add(key)
        out.append(event)
    return out


def capture_bus_trace(seed: int, events: Sequence[ContextEvent],
                      camera: Optional[WhiteboardCamera] = None
                      ) -> GoldenTrace:
    """Build the golden trace of one bus run.

    *events* are the deduped events a consumer handled (or a replay
    reconstructed); *camera* optionally contributes the appliance-state
    stage.  Events are grouped per source and sorted by ``seq``, so two
    runs that delivered the same per-source streams — whatever the
    cross-source interleaving or redelivery noise — produce identical
    traces.
    """
    per_source: Dict[str, List[ContextEvent]] = {}
    for event in events:
        per_source.setdefault(event.source, []).append(event)
    stages: List[StageRecord] = []
    for source in sorted(per_source):
        stream = sorted(per_source[source], key=lambda e: e.seq)
        arrays = [
            ("seqs", np.array([e.seq for e in stream], dtype=float)),
            ("qualities", np.array(
                [np.nan if e.quality is None else e.quality
                 for e in stream], dtype=float)),
            ("times", np.array([e.time_s for e in stream], dtype=float)),
            ("contexts", np.array([e.context.index for e in stream],
                                  dtype=float)),
        ]
        stages.append(StageRecord(
            stage=f"events:{source}",
            arrays=tuple(ArrayRecord.capture(name, array)
                         for name, array in arrays)))
    if camera is not None:
        snaps = camera.snapshots
        arrays = [
            ("snapshot_times", np.array([s.time_s for s in snaps],
                                        dtype=float)),
            ("session_starts", np.array([s.session_start_s for s in snaps],
                                        dtype=float)),
            ("n_writing_events", np.array([s.n_writing_events
                                           for s in snaps], dtype=float)),
            ("totals", np.array([camera.accepted_events,
                                 camera.rejected_events,
                                 len(snaps)], dtype=float)),
        ]
        stages.append(StageRecord(
            stage="camera",
            arrays=tuple(ArrayRecord.capture(name, array)
                         for name, array in arrays)))
    return GoldenTrace(seed=int(seed), stages=tuple(stages))


def read_log_events(log_dir, start: int = 0,
                    count: Optional[int] = None) -> List[ContextEvent]:
    """Events of the log at *log_dir* in offset order (not deduped)."""
    with EventLog(log_dir) as log:
        events = []
        for _offset, record in log.read(start=start, count=count):
            if not isinstance(record, dict) or "event" not in record:
                raise BusError(f"log record without event payload: "
                               f"{record!r}")
            events.append(ContextEvent.from_wire(record["event"]))
        return events


def replay_log(log_dir, meta: Optional[RunMeta] = None) -> GoldenTrace:
    """Reconstruct the run's golden trace from its event log alone.

    Reads every record in offset order, dedupes on ``(source, seq)``,
    and — when the run drove a camera (``meta.camera_topic``) — re-runs
    a fresh :class:`WhiteboardCamera` with the logged gate over the
    deduped stream on a private in-process bus.
    """
    meta = meta if meta is not None else RunMeta.load(log_dir)
    events = dedupe_events(read_log_events(log_dir))
    camera: Optional[WhiteboardCamera] = None
    if meta.camera_topic is not None:
        bus = EventBus()
        camera = WhiteboardCamera(bus, gate=meta.gate(),
                                  topic=meta.camera_topic)
        last_time = 0.0
        for event in events:
            bus.publish(event)
            last_time = max(last_time, event.time_s)
        camera.flush(last_time)
    return capture_bus_trace(meta.seed, events, camera=camera)


def check_replay(log_dir, golden_path,
                 rtol: float = 0.0, atol: float = 0.0) -> GoldenDiff:
    """Replay the log and diff against a stored bus trace.

    Defaults to zero tolerance: the replayed arrays are rebuilt from
    the same JSON numbers the live run logged, so the match must be
    bit-identical — any drift means the log and the consumer disagree.
    """
    golden = GoldenTrace.load(pathlib.Path(golden_path))
    return diff_traces(replay_log(log_dir), golden, rtol=rtol, atol=atol)
