"""Experiment ``radius`` — subtractive-clustering radius sweep.

Paper 2.2.1 adopts Chiu's parameterization for "good cluster
determination".  This ablation sweeps the neighborhood radius r_a used to
identify the quality-FIS structure and reports rule count, check RMSE and
ranking quality — showing the design point is robust.
"""

import numpy as np
import pytest

from repro.core import (ConstructionConfig, QualityAugmentedClassifier,
                        build_quality_measure, calibrate)
from repro.core.construction import quality_training_data
from repro.stats.metrics import auc

RADII = [0.15, 0.3, 0.5, 0.7]


def _build_and_score(experiment, radius):
    material = experiment.material
    result = build_quality_measure(
        experiment.classifier, material.quality_train,
        material.quality_check,
        config=ConstructionConfig(radius=radius, epochs=30))
    v_check, y_check, _ = quality_training_data(
        experiment.classifier, material.quality_check)
    rmse = float(np.sqrt(np.mean(
        (result.quality.system.evaluate(v_check) - y_check) ** 2)))
    augmented = QualityAugmentedClassifier(experiment.classifier,
                                           result.quality)
    cal = calibrate(augmented, material.analysis)
    usable = cal.data.usable
    score = auc(cal.data.qualities[usable], cal.data.correct[usable])
    return result.n_rules, rmse, score


@pytest.mark.parametrize("radius", RADII)
def test_radius_sweep(benchmark, experiment, report, radius):
    n_rules, rmse, score = benchmark.pedantic(
        _build_and_score, args=(experiment, radius), rounds=1, iterations=1)
    report.row("radius", f"r_a={radius}",
               "Chiu default band 0.2-0.5",
               f"rules={n_rules} checkRMSE={rmse:.3f} AUC={score:.3f}")
    assert n_rules >= 1
    assert score > 0.6  # structure identification is robust over the band


def test_default_radius_competitive(benchmark, experiment, report):
    """The library default radius must be within reach of the best sweep
    point — the paper does not tune this knob per deployment."""
    from repro.core import ConstructionConfig
    default = ConstructionConfig().radius

    def sweep():
        return {radius: _build_and_score(experiment, radius)[2]
                for radius in set(RADII) | {default}}

    scores = benchmark.pedantic(sweep, rounds=1, iterations=1)
    best = max(scores.values())
    report.row("radius", f"AUC(default {default}) vs best",
               "near best", f"{scores[default]:.3f} vs {best:.3f}")
    assert scores[default] >= best - 0.1
