"""Golden traces: content-hashed per-stage snapshots of the pipeline.

:func:`capture_trace` runs the full AwarePen experiment for one seed and
records, for every pipeline stage in order, a sha256 content hash plus a
small set of numeric probes (shape, NaN count, sum, extrema, strided
samples) of each stage artifact.  :func:`diff_traces` compares a freshly
captured trace against a stored golden one and names the **first
diverging stage** — turning "the numbers moved" into "the drift enters
the pipeline at ``clustering``".

The pass/fail criterion is the numeric probes compared under a relative
tolerance; the content hashes are reported informationally.  Hashes pin
bit-exactness on the platform that captured the golden, but BLAS or
libm differences may legitimately change last-ULP bits elsewhere — the
probes are what the CI gate enforces.

The shipped golden for seed 7 lives in ``golden_data/seed7.json`` inside
this package and is refreshed with ``repro verify --update-golden``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import pathlib
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..anfis.initialization import fis_from_clusters
from ..anfis.lse import fit_consequents
from ..clustering.subtractive import SubtractiveClustering
from ..core.construction import ConstructionConfig, quality_training_data
from ..core.quality import QualityMeasure
from ..exceptions import ConfigurationError
from ..fuzzy.tsk import TSKSystem

#: Pipeline stages in the order the drift diff walks them.
STAGE_ORDER: Tuple[str, ...] = (
    "material", "classifier", "quality_data", "clustering", "initial_lse",
    "tsk", "cqm", "populations", "threshold", "probabilities", "evaluation",
)

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent / "golden_data"

#: Number of strided flat samples probed per array.
N_SAMPLES = 8


def default_golden_path(seed: int = 7) -> pathlib.Path:
    """Location of the stored golden trace for *seed*."""
    return GOLDEN_DIR / f"seed{int(seed)}.json"


def _fmt(value: float) -> str:
    """Round-trippable text encoding (JSON has no NaN/inf literals)."""
    return repr(float(value))


def _content_hash(array: np.ndarray) -> str:
    array = np.ascontiguousarray(array, dtype=float)
    digest = hashlib.sha256()
    digest.update(str(array.shape).encode())
    digest.update(array.tobytes())
    return digest.hexdigest()


@dataclasses.dataclass(frozen=True)
class ArrayRecord:
    """Hash + numeric probes of one stage artifact."""

    name: str
    shape: Tuple[int, ...]
    sha256: str
    n_nan: int
    probes: Dict[str, str]          # field -> repr(float)

    @classmethod
    def capture(cls, name: str, array: np.ndarray) -> "ArrayRecord":
        array = np.asarray(array, dtype=float)
        flat = array.ravel()
        finite_sum = float(np.nansum(flat)) if flat.size else 0.0
        probes = {"sum": _fmt(finite_sum)}
        if flat.size:
            probes["min"] = _fmt(np.nanmin(flat)) if not np.all(
                np.isnan(flat)) else _fmt(np.nan)
            probes["max"] = _fmt(np.nanmax(flat)) if not np.all(
                np.isnan(flat)) else _fmt(np.nan)
            stride = max(1, flat.size // N_SAMPLES)
            for k, value in enumerate(flat[::stride][:N_SAMPLES]):
                probes[f"sample{k}"] = _fmt(value)
        return cls(name=name, shape=tuple(array.shape),
                   sha256=_content_hash(array),
                   n_nan=int(np.sum(np.isnan(flat))), probes=probes)

    def to_dict(self) -> Dict:
        return {"name": self.name, "shape": list(self.shape),
                "sha256": self.sha256, "n_nan": self.n_nan,
                "probes": dict(self.probes)}

    @classmethod
    def from_dict(cls, payload: Dict) -> "ArrayRecord":
        return cls(name=payload["name"], shape=tuple(payload["shape"]),
                   sha256=payload["sha256"], n_nan=int(payload["n_nan"]),
                   probes=dict(payload["probes"]))


@dataclasses.dataclass(frozen=True)
class StageRecord:
    stage: str
    arrays: Tuple[ArrayRecord, ...]

    def to_dict(self) -> Dict:
        return {"stage": self.stage,
                "arrays": [a.to_dict() for a in self.arrays]}

    @classmethod
    def from_dict(cls, payload: Dict) -> "StageRecord":
        return cls(stage=payload["stage"],
                   arrays=tuple(ArrayRecord.from_dict(a)
                                for a in payload["arrays"]))


@dataclasses.dataclass(frozen=True)
class GoldenTrace:
    """Per-stage records of one full pipeline run."""

    seed: int
    stages: Tuple[StageRecord, ...]

    def stage(self, name: str) -> StageRecord:
        for record in self.stages:
            if record.stage == name:
                return record
        raise KeyError(name)

    def to_dict(self) -> Dict:
        return {"kind": "golden_trace", "seed": self.seed,
                "stage_order": list(STAGE_ORDER),
                "stages": [s.to_dict() for s in self.stages]}

    @classmethod
    def from_dict(cls, payload: Dict) -> "GoldenTrace":
        if payload.get("kind") != "golden_trace":
            raise ConfigurationError(
                f"not a golden trace: kind={payload.get('kind')!r}")
        return cls(seed=int(payload["seed"]),
                   stages=tuple(StageRecord.from_dict(s)
                                for s in payload["stages"]))

    def save(self, path: pathlib.Path) -> None:
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2,
                                   sort_keys=True) + "\n")

    @classmethod
    def load(cls, path: pathlib.Path) -> "GoldenTrace":
        return cls.from_dict(json.loads(pathlib.Path(path).read_text()))


def capture_trace(seed: int = 7,
                  config: ConstructionConfig = ConstructionConfig(),
                  system_mutator: Optional[Callable[[TSKSystem],
                                                    TSKSystem]] = None
                  ) -> GoldenTrace:
    """Run the full pipeline for *seed* and record every stage.

    ``system_mutator`` receives a copy of the trained quality system and
    returns the system used for the ``tsk``/``cqm`` stages — the hook
    behind the negative control: a perturbed consequent must make the
    drift diff name ``tsk``.  The early stages (clustering, initial LSE)
    are recomputed from the experiment's own material; they are pure
    deterministic functions, so the recomputation is exact.
    """
    from ..experiment import run_awarepen_experiment

    result = run_awarepen_experiment(seed=seed, config=config)
    material = result.material
    classifier = result.classifier

    v, y, _ = quality_training_data(classifier, material.quality_train)
    clustering = SubtractiveClustering(radius=config.radius).fit(v)
    initial = fis_from_clusters(clustering, order=config.order)
    initial_coefficients, _ = fit_consequents(initial, v, y)

    system = result.augmented.quality.system
    if system_mutator is not None:
        system = system_mutator(system.copy())
    n_cues = material.analysis.cues.shape[1]
    quality = QualityMeasure(system, n_cues=n_cues)
    predicted = classifier.predict_indices(material.analysis.cues)
    q = quality.measure_batch(material.analysis.cues,
                              predicted.astype(float))

    estimates = result.calibration.estimates
    probabilities = result.calibration.probabilities.as_dict()

    stage_arrays: List[Tuple[str, List[Tuple[str, np.ndarray]]]] = [
        ("material", [
            ("analysis_cues", material.analysis.cues),
            ("analysis_labels", material.analysis.labels.astype(float)),
            ("quality_train_cues", material.quality_train.cues),
            ("quality_check_cues", material.quality_check.cues),
        ]),
        ("classifier", [("predicted_indices", predicted.astype(float))]),
        ("quality_data", [("v_q", v), ("targets", y)]),
        ("clustering", [
            ("centers", clustering.centers),
            ("potentials", clustering.potentials),
            ("sigmas", clustering.sigmas),
        ]),
        ("initial_lse", [("coefficients", initial_coefficients)]),
        ("tsk", [
            ("means", system.means),
            ("sigmas", system.sigmas),
            ("coefficients", system.coefficients),
        ]),
        ("cqm", [("q", q)]),
        ("populations", [
            ("right", np.array([estimates.right.mu, estimates.right.sigma,
                                float(estimates.n_right)])),
            ("wrong", np.array([estimates.wrong.mu, estimates.wrong.sigma,
                                float(estimates.n_wrong)])),
        ]),
        ("threshold", [("s", np.array([result.calibration.s]))]),
        ("probabilities", [
            ("values", np.array([probabilities[k]
                                 for k in sorted(probabilities)])),
        ]),
        ("evaluation", [
            ("accuracy", np.array([result.test_accuracy_before,
                                   result.test_accuracy_after])),
            ("qualities", result.evaluation_qualities),
            ("correct", result.evaluation_correct.astype(float)),
        ]),
    ]
    records = tuple(
        StageRecord(stage=stage,
                    arrays=tuple(ArrayRecord.capture(name, array)
                                 for name, array in arrays))
        for stage, arrays in stage_arrays)
    return GoldenTrace(seed=int(seed), stages=records)


@dataclasses.dataclass(frozen=True)
class Drift:
    """One probe that moved beyond tolerance."""

    stage: str
    array: str
    field: str
    golden: str
    current: str

    def to_text(self) -> str:
        return (f"{self.stage}/{self.array}.{self.field}: "
                f"golden={self.golden} current={self.current}")


@dataclasses.dataclass(frozen=True)
class GoldenDiff:
    """Result of comparing a fresh trace against a stored golden."""

    seed: int
    drifts: Tuple[Drift, ...]
    hash_mismatches: Tuple[str, ...]    # informational: "stage/array"
    n_stages: int
    stage_order: Tuple[str, ...] = STAGE_ORDER

    @property
    def passed(self) -> bool:
        return not self.drifts

    @property
    def first_diverging_stage(self) -> Optional[str]:
        """Earliest compared stage with a numeric drift, or ``None``."""
        for stage in self.stage_order:
            if any(d.stage == stage for d in self.drifts):
                return stage
        return self.drifts[0].stage if self.drifts else None

    def to_text(self) -> str:
        lines = [f"golden trace seed {self.seed}: "
                 f"{self.n_stages} stages compared"]
        if self.hash_mismatches:
            lines.append("  content hashes differ (informational): "
                         + ", ".join(self.hash_mismatches))
        if self.passed:
            lines.append("  all stage probes match the golden")
        else:
            lines.append(f"  FIRST DIVERGING STAGE: "
                         f"{self.first_diverging_stage}")
            lines += ["  drift " + d.to_text() for d in self.drifts[:12]]
            if len(self.drifts) > 12:
                lines.append(f"  ... and {len(self.drifts) - 12} more")
        return "\n".join(lines)


def _values_match(golden: str, current: str, rtol: float,
                  atol: float) -> bool:
    a, b = float(golden), float(current)
    if np.isnan(a) and np.isnan(b):
        return True
    if np.isnan(a) or np.isnan(b):
        return False
    if np.isinf(a) or np.isinf(b):
        return a == b
    return abs(a - b) <= atol + rtol * abs(a)


def diff_traces(current: GoldenTrace, golden: GoldenTrace,
                rtol: float = 1e-9, atol: float = 1e-12) -> GoldenDiff:
    """Compare *current* against *golden*, walking stages in order.

    The walk follows the *golden's* recorded stage sequence, so the diff
    works for any trace shape — the AwarePen pipeline golden and the bus
    replay traces of :mod:`repro.bus.replay` alike.
    """
    if current.seed != golden.seed:
        raise ConfigurationError(
            f"seed mismatch: current={current.seed}, golden={golden.seed}")
    drifts: List[Drift] = []
    hash_mismatches: List[str] = []
    n_stages = 0
    stage_order = tuple(s.stage for s in golden.stages)
    for stage_name in stage_order:
        try:
            golden_stage = golden.stage(stage_name)
            current_stage = current.stage(stage_name)
        except KeyError:
            continue
        n_stages += 1
        current_arrays = {a.name: a for a in current_stage.arrays}
        for g in golden_stage.arrays:
            c = current_arrays.get(g.name)
            if c is None:
                drifts.append(Drift(stage_name, g.name, "presence",
                                    "recorded", "missing"))
                continue
            if c.sha256 != g.sha256:
                hash_mismatches.append(f"{stage_name}/{g.name}")
            if c.shape != g.shape:
                drifts.append(Drift(stage_name, g.name, "shape",
                                    str(g.shape), str(c.shape)))
                continue
            if c.n_nan != g.n_nan:
                drifts.append(Drift(stage_name, g.name, "n_nan",
                                    str(g.n_nan), str(c.n_nan)))
            for field, value in g.probes.items():
                got = c.probes.get(field)
                if got is None or not _values_match(value, got, rtol, atol):
                    drifts.append(Drift(stage_name, g.name, field,
                                        value, got if got is not None
                                        else "missing"))
    return GoldenDiff(seed=golden.seed, drifts=tuple(drifts),
                      hash_mismatches=tuple(hash_mismatches),
                      n_stages=n_stages, stage_order=stage_order)


def check_against_golden(seed: int = 7,
                         path: Optional[pathlib.Path] = None,
                         rtol: float = 1e-9) -> Optional[GoldenDiff]:
    """Capture a fresh trace and diff it against the stored golden.

    Returns ``None`` when no golden exists for *seed* (the caller
    reports "no golden stored" instead of failing).
    """
    path = pathlib.Path(path) if path is not None else default_golden_path(
        seed)
    if not path.exists():
        return None
    golden = GoldenTrace.load(path)
    return diff_traces(capture_trace(seed=seed), golden, rtol=rtol)


def update_golden(seed: int = 7,
                  path: Optional[pathlib.Path] = None) -> pathlib.Path:
    """Capture and store the golden trace for *seed*; returns the path."""
    path = pathlib.Path(path) if path is not None else default_golden_path(
        seed)
    capture_trace(seed=seed).save(path)
    return path
