"""Context-event messages exchanged between appliances.

"The detected situation information is then distributed to other
appliances in the AwareOffice environment" (paper section 1).  A
:class:`ContextEvent` is the unit of that distribution: the source
appliance, the classified context and — the paper's contribution — the
attached Context Quality Measure.

Event identity is the pair ``(source, seq)``: every publisher owns a
monotonic sequence counter for its own events, so identities are stable
across processes and replay (a module-global counter would collide the
moment two appliance processes publish concurrently).  ``event_id``
remains available for backward compatibility as a *derived* field,
computed deterministically from ``(source, seq)`` — equal on every host
that sees the same event.

Events cross process boundaries as plain JSON objects via
:meth:`ContextEvent.to_wire` / :meth:`ContextEvent.from_wire`; the wire
form carries ``quality: null`` for the error state ε.
"""

from __future__ import annotations

import itertools
import dataclasses
import math
import threading
import zlib
from typing import Dict, Iterator, Mapping, Optional

from ..exceptions import ConfigurationError
from ..types import ContextClass

#: Bits of ``event_id`` reserved for the per-source sequence number.
#: 2**40 events per source is ~35 years of 1 kHz publishing.
SEQ_BITS = 40


def derive_event_id(source: str, seq: int) -> int:
    """Deterministic integer identity for the event ``(source, seq)``.

    The source name hashes (CRC-32) into the high bits and the sequence
    number occupies the low :data:`SEQ_BITS`, so ids stay monotonic per
    source while distinct sources land in distinct id ranges.
    """
    return (zlib.crc32(source.encode("utf-8")) << SEQ_BITS) | (
        seq & ((1 << SEQ_BITS) - 1))


# Fallback sequencers for ad-hoc ``ContextEvent.create`` calls that do
# not pass an explicit ``seq`` (appliances own their counters; see
# ``Appliance.publish_context``).  Per-source, so two sources never race
# each other's numbering the way the old module-global counter did.
_fallback_lock = threading.Lock()
_fallback_counters: Dict[str, "Iterator[int]"] = {}


def _fallback_seq(source: str) -> int:
    with _fallback_lock:
        counter = _fallback_counters.setdefault(source, itertools.count(1))
        return next(counter)


def reset_fallback_sequencers() -> None:
    """Forget the ad-hoc per-source counters (test isolation hook)."""
    with _fallback_lock:
        _fallback_counters.clear()


@dataclasses.dataclass(frozen=True)
class ContextEvent:
    """One published context observation.

    Attributes
    ----------
    event_id:
        Derived identifier; equals ``derive_event_id(source, seq)`` for
        every event built through :meth:`create` or :meth:`from_wire`.
    source:
        Name of the publishing appliance, e.g. ``"awarepen"``.
    topic:
        Routing topic, e.g. ``"context.pen"``.
    context:
        The classified context.
    quality:
        The CQM ``q``; ``None`` means the error state epsilon.
    time_s:
        Simulation timestamp of the underlying sensor window.
    seq:
        Publisher-owned monotonic sequence number (identity with
        ``source``; consumers dedupe redeliveries on this pair).
    """

    event_id: int
    source: str
    topic: str
    context: ContextClass
    quality: Optional[float]
    time_s: float
    seq: int = 0

    @classmethod
    def create(cls, source: str, topic: str, context: ContextClass,
               quality: Optional[float], time_s: float,
               seq: Optional[int] = None) -> "ContextEvent":
        """Build an event with a fresh (or caller-owned) identity.

        Publishers that own a sequence counter pass ``seq`` explicitly;
        without it a process-local per-source counter allocates one.
        """
        if seq is None:
            seq = _fallback_seq(source)
        return cls(event_id=derive_event_id(source, seq), source=source,
                   topic=topic, context=context, quality=quality,
                   time_s=time_s, seq=seq)

    @property
    def has_quality(self) -> bool:
        """False when the quality is the epsilon error state."""
        return self.quality is not None

    # -- wire form -----------------------------------------------------
    def to_wire(self) -> Dict[str, object]:
        """JSON-safe dict carrying the event's full identity and payload."""
        return {
            "source": self.source,
            "seq": int(self.seq),
            "topic": self.topic,
            "context": {"index": int(self.context.index),
                        "name": self.context.name},
            "quality": None if self.quality is None else float(self.quality),
            "time_s": float(self.time_s),
        }

    @classmethod
    def from_wire(cls, doc: Mapping[str, object]) -> "ContextEvent":
        """Rebuild an event from its wire form; validates every field.

        ``event_id`` is re-derived from ``(source, seq)``, so a wire
        round-trip of any :meth:`create`-built event is exact equality.
        """
        if not isinstance(doc, Mapping):
            raise ConfigurationError(
                f"event wire form must be an object, got {type(doc).__name__}")
        source = doc.get("source")
        if not isinstance(source, str) or not source:
            raise ConfigurationError(
                f"event source must be a non-empty string, got {source!r}")
        seq = doc.get("seq")
        if not isinstance(seq, int) or isinstance(seq, bool) or seq < 0:
            raise ConfigurationError(
                f"event seq must be an int >= 0, got {seq!r}")
        topic = doc.get("topic")
        if not isinstance(topic, str):
            raise ConfigurationError(
                f"event topic must be a string, got {topic!r}")
        context = doc.get("context")
        if not isinstance(context, Mapping):
            raise ConfigurationError(
                f"event context must be an object, got {context!r}")
        try:
            ctx = ContextClass(index=int(context["index"]),
                               name=str(context["name"]))
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"bad event context {dict(context)!r}: {exc}") from exc
        quality = doc.get("quality")
        if quality is not None:
            try:
                quality = float(quality)
            except (TypeError, ValueError) as exc:
                raise ConfigurationError(
                    f"event quality must be null or a number, got "
                    f"{quality!r}") from exc
            if not math.isfinite(quality):
                raise ConfigurationError(
                    f"event quality must be finite or null (epsilon), "
                    f"got {quality!r}")
        try:
            time_s = float(doc.get("time_s", 0.0))  # type: ignore[arg-type]
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"event time_s must be a number, got "
                f"{doc.get('time_s')!r}") from exc
        if not math.isfinite(time_s):
            raise ConfigurationError(
                f"event time_s must be finite, got {time_s!r}")
        return cls.create(source=source, topic=topic, context=ctx,
                          quality=quality, time_s=time_s, seq=seq)
