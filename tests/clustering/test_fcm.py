"""Tests for repro.clustering.fcm (fuzzy c-means)."""

import numpy as np
import pytest

from repro.clustering.fcm import FuzzyCMeans
from repro.exceptions import ConfigurationError, TrainingError


def make_blobs(rng, centers, n=40, spread=0.15):
    return np.vstack([rng.normal(c, spread, size=(n, len(c)))
                      for c in centers])


class TestValidation:
    def test_n_clusters_positive(self):
        with pytest.raises(ConfigurationError):
            FuzzyCMeans(n_clusters=0)

    def test_fuzzifier_above_one(self):
        with pytest.raises(ConfigurationError):
            FuzzyCMeans(n_clusters=2, m=1.0)

    def test_too_few_samples(self):
        with pytest.raises(TrainingError):
            FuzzyCMeans(n_clusters=5, seed=0).fit(np.zeros((3, 2)))

    def test_bad_initial_centers_shape(self, rng):
        x = rng.normal(size=(20, 2))
        with pytest.raises(ConfigurationError):
            FuzzyCMeans(n_clusters=2, seed=0).fit(
                x, initial_centers=np.zeros((3, 2)))


class TestClustering:
    def test_memberships_are_a_partition(self, rng):
        x = make_blobs(rng, [(0, 0), (4, 4)])
        result = FuzzyCMeans(n_clusters=2, seed=0).fit(x)
        np.testing.assert_allclose(result.memberships.sum(axis=1), 1.0)
        assert np.all(result.memberships >= 0)

    def test_finds_blob_centers(self, rng):
        x = make_blobs(rng, [(0.0, 0.0), (4.0, 4.0)])
        result = FuzzyCMeans(n_clusters=2, seed=0).fit(x)
        for true in [(0.0, 0.0), (4.0, 4.0)]:
            d = np.linalg.norm(result.centers - np.array(true), axis=1)
            assert np.min(d) < 0.3

    def test_hard_labels_separate_blobs(self, rng):
        x = make_blobs(rng, [(0, 0), (5, 5)], n=30)
        result = FuzzyCMeans(n_clusters=2, seed=0).fit(x)
        labels = result.hard_labels()
        first = labels[:30]
        second = labels[30:]
        # Each blob gets a single consistent label.
        assert len(np.unique(first)) == 1
        assert len(np.unique(second)) == 1
        assert first[0] != second[0]

    def test_converges(self, rng):
        x = make_blobs(rng, [(0, 0), (4, 4)])
        result = FuzzyCMeans(n_clusters=2, seed=0, max_iter=300).fit(x)
        assert result.converged
        assert result.n_iterations < 300

    def test_deterministic_given_seed(self, rng):
        x = make_blobs(rng, [(0, 0), (4, 4)])
        a = FuzzyCMeans(n_clusters=2, seed=42).fit(x)
        b = FuzzyCMeans(n_clusters=2, seed=42).fit(x)
        np.testing.assert_allclose(a.centers, b.centers)

    def test_initial_centers_respected(self, rng):
        x = make_blobs(rng, [(0, 0), (4, 4)])
        init = np.array([[0.0, 0.0], [4.0, 4.0]])
        result = FuzzyCMeans(n_clusters=2, seed=0).fit(x,
                                                       initial_centers=init)
        # With perfect initialization order is preserved.
        assert np.linalg.norm(result.centers[0] - init[0]) < 0.5

    def test_point_on_center_gets_full_membership(self):
        x = np.array([[0.0, 0.0], [0.0, 0.0], [5.0, 5.0], [5.0, 5.0]])
        result = FuzzyCMeans(n_clusters=2, seed=1).fit(x)
        top = result.memberships.max(axis=1)
        np.testing.assert_allclose(top, 1.0, atol=1e-6)

    def test_objective_is_finite_and_nonnegative(self, rng):
        x = make_blobs(rng, [(0, 0), (4, 4)])
        result = FuzzyCMeans(n_clusters=2, seed=0).fit(x)
        assert np.isfinite(result.objective)
        assert result.objective >= 0

    def test_higher_fuzzifier_softer_partition(self, rng):
        x = make_blobs(rng, [(0, 0), (2, 2)], spread=0.4)
        crisp = FuzzyCMeans(n_clusters=2, m=1.5, seed=0).fit(x)
        soft = FuzzyCMeans(n_clusters=2, m=4.0, seed=0).fit(x)
        assert soft.memberships.max(axis=1).mean() <= (
            crisp.memberships.max(axis=1).mean() + 1e-9)
