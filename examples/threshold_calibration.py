#!/usr/bin/env python3
"""Statistical analysis walkthrough: Fig. 5 and Fig. 6 in ASCII.

Reproduces the paper's evaluation figures on the console using the
library renderers in :mod:`repro.viz`: the per-window quality series with
right/wrong markers (Fig. 5) and the two MLE Gaussian densities with the
intersection threshold (Fig. 6), plus the four selection probabilities of
section 2.3.3.

Run:  python examples/threshold_calibration.py
"""

import numpy as np

from repro.experiment import run_awarepen_experiment
from repro.viz import comparison_table, density_plot, quality_series


def main() -> None:
    experiment = run_awarepen_experiment(seed=7)
    cal = experiment.calibration

    print("=== Fig. 5: quality measure for the 24-point test set ===")
    print(quality_series(experiment.evaluation_qualities,
                         experiment.evaluation_correct))
    q = experiment.evaluation_qualities
    usable = ~np.isnan(q)
    right_mean = np.mean(q[usable & experiment.evaluation_correct])
    wrong_mean = np.mean(q[usable & ~experiment.evaluation_correct])
    print(f"\n  mean(right) = {right_mean:.3f}   "
          f"mean(wrong) = {wrong_mean:.3f}")

    print("\n=== Fig. 6: Gaussian densities, threshold at the "
          "intersection ===")
    est = cal.estimates
    print(f"  right: N({est.right.mu:.3f}, {est.right.sigma:.3f}^2)   "
          f"wrong: N({est.wrong.mu:.3f}, {est.wrong.sigma:.3f}^2)\n")
    print(density_plot(est.right, est.wrong, threshold=cal.s))

    print("\n=== Section 2.3.3: selection probabilities ===")
    paper = {"P(right|q>s)": "0.8112", "P(wrong|q<s)": "0.8112",
             "P(right|q<s)": "0.0846", "P(wrong|q>s)": "0.0217",
             "s": "0.81"}
    rows = [(key, paper[key], f"{value:.4f}")
            for key, value in cal.probabilities.as_dict().items()]
    print(comparison_table(rows))


if __name__ == "__main__":
    main()
