"""Triangular norms and conorms (fuzzy AND / OR operators).

The paper's TSK rules combine antecedent memberships with the *product*
t-norm (the rule weight is a product of Gaussian memberships, section
2.1.2).  The Mamdani substrate additionally supports min/max and the
bounded and drastic families, plus standard fuzzy complements.
"""

from __future__ import annotations

from typing import Callable, Dict, Union

import numpy as np

ArrayLike = Union[float, np.ndarray]
Norm = Callable[[ArrayLike, ArrayLike], ArrayLike]


def t_min(a: ArrayLike, b: ArrayLike) -> ArrayLike:
    """Goedel (minimum) t-norm."""
    return np.minimum(a, b)


def t_product(a: ArrayLike, b: ArrayLike) -> ArrayLike:
    """Product t-norm — the conjunction used by the paper's TSK rules."""
    return np.asarray(a, dtype=float) * np.asarray(b, dtype=float)


def t_lukasiewicz(a: ArrayLike, b: ArrayLike) -> ArrayLike:
    """Lukasiewicz (bounded difference) t-norm ``max(0, a + b - 1)``."""
    return np.maximum(0.0, np.asarray(a, dtype=float) + np.asarray(b, dtype=float) - 1.0)


def t_drastic(a: ArrayLike, b: ArrayLike) -> ArrayLike:
    """Drastic t-norm: ``min(a, b)`` if ``max(a, b) == 1`` else 0."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    return np.where(np.maximum(a, b) >= 1.0, np.minimum(a, b), 0.0)


def s_max(a: ArrayLike, b: ArrayLike) -> ArrayLike:
    """Maximum s-norm (dual of min)."""
    return np.maximum(a, b)


def s_probabilistic(a: ArrayLike, b: ArrayLike) -> ArrayLike:
    """Probabilistic sum ``a + b - a b`` (dual of product)."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    return a + b - a * b


def s_lukasiewicz(a: ArrayLike, b: ArrayLike) -> ArrayLike:
    """Bounded sum ``min(1, a + b)`` (dual of Lukasiewicz)."""
    return np.minimum(1.0, np.asarray(a, dtype=float) + np.asarray(b, dtype=float))


def s_drastic(a: ArrayLike, b: ArrayLike) -> ArrayLike:
    """Drastic s-norm: ``max(a, b)`` if ``min(a, b) == 0`` else 1."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    return np.where(np.minimum(a, b) <= 0.0, np.maximum(a, b), 1.0)


def complement_standard(a: ArrayLike) -> ArrayLike:
    """Standard fuzzy complement ``1 - a``."""
    return 1.0 - np.asarray(a, dtype=float)


def complement_sugeno(a: ArrayLike, lam: float = 1.0) -> ArrayLike:
    """Sugeno-class complement ``(1 - a) / (1 + lam a)``, ``lam > -1``."""
    if lam <= -1.0:
        raise ValueError(f"Sugeno complement requires lam > -1, got {lam}")
    a = np.asarray(a, dtype=float)
    return (1.0 - a) / (1.0 + lam * a)


def complement_yager(a: ArrayLike, w: float = 2.0) -> ArrayLike:
    """Yager-class complement ``(1 - a^w)^(1/w)``, ``w > 0``."""
    if w <= 0:
        raise ValueError(f"Yager complement requires w > 0, got {w}")
    a = np.asarray(a, dtype=float)
    return (1.0 - a ** w) ** (1.0 / w)


def reduce_norm(norm: Norm, values: np.ndarray, axis: int = -1) -> np.ndarray:
    """Fold *norm* along *axis* of *values* (e.g. conjoin many memberships).

    For the product and min t-norms fast vectorized reductions are used; for
    arbitrary norms a sequential fold is performed.
    """
    values = np.asarray(values, dtype=float)
    if norm is t_product:
        return np.prod(values, axis=axis)
    if norm is t_min:
        return np.min(values, axis=axis)
    if norm is s_max:
        return np.max(values, axis=axis)
    out = np.take(values, 0, axis=axis)
    for i in range(1, values.shape[axis]):
        out = norm(out, np.take(values, i, axis=axis))
    return out


T_NORMS: Dict[str, Norm] = {
    "min": t_min,
    "product": t_product,
    "lukasiewicz": t_lukasiewicz,
    "drastic": t_drastic,
}

S_NORMS: Dict[str, Norm] = {
    "max": s_max,
    "probabilistic": s_probabilistic,
    "lukasiewicz": s_lukasiewicz,
    "drastic": s_drastic,
}


def get_t_norm(name: str) -> Norm:
    """Look up a t-norm by name; raises ``KeyError`` with options on miss."""
    try:
        return T_NORMS[name]
    except KeyError:
        raise KeyError(
            f"unknown t-norm {name!r}; options: {sorted(T_NORMS)}") from None


def get_s_norm(name: str) -> Norm:
    """Look up an s-norm by name; raises ``KeyError`` with options on miss."""
    try:
        return S_NORMS[name]
    except KeyError:
        raise KeyError(
            f"unknown s-norm {name!r}; options: {sorted(S_NORMS)}") from None
