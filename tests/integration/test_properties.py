"""Cross-cutting property and seed-robustness tests.

The reproduction must not be a single lucky seed: the pipeline's
qualitative properties have to hold across data seeds, and the library's
accounting identities have to hold for arbitrary inputs (hypothesis).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.normalization import normalize_array, normalize_scalar
from repro.stats.metrics import filter_outcome
from repro.experiment import run_awarepen_experiment


@pytest.mark.parametrize("seed", [3, 11, 19, 42])
class TestSeedRobustness:
    """The paper's qualitative results across independent data seeds."""

    @pytest.fixture()
    def result(self, seed):
        return run_awarepen_experiment(seed=seed)

    def test_threshold_well_placed(self, seed, result):
        assert 0.0 < result.threshold < 1.0
        est = result.calibration.estimates
        assert est.right.mu > est.wrong.mu
        assert est.wrong.mu < result.threshold < est.right.mu

    def test_filtering_never_hurts_much(self, seed, result):
        outcome = result.evaluation_outcome
        # Filtering must not reduce accuracy by more than noise allows.
        assert outcome.accuracy_after >= outcome.accuracy_before - 0.05

    def test_accounting_identities(self, seed, result):
        outcome = result.evaluation_outcome
        assert outcome.n_kept + outcome.n_discarded == outcome.n_total
        assert outcome.n_wrong_kept <= outcome.n_wrong_total
        assert outcome.n_right_discarded <= outcome.n_total
        assert 0.0 <= outcome.discard_fraction <= 1.0
        assert 0.0 <= outcome.wrong_elimination <= 1.0

    def test_qualities_in_codomain(self, seed, result):
        q = result.evaluation_qualities
        defined = q[~np.isnan(q)]
        assert np.all((defined >= 0.0) & (defined <= 1.0))

    def test_quality_separates_on_average(self, seed, result):
        q = result.evaluation_qualities
        correct = result.evaluation_correct
        usable = ~np.isnan(q)
        if np.any(usable & correct) and np.any(usable & ~correct):
            assert (np.mean(q[usable & correct])
                    > np.mean(q[usable & ~correct]))


class TestNormalizationProperties:
    @given(x=st.floats(-0.5, 1.5, allow_nan=False))
    def test_idempotent_on_mappable_band(self, x):
        once = normalize_scalar(x)
        assert once is not None
        twice = normalize_scalar(once)
        assert twice == pytest.approx(once)

    @given(xs=st.lists(st.floats(-10, 10, allow_nan=False),
                       min_size=1, max_size=50))
    def test_array_scalar_agreement(self, xs):
        arr = normalize_array(np.array(xs))
        for x, q in zip(xs, arr):
            scalar = normalize_scalar(x)
            if scalar is None:
                assert np.isnan(q)
            else:
                assert q == pytest.approx(scalar)

    @given(x=st.floats(-0.5, 1.5, allow_nan=False))
    def test_symmetry_about_half(self, x):
        """L(x) and L(1 - x) are reflections: L(1-x) = 1 - L(x) on the
        mappable band (the designated outputs 0 and 1 are symmetric)."""
        a = normalize_scalar(x)
        b = normalize_scalar(1.0 - x)
        assert a is not None and b is not None
        assert b == pytest.approx(1.0 - a, abs=1e-12)


class TestFilterOutcomeProperties:
    @settings(max_examples=100)
    @given(data=st.data())
    def test_accounting_for_random_inputs(self, data):
        n = data.draw(st.integers(1, 60))
        correct = np.array(data.draw(st.lists(st.booleans(),
                                              min_size=n, max_size=n)))
        qualities = np.array(data.draw(st.lists(
            st.floats(0, 1, allow_nan=False), min_size=n, max_size=n)))
        threshold = data.draw(st.floats(0, 1, allow_nan=False))
        outcome = filter_outcome(correct, qualities, threshold)
        assert outcome.n_kept + outcome.n_discarded == n
        assert outcome.n_wrong_total == int(np.sum(~correct))
        assert 0.0 <= outcome.accuracy_before <= 1.0
        assert 0.0 <= outcome.accuracy_after <= 1.0
        # Kept wrong plus removed wrong equals total wrong.
        removed_wrong = (outcome.n_discarded - outcome.n_right_discarded)
        assert outcome.n_wrong_kept + removed_wrong == outcome.n_wrong_total

    @settings(max_examples=50)
    @given(threshold=st.floats(0, 1, allow_nan=False))
    def test_perfect_scores_give_perfect_filtering(self, threshold):
        correct = np.array([True] * 10 + [False] * 5)
        qualities = np.where(correct, 1.0, 0.0)
        outcome = filter_outcome(correct, qualities, threshold)
        if threshold < 1.0:
            assert outcome.n_wrong_kept == 0
            assert outcome.accuracy_after == 1.0


class TestQualityMeasureBatchAgreement:
    """``measure`` and ``measure_batch`` are the same function (ISSUE
    PR 2 satellite): batch entry i must equal the scalar call on row i,
    with the scalar ``None`` epsilon matching the batch ``NaN``."""

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_elementwise_agreement(self, data, experiment):
        quality = experiment.augmented.quality
        n = data.draw(st.integers(1, 12))
        cue_value = st.one_of(st.floats(-6, 6, allow_nan=False),
                              st.just(float("nan")))
        cues = np.array(data.draw(st.lists(
            st.lists(cue_value, min_size=quality.n_cues,
                     max_size=quality.n_cues),
            min_size=n, max_size=n)))
        indices = np.array(data.draw(st.lists(
            st.integers(0, 4), min_size=n, max_size=n)))
        batch = quality.measure_batch(cues, indices)
        assert batch.shape == (n,)
        for i in range(n):
            scalar = quality.measure(cues[i], int(indices[i]))
            if scalar is None:
                assert np.isnan(batch[i]), (
                    f"row {i}: scalar epsilon but batch {batch[i]!r}")
            else:
                assert not np.isnan(batch[i])
                assert batch[i] == pytest.approx(scalar, abs=1e-12)

    def test_nan_cues_force_epsilon_both_ways(self, experiment):
        quality = experiment.augmented.quality
        cues = np.full((3, quality.n_cues), np.nan)
        batch = quality.measure_batch(cues, np.zeros(3))
        assert np.all(np.isnan(batch))
        assert quality.measure(cues[0], 0) is None
