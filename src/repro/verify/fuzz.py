"""Seeded end-to-end fuzzing of the CQM construction pipeline.

:func:`run_fuzz` generates degenerate datasets — constant cues, single
points, near-duplicate clusters, extreme magnitudes, mixed per-column
scales, tiny sample counts, single-class labels, gross outliers — and
drives each through the construction mini-pipeline (subtractive
clustering → initial FIS → LSE consequents → CQM queries, with a short
hybrid-training run on a rotating subset).  The contract under test:

* the pipeline either **succeeds** or raises a documented exception
  from the :class:`repro.exceptions.ReproError` hierarchy — never a
  bare ``ValueError``/``LinAlgError`` escaping from NumPy internals;
* every produced quality is ``q ∈ [0, 1]`` or the epsilon encoding
  (``NaN`` in batch, ``None`` scalar) — never ``±inf``, never a silent
  out-of-range value.

Everything is driven by one master seed, so a failing case is
reproducible from its report line alone.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Mapping, Optional, Tuple

import numpy as np

from ..anfis.initialization import fis_from_clusters
from ..anfis.lse import fit_consequents
from ..anfis.training import HybridTrainer
from ..clustering.subtractive import SubtractiveClustering
from ..core.quality import QualityMeasure
from ..exceptions import ReproError
from ..fuzzy.tsk import TSKSystem

#: Degenerate dataset generators, cycled over the case budget.
CASE_KINDS: Tuple[str, ...] = (
    "gaussian-control", "constant-cues", "single-point",
    "near-duplicate-clusters", "extreme-large", "extreme-small",
    "mixed-scale", "tiny-set", "single-class", "gross-outlier",
)


def _dataset(rng: np.random.Generator,
             kind: str) -> Tuple[np.ndarray, np.ndarray]:
    """One degenerate (cues, class labels) pair for *kind*."""
    d = int(rng.integers(2, 5))
    n = int(rng.integers(12, 40))
    labels = rng.integers(0, 3, size=n).astype(float)
    if kind == "gaussian-control":
        cues = rng.normal(0.0, 1.0, size=(n, d))
    elif kind == "constant-cues":
        cues = np.tile(rng.normal(size=d), (n, 1))
    elif kind == "single-point":
        n = 1
        cues = rng.normal(size=(1, d))
        labels = np.zeros(1)
    elif kind == "near-duplicate-clusters":
        base = rng.normal(size=(n // 2 + 1, d))
        cues = np.vstack([base, base + 1e-12])[:n]
    elif kind == "extreme-large":
        cues = 1e8 * rng.normal(size=(n, d))
    elif kind == "extreme-small":
        cues = 1e-8 * rng.normal(size=(n, d))
    elif kind == "mixed-scale":
        scales = np.logspace(-8, 8, d)
        cues = scales * rng.normal(size=(n, d))
    elif kind == "tiny-set":
        n = int(rng.integers(2, 5))
        cues = rng.normal(size=(n, d))
        labels = labels[:n]
    elif kind == "single-class":
        cues = rng.normal(size=(n, d))
        labels = np.zeros(n)
    elif kind == "gross-outlier":
        cues = rng.normal(size=(n, d))
        cues[int(rng.integers(0, n))] = 1e6
    else:  # pragma: no cover - guarded by CASE_KINDS
        raise ValueError(kind)
    labels = labels[:cues.shape[0]]
    return cues, labels


@dataclasses.dataclass(frozen=True)
class FuzzCase:
    """Outcome of one fuzzed dataset."""

    index: int
    kind: str
    n_samples: int
    n_cues: int
    outcome: str            # "ok" or "raised"
    detail: str

    def to_text(self) -> str:
        return (f"case {self.index:>3} {self.kind:<24} "
                f"n={self.n_samples:<3} d={self.n_cues} "
                f"{self.outcome}: {self.detail}")


@dataclasses.dataclass(frozen=True)
class FuzzFailure:
    """A contract violation: undocumented exception or invalid q."""

    index: int
    kind: str
    message: str

    def to_text(self) -> str:
        return f"case {self.index} ({self.kind}): {self.message}"


@dataclasses.dataclass(frozen=True)
class FuzzReport:
    seed: int
    cases: Tuple[FuzzCase, ...]
    failures: Tuple[FuzzFailure, ...]

    @property
    def passed(self) -> bool:
        return not self.failures

    @property
    def n_ok(self) -> int:
        return sum(1 for c in self.cases if c.outcome == "ok")

    @property
    def n_raised(self) -> int:
        return sum(1 for c in self.cases if c.outcome == "raised")

    def to_text(self) -> str:
        lines = [f"fuzz seed {self.seed}: {len(self.cases)} cases, "
                 f"{self.n_ok} ok, {self.n_raised} raised documented "
                 f"repro exceptions, {len(self.failures)} contract "
                 f"violations"]
        lines += ["  FAIL " + f.to_text() for f in self.failures]
        return "\n".join(lines)


def _check_qualities(q: np.ndarray, where: str) -> Optional[str]:
    """Return a violation message, or ``None`` when the contract holds."""
    q = np.asarray(q, dtype=float)
    if np.any(np.isinf(q)):
        return f"{where}: infinite quality produced"
    finite = q[~np.isnan(q)]
    if finite.size and (np.any(finite < 0.0) or np.any(finite > 1.0)):
        return (f"{where}: quality outside [0, 1]: "
                f"[{finite.min():.6g}, {finite.max():.6g}]")
    return None


def _run_case(rng: np.random.Generator, cues: np.ndarray,
              labels: np.ndarray, train: bool) -> Tuple[str, List[str]]:
    """Drive one dataset through the mini-pipeline.

    Returns ``(detail, violations)``; documented ``ReproError``
    exceptions are reported via *detail* and are not violations.
    """
    violations: List[str] = []
    v_q = np.hstack([cues, labels[:, None]])
    targets = rng.integers(0, 2, size=cues.shape[0]).astype(float)
    clustering = SubtractiveClustering(radius=0.5).fit(v_q)
    system = fis_from_clusters(clustering, order=1)
    coefficients, _ = fit_consequents(system, v_q, targets)
    system = TSKSystem(system.means, system.sigmas, coefficients,
                       order=system.order)
    if train:
        HybridTrainer(epochs=3, learning_rate=0.02).train(
            system, v_q, targets, v_q, targets)
    quality = QualityMeasure(system, n_cues=cues.shape[1])

    queries = np.vstack([
        cues,
        cues * 10.0 + 5.0,              # far outside the trained region
        np.zeros((1, cues.shape[1])),
    ])
    classes = np.concatenate([labels, labels, [0.0]])
    q = quality.measure_batch(queries, classes)
    violation = _check_qualities(q, "measure_batch")
    if violation:
        violations.append(violation)

    scalar = quality.measure(queries[0], int(classes[0]))
    if scalar is not None:
        violation = _check_qualities(np.array([scalar]), "measure")
        if violation:
            violations.append(violation)
        batch_q = q[0]
        if np.isnan(batch_q):
            violations.append("measure/measure_batch disagree on epsilon")
    elif not np.isnan(q[0]):
        violations.append("measure/measure_batch disagree on epsilon")

    n_eps = int(np.sum(np.isnan(q)))
    detail = (f"{clustering.n_clusters} clusters, "
              f"{q.size - n_eps} finite q, {n_eps} epsilon")
    return detail, violations


def run_fuzz(seed: int = 0, n_cases: int = 40,
             corpus: Optional[Mapping[str, Callable[
                 [np.random.Generator],
                 Tuple[np.ndarray, np.ndarray]]]] = None) -> FuzzReport:
    """Fuzz *n_cases* degenerate datasets derived from *seed*.

    *corpus* extends the built-in degenerate kinds with named external
    dataset generators (e.g. the scenario zoo's per-scenario streams,
    keyed ``scenario:<name>``); the extra kinds join the cycle after
    :data:`CASE_KINDS` and are held to the same contract.
    """
    corpus = dict(corpus) if corpus else {}
    kinds: Tuple[str, ...] = CASE_KINDS + tuple(sorted(corpus))
    cases: List[FuzzCase] = []
    failures: List[FuzzFailure] = []
    for index in range(int(n_cases)):
        kind = kinds[index % len(kinds)]
        rng = np.random.default_rng(int(seed) * 100003 + index)
        if kind in corpus:
            cues, labels = corpus[kind](rng)
            cues = np.asarray(cues, dtype=float)
            labels = np.asarray(labels, dtype=float).ravel()
        else:
            cues, labels = _dataset(rng, kind)
        try:
            # Hybrid training is the slow path; exercise it on a
            # rotating quarter of the budget.
            detail, violations = _run_case(rng, cues, labels,
                                           train=index % 4 == 0)
            outcome = "ok"
        except ReproError as exc:
            detail = f"{type(exc).__name__}: {exc}"
            violations = []
            outcome = "raised"
        except Exception as exc:   # noqa: BLE001 - the contract under test
            detail = f"{type(exc).__name__}: {exc}"
            violations = [f"undocumented exception {type(exc).__name__}: "
                          f"{exc}"]
            outcome = "raised"
        cases.append(FuzzCase(index=index, kind=kind,
                              n_samples=cues.shape[0],
                              n_cues=cues.shape[1], outcome=outcome,
                              detail=detail))
        failures.extend(FuzzFailure(index=index, kind=kind, message=m)
                        for m in violations)
    return FuzzReport(seed=int(seed), cases=tuple(cases),
                      failures=tuple(failures))
