"""Nearest-centroid baseline classifier.

A deliberately simple black box: the quality layer must work regardless of
what produced the context decision (paper section 1: "applicable as an
add-on to any context recognition system").
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from ..exceptions import TrainingError
from ..types import ContextClass
from .base import ContextClassifier


class NearestCentroidClassifier(ContextClassifier):
    """Classify a cue vector to the class with the closest training centroid.

    Parameters
    ----------
    classes:
        Registered context classes.
    standardize:
        When True (default) distances are computed in a per-feature
        z-scored space derived from the training data, so high-variance
        cues do not dominate.
    """

    def __init__(self, classes: Sequence[ContextClass],
                 standardize: bool = True) -> None:
        super().__init__(classes)
        self.standardize = bool(standardize)
        self._centroids: Dict[int, np.ndarray] = {}
        self._scale: Optional[np.ndarray] = None
        self._offset: Optional[np.ndarray] = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "NearestCentroidClassifier":
        x, y = self._validate_training(x, y)
        if self.standardize:
            self._offset = np.mean(x, axis=0)
            std = np.std(x, axis=0)
            self._scale = np.where(std > 0, std, 1.0)
        else:
            self._offset = np.zeros(x.shape[1])
            self._scale = np.ones(x.shape[1])
        xs = (x - self._offset) / self._scale
        self._centroids = {}
        for cls in self.classes:
            members = xs[y == cls.index]
            if len(members) == 0:
                raise TrainingError(
                    f"class {cls.name!r} has no training samples")
            self._centroids[cls.index] = np.mean(members, axis=0)
        self._mark_fitted()
        return self

    def predict_indices(self, x: np.ndarray) -> np.ndarray:
        self._require_fitted()
        x = np.asarray(x, dtype=float)
        if x.ndim == 1:
            x = x.reshape(1, -1)
        xs = (x - self._offset) / self._scale
        indices = np.array(sorted(self._centroids))
        centroids = np.vstack([self._centroids[i] for i in indices])
        d = (np.sum(xs * xs, axis=1)[:, None]
             + np.sum(centroids * centroids, axis=1)[None, :]
             - 2.0 * (xs @ centroids.T))
        return indices[np.argmin(d, axis=1)]
