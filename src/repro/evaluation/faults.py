"""Degradation-curve experiment: the CQM pipeline under injected faults.

Extends the paper's evaluation (accuracy with vs without the quality
gate, section 3) to noisy deployments: the AwarePen pipeline is trained
on clean material, then evaluated on scenario streams whose sensor is
wrapped in a :class:`repro.sensors.faults.FaultInjectingSensor` at every
point of a fault-type × intensity grid.  Each cell reports

* ``accuracy_raw`` — acting on every classification (no CQM), and
* ``accuracy_gated`` — acting only on classifications the quality gate
  accepts under a chosen ε-degradation policy,

so the sweep draws the two degradation curves whose gap is the paper's
claim under stress: the with-CQM appliance should degrade no worse than
the raw one as faults intensify.

Cells are independent, so the grid fans out over
:class:`repro.parallel.ParallelExecutor`; every cell derives its data
seed deterministically from the base seed and its grid position, making
all backends bit-identical.
"""

from __future__ import annotations

import dataclasses
import functools
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.degradation import (DegradationPolicy, GracefulDegrader,
                                apply_policy)
from ..core.interconnection import QualityAugmentedClassifier
from ..datasets.activities import evaluation_script
from ..datasets.generator import generate_dataset
from ..exceptions import ConfigurationError
from ..experiment import run_awarepen_experiment
from ..parallel import ParallelSpec, as_executor
from ..sensors.faults import FaultInjectingSensor, standard_fault_suite
from ..sensors.node import SensorNode
from ..sensors.signal import ADXL_SENSOR

#: Default severity grid for the sweep.
DEFAULT_INTENSITIES = (0.25, 0.5, 1.0)


@dataclasses.dataclass(frozen=True)
class FaultCell:
    """One (fault, intensity) point of the degradation surface."""

    fault: str
    intensity: float
    n_windows: int
    n_accepted: int
    n_abstained: int
    epsilon_fraction: float
    accuracy_raw: float
    accuracy_gated: float

    @property
    def accept_fraction(self) -> float:
        return self.n_accepted / self.n_windows if self.n_windows else 0.0

    @property
    def gating_gain(self) -> float:
        """How much better the gated appliance does than the raw one."""
        return self.accuracy_gated - self.accuracy_raw


@dataclasses.dataclass(frozen=True)
class FaultSweepReport:
    """The full degradation surface plus the clean reference point."""

    seed: int
    policy: DegradationPolicy
    threshold: float
    clean_accuracy_raw: float
    clean_accuracy_gated: float
    cells: Tuple[FaultCell, ...]

    def curve(self, fault: str) -> List[FaultCell]:
        """Cells of one fault type, ordered by intensity."""
        picked = sorted((c for c in self.cells if c.fault == fault),
                        key=lambda c: c.intensity)
        if not picked:
            raise KeyError(
                f"no cells for fault {fault!r}; available: "
                f"{sorted({c.fault for c in self.cells})}")
        return picked

    @property
    def fault_names(self) -> List[str]:
        return sorted({c.fault for c in self.cells})

    def worst_gating_gain(self) -> float:
        """The minimum with-vs-without-CQM margin across the surface."""
        return min(c.gating_gain for c in self.cells)

    def to_text(self) -> str:
        """Human-readable degradation report."""
        lines = [
            f"fault sweep (seed {self.seed}, policy {self.policy.value}, "
            f"s = {self.threshold:.3f})",
            f"clean reference: raw {self.clean_accuracy_raw:.3f}, "
            f"gated {self.clean_accuracy_gated:.3f}",
            f"{'fault':<12} {'intensity':>9} {'windows':>8} {'eps%':>6} "
            f"{'accept%':>8} {'raw':>6} {'gated':>6} {'gain':>7}",
        ]
        for cell in self.cells:
            lines.append(
                f"{cell.fault:<12} {cell.intensity:>9.2f} "
                f"{cell.n_windows:>8d} "
                f"{cell.epsilon_fraction * 100:>5.1f}% "
                f"{cell.accept_fraction * 100:>7.1f}% "
                f"{cell.accuracy_raw:>6.3f} {cell.accuracy_gated:>6.3f} "
                f"{cell.gating_gain:>+7.3f}")
        lines.append(
            f"worst gating gain across the surface: "
            f"{self.worst_gating_gain():+.3f}")
        return "\n".join(lines)


def _cell_seed(base_seed: int, cell_index: int) -> int:
    """Deterministic, well-separated per-cell data seed."""
    return int(base_seed) + 10_000 + 17 * int(cell_index)


def _sweep_cell(task: Tuple[int, str, float],
                augmented: QualityAugmentedClassifier,
                threshold: float, policy_value: str, base_seed: int,
                blocks: int) -> FaultCell:
    """Evaluate one (fault, intensity) cell.

    Module-level and fed plain picklable arguments so the process
    backend can ship it to a worker.
    """
    cell_index, fault_name, intensity = task
    fault = standard_fault_suite()[fault_name].scaled(float(intensity))
    node = SensorNode(sensor=FaultInjectingSensor(base=ADXL_SENSOR,
                                                  fault=fault))
    dataset = generate_dataset(
        lambda rng: evaluation_script(rng, blocks=blocks),
        seed=_cell_seed(base_seed, cell_index), node=node)

    predicted = augmented.classifier.predict_indices(dataset.cues)
    qualities = augmented.quality.measure_batch(
        dataset.cues, predicted.astype(float))
    correct = predicted == dataset.labels
    degrader = GracefulDegrader(threshold=threshold, policy=policy_value)
    outcome, _ = apply_policy(qualities, correct, threshold=threshold,
                              degrader=degrader)
    return FaultCell(
        fault=fault_name,
        intensity=float(intensity),
        n_windows=outcome.n_total,
        n_accepted=outcome.n_accepted,
        n_abstained=outcome.n_abstained,
        epsilon_fraction=outcome.epsilon_fraction,
        accuracy_raw=outcome.accuracy_before,
        accuracy_gated=outcome.accuracy_after,
    )


def run_faults_sweep(seed: int = 7,
                     faults: Optional[Sequence[str]] = None,
                     intensities: Sequence[float] = DEFAULT_INTENSITIES,
                     policy: Union[DegradationPolicy, str]
                     = DegradationPolicy.REJECT,
                     blocks: int = 2,
                     parallel: ParallelSpec = None,
                     max_workers: Optional[int] = None,
                     experiment=None) -> FaultSweepReport:
    """Run the AwarePen degradation sweep over a fault-intensity grid.

    Parameters
    ----------
    seed:
        Master seed: trains the clean pipeline and (offset per cell)
        generates each faulted evaluation stream.
    faults:
        Names from :func:`repro.sensors.faults.standard_fault_suite`
        (default: the whole suite).
    intensities:
        Severity grid in ``(0, 1]``; each fault is ``scaled`` to each.
    policy:
        ε-degradation policy applied by the gate in every cell.
    blocks:
        Scenario length of each cell's evaluation stream.
    parallel, max_workers:
        Execution backend for the grid (see :mod:`repro.parallel`).
    experiment:
        Optional pre-trained :class:`repro.experiment.ExperimentResult`
        to reuse (the sweep then skips its own training run).
    """
    suite = standard_fault_suite()
    if faults is None:
        faults = tuple(suite)
    unknown = [f for f in faults if f not in suite]
    if unknown:
        raise ConfigurationError(
            f"unknown fault(s) {unknown}; available: {sorted(suite)}")
    intensities = tuple(float(i) for i in intensities)
    if not intensities:
        raise ConfigurationError("need >= 1 intensity")
    for i in intensities:
        if not 0.0 < i <= 1.0:
            raise ConfigurationError(
                f"intensities must be in (0, 1], got {i}")
    policy = DegradationPolicy.coerce(policy)

    if experiment is None:
        experiment = run_awarepen_experiment(seed=seed)
    threshold = float(experiment.threshold)
    clean = experiment.evaluation_outcome

    tasks = [(k, fault, intensity)
             for k, (fault, intensity)
             in enumerate((f, i) for f in faults for i in intensities)]
    executor = as_executor(parallel, max_workers=max_workers)
    cells = executor.map(
        functools.partial(_sweep_cell, augmented=experiment.augmented,
                          threshold=threshold, policy_value=policy.value,
                          base_seed=seed, blocks=blocks),
        tasks)
    return FaultSweepReport(
        seed=int(seed),
        policy=policy,
        threshold=threshold,
        clean_accuracy_raw=clean.accuracy_before,
        clean_accuracy_gated=clean.accuracy_after,
        cells=tuple(cells),
    )


def degradation_margins(report: FaultSweepReport) -> Dict[str, float]:
    """Per-fault minimum gating gain — the headline robustness numbers."""
    return {name: min(c.gating_gain for c in report.curve(name))
            for name in report.fault_names}
