"""The scenario zoo feeds the verification fuzzer (PR-5 harness)."""

import numpy as np

from repro.scenarios import registry
from repro.scenarios.corpus import MAX_CORPUS_SECONDS, scenario_corpus
from repro.verify.fuzz import CASE_KINDS, run_fuzz


class TestCorpusShape:
    def test_one_case_per_registered_scenario(self):
        corpus = scenario_corpus()
        assert set(corpus) == {f"scenario:{name}"
                               for name in registry.names()}

    def test_cases_yield_usable_datasets(self):
        corpus = scenario_corpus()
        case = corpus["scenario:faults-overlap-composed"]
        cues, labels = case(np.random.default_rng(3))
        assert cues.ndim == 2 and cues.shape[0] >= 4
        assert labels.shape == (cues.shape[0],)
        assert np.all(np.isfinite(cues))

    def test_cases_are_deterministic_per_seed(self):
        case = scenario_corpus()["scenario:drifting-sensor"]
        a_cues, a_labels = case(np.random.default_rng(11))
        b_cues, b_labels = case(np.random.default_rng(11))
        np.testing.assert_array_equal(a_cues, b_cues)
        np.testing.assert_array_equal(a_labels, b_labels)

    def test_durations_are_capped(self):
        from repro.scenarios.corpus import _capped_sensor
        for spec in registry.iter_specs():
            sensor = _capped_sensor(spec)
            total = sum(s.duration_s for s in sensor.segments)
            original = sum(s.duration_s for s in spec.sensors[0].segments)
            # Per-segment floors (one window's worth) may keep a
            # many-segment scenario slightly above the cap.
            floor = max(sensor.window / sensor.rate_hz, 0.25)
            cap = MAX_CORPUS_SECONDS + len(sensor.segments) * floor
            assert total <= min(cap, original) + 1e-9


class TestFuzzIntegration:
    def test_fuzz_cycles_scenario_kinds(self):
        corpus = scenario_corpus()
        subset = {k: corpus[k] for k in sorted(corpus)[:2]}
        n_kinds = len(CASE_KINDS) + len(subset)
        report = run_fuzz(seed=5, n_cases=n_kinds, corpus=subset)
        assert report.passed, report.to_text()
        seen = {case.kind for case in report.cases}
        assert set(subset) <= seen

    def test_fuzz_without_corpus_unchanged(self):
        report = run_fuzz(seed=5, n_cases=4)
        assert {case.kind for case in report.cases} <= set(CASE_KINDS)
