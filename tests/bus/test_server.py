"""Tests for repro.bus.server — the JSONL-over-TCP broker endpoint."""

import time

import pytest

from repro.appliances.messages import ContextEvent
from repro.bus.broker import BusConfig, partition_for
from repro.bus.client import BusClient, SocketLink
from repro.bus.server import BrokerServer
from repro.exceptions import BusError
from repro.types import ContextClass

CTX = ContextClass(1, "writing")
TOPIC = "context.pen"


def event(seq, source="pen", quality=0.9):
    return ContextEvent.create(source=source, topic=TOPIC, context=CTX,
                               quality=quality, time_s=float(seq), seq=seq)


def wait_for(predicate, timeout_s=10.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


@pytest.fixture
def server(tmp_path):
    config = BusConfig(n_partitions=2, fsync_every=1)
    with BrokerServer(tmp_path / "log", config=config,
                      tick_interval_s=0.02) as broker:
        yield broker


def link_to(server):
    host, port = server._bound
    return SocketLink(host, port, timeout_s=10.0)


class TestSocketLink:
    def test_publish_and_stats(self, server):
        link = link_to(server)
        try:
            partition, offset = link.publish(event(1).to_wire())
            assert partition == partition_for("pen", 2)
            assert offset == 0
            assert link.publish(event(2).to_wire()) == (partition, 1)
            stats = link.stats()
            assert stats["n_published"] == 2
            assert stats["next_offset"] == 2
        finally:
            link.close()

    def test_malformed_publish_rejected(self, server):
        link = link_to(server)
        try:
            with pytest.raises(BusError, match="rejected"):
                link.publish({"source": "pen"})
        finally:
            link.close()

    def test_subscribe_receives_pushed_frames(self, server):
        consumer = link_to(server)
        publisher = link_to(server)
        try:
            frames = []
            _sid, starts = consumer.subscribe(TOPIC, "camera", False,
                                              frames.append)
            assert starts == {}
            publisher.publish(event(1).to_wire())
            assert wait_for(lambda: len(frames) >= 1)
            assert frames[0]["event"]["seq"] == 1
        finally:
            consumer.close()
            publisher.close()

    def test_unsubscribe_stops_frames(self, server):
        consumer = link_to(server)
        publisher = link_to(server)
        try:
            frames = []
            sid, _ = consumer.subscribe(TOPIC, "camera", False,
                                        frames.append)
            consumer.unsubscribe(sid)
            publisher.publish(event(1).to_wire())
            time.sleep(0.1)
            assert frames == []
        finally:
            consumer.close()
            publisher.close()


class TestBusClientOverTcp:
    def test_end_to_end_delivery_with_acks(self, server):
        consumer_link = link_to(server)
        publisher_link = link_to(server)
        client = BusClient(consumer_link, from_start=True)
        try:
            seen = []
            client.subscribe(TOPIC, seen.append, name="camera")
            for seq in range(1, 11):
                publisher_link.publish(event(seq).to_wire())
            assert wait_for(lambda: len(seen) == 10)
            assert [e.seq for e in seen] == list(range(1, 11))
            # Acks are asynchronous; the broker converges to all-acked.
            assert wait_for(
                lambda: publisher_link.stats()["n_acked"] == 10)
        finally:
            client.close()
            publisher_link.close()

    def test_kill_revive_redelivers_over_tcp(self, server):
        consumer_link = link_to(server)
        publisher_link = link_to(server)
        client = BusClient(consumer_link, from_start=True)
        try:
            seen = []
            client.subscribe(TOPIC, seen.append, name="camera")
            client.hold_acks()
            target = partition_for("pen", 2)
            for seq in range(1, 6):
                publisher_link.publish(event(seq).to_wire())
            wait_for(lambda: len(seen) == 5)
            lost = publisher_link.kill_partition(target)
            assert lost >= 0
            for seq in range(6, 9):  # logged while killed
                publisher_link.publish(event(seq).to_wire())
            client.release_acks()
            publisher_link.revive_partition(target)
            assert wait_for(
                lambda: {e.seq for e in seen} == set(range(1, 9)))
            assert [e.seq for e in seen][:8] == list(range(1, 9))
        finally:
            client.close()
            publisher_link.close()


class TestServerLifecycle:
    def test_stop_is_idempotent(self, tmp_path):
        broker = BrokerServer(tmp_path / "log")
        broker.start()
        broker.stop()
        broker.stop()

    def test_counters_survive_stop(self, tmp_path):
        broker = BrokerServer(tmp_path / "log",
                              config=BusConfig(fsync_every=1))
        broker.start()
        link = link_to(broker)
        link.publish(event(1).to_wire())
        link.close()
        broker.stop()
        assert broker.core.n_published == 1
        assert broker.core.log.next_offset == 1
