"""Extension bench ``reliability`` — is the CQM a calibrated probability?

The paper treats q ordinally ("it also shows how right or wrong the
classification was") and thresholds it.  This bench asks the stronger
question: among decisions with q ≈ x, are x of them right?  It reports
the expected calibration error of the raw measure and of a
histogram-recalibrated variant fitted on the analysis set.
"""

import numpy as np

from repro.stats.reliability import (apply_recalibration,
                                     recalibration_map,
                                     reliability_diagram)


def _labeled(experiment, dataset):
    predicted = experiment.classifier.predict_indices(dataset.cues)
    q = experiment.augmented.quality.measure_batch(
        dataset.cues, predicted.astype(float))
    correct = predicted == dataset.labels
    return q, correct


def test_raw_quality_calibration(benchmark, experiment, report):
    material = experiment.material
    q, correct = _labeled(experiment, material.analysis)

    diagram = benchmark(reliability_diagram, q, correct, 6)
    report.row("reliability", "ECE of raw q (analysis set)",
               "q treated ordinally in the paper",
               f"{diagram.expected_calibration_error:.3f}")
    report.row("reliability", "MCE of raw q",
               "-", f"{diagram.max_calibration_error:.3f}")
    # Ordinal sanity: the top occupied bin is at least as accurate as
    # the bottom one.
    occupied = [b for b in diagram.bins if b.n >= 5]
    assert occupied[-1].empirical_accuracy >= occupied[0].empirical_accuracy


def test_recalibrated_quality(benchmark, experiment, report):
    """Histogram recalibration fitted on the analysis set, evaluated on
    an independent hold-out (the evaluation role)."""
    material = experiment.material
    q_fit, c_fit = _labeled(experiment, material.analysis)
    q_test, c_test = _labeled(experiment, material.evaluation)

    table = benchmark.pedantic(recalibration_map, args=(q_fit, c_fit),
                               kwargs={"n_bins": 6}, rounds=1, iterations=1)
    raw = reliability_diagram(q_test, c_test, n_bins=4)
    fixed = reliability_diagram(apply_recalibration(q_test, table),
                                c_test, n_bins=4)
    report.row("reliability", "hold-out ECE raw vs recalibrated",
               "recalibration makes q a probability",
               f"{raw.expected_calibration_error:.3f} vs "
               f"{fixed.expected_calibration_error:.3f}")
    assert np.isfinite(fixed.expected_calibration_error)
