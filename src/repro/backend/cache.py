"""Epoch-level cache of the premise-side forward sweep.

One hybrid-learning epoch historically evaluated the Gaussian
membership layer three times over the same training matrix: once for
the premise gradients, once for the LSE design matrix and once for the
training-RMSE forward pass.  Only the *premise parameters* change
between those evaluations' inputs — and they change exactly once per
epoch, in :func:`repro.anfis.gradient.apply_gradient_step`.

:class:`ForwardCache` exploits that: it stores the ``(w, wbar, total)``
firing arrays for one ``(system, x)`` pair, keyed on the system's
``premise_version`` counter (bumped by every gradient step) plus the
identity of the premise arrays themselves (so rebinding
``system.means`` — e.g. restoring a best-epoch snapshot — also
invalidates).  A hit returns the *same* arrays the previous computation
produced, which is why the cached training path is bit-identical to the
uncached one per backend; a miss recomputes through the active
backend's :meth:`~repro.backend.base.ArrayBackend.firing_strengths`.

The consequent side (``f``, system output) is *not* cached: it depends
on the coefficients, which change twice per epoch, and costs one einsum
— the expensive part of the forward pass is the membership sweep.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


class ForwardCache:
    """Caches the firing sweep for one ``(system, x)`` pair.

    Parameters
    ----------
    system:
        A :class:`~repro.fuzzy.tsk.TSKSystem` (duck-typed: anything
        with ``means``, ``sigmas`` and ``premise_version``).
    x:
        The validated ``(n, d)`` float input matrix the cache is bound
        to.  Cache consumers compare by object identity — the hybrid
        trainer holds one reference to its training matrix for the
        whole run.
    """

    def __init__(self, system, x: np.ndarray) -> None:
        self._system = system
        self._x = x
        self._backend_name: Optional[str] = None
        self._version: Optional[int] = None
        self._means_ref: Optional[np.ndarray] = None
        self._sigmas_ref: Optional[np.ndarray] = None
        self._w: Optional[np.ndarray] = None
        self._wbar: Optional[np.ndarray] = None
        self._total: Optional[np.ndarray] = None
        #: Cache-effectiveness counters (observability and tests).
        self.hits = 0
        self.misses = 0

    def matches(self, system, x: np.ndarray) -> bool:
        """True when this cache is bound to exactly this pair."""
        return system is self._system and x is self._x

    def _stale(self, backend) -> bool:
        system = self._system
        return (self._version != system.premise_version
                or self._backend_name != backend.name
                or self._means_ref is not system.means
                or self._sigmas_ref is not system.sigmas)

    def firing(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(w, wbar, total)`` for the bound pair, recomputing if stale."""
        from . import get_backend

        backend = get_backend()
        if self._stale(backend):
            system = self._system
            self._w, self._wbar, self._total = backend.firing_strengths(
                self._x, system.means, system.sigmas)
            self._version = system.premise_version
            self._backend_name = backend.name
            self._means_ref = system.means
            self._sigmas_ref = system.sigmas
            self.misses += 1
        else:
            self.hits += 1
        return self._w, self._wbar, self._total
