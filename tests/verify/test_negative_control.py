"""The negative controls pinned by the acceptance criteria.

A verification harness is only trustworthy if it demonstrably catches
the regressions it guards against: deliberately perturbing one TSK
consequent coefficient must make both the differential sweep and the
golden drift diff fail *naming the ``tsk`` stage*.
"""

import pytest

from repro.backend import available_backends
from repro.verify import (DifferentialRunner, GoldenTrace, StageFault,
                          default_golden_path, diff_traces, capture_trace)


def _perturb_one_consequent(system):
    """The canonical injected bug: one coefficient off by 1e-3."""
    system.coefficients[0, 0] += 1e-3
    return system


class TestDifferentialNegativeControl:
    def test_perturbed_consequent_fails_naming_tsk(self):
        runner = DifferentialRunner(
            seeds=(7,), fault=StageFault("tsk", _perturb_one_consequent))
        report = runner.run()
        assert not report.passed
        assert report.first_failure == "tsk"

    def test_untouched_stages_still_pass(self):
        runner = DifferentialRunner(
            seeds=(7,), stages=["membership", "tsk", "normalization"],
            fault=StageFault("tsk", _perturb_one_consequent))
        report = runner.run()
        by_name = {s.stage: s for s in report.stages}
        assert by_name["membership"].passed
        assert by_name["normalization"].passed
        assert not by_name["tsk"].passed

    def test_failure_text_names_stage_and_case(self):
        report = DifferentialRunner(
            seeds=(7,), stages=["tsk"],
            fault=StageFault("tsk", _perturb_one_consequent)).run()
        text = report.to_text()
        assert "FIRST DIVERGING STAGE: tsk" in text
        assert "worst:" in text

    @pytest.mark.parametrize("backend", available_backends())
    def test_perturbation_caught_under_every_backend(self, backend):
        """The harness must stay sharp under non-default backends: the
        widened fused/numba tolerances are orders of magnitude below the
        injected 1e-3 fault (numba runs only where it is installed)."""
        report = DifferentialRunner(
            seeds=(7,), stages=["tsk"], backend=backend,
            fault=StageFault("tsk", _perturb_one_consequent)).run()
        assert not report.passed
        assert report.first_failure == "tsk"


class TestGoldenNegativeControl:
    @pytest.fixture(scope="class")
    def golden(self):
        path = default_golden_path(seed=7)
        assert path.exists(), "shipped golden trace is missing"
        return GoldenTrace.load(path)

    def test_mutated_system_drifts_at_tsk(self, golden):
        mutated = capture_trace(seed=7,
                                system_mutator=_perturb_one_consequent)
        diff = diff_traces(mutated, golden)
        assert not diff.passed
        assert diff.first_diverging_stage == "tsk"

    def test_drift_text_names_tsk(self, golden):
        mutated = capture_trace(seed=7,
                                system_mutator=_perturb_one_consequent)
        diff = diff_traces(mutated, golden)
        assert "FIRST DIVERGING STAGE: tsk" in diff.to_text()
