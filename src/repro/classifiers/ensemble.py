"""A majority-vote ensemble over several black-box classifiers.

The paper's CQM is "applicable as an add-on to any context recognition
system" — including one that is itself a committee.  The ensemble is a
single :class:`ContextClassifier` black box: the quality layer sees one
emitted class identifier and never learns that three models voted, so a
whole committee shares **one** quality system (the multi-classifier
scenario of the zoo).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..exceptions import ConfigurationError
from ..types import ContextClass, as_cue_matrix
from .base import ContextClassifier


class VotingEnsemble(ContextClassifier):
    """Hard majority vote over member classifiers.

    Ties break deterministically toward the lowest class index (the
    ``np.argmax`` convention), so ensemble decisions are exactly
    reproducible — a requirement of the scenario golden traces.

    Parameters
    ----------
    classes:
        Registered context classes (shared by every member).
    members:
        At least two :class:`ContextClassifier` instances built over the
        same class set; :meth:`fit` trains them all on the same data.
    """

    def __init__(self, classes: Sequence[ContextClass],
                 members: Sequence[ContextClassifier]) -> None:
        super().__init__(classes)
        if len(members) < 2:
            raise ConfigurationError(
                f"an ensemble needs >= 2 members, got {len(members)}")
        own = tuple(c.index for c in self.classes)
        for member in members:
            if tuple(c.index for c in member.classes) != own:
                raise ConfigurationError(
                    f"member {type(member).__name__} has classes "
                    f"{[c.index for c in member.classes]}, ensemble has "
                    f"{list(own)}")
        self.members = tuple(members)

    def fit(self, x: np.ndarray, y: np.ndarray) -> "VotingEnsemble":
        x, y = self._validate_training(x, y)
        for member in self.members:
            member.fit(x, y)
        self._mark_fitted()
        return self

    def predict_indices(self, x: np.ndarray) -> np.ndarray:
        self._require_fitted()
        x = as_cue_matrix(x)
        votes = np.stack([m.predict_indices(x) for m in self.members])
        n_bins = max(c.index for c in self.classes) + 1
        out = np.empty(votes.shape[1], dtype=int)
        for j in range(votes.shape[1]):
            counts = np.bincount(votes[:, j], minlength=n_bins)
            out[j] = int(np.argmax(counts))
        return out
