"""Tests of the differential runner: all stages agree, reports behave."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.verify import (DifferentialRunner, STAGE_NAMES, StageFault,
                          ulp_distance)


class TestFullSweep:
    def test_all_stages_pass_for_seed7(self, seed7_report):
        assert seed7_report.passed, seed7_report.to_text()
        assert seed7_report.first_failure is None

    def test_every_stage_compared_something(self, seed7_report):
        names = [stage.stage for stage in seed7_report.stages]
        assert names == list(STAGE_NAMES)
        assert all(stage.n_values > 0 for stage in seed7_report.stages)

    def test_exact_stages_report_zero_divergence(self, seed7_report):
        by_name = {s.stage: s for s in seed7_report.stages}
        # Serving and normalization claim bit identity - atol=rtol=0.
        for name in ("normalization", "serving"):
            assert by_name[name].max_abs == 0.0
            assert by_name[name].max_ulp == 0.0

    def test_report_text_names_every_stage(self, seed7_report):
        text = seed7_report.to_text()
        for name in STAGE_NAMES:
            assert name in text
        assert "all stages within tolerance" in text


class TestStageSelection:
    def test_single_fast_stage(self):
        report = DifferentialRunner(seeds=(3,),
                                    stages=["normalization"]).run()
        assert [s.stage for s in report.stages] == ["normalization"]
        assert report.passed

    def test_unknown_stage_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown stage"):
            DifferentialRunner(stages=["einsum"])

    def test_empty_seeds_rejected(self):
        with pytest.raises(ConfigurationError):
            DifferentialRunner(seeds=())

    def test_fault_on_unsupported_stage_rejected(self):
        with pytest.raises(ConfigurationError, match="fault injection"):
            DifferentialRunner(fault=StageFault("cues", lambda s: s))


class TestUlpDistance:
    def test_identical_is_zero(self):
        x = np.array([0.0, 1.0, -3.5, 1e300])
        assert np.all(ulp_distance(x, x) == 0.0)

    def test_adjacent_floats_are_one_ulp(self):
        x = np.array([1.0])
        assert ulp_distance(x, np.nextafter(x, 2.0))[0] == pytest.approx(
            1.0)

    def test_nan_pairs(self):
        a = np.array([np.nan, np.nan])
        b = np.array([np.nan, 1.0])
        distance = ulp_distance(a, b)
        assert distance[0] == 0.0          # shared epsilon encoding
        assert np.isinf(distance[1])       # epsilon vs a real quality
