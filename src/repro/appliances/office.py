"""The AwareOffice environment: appliances wired to one bus.

"The AwareOffice environment is a living laboratory office space" (paper
section 1).  :class:`AwareOffice` assembles the simulated appliances,
drives scripted scenarios through the AwarePen's sensor node, and collects
office-level statistics — the integration surface the examples and
integration tests exercise.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.filtering import QualityFilter
from ..core.interconnection import QualityAugmentedClassifier
from ..exceptions import ConfigurationError
from ..sensors.accelerometer import AWAREPEN_CLASSES
from ..sensors.node import Segment, SensorNode
from ..types import ContextClass
from .awarepen import AwarePen
from .base import Appliance
from .bus import EventBus
from .camera import WhiteboardCamera


@dataclasses.dataclass(frozen=True)
class OfficeRunReport:
    """Statistics of one scenario run through the office."""

    n_windows: int
    n_snapshots: int
    accepted_events: int
    rejected_events: int
    correct_decisions: int
    wrong_decisions: int

    @property
    def pen_accuracy(self) -> float:
        total = self.correct_decisions + self.wrong_decisions
        return self.correct_decisions / total if total else 0.0


class AwareOffice:
    """Container wiring a pen and a camera to one event bus."""

    def __init__(self, augmented: QualityAugmentedClassifier,
                 gate: Optional[QualityFilter] = None,
                 node: Optional[SensorNode] = None,
                 classes: Sequence[ContextClass] = AWAREPEN_CLASSES,
                 bus: Optional[EventBus] = None) -> None:
        self.bus = bus if bus is not None else EventBus()
        self.node = node if node is not None else SensorNode()
        self.classes = tuple(classes)
        self.pen = AwarePen(self.bus, augmented)
        self.camera = WhiteboardCamera(self.bus, gate=gate)
        self._extra: Dict[str, Appliance] = {}

    # ------------------------------------------------------------------
    def add_appliance(self, appliance: Appliance) -> None:
        """Register an additional appliance by name."""
        if appliance.name in self._extra:
            raise ConfigurationError(
                f"appliance {appliance.name!r} already registered")
        self._extra[appliance.name] = appliance

    def appliances(self) -> List[Appliance]:
        """All appliances in the office."""
        return [self.pen, self.camera, *self._extra.values()]

    # ------------------------------------------------------------------
    def run_scenario(self, segments: Sequence[Segment],
                     rng: np.random.Generator) -> OfficeRunReport:
        """Stream one scripted scenario through the pen and camera."""
        windows = self.node.collect(segments, rng, self.classes)
        correct = 0
        wrong = 0
        last_time = 0.0
        for window in windows:
            event = self.pen.process_window(window.cues, time_s=window.time_s)
            last_time = window.time_s
            if event.context.index == window.true_context.index:
                correct += 1
            else:
                wrong += 1
        self.camera.flush(last_time)
        return OfficeRunReport(
            n_windows=len(windows),
            n_snapshots=len(self.camera.snapshots),
            accepted_events=self.camera.accepted_events,
            rejected_events=self.camera.rejected_events,
            correct_decisions=correct,
            wrong_decisions=wrong,
        )
