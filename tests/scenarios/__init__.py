"""Tests for repro.scenarios — the declarative scenario zoo."""
