"""Tests for repro.stats.probabilities — the four CQM probabilities."""

import numpy as np
import pytest

from repro.exceptions import CalibrationError
from repro.stats.gaussian import Gaussian
from repro.stats.mle import estimate_populations
from repro.stats.probabilities import (empirical_probabilities,
                                       probabilities_from_estimates,
                                       selection_probabilities)
from repro.stats.threshold import equal_error_threshold


@pytest.fixture
def populations():
    return Gaussian(0.85, 0.08), Gaussian(0.3, 0.15)


class TestSelectionProbabilities:
    def test_conditional_complements(self, populations):
        right, wrong = populations
        p = selection_probabilities(right, wrong, 0.6)
        assert p.right_given_above + p.wrong_given_above == pytest.approx(1.0)
        assert p.right_given_below + p.wrong_given_below == pytest.approx(1.0)

    def test_good_threshold_gives_high_probabilities(self, populations):
        right, wrong = populations
        p = selection_probabilities(right, wrong, 0.6)
        assert p.right_given_above > 0.8
        assert p.wrong_given_below > 0.8
        assert p.wrong_given_above < 0.2
        assert p.right_given_below < 0.2

    def test_equal_error_point_equalizes(self, populations):
        # The paper reports P(right|q>s) == P(wrong|q<s) at the optimum.
        right, wrong = populations
        s = equal_error_threshold(right, wrong).threshold
        p = selection_probabilities(right, wrong, s)
        assert p.right_given_above == pytest.approx(p.wrong_given_below,
                                                    abs=1e-3)

    def test_prior_shifts_probabilities(self, populations):
        right, wrong = populations
        neutral = selection_probabilities(right, wrong, 0.6)
        skewed = selection_probabilities(right, wrong, 0.6,
                                         prior_right=0.9)
        assert skewed.right_given_above > neutral.right_given_above

    def test_invalid_prior(self, populations):
        right, wrong = populations
        with pytest.raises(CalibrationError):
            selection_probabilities(right, wrong, 0.6, prior_right=1.0)

    def test_extreme_threshold_raises(self, populations):
        right, wrong = populations
        with pytest.raises(CalibrationError):
            selection_probabilities(right, wrong, 1e9)

    def test_as_dict_keys(self, populations):
        right, wrong = populations
        d = selection_probabilities(right, wrong, 0.6).as_dict()
        assert set(d) == {"s", "P(right|q>s)", "P(wrong|q<s)",
                          "P(right|q<s)", "P(wrong|q>s)"}


class TestFromEstimates:
    def test_empirical_prior_used(self, rng):
        q = np.concatenate([rng.normal(0.9, 0.05, 90),
                            rng.normal(0.2, 0.1, 10)])
        correct = np.concatenate([np.ones(90, bool), np.zeros(10, bool)])
        est = estimate_populations(q, correct)
        no_prior = probabilities_from_estimates(est, 0.6)
        with_prior = probabilities_from_estimates(est, 0.6,
                                                  use_empirical_prior=True)
        # 90% right prior boosts P(right | q > s).
        assert with_prior.right_given_above > no_prior.right_given_above


class TestEmpirical:
    def test_perfect_separation(self):
        q = np.array([0.9, 0.95, 0.85, 0.1, 0.2, 0.15])
        correct = np.array([True, True, True, False, False, False])
        p = empirical_probabilities(q, correct, 0.5)
        assert p.right_given_above == 1.0
        assert p.wrong_given_below == 1.0
        assert p.wrong_given_above == 0.0
        assert p.right_given_below == 0.0

    def test_counts(self):
        q = np.array([0.9, 0.6, 0.4, 0.1])
        correct = np.array([True, False, True, False])
        p = empirical_probabilities(q, correct, 0.5)
        assert p.right_given_above == pytest.approx(0.5)
        assert p.wrong_given_below == pytest.approx(0.5)

    def test_degenerate_split_raises(self):
        q = np.array([0.9, 0.8])
        correct = np.array([True, True])
        with pytest.raises(CalibrationError):
            empirical_probabilities(q, correct, 0.1)

    def test_alignment_checked(self):
        with pytest.raises(CalibrationError):
            empirical_probabilities(np.zeros(3), np.zeros(2, bool), 0.5)
