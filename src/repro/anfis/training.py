"""Hybrid ANFIS learning (Jang 1993; paper section 2.2.4).

Each epoch consists of

* a **backward pass**: gradient descent on the Gaussian premise parameters
  against the squared error between designated and actual output, and
* a **forward pass**: a fresh SVD least-squares solve for the linear
  consequent parameters given the newly adapted membership functions.

"The hybrid learning stops for the data set used when a degradation of the
error for a different check data set is continuously observed" — i.e.
early stopping with patience on a held-out check set, returning the
best-check-error snapshot.

The learning rate follows Jang's adaptive step-size heuristics: increase
by ``step_increase`` after four consecutive error reductions, decrease by
``step_decrease`` after two consecutive up-down oscillations.
"""

from __future__ import annotations

import dataclasses
import time
from typing import List, Optional

import numpy as np

from .. import observability as obs
from ..backend import ForwardCache, get_backend
from ..exceptions import ConfigurationError, TrainingError
from ..fuzzy.tsk import TSKSystem
from .gradient import apply_gradient_step, premise_gradients
from .lse import fit_consequents


@dataclasses.dataclass
class EpochRecord:
    """Errors and step size after one hybrid-learning epoch."""

    epoch: int
    train_rmse: float
    check_rmse: Optional[float]
    learning_rate: float


@dataclasses.dataclass
class TrainingReport:
    """Full history of a hybrid-learning run."""

    history: List[EpochRecord]
    best_epoch: int
    best_check_rmse: Optional[float]
    stopped_early: bool

    @property
    def n_epochs(self) -> int:
        return len(self.history)

    @property
    def final_train_rmse(self) -> float:
        return self.history[-1].train_rmse if self.history else float("nan")


def _rmse(system: TSKSystem, x: np.ndarray, y: np.ndarray,
          cache: Optional[ForwardCache] = None) -> float:
    # Single fused forward pass (one validation, one membership sweep);
    # with a matching cache the membership sweep is served from it and
    # only the consequent einsum runs.  The cached expression is the
    # same op sequence the backend's tsk_forward_components performs,
    # so both paths produce identical bits per backend.
    if cache is not None and cache.matches(system, x):
        _, wbar, _ = cache.firing()
        f = get_backend().rule_consequents(x, system.coefficients,
                                           system.order)
        err = np.sum(wbar * f, axis=1) - y
    else:
        err = system.evaluate_components(x).output - y
    return float(np.sqrt(np.mean(err ** 2)))


class HybridTrainer:
    """Configurable hybrid LSE + gradient-descent trainer.

    Parameters
    ----------
    epochs:
        Maximum epochs.
    learning_rate:
        Initial premise-parameter step size.
    patience:
        Consecutive epochs of check-set degradation tolerated before
        stopping early ("continuously observed" degradation).
    adapt_step:
        Enable Jang's step-size adaptation heuristics.
    step_increase, step_decrease:
        Multiplicative factors for the adaptation.
    min_sigma:
        Floor applied to Gaussian widths after every backward pass.
    use_cache:
        Reuse the premise-side firing sweep across the three per-epoch
        consumers (gradients, LSE design matrix, train RMSE) via a
        :class:`~repro.backend.ForwardCache`.  On by default; the cached
        run is bit-identical to the uncached one because cache hits
        return the very arrays the first computation produced.
    """

    def __init__(self, epochs: int = 50, learning_rate: float = 0.05,
                 patience: int = 5, adapt_step: bool = True,
                 step_increase: float = 1.1, step_decrease: float = 0.9,
                 min_sigma: float = 1e-4, use_cache: bool = True) -> None:
        if epochs < 1:
            raise ConfigurationError(f"epochs must be >= 1, got {epochs}")
        if learning_rate <= 0:
            raise ConfigurationError(
                f"learning_rate must be > 0, got {learning_rate}")
        if patience < 1:
            raise ConfigurationError(f"patience must be >= 1, got {patience}")
        if not step_increase > 1.0:
            raise ConfigurationError(
                f"step_increase must be > 1, got {step_increase}")
        if not 0.0 < step_decrease < 1.0:
            raise ConfigurationError(
                f"step_decrease must be in (0, 1), got {step_decrease}")
        self.epochs = int(epochs)
        self.learning_rate = float(learning_rate)
        self.patience = int(patience)
        self.adapt_step = bool(adapt_step)
        self.step_increase = float(step_increase)
        self.step_decrease = float(step_decrease)
        self.min_sigma = float(min_sigma)
        self.use_cache = bool(use_cache)

    @obs.traced("anfis.train")
    def train(self, system: TSKSystem,
              x_train: np.ndarray, y_train: np.ndarray,
              x_check: Optional[np.ndarray] = None,
              y_check: Optional[np.ndarray] = None) -> TrainingReport:
        """Tune *system* in place; returns the training report.

        When a check set is supplied the system ends at the parameters of
        the epoch with the lowest check RMSE (early-stopping snapshot);
        otherwise at the final epoch.
        """
        x_train = np.asarray(x_train, dtype=float)
        y_train = np.asarray(y_train, dtype=float).ravel()
        if x_train.shape[0] != y_train.shape[0]:
            raise TrainingError(
                f"x_train has {x_train.shape[0]} samples but y_train has "
                f"{y_train.shape[0]}")
        has_check = x_check is not None and y_check is not None
        if has_check:
            x_check = np.asarray(x_check, dtype=float)
            y_check = np.asarray(y_check, dtype=float).ravel()
            if x_check.shape[0] != y_check.shape[0]:
                raise TrainingError("check set sizes do not match")

        lr = self.learning_rate
        history: List[EpochRecord] = []
        train_errors: List[float] = []
        best_check = np.inf
        best_epoch = 0
        best_snapshot = system.copy()
        degradation_streak = 0
        stopped_early = False
        cache = ForwardCache(system, x_train) if self.use_cache else None

        # Epoch 0 forward pass: fit consequents for the initial premises.
        coefficients, _ = fit_consequents(system, x_train, y_train,
                                          cache=cache)
        system.coefficients = coefficients

        for epoch in range(1, self.epochs + 1):
            epoch_start = time.perf_counter()
            # Backward pass: premise gradient step.
            grads = premise_gradients(system, x_train, y_train, cache=cache)
            apply_gradient_step(system, grads, lr, min_sigma=self.min_sigma)
            # Forward pass: re-fit consequents for the adapted premises.
            coefficients, _ = fit_consequents(system, x_train, y_train,
                                              cache=cache)
            system.coefficients = coefficients

            train_rmse = _rmse(system, x_train, y_train, cache=cache)
            check_rmse = (_rmse(system, x_check, y_check)
                          if has_check else None)
            history.append(EpochRecord(epoch=epoch, train_rmse=train_rmse,
                                       check_rmse=check_rmse,
                                       learning_rate=lr))
            train_errors.append(train_rmse)

            if obs.STATE.enabled:
                registry = obs.get_registry()
                registry.inc("anfis.epochs_total")
                registry.observe("anfis.epoch_wall_s",
                                 time.perf_counter() - epoch_start)
                registry.set_gauge("anfis.train_rmse", train_rmse)
                registry.observe("anfis.epoch_train_rmse", train_rmse,
                                 edges=obs.LOSS_EDGES)
                if check_rmse is not None:
                    registry.set_gauge("anfis.check_rmse", check_rmse)
                    registry.observe("anfis.epoch_check_rmse", check_rmse,
                                     edges=obs.LOSS_EDGES)

            if self.adapt_step:
                lr = self._adapted_rate(lr, train_errors)

            if has_check:
                if check_rmse < best_check - 1e-12:
                    best_check = check_rmse
                    best_epoch = epoch
                    best_snapshot = system.copy()
                    degradation_streak = 0
                else:
                    degradation_streak += 1
                    if degradation_streak >= self.patience:
                        stopped_early = True
                        break
            else:
                best_epoch = epoch

        if has_check:
            system.means = best_snapshot.means
            system.sigmas = best_snapshot.sigmas
            system.coefficients = best_snapshot.coefficients

        if obs.STATE.enabled:
            span = obs.current_span()
            if span is not None and span.name == "anfis.train":
                span.attrs.update(n_epochs=len(history),
                                  best_epoch=best_epoch,
                                  stopped_early=stopped_early)

        return TrainingReport(
            history=history,
            best_epoch=best_epoch,
            best_check_rmse=None if not has_check else float(best_check),
            stopped_early=stopped_early,
        )

    def _adapted_rate(self, lr: float, errors: List[float]) -> float:
        """Jang's two heuristics on the recent training-error trajectory."""
        if len(errors) >= 5:
            last = errors[-5:]
            if all(last[i + 1] < last[i] for i in range(4)):
                return lr * self.step_increase
        if len(errors) >= 5:
            e = errors[-5:]
            if (e[1] > e[0] and e[2] < e[1] and e[3] > e[2] and e[4] < e[3]):
                return lr * self.step_decrease
        return lr
