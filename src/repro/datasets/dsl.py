"""A tiny textual scenario DSL.

Scripted scenarios are the unit of experimentation; a one-line textual
form makes them usable from the CLI and from config files::

    "writing:8 playing:2.5@erratic writing:6 lying:3"

Each token is ``activity:duration_s`` with an optional ``@style`` suffix.
Activities resolve against a model registry (the pen's by default, the
chair's via ``models=CHAIR_MODELS``); styles against a named style table.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from ..exceptions import ConfigurationError
from ..sensors.accelerometer import (ACTIVITY_MODELS, DEFAULT_STYLE,
                                     ERRATIC_STYLE, ActivityModel, UserStyle)
from ..sensors.node import Segment

#: Named styles available to the DSL.
STYLES: Dict[str, UserStyle] = {
    "default": DEFAULT_STYLE,
    "erratic": ERRATIC_STYLE,
    "heavy": UserStyle(amplitude_scale=2.2, tempo_scale=0.6,
                       tremor=0.06, pause_probability=0.05),
    "light": UserStyle(amplitude_scale=0.5, tempo_scale=1.2,
                       tremor=0.015, pause_probability=0.15),
}


def parse_segment(token: str,
                  models: Mapping[str, ActivityModel],
                  styles: Optional[Mapping[str, UserStyle]] = None
                  ) -> Segment:
    """Parse one ``activity:duration[@style]`` token."""
    styles = styles if styles is not None else STYLES
    token = token.strip()
    if not token:
        raise ConfigurationError("empty scenario token")
    style = DEFAULT_STYLE
    if "@" in token:
        token, style_name = token.rsplit("@", 1)
        try:
            style = styles[style_name]
        except KeyError:
            raise ConfigurationError(
                f"unknown style {style_name!r}; available: "
                f"{sorted(styles)}") from None
    if ":" not in token:
        raise ConfigurationError(
            f"token {token!r} must be 'activity:duration_s'")
    name, duration_text = token.rsplit(":", 1)
    try:
        duration = float(duration_text)
    except ValueError:
        raise ConfigurationError(
            f"invalid duration {duration_text!r} in token {token!r}"
        ) from None
    try:
        model = models[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown activity {name!r}; available: "
            f"{sorted(models)}") from None
    return Segment(model=model, duration_s=duration, style=style)


def parse_scenario(text: str,
                   models: Optional[Mapping[str, ActivityModel]] = None,
                   styles: Optional[Mapping[str, UserStyle]] = None
                   ) -> List[Segment]:
    """Parse a whitespace-separated scenario string into segments."""
    models = models if models is not None else ACTIVITY_MODELS
    tokens = text.split()
    if not tokens:
        raise ConfigurationError("scenario string is empty")
    return [parse_segment(token, models, styles) for token in tokens]


def format_scenario(segments: List[Segment]) -> str:
    """Render segments back into DSL text (inverse of parsing).

    Styles are rendered by identity lookup in :data:`STYLES`; anonymous
    styles fall back to ``default`` rendering (lossy, documented).
    """
    names = {id(style): name for name, style in STYLES.items()}
    tokens = []
    for segment in segments:
        token = f"{segment.model.context.name}:{segment.duration_s:g}"
        style_name = names.get(id(segment.style))
        if style_name and style_name != "default":
            token += f"@{style_name}"
        tokens.append(token)
    return " ".join(tokens)
