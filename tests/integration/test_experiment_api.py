"""Tests for repro.experiment and repro.evaluation.report."""

import numpy as np
import pytest

from repro.classifiers import KNNClassifier
from repro.core import ConstructionConfig
from repro.evaluation import generate_report
from repro.experiment import (classifier_accuracy, run_awarepen_experiment,
                              train_default_classifier)


class TestRunExperimentAPI:
    def test_material_reuse_is_deterministic(self, material):
        a = run_awarepen_experiment(material=material)
        b = run_awarepen_experiment(material=material)
        assert a.threshold == b.threshold

    def test_custom_classifier(self, material):
        classifier = KNNClassifier(material.classes, k=5)
        classifier.fit(material.classifier_train.cues,
                       material.classifier_train.labels)
        result = run_awarepen_experiment(material=material,
                                         classifier=classifier)
        assert result.classifier is classifier
        assert 0.0 < result.threshold < 1.0

    def test_custom_config(self, material):
        result = run_awarepen_experiment(
            material=material, config=ConstructionConfig(radius=0.3,
                                                         epochs=5))
        assert result.construction.n_rules >= 1

    def test_evaluation_size(self):
        result = run_awarepen_experiment(seed=11, evaluation_size=16)
        assert result.evaluation_outcome.n_total == 16
        assert result.evaluation_qualities.shape == (16,)

    def test_result_accessors(self, experiment):
        assert experiment.threshold == experiment.calibration.s
        assert (experiment.test_accuracy_before
                == experiment.evaluation_outcome.accuracy_before)
        assert (experiment.test_accuracy_after
                == experiment.evaluation_outcome.accuracy_after)

    def test_train_default_classifier(self, material):
        classifier = train_default_classifier(material)
        acc = classifier_accuracy(classifier, material.classifier_train)
        assert acc > 0.85

    def test_correct_flags_match_outcome(self, experiment):
        outcome = experiment.evaluation_outcome
        assert int(np.sum(~experiment.evaluation_correct)) == (
            outcome.n_wrong_total)


class TestGeneratedReport:
    def test_contains_all_sections(self, experiment):
        text = generate_report(result=experiment)
        for section in ("Populations and threshold",
                        "Selection probabilities",
                        "Evaluation set",
                        "Per-class thresholds",
                        "Reliability"):
            assert section in text

    def test_quotes_paper_values(self, experiment):
        text = generate_report(result=experiment)
        assert "0.8112" in text
        assert "0.81" in text

    def test_markdown_tables_well_formed(self, experiment):
        text = generate_report(result=experiment)
        for line in text.splitlines():
            if line.startswith("|"):
                assert line.endswith("|")

    def test_fresh_run_by_seed(self):
        text = generate_report(seed=11)
        assert "# CQM experiment report" in text
