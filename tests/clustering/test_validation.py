"""Tests for repro.clustering.validation."""

import numpy as np
import pytest

from repro.clustering.validation import (assign_nearest, davies_bouldin,
                                         partition_coefficient,
                                         partition_entropy,
                                         within_cluster_scatter)
from repro.exceptions import ConfigurationError


@pytest.fixture
def blobs(rng):
    a = rng.normal((0, 0), 0.1, size=(20, 2))
    b = rng.normal((5, 5), 0.1, size=(20, 2))
    x = np.vstack([a, b])
    centers = np.array([[0.0, 0.0], [5.0, 5.0]])
    labels = np.array([0] * 20 + [1] * 20)
    return x, centers, labels


class TestAssignNearest:
    def test_assigns_to_closest(self, blobs):
        x, centers, labels = blobs
        np.testing.assert_array_equal(assign_nearest(x, centers), labels)

    def test_single_center(self):
        x = np.array([[0.0, 0.0], [9.0, 9.0]])
        out = assign_nearest(x, np.array([[1.0, 1.0]]))
        np.testing.assert_array_equal(out, [0, 0])


class TestScatter:
    def test_tight_clusters_low_scatter(self, blobs):
        x, centers, labels = blobs
        assert within_cluster_scatter(x, centers, labels) < 0.1

    def test_wrong_assignment_increases_scatter(self, blobs):
        x, centers, labels = blobs
        flipped = 1 - labels
        good = within_cluster_scatter(x, centers, labels)
        bad = within_cluster_scatter(x, centers, flipped)
        assert bad > good * 10

    def test_shape_mismatch(self, blobs):
        x, centers, labels = blobs
        with pytest.raises(ConfigurationError):
            within_cluster_scatter(x, centers, labels[:-1])


class TestDaviesBouldin:
    def test_separated_blobs_score_low(self, blobs):
        x, centers, labels = blobs
        assert davies_bouldin(x, centers, labels) < 0.2

    def test_overlapping_blobs_score_higher(self, rng):
        a = rng.normal((0, 0), 1.0, size=(30, 2))
        b = rng.normal((1, 1), 1.0, size=(30, 2))
        x = np.vstack([a, b])
        centers = np.array([[0.0, 0.0], [1.0, 1.0]])
        labels = np.array([0] * 30 + [1] * 30)
        assert davies_bouldin(x, centers, labels) > 0.5

    def test_needs_two_clusters(self, blobs):
        x, _, labels = blobs
        with pytest.raises(ConfigurationError):
            davies_bouldin(x, np.array([[0.0, 0.0]]),
                           np.zeros(len(x), dtype=int))


class TestPartitionIndices:
    def test_crisp_partition_coefficient_is_one(self):
        u = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 0.0]])
        assert partition_coefficient(u) == pytest.approx(1.0)

    def test_uniform_partition_coefficient_is_inverse_c(self):
        u = np.full((10, 4), 0.25)
        assert partition_coefficient(u) == pytest.approx(0.25)

    def test_crisp_partition_entropy_is_zero(self):
        u = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert partition_entropy(u) == pytest.approx(0.0, abs=1e-9)

    def test_uniform_partition_entropy_is_log_c(self):
        u = np.full((10, 3), 1.0 / 3.0)
        assert partition_entropy(u) == pytest.approx(np.log(3.0), rel=1e-6)

    def test_dimension_checks(self):
        with pytest.raises(ConfigurationError):
            partition_coefficient(np.zeros(4))
        with pytest.raises(ConfigurationError):
            partition_entropy(np.zeros(4))
