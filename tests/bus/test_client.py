"""Tests for repro.bus.client — the EventBus-compatible adapter."""

import pytest

from repro.appliances.bus import EventBus
from repro.appliances.messages import ContextEvent
from repro.bus.broker import BrokerCore, BusConfig
from repro.bus.client import BusClient, InProcLink
from repro.bus.faults import (FaultyChannel, FrameFault, FrameFaultSchedule,
                              ScheduledFrameFault)
from repro.exceptions import ConfigurationError
from repro.types import ContextClass

CTX = ContextClass(1, "writing")
TOPIC = "context.pen"


def event(seq, source="pen", topic=TOPIC, quality=0.9):
    return ContextEvent.create(source=source, topic=topic, context=CTX,
                               quality=quality, time_s=float(seq), seq=seq)


def make_client(tmp_path, wrap_send=None, **client_kwargs):
    core = BrokerCore(tmp_path, BusConfig(n_partitions=1, fsync_every=1))
    client = BusClient(InProcLink(core, wrap_send=wrap_send),
                       **client_kwargs)
    return core, client


def always(kind, every=1):
    return FrameFaultSchedule(entries=(
        ScheduledFrameFault(FrameFault(kind, every=every)),))


class TestEventBusSurface:
    def test_synchronous_local_delivery(self, tmp_path):
        core, client = make_client(tmp_path)
        with core:
            seen = []
            client.subscribe(TOPIC, seen.append, name="camera")
            assert client.publish(event(1)) == 1
            assert [e.seq for e in seen] == [1]
            assert client.n_published == 1
            assert client.last_publish == (0, 0)

    def test_matches_eventbus_delivery(self, tmp_path):
        """Fault-free, the client delivers exactly what EventBus does."""
        core, client = make_client(tmp_path)
        with core:
            bus = EventBus()
            on_bus, on_client = [], []
            bus.subscribe("context.*", on_bus.append)
            client.subscribe("context.*", on_client.append)
            for seq in range(1, 8):
                e = event(seq, quality=None if seq % 3 == 0 else 0.5)
                assert bus.publish(e) == client.publish(e) == 1
            assert on_bus == on_client  # same events, same order

    def test_wire_roundtrip_preserves_event(self, tmp_path):
        core, client = make_client(tmp_path)
        with core:
            seen = []
            client.subscribe(TOPIC, seen.append)
            original = event(1, quality=None)
            client.publish(original)
            assert seen == [original]  # exact dataclass equality

    def test_multiple_handlers_same_pattern(self, tmp_path):
        core, client = make_client(tmp_path)
        with core:
            a, b = [], []
            client.subscribe(TOPIC, a.append, name="a")
            client.subscribe(TOPIC, b.append, name="b")
            assert client.publish(event(1)) == 2
            assert len(a) == len(b) == 1

    def test_unsubscribe(self, tmp_path):
        core, client = make_client(tmp_path)
        with core:
            seen = []
            client.subscribe(TOPIC, seen.append)
            assert client.unsubscribe(seen.append) == 1
            client.publish(event(1))
            assert seen == []

    def test_empty_pattern_rejected(self, tmp_path):
        core, client = make_client(tmp_path)
        with core:
            with pytest.raises(ConfigurationError):
                client.subscribe("", lambda e: None)

    def test_subscriber_names(self, tmp_path):
        core, client = make_client(tmp_path)
        with core:
            client.subscribe("context.*", lambda e: None, name="camera")
            assert client.subscriber_names() == {"context.*": ["camera"]}


class TestDedupeAndReorder:
    def test_duplicates_deduped(self, tmp_path):
        channel_ref = {}

        def wrap(send):
            channel = FaultyChannel(send, always("duplicate"))
            channel_ref["channel"] = channel
            return channel

        core, client = make_client(tmp_path, wrap_send=wrap)
        with core:
            seen = []
            client.subscribe(TOPIC, seen.append)
            for seq in range(1, 6):
                client.publish(event(seq))
            assert [e.seq for e in seen] == [1, 2, 3, 4, 5]
            assert client.dedupe_dropped == 5
            assert channel_ref["channel"].n_duplicated == 5

    def test_delayed_frames_released_in_sequence_order(self, tmp_path):
        channel_ref = {}

        def wrap(send):
            channel = FaultyChannel(send, always("delay", every=2))
            channel_ref["channel"] = channel
            return channel

        core, client = make_client(tmp_path, wrap_send=wrap)
        with core:
            seen = []
            client.subscribe(TOPIC, seen.append)
            for seq in range(1, 9):
                client.publish(event(seq))
            channel_ref["channel"].flush()  # the last frame was held
            # Every 2nd frame arrives late, but the per-source pending
            # buffer restores sequence order for the handler.
            assert [e.seq for e in seen] == list(range(1, 9))
            assert channel_ref["channel"].n_delayed > 0
            assert client.n_pending == 0

    def test_dropped_frames_recovered_by_redelivery(self, tmp_path):
        def wrap(send):
            return FaultyChannel(send, always("drop", every=3))

        core, client = make_client(tmp_path, wrap_send=wrap)
        with core:
            seen = []
            client.subscribe(TOPIC, seen.append)
            for seq in range(1, 10):
                client.publish(event(seq))
            assert len(seen) < 9  # some frames vanished on the wire
            for _ in range(30):
                core.tick()
                if len(seen) == 9:
                    break
            assert [e.seq for e in seen] == list(range(1, 10))
            assert client.redeliveries_seen > 0
            assert core.n_redelivered > 0

    def test_acks_stay_contiguous_across_a_gap(self, tmp_path):
        """A lost frame must hold the ack watermark below it."""
        fate = {"dropped": False}

        def wrap(send):
            def channel(frame):
                if frame["index"] == 0 and not fate["dropped"]:
                    fate["dropped"] = True
                    return
                send(frame)
            return channel

        core, client = make_client(tmp_path, wrap_send=wrap,
                                   from_start=True)
        with core:
            seen = []
            client.subscribe(TOPIC, seen.append)
            client.publish(event(1))  # dropped on the wire
            client.publish(event(2))
            client.publish(event(3))
            # Frames 1-2 arrived but frame 0 did not: nothing acked.
            assert client.acks_sent == 0
            assert [e.seq for e in seen] == []  # reorder buffer waits
            for _ in range(10):
                core.tick()
                if len(seen) == 3:
                    break
            assert [e.seq for e in seen] == [1, 2, 3]
            assert client.acks_sent > 0
            assert client.n_pending == 0

    def test_hold_and_release_acks(self, tmp_path):
        core, client = make_client(tmp_path)
        with core:
            client.subscribe(TOPIC, lambda e: None)
            client.hold_acks()
            client.publish(event(1))
            client.publish(event(2))
            assert client.acks_sent == 0
            client.release_acks()
            assert client.acks_sent == 1  # one cumulative watermark ack
            assert core.n_acked == 2


class TestDeliveryErrors:
    def test_bounded_ring_with_drop_count(self, tmp_path):
        core, client = make_client(tmp_path, max_delivery_errors=2)
        with core:
            def broken(e):
                raise RuntimeError(f"boom {e.seq}")

            client.subscribe(TOPIC, broken, name="flapping")
            for seq in range(1, 6):
                client.publish(event(seq))
            errors = client.delivery_errors
            assert len(errors) == 2
            assert "boom 4" in errors[0].error
            assert "boom 5" in errors[1].error
            assert client.n_delivery_errors_dropped == 3

    def test_failing_handler_does_not_block_peer(self, tmp_path):
        core, client = make_client(tmp_path)
        with core:
            seen = []

            def broken(e):
                raise RuntimeError("boom")

            client.subscribe(TOPIC, broken, name="broken")
            client.subscribe(TOPIC, seen.append, name="good")
            assert client.publish(event(1)) == 1
            assert len(seen) == 1
            [err] = client.delivery_errors
            assert err.subscriber == "broken"

    def test_max_delivery_errors_bound(self, tmp_path):
        with BrokerCore(tmp_path, BusConfig(n_partitions=1)) as core:
            with pytest.raises(ConfigurationError):
                BusClient(InProcLink(core), max_delivery_errors=0)

    def test_diagnostics_shape(self, tmp_path):
        core, client = make_client(tmp_path)
        with core:
            client.subscribe(TOPIC, lambda e: None, name="camera")
            client.publish(event(1))
            diag = client.diagnostics()
        assert diag["n_published"] == 1
        assert diag["n_handled"] == 1
        assert diag["n_subscriptions"] == 1
        assert diag["subscribers"] == {TOPIC: ["camera"]}
        assert diag["n_delivery_errors"] == 0
        assert diag["n_delivery_errors_dropped"] == 0
        assert diag["dedupe_dropped"] == 0
        assert diag["n_pending"] == 0
