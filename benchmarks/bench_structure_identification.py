"""Design-choice ablation — subtractive vs mountain clustering (2.2.1).

The paper rejects mountain clustering because it "is highly dependent on
the grid structure" and needs a grid at all, picking subtractive
clustering instead.  This bench quantifies both criticisms on the actual
quality-FIS input space: grid sensitivity of the cluster count and the
runtime blow-up with grid resolution.
"""

import numpy as np
import pytest

from repro.clustering.mountain import MountainClustering
from repro.clustering.subtractive import SubtractiveClustering
from repro.core.construction import quality_training_data


@pytest.fixture(scope="module")
def vq_space(experiment):
    v_q, _, _ = quality_training_data(
        experiment.classifier, experiment.material.quality_train)
    return v_q


def test_subtractive_on_vq(benchmark, vq_space, report):
    result = benchmark(SubtractiveClustering(radius=0.5).fit, vq_space)
    report.row("structure", "subtractive: clusters on v_Q",
               "no grid, no prior count", str(result.n_clusters))
    assert result.n_clusters >= 1


def test_mountain_grid_sensitivity(benchmark, vq_space, report):
    """Different grids, different structures — the documented weakness."""
    counts = {}

    def sweep():
        for g in (3, 5, 7):
            counts[g] = MountainClustering(
                grid_points_per_dim=g, sigma=0.15, beta=0.2).fit(
                    vq_space).n_clusters
        return counts

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    report.row("structure", "mountain: clusters per grid {3,5,7}",
               "grid-dependent (paper's criticism)",
               str(sorted(counts.items())))
    # The cluster count varying with the grid is the expected pathology;
    # all we assert is that the runs complete and produce clusters.
    assert all(c >= 1 for c in counts.values())


def test_mountain_cost_grows_with_grid(benchmark, vq_space, report):
    import time

    def time_grids():
        out = {}
        for g in (3, 6):
            start = time.perf_counter()
            MountainClustering(grid_points_per_dim=g, sigma=0.15,
                               beta=0.2).fit(vq_space)
            out[g] = time.perf_counter() - start
        return out

    timings = benchmark.pedantic(time_grids, rounds=1, iterations=1)
    report.row("structure", "mountain runtime grid 3 -> 6",
               "exponential in dimensions",
               f"{timings[3] * 1e3:.1f} ms -> {timings[6] * 1e3:.1f} ms")
    assert timings[6] > timings[3]


def test_grid_partition_vs_subtractive(benchmark, experiment, vq_space,
                                       report):
    """Jang's original grid partition vs the paper's subtractive route.

    A grid over the 4-D v_Q space needs ``n_mfs^4`` rules; subtractive
    clustering needs one per data regime.  Compare rule count and the
    resulting quality-AUC when both are trained identically by LSE.
    """
    import numpy as np

    from repro.anfis.lse import fit_consequents
    from repro.core.construction import quality_training_data
    from repro.core.quality import QualityMeasure
    from repro.fuzzy.partition import grid_partition_fis
    from repro.stats.metrics import auc

    material = experiment.material
    v_train, y_train, _ = quality_training_data(
        experiment.classifier, material.quality_train)

    def build_grid():
        fis = grid_partition_fis(v_train, n_mfs=2)
        coeffs, _ = fit_consequents(fis, v_train, y_train)
        fis.coefficients = coeffs
        return fis

    grid_fis = benchmark.pedantic(build_grid, rounds=1, iterations=1)
    grid_quality = QualityMeasure(grid_fis,
                                  n_cues=material.quality_train.cues.shape[1])

    def analysis_auc(quality):
        predicted = experiment.classifier.predict_indices(
            material.analysis.cues)
        q = quality.measure_batch(material.analysis.cues,
                                  predicted.astype(float))
        correct = predicted == material.analysis.labels
        usable = ~np.isnan(q)
        return auc(q[usable], correct[usable])

    grid_auc = analysis_auc(grid_quality)
    subtractive_auc = analysis_auc(experiment.augmented.quality)
    report.row("structure", "rules: grid(2 MFs) vs subtractive",
               "grid explodes with inputs",
               f"{grid_fis.n_rules} vs "
               f"{experiment.construction.n_rules}")
    report.row("structure", "quality AUC: grid vs subtractive",
               "comparable quality, far fewer rules",
               f"{grid_auc:.3f} vs {subtractive_auc:.3f}")
    assert grid_fis.n_rules > experiment.construction.n_rules
    assert subtractive_auc > grid_auc - 0.15
