"""Tests for repro.core.persistence — JSON round-trips."""

import json

import numpy as np
import pytest

from repro.core.persistence import (FORMAT_VERSION, QualityPackage,
                                    quality_from_dict, quality_to_dict,
                                    tsk_from_dict, tsk_to_dict)
from repro.core.quality import QualityMeasure
from repro.exceptions import ConfigurationError
from repro.fuzzy.tsk import TSKSystem


@pytest.fixture
def system(rng):
    return TSKSystem(rng.normal(size=(3, 4)),
                     rng.uniform(0.2, 1.0, size=(3, 4)),
                     rng.normal(size=(3, 5)), order=1)


class TestTSKRoundTrip:
    def test_roundtrip_preserves_outputs(self, system, rng):
        restored = tsk_from_dict(tsk_to_dict(system))
        x = rng.normal(size=(20, 4))
        np.testing.assert_allclose(restored.evaluate(x), system.evaluate(x))

    def test_json_safe(self, system):
        payload = tsk_to_dict(system)
        restored = tsk_from_dict(json.loads(json.dumps(payload)))
        np.testing.assert_allclose(restored.means, system.means)

    def test_order_preserved(self, rng):
        zero = TSKSystem(rng.normal(size=(2, 2)), np.ones((2, 2)),
                         np.zeros((2, 3)), order=0)
        assert tsk_from_dict(tsk_to_dict(zero)).order == 0

    def test_kind_checked(self, system):
        payload = tsk_to_dict(system)
        payload["kind"] = "something_else"
        with pytest.raises(ConfigurationError, match="kind"):
            tsk_from_dict(payload)

    def test_version_checked(self, system):
        payload = tsk_to_dict(system)
        payload["format_version"] = FORMAT_VERSION + 1
        with pytest.raises(ConfigurationError, match="format_version"):
            tsk_from_dict(payload)

    def test_non_dict_rejected(self):
        with pytest.raises(ConfigurationError):
            tsk_from_dict(["nope"])  # type: ignore[arg-type]


class TestQualityRoundTrip:
    def test_roundtrip(self, system, rng):
        quality = QualityMeasure(system, n_cues=3)
        restored = quality_from_dict(quality_to_dict(quality))
        cues = rng.normal(size=(5, 3))
        indices = np.array([0.0, 1.0, 2.0, 1.0, 0.0])
        np.testing.assert_allclose(
            restored.measure_batch(cues, indices),
            quality.measure_batch(cues, indices), equal_nan=True)
        assert restored.n_cues == 3


class TestQualityPackage:
    def test_from_calibration(self, experiment):
        package = QualityPackage.from_calibration(
            experiment.augmented.quality, experiment.calibration)
        assert package.threshold == pytest.approx(experiment.threshold)
        assert package.right.mu == pytest.approx(
            experiment.calibration.estimates.right.mu)

    def test_save_load_roundtrip(self, experiment, tmp_path):
        package = QualityPackage.from_calibration(
            experiment.augmented.quality, experiment.calibration)
        path = tmp_path / "pen.json"
        package.save(path)
        restored = QualityPackage.load(path)
        assert restored.threshold == pytest.approx(package.threshold)
        cues = experiment.material.evaluation.cues
        indices = experiment.classifier.predict_indices(cues).astype(float)
        np.testing.assert_allclose(
            restored.quality.measure_batch(cues, indices),
            package.quality.measure_batch(cues, indices),
            equal_nan=True)

    def test_loaded_package_filters_identically(self, experiment, tmp_path):
        """A round-tripped package must make identical gate decisions —
        the property a deployed appliance relies on."""
        package = QualityPackage.from_calibration(
            experiment.augmented.quality, experiment.calibration)
        path = tmp_path / "pen.json"
        package.save(path)
        restored = QualityPackage.load(path)

        cues = experiment.material.evaluation.cues
        indices = experiment.classifier.predict_indices(cues).astype(float)
        q_orig = package.quality.measure_batch(cues, indices)
        q_rest = restored.quality.measure_batch(cues, indices)
        accept_orig = q_orig > package.threshold
        accept_rest = q_rest > restored.threshold
        np.testing.assert_array_equal(accept_orig, accept_rest)

    def test_bad_kind_rejected(self, experiment, tmp_path):
        package = QualityPackage.from_calibration(
            experiment.augmented.quality, experiment.calibration)
        payload = package.to_dict()
        payload["kind"] = "tsk_system"
        with pytest.raises(ConfigurationError):
            QualityPackage.from_dict(payload)


class TestPropertyRoundTrips:
    """Hypothesis: serialization is lossless for arbitrary valid systems."""

    from hypothesis import given, settings, strategies as st

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_random_tsk_roundtrip(self, data):
        import numpy as np
        from hypothesis import strategies as st

        m = data.draw(st.integers(1, 5))
        d = data.draw(st.integers(1, 4))
        order = data.draw(st.sampled_from([0, 1]))
        finite = st.floats(-100, 100, allow_nan=False)
        positive = st.floats(0.01, 50, allow_nan=False)

        def draw_matrix(rows, cols, strategy):
            return np.array([[data.draw(strategy) for _ in range(cols)]
                             for _ in range(rows)])

        system = TSKSystem(
            means=draw_matrix(m, d, finite),
            sigmas=draw_matrix(m, d, positive),
            coefficients=draw_matrix(m, d + 1, finite),
            order=order)
        restored = tsk_from_dict(json.loads(json.dumps(
            tsk_to_dict(system))))
        x = draw_matrix(4, d, finite)
        np.testing.assert_allclose(restored.evaluate(x),
                                   system.evaluate(x),
                                   rtol=1e-12, atol=1e-12)


class TestNonFiniteRejection:
    """Corrupt artifacts fail at load time, naming the offending field.

    JSON happily serializes ``NaN``/``Infinity``; loading such a value
    into a quality system would make every inference a silent ε.
    """

    def _package_payload(self, experiment):
        package = QualityPackage.from_calibration(
            experiment.augmented.quality, experiment.calibration)
        return package.to_dict()

    @pytest.mark.parametrize("field", ["means", "sigmas", "coefficients"])
    @pytest.mark.parametrize("bad", [float("nan"), float("inf"),
                                     float("-inf")])
    def test_tsk_arrays_guarded(self, system, field, bad):
        payload = tsk_to_dict(system)
        payload[field][0][0] = bad
        with pytest.raises(ConfigurationError, match=f"'{field}'"):
            tsk_from_dict(payload)

    def test_quality_system_guarded(self, system):
        quality = QualityMeasure(system, n_cues=3)
        payload = quality_to_dict(quality)
        payload["system"]["coefficients"][0][0] = float("nan")
        with pytest.raises(ConfigurationError, match="coefficients"):
            quality_from_dict(payload)

    def test_package_threshold_guarded(self, experiment):
        payload = self._package_payload(experiment)
        payload["threshold"] = float("nan")
        with pytest.raises(ConfigurationError, match="'threshold'"):
            QualityPackage.from_dict(payload)

    @pytest.mark.parametrize("population", ["right", "wrong"])
    @pytest.mark.parametrize("parameter", ["mu", "sigma"])
    def test_package_populations_guarded(self, experiment, population,
                                         parameter):
        payload = self._package_payload(experiment)
        payload[population][parameter] = float("inf")
        with pytest.raises(ConfigurationError,
                           match=f"'{population}.{parameter}'"):
            QualityPackage.from_dict(payload)

    def test_error_message_names_field_and_value(self, system):
        payload = tsk_to_dict(system)
        payload["sigmas"][0][0] = float("nan")
        with pytest.raises(ConfigurationError) as excinfo:
            tsk_from_dict(payload)
        message = str(excinfo.value)
        assert "'sigmas'" in message
        assert "nan" in message

    def test_nan_survives_json_and_is_still_caught(self, experiment,
                                                   tmp_path):
        """The full save/corrupt/load round trip through a real file."""
        payload = self._package_payload(experiment)
        payload["quality"]["system"]["means"][0][0] = float("nan")
        path = tmp_path / "corrupt.json"
        path.write_text(json.dumps(payload))  # json emits bare NaN
        with pytest.raises(ConfigurationError, match="'means'"):
            QualityPackage.load(path)

    def test_clean_package_file_round_trips(self, experiment, tmp_path):
        package = QualityPackage.from_calibration(
            experiment.augmented.quality, experiment.calibration)
        path = tmp_path / "package.json"
        package.save(path)
        restored = QualityPackage.load(path)
        assert restored.threshold == package.threshold
        assert restored.right == package.right
        np.testing.assert_array_equal(
            restored.quality.system.coefficients,
            package.quality.system.coefficients)
