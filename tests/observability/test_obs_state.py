"""Tests for the observability switch, trace API and disabled overhead."""

import time

import pytest

from repro import observability as obs


class TestSwitch:
    def test_disabled_by_default(self):
        assert not obs.is_enabled()

    def test_enable_disable(self):
        registry, tracer = obs.enable()
        assert obs.is_enabled()
        assert obs.get_registry() is registry
        assert obs.get_tracer() is tracer
        obs.disable()
        assert not obs.is_enabled()

    def test_enable_fresh_replaces(self):
        obs.enable()
        obs.inc("stale")
        registry, _ = obs.enable(fresh=True)
        assert len(registry) == 0

    def test_observed_restores_prior_state(self):
        prior_registry = obs.get_registry()
        with obs.observed() as (registry, tracer):
            assert obs.is_enabled()
            assert registry is not prior_registry
        assert not obs.is_enabled()
        assert obs.get_registry() is prior_registry

    def test_observed_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with obs.observed():
                raise RuntimeError("boom")
        assert not obs.is_enabled()

    def test_observed_nested(self):
        with obs.observed() as (outer_reg, _):
            obs.inc("outer")
            with obs.observed() as (inner_reg, _):
                obs.inc("inner")
                assert "outer" not in inner_reg.snapshot()["counters"]
            assert obs.get_registry() is outer_reg
            obs.inc("outer")
        assert outer_reg.snapshot()["counters"]["outer"] == 2


class TestTraceApi:
    def test_context_manager_yields_span_when_enabled(self):
        with obs.observed() as (_, tracer):
            with obs.trace("stage", seed=7) as span:
                assert span is not None
                assert span.attrs["seed"] == 7
            assert tracer.roots[0].name == "stage"

    def test_context_manager_yields_none_when_disabled(self):
        with obs.trace("stage") as span:
            assert span is None
        assert obs.get_tracer().roots == []

    def test_decorator_checks_per_call(self):
        @obs.traced("compute")
        def compute(x):
            return x * 2

        assert compute(3) == 6  # disabled: no span
        assert obs.get_tracer().roots == []
        with obs.observed() as (_, tracer):
            assert compute(4) == 8
            assert tracer.roots[0].name == "compute"

    def test_current_span(self):
        assert obs.current_span() is None
        with obs.observed():
            assert obs.current_span() is None
            with obs.trace("stage") as span:
                assert obs.current_span() is span

    def test_gated_writers_noop_when_disabled(self):
        obs.inc("c")
        obs.set_gauge("g", 1.0)
        obs.observe("h", 0.5)
        obs.observe_many("h", [0.1, 0.2])
        assert len(obs.get_registry()) == 0

    def test_gated_writers_record_when_enabled(self):
        with obs.observed() as (registry, _):
            obs.inc("c", 2)
            obs.set_gauge("g", 1.0)
            obs.observe("h", 0.5, edges=obs.UNIT_EDGES)
            obs.observe_many("h", [0.1, 0.2], edges=obs.UNIT_EDGES)
            snap = registry.snapshot()
        assert snap["counters"]["c"] == 2
        assert snap["histograms"]["h"]["count"] == 3


class TestDisabledOverhead:
    """Disabled instrumentation must be structurally and practically free."""

    def test_structurally_no_op(self):
        # Nothing is allocated in the registry/tracer while disabled.
        for _ in range(100):
            with obs.trace("stage"):
                obs.inc("c")
                obs.observe("h", 0.5)
        assert len(obs.get_registry()) == 0
        assert obs.get_tracer().roots == []

    def test_per_call_cost_is_tiny(self):
        # A generous absolute bound keeps this robust on loaded CI
        # machines: a disabled hook is one attribute check, so even
        # microseconds of slack is two orders of magnitude of headroom.
        n = 10_000
        start = time.perf_counter()
        for _ in range(n):
            obs.inc("c")
        per_call = (time.perf_counter() - start) / n
        assert per_call < 50e-6

    def test_disabled_trace_context_cost_is_tiny(self):
        n = 10_000
        start = time.perf_counter()
        for _ in range(n):
            with obs.trace("stage"):
                pass
        per_call = (time.perf_counter() - start) / n
        assert per_call < 50e-6
