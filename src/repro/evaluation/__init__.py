"""Evaluation framework: multi-seed aggregation, scenario CV, throughput."""

from .crossval import (CrossValidationReport, FoldResult,
                       ScenarioCrossValidator, concatenate_datasets)
from .report import generate_report
from .runner import (MetricSummary, MultiSeedReport, MultiSeedRunner,
                     experiment_metrics)
from .throughput import ThroughputRecord, ThroughputReporter, best_of

__all__ = [
    "MultiSeedRunner", "MultiSeedReport", "MetricSummary",
    "experiment_metrics",
    "ScenarioCrossValidator", "CrossValidationReport", "FoldResult",
    "concatenate_datasets",
    "generate_report",
    "ThroughputReporter", "ThroughputRecord", "best_of",
]
