#!/usr/bin/env python3
"""Quickstart: attach a Context Quality Measure to a context classifier.

This walks the paper's full pipeline in ~40 lines of user code:

1. generate AwarePen sensor data (simulated 3-axis accelerometer),
2. pre-train the TSK-FIS context classifier,
3. automatically construct the quality FIS (clustering + LSE + ANFIS),
4. calibrate the acceptance threshold on a secondary data set,
5. filter a small test set with ``q > s`` and report the improvement.

Run:  python examples/quickstart.py
"""

from repro.core import (ConstructionConfig, QualityAugmentedClassifier,
                        build_quality_measure, calibrate)
from repro.core.filtering import evaluate_filtering
from repro.datasets import make_awarepen_material
from repro.experiment import train_default_classifier


def main() -> None:
    # 1. Data: disjoint roles for classifier training, quality training,
    #    early stopping, statistical analysis and final evaluation.
    material = make_awarepen_material(seed=7, evaluation_size=24)
    print("data roles:",
          {name: len(getattr(material, name))
           for name in ("classifier_train", "quality_train",
                        "quality_check", "analysis", "evaluation")})

    # 2. The black-box context classifier (lying / writing / playing).
    classifier = train_default_classifier(material)

    # 3. Automated construction of the quality FIS (paper section 2.2).
    construction = build_quality_measure(
        classifier, material.quality_train, material.quality_check,
        config=ConstructionConfig())
    print(f"quality FIS: {construction.n_rules} rules, "
          f"classifier accuracy on quality data "
          f"{construction.train_accuracy:.2f}")

    # 4. Interconnection + threshold calibration (paper sections 2.1, 2.3).
    augmented = QualityAugmentedClassifier(classifier, construction.quality)
    calibration = calibrate(augmented, material.analysis)
    est = calibration.estimates
    print(f"populations: right ~ N({est.right.mu:.2f}, "
          f"{est.right.sigma:.2f}^2), wrong ~ N({est.wrong.mu:.2f}, "
          f"{est.wrong.sigma:.2f}^2)")
    print(f"threshold s = {calibration.s:.3f} "
          f"({calibration.threshold.method})")
    print("probabilities:", {k: round(v, 3) if isinstance(v, float) else v
                             for k, v in
                             calibration.probabilities.as_dict().items()})

    # 5. Quality-gated filtering on the 24-point test set (paper 3.2).
    outcome = evaluate_filtering(augmented, material.evaluation,
                                 threshold=calibration.s)
    print(f"evaluation: {outcome.n_total} windows, "
          f"{outcome.n_wrong_total} wrong")
    print(f"gate discards {outcome.n_discarded} "
          f"({outcome.discard_fraction * 100:.0f}%), removing "
          f"{outcome.n_wrong_total - outcome.n_wrong_kept} wrong ones")
    print(f"accuracy {outcome.accuracy_before:.2f} -> "
          f"{outcome.accuracy_after:.2f} "
          f"(improvement +{outcome.improvement:.2f})")


if __name__ == "__main__":
    main()
