"""Experiment ``largeset`` — separation quality vs test-set size.

Paper 3.2: "The separation has not always to be that clear.  For a large
set of data the odds for separating the data are worse."  This bench
scales the evaluation material from the paper's 24 windows up to
adversarial rapid-switching scenarios and tracks how the separation
degrades.
"""

import numpy as np
import pytest

from repro.core.filtering import evaluate_filtering
from repro.datasets import generate_dataset, evaluation_script, stress_script
from repro.stats.metrics import auc
from repro.stats.mle import estimate_populations


def _separation_on(experiment, dataset):
    predicted = experiment.classifier.predict_indices(dataset.cues)
    q = experiment.augmented.quality.measure_batch(
        dataset.cues, predicted.astype(float))
    correct = predicted == dataset.labels
    usable = ~np.isnan(q)
    est = estimate_populations(q[usable], correct[usable])
    score = auc(q[usable], correct[usable])
    outcome = evaluate_filtering(experiment.augmented, dataset,
                                 threshold=experiment.threshold)
    return est.separation, score, outcome


def test_small_set_separates_cleanly(benchmark, experiment, report):
    sep, score, outcome = benchmark.pedantic(
        _separation_on, args=(experiment, experiment.material.evaluation),
        rounds=1, iterations=1)
    report.row("largeset", "24-point set: d' / AUC / wrong removed",
               "fully separable",
               f"{sep:.2f} / {score:.3f} / "
               f"{outcome.wrong_elimination * 100:.0f}%")
    assert score > 0.75


@pytest.mark.parametrize("blocks,seed", [(8, 31), (16, 32)])
def test_larger_realistic_sets(benchmark, experiment, report, blocks, seed):
    dataset = generate_dataset(
        lambda rng: evaluation_script(rng, blocks=blocks), seed=seed)
    sep, score, outcome = benchmark.pedantic(
        _separation_on, args=(experiment, dataset), rounds=1, iterations=1)
    report.row("largeset",
               f"{len(dataset)}-window realistic set: d'/AUC/wrong removed",
               "odds get worse with size",
               f"{sep:.2f} / {score:.3f} / "
               f"{outcome.wrong_elimination * 100:.0f}%")
    assert score > 0.6


def test_adversarial_large_set_degrades(benchmark, experiment, report):
    """Rapid random switching floods the data with transition windows:
    separation must visibly degrade versus the 24-point set — the paper's
    caveat, reproduced."""
    small_sep, small_auc, small_outcome = _separation_on(
        experiment, experiment.material.evaluation)
    stress = generate_dataset(
        lambda rng: stress_script(rng, n_segments=60), seed=41)
    stress_sep, stress_auc, stress_outcome = benchmark.pedantic(
        _separation_on, args=(experiment, stress), rounds=1, iterations=1)
    report.row("largeset", "adversarial set AUC vs 24-point AUC",
               "worse on large/hard data",
               f"{stress_auc:.3f} vs {small_auc:.3f}")
    report.row("largeset", "adversarial wrong removed",
               "< 100%",
               f"{stress_outcome.wrong_elimination * 100:.0f}%")
    assert stress_auc <= small_auc + 0.02
    assert stress_outcome.wrong_elimination < 1.0
