"""Serialization of trained quality systems.

A deployed smart appliance carries a *pre-trained* quality FIS (the paper
trains offline and flashes the result onto the Particle node).  This
module round-trips the trained artifacts through plain JSON so a quality
system built on a workstation can be shipped to and reloaded on the
appliance.

Covered artifacts: :class:`~repro.fuzzy.tsk.TSKSystem`,
:class:`~repro.core.quality.QualityMeasure`, and a deployable
:class:`QualityPackage` bundling the measure with its calibrated
threshold and population statistics.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Dict, Union

import numpy as np

from ..exceptions import ConfigurationError
from ..fuzzy.tsk import TSKSystem
from ..stats.gaussian import Gaussian
from .calibration import Calibration
from .quality import QualityMeasure

#: Format tag written into every serialized document.
FORMAT_VERSION = 1

PathLike = Union[str, Path]


def tsk_to_dict(system: TSKSystem) -> Dict:
    """Plain-dict form of a TSK system (JSON-safe)."""
    return {
        "format_version": FORMAT_VERSION,
        "kind": "tsk_system",
        "order": system.order,
        "means": system.means.tolist(),
        "sigmas": system.sigmas.tolist(),
        "coefficients": system.coefficients.tolist(),
    }


def tsk_from_dict(payload: Dict) -> TSKSystem:
    """Rebuild a TSK system from :func:`tsk_to_dict` output."""
    _check_kind(payload, "tsk_system")
    return TSKSystem(
        means=_require_finite("means",
                              np.asarray(payload["means"], dtype=float)),
        sigmas=_require_finite("sigmas",
                               np.asarray(payload["sigmas"], dtype=float)),
        coefficients=_require_finite(
            "coefficients",
            np.asarray(payload["coefficients"], dtype=float)),
        order=int(payload["order"]),
    )


def quality_to_dict(quality: QualityMeasure) -> Dict:
    """Plain-dict form of a quality measure."""
    return {
        "format_version": FORMAT_VERSION,
        "kind": "quality_measure",
        "n_cues": quality.n_cues,
        "system": tsk_to_dict(quality.system),
    }


def quality_from_dict(payload: Dict) -> QualityMeasure:
    """Rebuild a quality measure from :func:`quality_to_dict` output."""
    _check_kind(payload, "quality_measure")
    return QualityMeasure(system=tsk_from_dict(payload["system"]),
                          n_cues=int(payload["n_cues"]))


@dataclasses.dataclass(frozen=True)
class QualityPackage:
    """Everything an appliance needs at runtime.

    Attributes
    ----------
    quality:
        The trained quality measure (FIS + normalization).
    threshold:
        The calibrated acceptance threshold ``s``.
    right, wrong:
        MLE Gaussians of the two quality populations (for diagnostics and
        re-derivation of the probabilities on the appliance).
    """

    quality: QualityMeasure
    threshold: float
    right: Gaussian
    wrong: Gaussian

    @classmethod
    def from_calibration(cls, quality: QualityMeasure,
                         calibration: Calibration) -> "QualityPackage":
        """Bundle a measure with its calibration result."""
        return cls(quality=quality, threshold=calibration.s,
                   right=calibration.estimates.right,
                   wrong=calibration.estimates.wrong)

    def to_dict(self) -> Dict:
        return {
            "format_version": FORMAT_VERSION,
            "kind": "quality_package",
            "quality": quality_to_dict(self.quality),
            "threshold": self.threshold,
            "right": {"mu": self.right.mu, "sigma": self.right.sigma},
            "wrong": {"mu": self.wrong.mu, "sigma": self.wrong.sigma},
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "QualityPackage":
        _check_kind(payload, "quality_package")
        return cls(
            quality=quality_from_dict(payload["quality"]),
            threshold=float(_require_finite("threshold",
                                            payload["threshold"])),
            right=Gaussian(
                mu=_require_finite("right.mu", payload["right"]["mu"]),
                sigma=_require_finite("right.sigma",
                                      payload["right"]["sigma"])),
            wrong=Gaussian(
                mu=_require_finite("wrong.mu", payload["wrong"]["mu"]),
                sigma=_require_finite("wrong.sigma",
                                      payload["wrong"]["sigma"])),
        )

    def save(self, path: PathLike) -> None:
        """Write the package as JSON."""
        Path(path).write_text(json.dumps(self.to_dict(), indent=2))

    @classmethod
    def load(cls, path: PathLike) -> "QualityPackage":
        """Read a package previously written by :meth:`save`."""
        return cls.from_dict(json.loads(Path(path).read_text()))


def _require_finite(field, value):
    """Reject NaN/inf smuggled through JSON (``NaN`` is valid ``json``).

    A corrupt artifact must fail loudly *at load time*, naming the
    offending field — not as a silent permanent ε at inference time.
    Returns *value* unchanged so the check composes inline.
    """
    arr = np.atleast_1d(np.asarray(value, dtype=float))
    finite = np.isfinite(arr)
    if not np.all(finite):
        bad = float(arr[~finite].ravel()[0])
        raise ConfigurationError(
            f"non-finite value in field {field!r}: "
            f"{bad!r} (corrupt or hand-edited artifact?)")
    return value


def _check_kind(payload: Dict, expected: str) -> None:
    if not isinstance(payload, dict):
        raise ConfigurationError(
            f"expected a dict payload, got {type(payload).__name__}")
    kind = payload.get("kind")
    if kind != expected:
        raise ConfigurationError(
            f"payload kind {kind!r} does not match expected {expected!r}")
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ConfigurationError(
            f"unsupported format_version {version!r}; this build reads "
            f"version {FORMAT_VERSION}")
