"""Partitioned broker core: routing, credit windows, acks, redelivery.

The transport-agnostic heart of :mod:`repro.bus`.  The broker owns

* the **durable log** (:class:`~repro.bus.log.EventLog`) — every accepted
  publish is appended before any delivery;
* **topic partitions** — events hash by partition key (the publishing
  source by default) onto ``n_partitions`` ordered sub-streams, so one
  topic can be consumed, killed and revived a partition at a time;
* **per-subscriber credit windows** — at most ``credits`` unacked frames
  per (subscription, topic, partition); a slow or dead consumer stalls
  its own window, never the broker or its peers (bounded queues);
* **at-least-once delivery** — frames stay inflight until cumulatively
  acked; :meth:`tick` re-sends overdue ones, and reviving a killed
  partition rewinds each cursor to the acked watermark, so everything
  unacked is delivered again.  Consumers dedupe on ``(source, seq)``
  (:class:`~repro.bus.client.BusClient`).

The core is synchronous and lock-protected; :mod:`repro.bus.server`
wraps it in asyncio TCP, and the in-process link in
:mod:`repro.bus.client` calls it directly for tests and examples.
"""

from __future__ import annotations

import dataclasses
import hashlib
import threading
from typing import Callable, Dict, List, Optional, Set, Tuple

from .. import observability as obs
from ..appliances.bus import topic_matches
from ..appliances.messages import ContextEvent
from ..exceptions import BusError, ConfigurationError
from .log import EventLog

#: A delivery callback: receives one JSON-safe ``{"bus": "ev", ...}``
#: frame; raising marks the subscription dead (disconnected consumer).
SendFn = Callable[[Dict[str, object]], None]

#: (topic, partition) — the unit of ordering, kill/revive and cursors.
PartitionKey = Tuple[str, int]


@dataclasses.dataclass(frozen=True)
class BusConfig:
    """Tunables of the broker core.

    Parameters
    ----------
    n_partitions:
        Partitions per topic; the partition key (publishing source by
        default) hashes onto ``range(n_partitions)``.
    credits:
        Credit window: max unacked inflight frames per
        (subscription, topic, partition).
    redelivery_ticks:
        An inflight frame older than this many :meth:`BrokerCore.tick`
        calls is re-sent (at-least-once retry timer, in ticks so tests
        stay clock-free).
    segment_records / fsync_every:
        Passed through to :class:`~repro.bus.log.EventLog`.
    """

    n_partitions: int = 2
    credits: int = 32
    redelivery_ticks: int = 2
    segment_records: int = 4096
    fsync_every: int = 64

    def __post_init__(self) -> None:
        if self.n_partitions < 1:
            raise ConfigurationError(
                f"n_partitions must be >= 1, got {self.n_partitions}")
        if self.credits < 1:
            raise ConfigurationError(
                f"credits must be >= 1, got {self.credits}")
        if self.redelivery_ticks < 1:
            raise ConfigurationError(
                f"redelivery_ticks must be >= 1, got {self.redelivery_ticks}")


def partition_for(key: str, n_partitions: int) -> int:
    """Stable partition assignment for a partition *key*.

    blake2b rather than :func:`hash` so the mapping is identical across
    processes and interpreter runs (``PYTHONHASHSEED`` does not apply).
    """
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") % n_partitions


class _SubPartition:
    """Per-(subscription, partition-key) delivery state."""

    __slots__ = ("cursor", "acked", "inflight", "max_sent")

    def __init__(self, cursor: int) -> None:
        self.cursor = cursor        # next record index to send
        self.acked = cursor - 1     # highest cumulatively-acked index
        self.inflight: Dict[int, int] = {}  # index -> age in ticks
        self.max_sent = cursor - 1  # highest index ever sent


class _Subscription:
    __slots__ = ("sid", "pattern", "name", "send", "from_start",
                 "states", "alive")

    def __init__(self, sid: int, pattern: str, name: str, send: SendFn,
                 from_start: bool) -> None:
        self.sid = sid
        self.pattern = pattern
        self.name = name
        self.send = send
        self.from_start = from_start
        self.states: Dict[PartitionKey, _SubPartition] = {}
        self.alive = True


class BrokerCore:
    """Partitioned at-least-once pub/sub core over a durable log.

    Thread-safe; all public methods take the internal lock.  Delivery
    happens inline inside :meth:`publish` / :meth:`ack` / :meth:`tick`
    via each subscription's ``send`` callable (synchronous handoff — the
    asyncio server's send just enqueues on the connection writer).
    """

    def __init__(self, log_dir, config: Optional[BusConfig] = None) -> None:
        self.config = config if config is not None else BusConfig()
        self.log = EventLog(log_dir,
                            segment_records=self.config.segment_records,
                            fsync_every=self.config.fsync_every)
        self._lock = threading.RLock()
        self._records: Dict[PartitionKey, List[Tuple[int, Dict[str, object]]]]
        self._records = {}
        self._subs: Dict[int, _Subscription] = {}
        self._next_sid = 1
        self._killed: Set[int] = set()
        self.n_published = 0
        self.n_delivered = 0
        self.n_redelivered = 0
        self.n_acked = 0
        self.n_lost_inflight = 0
        self.n_send_errors = 0

    # -- subscriptions -------------------------------------------------
    def subscribe(self, pattern: str, send: SendFn, name: str = "anonymous",
                  from_start: bool = False) -> Tuple[int, Dict[str, int]]:
        """Register a consumer; returns ``(sid, starts)``.

        ``starts`` maps ``"topic/partition"`` to the index delivery will
        begin at for partitions that already exist — the consumer's ack
        baseline (partitions born later always start at 0).
        ``from_start=True`` replays every logged record of matching
        partitions from index 0 (offset-addressed catch-up); otherwise
        delivery begins at the current tail.
        """
        if not pattern:
            raise ConfigurationError("pattern must be non-empty")
        with self._lock:
            sid = self._next_sid
            self._next_sid += 1
            sub = _Subscription(sid, pattern, name, send, from_start)
            for pkey, records in self._records.items():
                if topic_matches(pattern, pkey[0]):
                    start = 0 if from_start else len(records)
                    sub.states[pkey] = _SubPartition(start)
            starts = {f"{pkey[0]}/{pkey[1]}": state.cursor
                      for pkey, state in sub.states.items()}
            self._subs[sid] = sub
            if from_start:
                for pkey in sorted(sub.states):
                    self._pump(sub, pkey)
            return sid, starts

    def unsubscribe(self, sid: int) -> bool:
        """Drop a subscription (e.g. consumer disconnected)."""
        with self._lock:
            sub = self._subs.pop(sid, None)
            if sub is not None:
                sub.alive = False
            return sub is not None

    # -- publishing ----------------------------------------------------
    def publish(self, doc: Dict[str, object],
                key: Optional[str] = None) -> Tuple[int, int]:
        """Validate, log and route one event wire form.

        Returns ``(partition, offset)``.  The partition key defaults to
        the event's source, so each publisher's events form one ordered
        sub-stream.  Malformed frames raise :class:`BusError` and are
        **not** logged.
        """
        try:
            event = ContextEvent.from_wire(doc)
        except ConfigurationError as exc:
            raise BusError(f"rejected publish: {exc}") from exc
        wire = event.to_wire()  # canonical form into the log
        with self._lock:
            partition = partition_for(key if key is not None else event.source,
                                      self.config.n_partitions)
            pkey = (event.topic, partition)
            offset = self.log.append(
                {"topic": event.topic, "partition": partition, "event": wire})
            records = self._records.get(pkey)
            if records is None:
                records = self._records[pkey] = []
                # A new partition key: late-bind it into every matching
                # subscription, starting at 0 (== current tail here).
                for sub in self._subs.values():
                    if topic_matches(sub.pattern, event.topic):
                        sub.states.setdefault(pkey, _SubPartition(0))
            records.append((offset, wire))
            self.n_published += 1
            obs.inc("bus.published_total")
            if partition not in self._killed:
                for sub in list(self._subs.values()):
                    if pkey in sub.states:
                        self._pump(sub, pkey)
            self._update_gauges()
            return partition, offset

    # -- delivery ------------------------------------------------------
    def _frame(self, sub: _Subscription, pkey: PartitionKey, index: int,
               offset: int, wire: Dict[str, object],
               redelivery: bool) -> Dict[str, object]:
        return {"bus": "ev", "sid": sub.sid, "topic": pkey[0],
                "partition": pkey[1], "index": index, "offset": offset,
                "event": wire, "redelivery": redelivery}

    def _deliver(self, sub: _Subscription, frame: Dict[str, object],
                 redelivery: bool) -> bool:
        try:
            sub.send(frame)
        except Exception:  # noqa: BLE001 - a dead consumer must not wedge us
            self.n_send_errors += 1
            sub.alive = False
            self._subs.pop(sub.sid, None)
            return False
        if redelivery:
            self.n_redelivered += 1
            obs.inc("bus.redelivered_total")
        else:
            self.n_delivered += 1
            obs.inc("bus.delivered_total")
        return True

    def _pump(self, sub: _Subscription, pkey: PartitionKey) -> None:
        """Send new records while the credit window has room."""
        if not sub.alive or pkey[1] in self._killed:
            return
        records = self._records.get(pkey, [])
        state = sub.states[pkey]
        while (sub.alive and state.cursor < len(records)
               and len(state.inflight) < self.config.credits):
            index = state.cursor
            offset, wire = records[index]
            redelivery = index <= state.max_sent
            state.cursor += 1
            state.inflight[index] = 0
            state.max_sent = max(state.max_sent, index)
            frame = self._frame(sub, pkey, index, offset, wire, redelivery)
            # send() may re-entrantly ack (in-process link), shrinking
            # inflight under us — state is updated before the call.
            if not self._deliver(sub, frame, redelivery):
                return

    def ack(self, sid: int, topic: str, partition: int, index: int) -> None:
        """Cumulative ack: indices ``<= index`` of that partition are done."""
        with self._lock:
            sub = self._subs.get(sid)
            if sub is None:
                return
            state = sub.states.get((topic, partition))
            if state is None:
                raise BusError(
                    f"ack for unknown partition ({topic!r}, {partition})")
            for idx in [i for i in state.inflight if i <= index]:
                del state.inflight[idx]
            if index > state.acked:
                self.n_acked += index - state.acked
                obs.inc("bus.acked_total", index - state.acked)
                state.acked = index
            self._pump(sub, (topic, partition))
            self._update_gauges()

    def tick(self) -> int:
        """Advance retry timers; re-send overdue inflight frames.

        Returns the number of frames re-sent this tick.
        """
        resent = 0
        with self._lock:
            for sub in list(self._subs.values()):
                for pkey in sorted(sub.states):
                    if pkey[1] in self._killed:
                        continue
                    state = sub.states[pkey]
                    records = self._records.get(pkey, [])
                    for index in sorted(state.inflight):
                        if not sub.alive:
                            break
                        if index not in state.inflight:
                            continue  # acked re-entrantly by a resend
                        state.inflight[index] += 1
                        if state.inflight[index] < self.config.redelivery_ticks:
                            continue
                        state.inflight[index] = 0
                        offset, wire = records[index]
                        frame = self._frame(sub, pkey, index, offset, wire,
                                            redelivery=True)
                        if self._deliver(sub, frame, redelivery=True):
                            resent += 1
                    if sub.alive:
                        self._pump(sub, pkey)
            self._update_gauges()
        return resent

    # -- failure-domain drills ----------------------------------------
    def kill_partition(self, partition: int) -> int:
        """Kill one partition's delivery plane (drill).

        Inflight frames of that partition are dropped (lost on the
        wire) and no further delivery happens until
        :meth:`revive_partition`.  Publishes still append to the log —
        durability is per-record, the outage is delivery-only.
        Returns the number of inflight frames lost.
        """
        self._check_partition(partition)
        lost = 0
        with self._lock:
            self._killed.add(partition)
            for sub in self._subs.values():
                for pkey, state in sub.states.items():
                    if pkey[1] == partition:
                        lost += len(state.inflight)
                        state.inflight.clear()
            self.n_lost_inflight += lost
            self._update_gauges()
        return lost

    def revive_partition(self, partition: int) -> None:
        """Bring a killed partition back; rewind cursors and redeliver.

        Every subscription's cursor rewinds to its acked watermark, so
        all unacked records — including the frames lost at kill time —
        are delivered again (at-least-once; consumers dedupe).
        """
        self._check_partition(partition)
        with self._lock:
            self._killed.discard(partition)
            for sub in list(self._subs.values()):
                for pkey in sorted(sub.states):
                    if pkey[1] != partition:
                        continue
                    state = sub.states[pkey]
                    state.inflight.clear()
                    state.cursor = state.acked + 1
                    self._pump(sub, pkey)
            self._update_gauges()

    def _check_partition(self, partition: int) -> None:
        if not 0 <= partition < self.config.n_partitions:
            raise ConfigurationError(
                f"partition must be in [0, {self.config.n_partitions}), "
                f"got {partition}")

    # -- introspection -------------------------------------------------
    def _update_gauges(self) -> None:
        if not obs.STATE.enabled:
            return
        inflight = 0
        lag = 0
        for sub in self._subs.values():
            for pkey, state in sub.states.items():
                inflight += len(state.inflight)
                lag = max(lag, len(self._records.get(pkey, ()))
                          - (state.acked + 1))
        obs.set_gauge("bus.inflight", inflight)
        obs.set_gauge("bus.max_lag", lag)
        obs.set_gauge("bus.log_records", self.log.next_offset)

    def stats(self) -> Dict[str, object]:
        """JSON-safe broker state snapshot (CLI / drills / tests)."""
        with self._lock:
            partitions = {
                f"{topic}/{partition}": len(records)
                for (topic, partition), records in sorted(
                    self._records.items())}
            subs = {}
            for sid, sub in sorted(self._subs.items()):
                lag = sum(len(self._records.get(pkey, ()))
                          - (state.acked + 1)
                          for pkey, state in sub.states.items())
                inflight = sum(len(state.inflight)
                               for state in sub.states.values())
                subs[str(sid)] = {"name": sub.name, "pattern": sub.pattern,
                                  "lag": lag, "inflight": inflight}
            return {
                "n_published": self.n_published,
                "n_delivered": self.n_delivered,
                "n_redelivered": self.n_redelivered,
                "n_acked": self.n_acked,
                "n_lost_inflight": self.n_lost_inflight,
                "n_send_errors": self.n_send_errors,
                "n_subscriptions": len(self._subs),
                "killed_partitions": sorted(self._killed),
                "next_offset": self.log.next_offset,
                "partitions": partitions,
                "subscriptions": subs,
            }

    def close(self) -> None:
        with self._lock:
            self.log.close()

    def __enter__(self) -> "BrokerCore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
