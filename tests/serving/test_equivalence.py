"""The serving equivalence invariant (acceptance criterion).

For any fixed request stream, the service's responses must be
**bit-identical** to the direct pipeline — classifier
``predict_indices`` → CQM ``measure_batch`` → a fresh
:class:`GracefulDegrader` gating in arrival order — for every
micro-batch deadline/size configuration, and with observability on or
off.  The invariant holds because the admission queue is FIFO, batches
are contiguous runs of it, the gate runs in arrival order, and the
numpy model compute is row-independent.
"""

import numpy as np
import pytest

from repro import observability as obs
from repro.core.degradation import DegradationPolicy, GracefulDegrader
from repro.serving import ServingConfig, serve_requests

from .conftest import make_requests


def direct_reference(experiment, package, requests,
                     policy=DegradationPolicy.REJECT):
    """The unbatched, unqueued ground truth for a request stream."""
    cues = np.vstack([r.cues for r in requests])
    given = np.array([-1 if r.class_index is None else r.class_index
                      for r in requests], dtype=float)
    missing = given < 0
    indices = given.copy()
    if np.any(missing):
        indices[missing] = experiment.classifier.predict_indices(
            cues[missing]).astype(float)
    qualities = package.quality.measure_batch(cues, indices)
    degrader = GracefulDegrader(threshold=package.threshold, policy=policy)
    decisions = degrader.decide_batch(qualities)
    keys = []
    for request, index, quality, decision in zip(requests, indices,
                                                 qualities, decisions):
        q = None if np.isnan(quality) else float(quality)
        keys.append((request.request_id, int(index), q, decision.action,
                     decision.degraded, False))
    return keys


def served_keys(registry, requests, config):
    return [r.key() for r in serve_requests(registry, requests,
                                            config=config)]


#: The batching grid: pathological singles, deadline-bound coalescing,
#: and everything-in-one-batch.
CONFIGS = [
    ServingConfig(max_batch=1, deadline_s=0.0),
    ServingConfig(max_batch=4, deadline_s=0.0),
    ServingConfig(max_batch=4, deadline_s=0.001),
    ServingConfig(max_batch=32, deadline_s=0.002),
    ServingConfig(max_batch=256, deadline_s=0.01),
]


class TestServingEquivalence:
    @pytest.mark.parametrize("config", CONFIGS,
                             ids=[f"b{c.max_batch}-d{c.deadline_s}"
                                  for c in CONFIGS])
    def test_every_batching_config_matches_direct(self, registry,
                                                  experiment, package,
                                                  cue_pool, config):
        requests = make_requests(cue_pool, 60)
        reference = direct_reference(experiment, package, requests)
        assert served_keys(registry, requests, config) == reference

    def test_observability_does_not_change_results(self, registry,
                                                   experiment, package,
                                                   cue_pool):
        requests = make_requests(cue_pool, 60)
        config = ServingConfig(max_batch=8, deadline_s=0.001)
        reference = direct_reference(experiment, package, requests)
        plain = served_keys(registry, requests, config)
        with obs.observed(fresh=True):
            observed = served_keys(registry, requests, config)
        assert plain == reference
        assert observed == reference

    @pytest.mark.parametrize("policy", list(DegradationPolicy),
                             ids=[p.value for p in DegradationPolicy])
    def test_stateful_policies_match_in_order(self, registry, experiment,
                                              package, cue_pool, policy):
        """Order-dependent ε-policies agree too — the gate must see
        decisions in exact arrival order despite batching."""
        requests = make_requests(cue_pool, 60)
        config = ServingConfig(max_batch=8, deadline_s=0.001,
                               policy=policy)
        reference = direct_reference(experiment, package, requests,
                                     policy=policy)
        assert served_keys(registry, requests, config) == reference

    def test_given_class_indices_match(self, registry, experiment,
                                       package, cue_pool):
        requests = make_requests(cue_pool, 40, with_class_index=True)
        config = ServingConfig(max_batch=8, deadline_s=0.001)
        reference = direct_reference(experiment, package, requests)
        assert served_keys(registry, requests, config) == reference

    def test_repeated_runs_are_deterministic(self, registry, cue_pool):
        requests = make_requests(cue_pool, 30)
        config = ServingConfig(max_batch=4, deadline_s=0.0005)
        first = served_keys(registry, requests, config)
        second = served_keys(registry, requests, config)
        assert first == second
