"""Mountain clustering (Yager & Filev 1994).

The paper considers mountain clustering for structure identification but
rejects it because the result is "highly dependent on the grid structure"
(section 2.2.1).  We implement it anyway: it serves as the rejected
baseline in the structure-identification ablation and demonstrates the
grid-dependence the paper criticizes.

A regular grid is laid over the (unit-normalized) data space; each grid
vertex ``g`` receives a mountain value

.. math::

    M(g) = \\sum_j e^{-\\lVert g - x_j \\rVert / \\sigma^{?}}  \\; —

we follow the original formulation with squared distances,
``M(g) = sum_j exp(-||g - x_j||^2 / (2 sigma^2))``, and destruct accepted
peaks with width ``beta``.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import List, Optional

import numpy as np

from ..exceptions import ConfigurationError, TrainingError


@dataclasses.dataclass(frozen=True)
class MountainClusteringResult:
    """Outcome of a mountain-clustering run."""

    centers: np.ndarray
    mountain_values: np.ndarray
    grid_points_per_dim: int

    @property
    def n_clusters(self) -> int:
        return self.centers.shape[0]


class MountainClustering:
    """Grid-based mountain clustering.

    Parameters
    ----------
    grid_points_per_dim:
        Vertices per dimension; total grid size grows exponentially with the
        dimensionality (the method's practical limitation).
    sigma:
        Width of the mountain-building kernel in normalized space.
    beta:
        Width of the mountain-destruction kernel; Yager & Filev suggest
        ``beta`` slightly larger than ``sigma``.
    stop_ratio:
        Stop once the next peak is below ``stop_ratio`` times the first.
    max_clusters:
        Optional hard cap on the number of centers.
    """

    def __init__(self, grid_points_per_dim: int = 10, sigma: float = 0.1,
                 beta: float = 0.15, stop_ratio: float = 0.2,
                 max_clusters: Optional[int] = None) -> None:
        if grid_points_per_dim < 2:
            raise ConfigurationError(
                f"grid_points_per_dim must be >= 2, got {grid_points_per_dim}")
        if sigma <= 0 or beta <= 0:
            raise ConfigurationError("sigma and beta must be > 0")
        if not 0.0 < stop_ratio < 1.0:
            raise ConfigurationError(
                f"stop_ratio must be in (0, 1), got {stop_ratio}")
        self.grid_points_per_dim = int(grid_points_per_dim)
        self.sigma = float(sigma)
        self.beta = float(beta)
        self.stop_ratio = float(stop_ratio)
        self.max_clusters = max_clusters

    def fit(self, x: np.ndarray) -> MountainClusteringResult:
        """Run the clustering on data *x* of shape ``(n_samples, d)``."""
        x = np.asarray(x, dtype=float)
        if x.ndim != 2:
            raise ConfigurationError(
                f"data must be 2-D, got shape {x.shape}")
        n, d = x.shape
        if n < 1:
            raise TrainingError("cannot cluster an empty data set")
        if self.grid_points_per_dim ** d > 2_000_000:
            raise ConfigurationError(
                f"grid of {self.grid_points_per_dim}^{d} vertices is too "
                "large — this is exactly the scalability problem the paper "
                "cites; reduce grid_points_per_dim or dimensionality")

        data_min = np.min(x, axis=0)
        data_max = np.max(x, axis=0)
        span = np.where(data_max - data_min > 0, data_max - data_min, 1.0)
        xn = (x - data_min) / span

        axes = [np.linspace(0.0, 1.0, self.grid_points_per_dim)] * d
        grid = np.array(list(itertools.product(*axes)))

        # Mountain building.
        diffs = grid[:, None, :] - xn[None, :, :]
        sq = np.sum(diffs * diffs, axis=2)
        mountain = np.sum(np.exp(-sq / (2.0 * self.sigma ** 2)), axis=1)

        centers_idx: List[int] = []
        values: List[float] = []
        first = float(np.max(mountain))
        if first <= 0:
            raise TrainingError("degenerate data: zero mountain function")
        limit = self.max_clusters if self.max_clusters is not None else len(grid)

        work = mountain.copy()
        while len(centers_idx) < limit:
            peak = int(np.argmax(work))
            value = float(work[peak])
            if value < self.stop_ratio * first or value <= 0:
                break
            centers_idx.append(peak)
            values.append(value)
            # Mountain destruction around the accepted peak.
            dist_sq = np.sum((grid - grid[peak]) ** 2, axis=1)
            work = work - value * np.exp(-dist_sq / (2.0 * self.beta ** 2))

        if not centers_idx:
            raise TrainingError("mountain clustering found no peaks")

        centers = grid[np.array(centers_idx)] * span + data_min
        return MountainClusteringResult(
            centers=centers,
            mountain_values=np.array(values),
            grid_points_per_dim=self.grid_points_per_dim,
        )
