"""Tests for repro.bus.broker — partitions, credits, acks, redelivery."""

import pytest

from repro.appliances.messages import ContextEvent
from repro.bus.broker import BrokerCore, BusConfig, partition_for
from repro.exceptions import BusError, ConfigurationError
from repro.types import ContextClass

CTX = ContextClass(1, "writing")
TOPIC = "context.pen"


def wire(seq, source="pen", topic=TOPIC, quality=0.9):
    return ContextEvent.create(source=source, topic=topic, context=CTX,
                               quality=quality, time_s=float(seq),
                               seq=seq).to_wire()


def one_partition(**overrides):
    defaults = dict(n_partitions=1, fsync_every=1)
    defaults.update(overrides)
    return BusConfig(**defaults)


class Collector:
    """A send callback recording delivered frames."""

    def __init__(self):
        self.frames = []

    def __call__(self, frame):
        self.frames.append(frame)

    @property
    def indices(self):
        return [f["index"] for f in self.frames]


class TestBusConfig:
    @pytest.mark.parametrize("field", ["n_partitions", "credits",
                                       "redelivery_ticks"])
    def test_bounds(self, field):
        with pytest.raises(ConfigurationError):
            BusConfig(**{field: 0})


class TestPartitionFor:
    def test_stable_and_in_range(self):
        for key in ("awarepen", "chair", "display", ""):
            p = partition_for(key, 4)
            assert 0 <= p < 4
            assert partition_for(key, 4) == p

    def test_single_partition(self):
        assert partition_for("anything", 1) == 0

    def test_spreads_sources(self):
        keys = [f"appliance-{i}" for i in range(64)]
        assert len({partition_for(k, 8) for k in keys}) > 1


class TestSubscribePublish:
    def test_tail_subscriber_gets_only_new_events(self, tmp_path):
        with BrokerCore(tmp_path, one_partition()) as core:
            core.publish(wire(1))
            sink = Collector()
            sid, starts = core.subscribe(TOPIC, sink)
            assert starts == {f"{TOPIC}/0": 1}
            assert sink.frames == []
            core.publish(wire(2))
            assert sink.indices == [1]
            assert sink.frames[0]["sid"] == sid
            assert sink.frames[0]["redelivery"] is False

    def test_from_start_replays_log(self, tmp_path):
        with BrokerCore(tmp_path, one_partition()) as core:
            for seq in (1, 2, 3):
                core.publish(wire(seq))
            sink = Collector()
            _sid, starts = core.subscribe(TOPIC, sink, from_start=True)
            assert starts == {f"{TOPIC}/0": 0}
            assert sink.indices == [0, 1, 2]
            assert [f["event"]["seq"] for f in sink.frames] == [1, 2, 3]

    def test_partition_born_after_subscribe_starts_at_zero(self, tmp_path):
        with BrokerCore(tmp_path, one_partition()) as core:
            sink = Collector()
            _sid, starts = core.subscribe("context.*", sink)
            assert starts == {}  # no partitions exist yet
            core.publish(wire(1))
            assert sink.indices == [0]

    def test_wildcard_routing(self, tmp_path):
        with BrokerCore(tmp_path, one_partition()) as core:
            sink = Collector()
            core.subscribe("context.*", sink)
            core.publish(wire(1, topic="context.pen"))
            core.publish(wire(1, source="chair", topic="context.chair"))
            core.publish(wire(1, source="x", topic="status.pen"))
            assert len(sink.frames) == 2

    def test_publish_returns_partition_and_offset(self, tmp_path):
        with BrokerCore(tmp_path, BusConfig(n_partitions=4)) as core:
            partition, offset = core.publish(wire(1))
            assert partition == partition_for("pen", 4)
            assert offset == 0
            assert core.publish(wire(2))[1] == 1

    def test_explicit_partition_key(self, tmp_path):
        with BrokerCore(tmp_path, BusConfig(n_partitions=8)) as core:
            partition, _ = core.publish(wire(1), key="room-3")
            assert partition == partition_for("room-3", 8)

    def test_malformed_publish_rejected_and_not_logged(self, tmp_path):
        with BrokerCore(tmp_path, one_partition()) as core:
            with pytest.raises(BusError, match="rejected publish"):
                core.publish({"source": "pen"})
            assert core.log.next_offset == 0
            assert core.n_published == 0

    def test_empty_pattern_rejected(self, tmp_path):
        with BrokerCore(tmp_path, one_partition()) as core:
            with pytest.raises(ConfigurationError):
                core.subscribe("", Collector())

    def test_unsubscribe_stops_delivery(self, tmp_path):
        with BrokerCore(tmp_path, one_partition()) as core:
            sink = Collector()
            sid, _ = core.subscribe(TOPIC, sink)
            assert core.unsubscribe(sid) is True
            assert core.unsubscribe(sid) is False
            core.publish(wire(1))
            assert sink.frames == []


class TestCreditsAndAcks:
    def test_credit_window_stalls_delivery(self, tmp_path):
        config = one_partition(credits=2)
        with BrokerCore(tmp_path, config) as core:
            sink = Collector()
            sid, _ = core.subscribe(TOPIC, sink)
            for seq in range(1, 6):
                core.publish(wire(seq))
            assert sink.indices == [0, 1]  # window full at 2 unacked

            core.ack(sid, TOPIC, 0, 0)
            assert sink.indices == [0, 1, 2]

            core.ack(sid, TOPIC, 0, 2)  # cumulative: clears 1 and 2
            assert sink.indices == [0, 1, 2, 3, 4]
            assert core.n_acked == 3

    def test_ack_unknown_partition_raises(self, tmp_path):
        with BrokerCore(tmp_path, one_partition()) as core:
            sid, _ = core.subscribe(TOPIC, Collector())
            with pytest.raises(BusError, match="unknown partition"):
                core.ack(sid, TOPIC, 0, 0)

    def test_ack_after_unsubscribe_is_noop(self, tmp_path):
        with BrokerCore(tmp_path, one_partition()) as core:
            sid, _ = core.subscribe(TOPIC, Collector())
            core.unsubscribe(sid)
            core.ack(sid, TOPIC, 0, 0)  # silently ignored


class TestRedelivery:
    def test_tick_resends_overdue_inflight(self, tmp_path):
        config = one_partition(redelivery_ticks=2)
        with BrokerCore(tmp_path, config) as core:
            sink = Collector()
            core.subscribe(TOPIC, sink)
            core.publish(wire(1))
            assert core.tick() == 0  # age 1 < redelivery_ticks
            assert core.tick() == 1  # overdue: re-sent
            assert sink.indices == [0, 0]
            assert sink.frames[1]["redelivery"] is True
            assert core.n_redelivered == 1

    def test_acked_frames_are_not_resent(self, tmp_path):
        config = one_partition(redelivery_ticks=1)
        with BrokerCore(tmp_path, config) as core:
            sink = Collector()
            sid, _ = core.subscribe(TOPIC, sink)
            core.publish(wire(1))
            core.ack(sid, TOPIC, 0, 0)
            assert core.tick() == 0
            assert sink.indices == [0]


class TestKillRevive:
    def test_kill_drops_inflight_and_halts_delivery(self, tmp_path):
        with BrokerCore(tmp_path, one_partition()) as core:
            sink = Collector()
            core.subscribe(TOPIC, sink)
            core.publish(wire(1))
            core.publish(wire(2))
            assert core.kill_partition(0) == 2
            assert core.n_lost_inflight == 2
            core.publish(wire(3))  # still logged, not delivered
            assert core.log.next_offset == 3
            assert len(sink.frames) == 2
            assert core.tick() == 0  # killed partitions do not retry

    def test_revive_redelivers_everything_unacked(self, tmp_path):
        with BrokerCore(tmp_path, one_partition()) as core:
            sink = Collector()
            sid, _ = core.subscribe(TOPIC, sink)
            core.publish(wire(1))
            core.publish(wire(2))
            core.ack(sid, TOPIC, 0, 0)
            core.kill_partition(0)
            core.publish(wire(3))
            core.revive_partition(0)
            # Index 0 was acked; 1 was lost inflight, 2 arrived mid-kill.
            assert sink.indices == [0, 1, 1, 2]
            assert sink.frames[2]["redelivery"] is True

    def test_partition_bounds_checked(self, tmp_path):
        with BrokerCore(tmp_path, one_partition()) as core:
            with pytest.raises(ConfigurationError):
                core.kill_partition(1)
            with pytest.raises(ConfigurationError):
                core.revive_partition(-1)


class TestFailureIsolation:
    def test_raising_send_drops_subscription(self, tmp_path):
        with BrokerCore(tmp_path, one_partition()) as core:
            def broken(frame):
                raise OSError("connection reset")

            sink = Collector()
            core.subscribe(TOPIC, broken, name="dead")
            core.subscribe(TOPIC, sink, name="alive")
            core.publish(wire(1))
            assert core.n_send_errors == 1
            assert sink.indices == [0]
            assert core.stats()["n_subscriptions"] == 1


class TestStats:
    def test_snapshot_shape(self, tmp_path):
        with BrokerCore(tmp_path, one_partition(credits=8)) as core:
            sink = Collector()
            core.subscribe(TOPIC, sink, name="camera")
            core.publish(wire(1))
            core.publish(wire(2))
            stats = core.stats()
        assert stats["n_published"] == 2
        assert stats["n_delivered"] == 2
        assert stats["next_offset"] == 2
        assert stats["killed_partitions"] == []
        assert stats["partitions"] == {f"{TOPIC}/0": 2}
        [sub] = stats["subscriptions"].values()
        assert sub["name"] == "camera"
        assert sub["inflight"] == 2
        assert sub["lag"] == 2
