#!/usr/bin/env python3
"""CQM as an add-on to YOUR classifier (the black-box property).

The paper's key architectural claim: "Our Fuzzy Inference System based
approach considers the context detection algorithm as a black-box ... and
is applicable as an add-on to any context recognition system."

This example defines a deliberately crude hand-written rule classifier —
three hard-coded thresholds on the mean axis deviation, the kind of thing
a firmware engineer writes on day one — and attaches the full quality
pipeline to it without touching its internals.

Run:  python examples/custom_classifier_addon.py
"""

import numpy as np

from repro.classifiers.base import ContextClassifier
from repro.core import (ConstructionConfig, QualityAugmentedClassifier,
                        build_quality_measure, calibrate)
from repro.core.filtering import evaluate_filtering
from repro.datasets import make_awarepen_material
from repro.stats.metrics import auc


class HardThresholdClassifier(ContextClassifier):
    """Day-one firmware heuristic: bucket the mean per-axis std.

    No learning beyond picking two cut points from training percentiles;
    the quality layer neither knows nor cares.
    """

    def __init__(self, classes):
        super().__init__(classes)
        self._low_cut = 0.05
        self._high_cut = 0.3

    def fit(self, x, y):
        x, y = self._validate_training(x, y)
        activity = np.mean(x, axis=1)
        # Cuts at the midpoints between the class medians.
        medians = [float(np.median(activity[y == c])) for c in (0, 1, 2)]
        self._low_cut = 0.5 * (medians[0] + medians[1])
        self._high_cut = 0.5 * (medians[1] + medians[2])
        self._mark_fitted()
        return self

    def predict_indices(self, x):
        self._require_fitted()
        x = np.atleast_2d(np.asarray(x, dtype=float))
        activity = np.mean(x, axis=1)
        out = np.full(len(activity), 1)          # default: writing
        out[activity <= self._low_cut] = 0       # still -> lying
        out[activity >= self._high_cut] = 2      # wild -> playing
        return out


def main() -> None:
    material = make_awarepen_material(seed=7)

    classifier = HardThresholdClassifier(material.classes)
    classifier.fit(material.classifier_train.cues,
                   material.classifier_train.labels)
    raw_acc = np.mean(classifier.predict_indices(material.evaluation.cues)
                      == material.evaluation.labels)
    print(f"hand-written classifier: cuts at {classifier._low_cut:.3f} / "
          f"{classifier._high_cut:.3f}, test accuracy {raw_acc:.2f}")

    # The identical quality pipeline used for the TSK classifier.
    construction = build_quality_measure(
        classifier, material.quality_train, material.quality_check,
        config=ConstructionConfig())
    augmented = QualityAugmentedClassifier(classifier, construction.quality)
    calibration = calibrate(augmented, material.analysis)
    print(f"quality FIS: {construction.n_rules} rules, "
          f"threshold s = {calibration.s:.3f}")

    usable = calibration.data.usable
    ranking = auc(calibration.data.qualities[usable],
                  calibration.data.correct[usable])
    print(f"quality ranks right above wrong with AUC = {ranking:.3f}")

    outcome = evaluate_filtering(augmented, material.evaluation,
                                 threshold=calibration.s)
    print(f"filtering: accuracy {outcome.accuracy_before:.2f} -> "
          f"{outcome.accuracy_after:.2f}, discarding "
          f"{outcome.discard_fraction * 100:.0f}% of classifications")

    print("\nNo classifier internals were accessed: the quality system "
          "saw only (cues, emitted class) pairs.")


if __name__ == "__main__":
    main()
