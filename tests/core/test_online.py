"""Tests for repro.core.online — RLS adaptation from delayed feedback."""

import numpy as np
import pytest

from repro.core.online import FeedbackRecord, OnlineQualityAdapter
from repro.core.persistence import quality_from_dict, quality_to_dict
from repro.exceptions import ConfigurationError, DimensionError
from repro.stats.metrics import auc


def records_from(material, classifier, dataset):
    predicted = classifier.predict_indices(dataset.cues)
    correct = predicted == dataset.labels
    return [FeedbackRecord(cues=dataset.cues[i],
                           class_index=int(predicted[i]),
                           was_correct=bool(correct[i]))
            for i in range(len(dataset))]


@pytest.fixture
def fresh_quality(experiment):
    """An independent copy of the trained quality measure."""
    return quality_from_dict(quality_to_dict(experiment.augmented.quality))


class TestValidation:
    def test_warmup(self, fresh_quality):
        with pytest.raises(ConfigurationError):
            OnlineQualityAdapter(fresh_quality, warmup=-1)

    def test_cue_arity(self, fresh_quality):
        adapter = OnlineQualityAdapter(fresh_quality)
        with pytest.raises(DimensionError):
            adapter.feedback(FeedbackRecord(cues=np.zeros(5),
                                            class_index=0,
                                            was_correct=True))


class TestAdaptation:
    def test_warmup_gates_updates(self, fresh_quality, material, experiment):
        before = fresh_quality.system.coefficients.copy()
        adapter = OnlineQualityAdapter(fresh_quality, warmup=5)
        records = records_from(material, experiment.classifier,
                               material.analysis)
        for record in records[:4]:
            adapter.feedback(record)
        assert not adapter.adapting
        np.testing.assert_array_equal(fresh_quality.system.coefficients,
                                      before)
        adapter.feedback(records[4])
        assert adapter.adapting

    def test_seeded_from_deployed_solution(self, fresh_quality, material,
                                           experiment):
        """Early residuals must be small: the RLS starts at the offline
        coefficients, not at zero."""
        adapter = OnlineQualityAdapter(fresh_quality, warmup=0)
        records = records_from(material, experiment.classifier,
                               material.analysis)
        first_residual = abs(adapter.feedback(records[0]))
        # The offline system's RMSE on its own targets is ~0.3; the first
        # online residual must be in that regime, not ~1.0 (zero start).
        assert first_residual < 1.0

    def test_feedback_preserves_ranking_quality(self, fresh_quality,
                                                material, experiment):
        """Adapting on in-distribution feedback must not destroy the
        measure's ability to rank right above wrong."""
        adapter = OnlineQualityAdapter(fresh_quality, warmup=0,
                                       forgetting=0.999)
        records = records_from(material, experiment.classifier,
                               material.analysis)
        adapter.feedback_batch(records)

        eval_set = material.evaluation
        predicted = experiment.classifier.predict_indices(eval_set.cues)
        q = fresh_quality.measure_batch(eval_set.cues,
                                        predicted.astype(float))
        correct = predicted == eval_set.labels
        usable = ~np.isnan(q)
        assert auc(q[usable], correct[usable]) > 0.7

    def test_adapts_to_inverted_feedback(self, fresh_quality, material,
                                         experiment):
        """Extreme drift: if feedback systematically says the opposite,
        the consequents must follow (outputs move toward the new truth)."""
        adapter = OnlineQualityAdapter(fresh_quality, warmup=0,
                                       forgetting=0.9)
        records = records_from(material, experiment.classifier,
                               material.analysis)
        inverted = [FeedbackRecord(r.cues, r.class_index,
                                   not r.was_correct) for r in records]
        # Feed the inverted stream several times.
        for _ in range(5):
            adapter.feedback_batch(inverted)
        v_q = np.hstack([material.analysis.cues,
                         experiment.classifier.predict_indices(
                             material.analysis.cues)[:, None].astype(float)])
        outputs = fresh_quality.system.evaluate(v_q)
        targets = np.array([1.0 if r.was_correct else 0.0
                            for r in inverted])
        rmse = np.sqrt(np.mean((outputs - targets) ** 2))
        assert rmse < 0.5

    def test_residual_tracking(self, fresh_quality, material, experiment):
        adapter = OnlineQualityAdapter(fresh_quality, warmup=0)
        assert adapter.recent_residual() is None
        records = records_from(material, experiment.classifier,
                               material.analysis)
        adapter.feedback_batch(records[:20])
        assert adapter.recent_residual() is not None
        assert adapter.n_feedback == 20


class TestBatchSequentialEquivalence:
    """feedback_batch is a pure speedup: identical numbers, same state."""

    def _fresh_pair(self, experiment):
        source = quality_to_dict(experiment.augmented.quality)
        return quality_from_dict(source), quality_from_dict(source)

    def test_residuals_and_state_match_sequential(self, material,
                                                  experiment):
        q_seq, q_bat = self._fresh_pair(experiment)
        records = records_from(material, experiment.classifier,
                               material.analysis)[:40]
        seq = OnlineQualityAdapter(q_seq, warmup=5)
        bat = OnlineQualityAdapter(q_bat, warmup=5)
        residuals_seq = np.array([seq.feedback(r) for r in records])
        residuals_bat = bat.feedback_batch(records)
        np.testing.assert_array_equal(residuals_bat, residuals_seq)
        assert seq.n_feedback == bat.n_feedback
        np.testing.assert_array_equal(q_bat.system.coefficients,
                                      q_seq.system.coefficients)
        assert bat.recent_residual() == pytest.approx(
            seq.recent_residual())

    def test_split_batches_match_one_batch(self, material, experiment):
        q_one, q_two = self._fresh_pair(experiment)
        records = records_from(material, experiment.classifier,
                               material.analysis)[:30]
        one = OnlineQualityAdapter(q_one, warmup=0)
        two = OnlineQualityAdapter(q_two, warmup=0)
        res_one = one.feedback_batch(records)
        res_two = np.concatenate([two.feedback_batch(records[:13]),
                                  two.feedback_batch(records[13:])])
        np.testing.assert_array_equal(res_one, res_two)
        np.testing.assert_array_equal(q_one.system.coefficients,
                                      q_two.system.coefficients)

    def test_empty_batch_is_a_noop(self, fresh_quality):
        adapter = OnlineQualityAdapter(fresh_quality)
        before = fresh_quality.system.coefficients.copy()
        out = adapter.feedback_batch([])
        assert out.size == 0
        assert adapter.n_feedback == 0
        np.testing.assert_array_equal(fresh_quality.system.coefficients,
                                      before)

    def test_batch_validates_every_record(self, fresh_quality, material,
                                          experiment):
        records = records_from(material, experiment.classifier,
                               material.analysis)[:3]
        bad = FeedbackRecord(cues=np.zeros(5), class_index=0,
                             was_correct=True)
        adapter = OnlineQualityAdapter(fresh_quality)
        with pytest.raises(DimensionError):
            adapter.feedback_batch(records + [bad])


class TestUserShiftRecovery:
    def test_adaptation_recovers_shifted_user(self, experiment):
        """The headline online-adaptation property: a user style far
        outside the factory training distribution degrades the shipped
        CQM; feedback-driven RLS recovers most of the ranking quality."""
        from repro.datasets import generate_dataset
        from repro.sensors.accelerometer import ACTIVITY_MODELS, UserStyle
        from repro.sensors.node import Segment

        heavy = UserStyle(amplitude_scale=2.2, tempo_scale=0.6,
                          tremor=0.06, pause_probability=0.05)

        def script(rng, blocks):
            segments = []
            for _ in range(blocks):
                for name, lo, hi in (("writing", 5, 8), ("playing", 1.5, 3),
                                     ("writing", 4, 6), ("lying", 2, 4)):
                    segments.append(Segment(
                        ACTIVITY_MODELS[name],
                        duration_s=rng.uniform(lo, hi), style=heavy))
            return segments

        field = generate_dataset(lambda rng: script(rng, 8), seed=404)
        holdout = generate_dataset(lambda rng: script(rng, 4), seed=405)
        classifier = experiment.classifier

        def score(quality):
            predicted = classifier.predict_indices(holdout.cues)
            q = quality.measure_batch(holdout.cues,
                                      predicted.astype(float))
            correct = predicted == holdout.labels
            usable = ~np.isnan(q)
            return auc(q[usable], correct[usable])

        shipped = quality_from_dict(
            quality_to_dict(experiment.augmented.quality))
        before = score(shipped)

        adapter = OnlineQualityAdapter(shipped, forgetting=0.999,
                                       warmup=10)
        predicted = classifier.predict_indices(field.cues)
        correct = predicted == field.labels
        for i in range(len(field)):
            adapter.feedback(FeedbackRecord(cues=field.cues[i],
                                            class_index=int(predicted[i]),
                                            was_correct=bool(correct[i])))
        after = score(shipped)
        assert after > before + 0.1


class TestOnlineThresholdTracker:
    def make(self, experiment, alpha=0.05):
        from repro.core.online import OnlineThresholdTracker
        est = experiment.calibration.estimates
        return OnlineThresholdTracker(est.right, est.wrong, alpha=alpha)

    def test_initial_threshold_close_to_offline(self, experiment):
        tracker = self.make(experiment)
        assert abs(tracker.threshold() - experiment.threshold) < 0.02

    def test_tracks_population_shift(self, experiment, rng):
        tracker = self.make(experiment, alpha=0.2)
        # The wrong population drifts upward (errors look better now):
        # the separating threshold must follow it above the new wrong
        # mean while staying below the right mean.
        for _ in range(200):
            tracker.observe(float(np.clip(
                rng.normal(0.6, 0.1), 0, 1)), was_correct=False)
        after = tracker.threshold()
        assert tracker.wrong.mu > 0.5  # the drift was absorbed
        assert tracker.wrong.mu < after < tracker.right.mu

    def test_epsilon_ignored(self, experiment):
        tracker = self.make(experiment)
        before = tracker.threshold()
        tracker.observe(None, was_correct=True)
        assert tracker.threshold() == before
        assert tracker.n_updates == 0

    def test_health_flag(self, experiment):
        tracker = self.make(experiment, alpha=0.3)
        assert tracker.healthy()
        # Catastrophic drift: right decisions now get LOW quality.
        for _ in range(200):
            tracker.observe(0.05, was_correct=True)
            tracker.observe(0.95, was_correct=False)
        assert not tracker.healthy()
        # The fallback threshold stays defined and bounded.
        assert 0.0 <= tracker.threshold() <= 1.0

    def test_validation(self, experiment):
        from repro.core.online import OnlineThresholdTracker
        est = experiment.calibration.estimates
        with pytest.raises(ConfigurationError):
            OnlineThresholdTracker(est.right, est.wrong, alpha=1.0)
        with pytest.raises(ConfigurationError):
            OnlineThresholdTracker(est.right, est.wrong, min_sigma=0.0)

    def test_stationary_feedback_keeps_threshold(self, experiment, rng):
        """Feedback drawn from the calibrated populations themselves must
        leave the threshold near its offline value."""
        est = experiment.calibration.estimates
        tracker = self.make(experiment, alpha=0.02)
        for _ in range(500):
            tracker.observe(float(np.clip(est.right.sample(1, rng)[0],
                                          0, 1)), True)
            if rng.random() < 0.3:
                tracker.observe(float(np.clip(est.wrong.sample(1, rng)[0],
                                              0, 1)), False)
        assert abs(tracker.threshold() - experiment.threshold) < 0.15


class TestSnapshotRestore:
    """snapshot()/restore(): bit-identical rewind of adapter + FIS."""

    def _adapter_with_history(self, experiment, material, n=30):
        quality = quality_from_dict(
            quality_to_dict(experiment.augmented.quality))
        adapter = OnlineQualityAdapter(quality, forgetting=0.999, warmup=5)
        records = records_from(material, experiment.classifier,
                               material.analysis)
        for record in records[:n]:
            adapter.feedback(record)
        return adapter, records

    def test_restore_is_bit_identical(self, experiment, material):
        """After restore, replaying the same feedback reproduces the
        exact residuals and coefficients — no drift, no ULP noise."""
        adapter, records = self._adapter_with_history(experiment, material)
        snap = adapter.snapshot()

        first = [adapter.feedback(r) for r in records[30:60]]
        coeffs_first = adapter.quality.system.coefficients.copy()
        theta_first = adapter._rls.theta.copy()

        adapter.restore(snap)
        second = [adapter.feedback(r) for r in records[30:60]]

        assert first == second  # float-exact residual trajectory
        np.testing.assert_array_equal(adapter.quality.system.coefficients,
                                      coeffs_first)
        np.testing.assert_array_equal(adapter._rls.theta, theta_first)

    def test_snapshot_owns_copies(self, experiment, material):
        adapter, records = self._adapter_with_history(experiment, material)
        snap = adapter.snapshot()
        theta_at_snap = snap.theta.copy()
        for record in records[30:45]:
            adapter.feedback(record)
        # Later feedback must not leak into the captured state.
        np.testing.assert_array_equal(snap.theta, theta_at_snap)

    def test_restore_rewinds_counters_and_residuals(self, experiment,
                                                    material):
        adapter, records = self._adapter_with_history(experiment, material)
        snap = adapter.snapshot()
        n_feedback = adapter.n_feedback
        residuals = list(adapter._residuals)
        for record in records[30:50]:
            adapter.feedback(record)
        assert adapter.n_feedback > n_feedback
        adapter.restore(snap)
        assert adapter.n_feedback == n_feedback
        assert adapter.n_skipped == snap.n_skipped
        assert adapter._residuals == residuals
        assert adapter._rls.n_updates == snap.rls_n_updates

    def test_restore_rejects_mismatched_shape(self, experiment, material,
                                              fresh_quality):
        adapter, _ = self._adapter_with_history(experiment, material, n=10)
        snap = adapter.snapshot()
        import dataclasses as dc
        wrong = dc.replace(snap, theta=np.zeros(3))
        with pytest.raises(DimensionError, match="RLS parameters"):
            adapter.restore(wrong)
        # The failed restore left the adapter untouched.
        np.testing.assert_array_equal(adapter._rls.theta, snap.theta)

    def test_speculative_adaptation_rollback(self, experiment, material):
        """The motivating use: try doubtful feedback, roll it back."""
        adapter, records = self._adapter_with_history(experiment, material)
        snap = adapter.snapshot()
        coeffs_before = adapter.quality.system.coefficients.copy()
        # Absorb garbage feedback (all labels inverted).
        for record in records[30:60]:
            adapter.feedback(FeedbackRecord(
                cues=record.cues, class_index=record.class_index,
                was_correct=not record.was_correct))
        assert not np.array_equal(adapter.quality.system.coefficients,
                                  coeffs_before)
        adapter.restore(snap)
        np.testing.assert_array_equal(adapter.quality.system.coefficients,
                                      coeffs_before)

    def test_snapshot_is_frozen(self, experiment, material):
        adapter, _ = self._adapter_with_history(experiment, material, n=10)
        snap = adapter.snapshot()
        with pytest.raises(Exception):
            snap.n_feedback = 99  # type: ignore[misc]
