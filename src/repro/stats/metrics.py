"""Classification and separation metrics.

Supports the evaluation benches: accuracy/confusion for the context
classifiers, ROC/AUC over the quality measure (how well ``q`` ranks right
above wrong classifications), and the discard/improvement accounting the
paper's headline "33%" result uses.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence, Tuple

import numpy as np

_trapz = getattr(np, "trapezoid", None) or getattr(np, "trapz")

from ..exceptions import CalibrationError, DimensionError


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of matching labels."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise DimensionError(
            f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    if y_true.size == 0:
        raise DimensionError("cannot compute accuracy of empty arrays")
    return float(np.mean(y_true == y_pred))


@dataclasses.dataclass(frozen=True)
class ConfusionMatrix:
    """Dense confusion matrix with label bookkeeping."""

    labels: Tuple[int, ...]
    matrix: np.ndarray  # rows: true, cols: predicted

    @property
    def n_samples(self) -> int:
        return int(np.sum(self.matrix))

    def rate(self, true_label: int, predicted_label: int) -> float:
        """P(predicted | true) for one cell."""
        i = self.labels.index(true_label)
        j = self.labels.index(predicted_label)
        row_total = float(np.sum(self.matrix[i]))
        return float(self.matrix[i, j]) / row_total if row_total else 0.0

    def per_class_recall(self) -> Dict[int, float]:
        """Recall (diagonal rate) for every label."""
        return {lbl: self.rate(lbl, lbl) for lbl in self.labels}


def confusion_matrix(y_true: np.ndarray, y_pred: np.ndarray,
                     labels: Sequence[int] = ()) -> ConfusionMatrix:
    """Build a confusion matrix; labels default to the union observed."""
    y_true = np.asarray(y_true, dtype=int).ravel()
    y_pred = np.asarray(y_pred, dtype=int).ravel()
    if y_true.shape != y_pred.shape:
        raise DimensionError(
            f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    label_list: List[int] = (list(labels) if labels
                             else sorted(set(y_true) | set(y_pred)))
    index = {lbl: k for k, lbl in enumerate(label_list)}
    matrix = np.zeros((len(label_list), len(label_list)), dtype=int)
    for t, p in zip(y_true, y_pred):
        if t not in index or p not in index:
            raise DimensionError(
                f"label outside the provided label set: true={t}, pred={p}")
        matrix[index[t], index[p]] += 1
    return ConfusionMatrix(labels=tuple(label_list), matrix=matrix)


def roc_curve(scores: np.ndarray, positive: np.ndarray
              ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """ROC of using ``score > threshold`` to select positives.

    Returns ``(false_positive_rates, true_positive_rates, thresholds)``
    sorted by descending threshold.
    """
    scores = np.asarray(scores, dtype=float).ravel()
    positive = np.asarray(positive, dtype=bool).ravel()
    if scores.shape != positive.shape:
        raise DimensionError("scores and positive must align")
    n_pos = int(np.sum(positive))
    n_neg = int(np.sum(~positive))
    if n_pos == 0 or n_neg == 0:
        raise CalibrationError(
            "ROC needs at least one positive and one negative sample")
    order = np.argsort(-scores, kind="stable")
    sorted_pos = positive[order]
    tps = np.cumsum(sorted_pos)
    fps = np.cumsum(~sorted_pos)
    tpr = np.concatenate([[0.0], tps / n_pos])
    fpr = np.concatenate([[0.0], fps / n_neg])
    thresholds = np.concatenate([[np.inf], scores[order]])
    return fpr, tpr, thresholds


def auc(scores: np.ndarray, positive: np.ndarray) -> float:
    """Area under the ROC curve (probability q ranks right above wrong)."""
    fpr, tpr, _ = roc_curve(scores, positive)
    return float(_trapz(tpr, fpr))


@dataclasses.dataclass(frozen=True)
class FilterOutcome:
    """Result of filtering classifications with ``q > s``.

    The paper's headline: "the appliance can discard 33% of the
    classifications, which equals all wrong contextual classifications".
    """

    n_total: int
    n_kept: int
    n_discarded: int
    n_wrong_total: int
    n_wrong_kept: int
    n_right_discarded: int
    accuracy_before: float
    accuracy_after: float

    @property
    def discard_fraction(self) -> float:
        """Fraction of classifications rejected by the quality gate."""
        return self.n_discarded / self.n_total if self.n_total else 0.0

    @property
    def wrong_elimination(self) -> float:
        """Fraction of wrong classifications removed by the gate."""
        if self.n_wrong_total == 0:
            return 1.0
        return 1.0 - self.n_wrong_kept / self.n_wrong_total

    @property
    def improvement(self) -> float:
        """Absolute accuracy gain from filtering."""
        return self.accuracy_after - self.accuracy_before


def filter_outcome(correct: np.ndarray, qualities: np.ndarray,
                   threshold: float) -> FilterOutcome:
    """Account for the effect of the quality gate on labeled data."""
    correct = np.asarray(correct, dtype=bool).ravel()
    qualities = np.asarray(qualities, dtype=float).ravel()
    if correct.shape != qualities.shape:
        raise DimensionError("correct and qualities must align")
    if correct.size == 0:
        raise DimensionError("cannot filter an empty evaluation set")
    kept = qualities > threshold
    n_total = int(correct.size)
    n_kept = int(np.sum(kept))
    accuracy_before = float(np.mean(correct))
    accuracy_after = (float(np.mean(correct[kept])) if n_kept
                      else accuracy_before)
    return FilterOutcome(
        n_total=n_total,
        n_kept=n_kept,
        n_discarded=n_total - n_kept,
        n_wrong_total=int(np.sum(~correct)),
        n_wrong_kept=int(np.sum(~correct & kept)),
        n_right_discarded=int(np.sum(correct & ~kept)),
        accuracy_before=accuracy_before,
        accuracy_after=accuracy_after,
    )
