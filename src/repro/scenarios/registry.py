"""Scenario registry with entry-point-style discovery.

Built-in zoo scenarios ship as YAML files in ``repro/scenarios/data/``;
additional scenario files can be announced through the
``REPRO_SCENARIOS`` environment variable (an ``os.pathsep``-separated
list of YAML files or directories), mirroring how entry points extend a
package without code changes.

YAML is an *optional* dependency: dataclass specs and dict loading work
without it; only the YAML file loaders raise :class:`ScenarioError`
when PyYAML is missing.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Iterator, List

from ..exceptions import ScenarioError
from .spec import ScenarioSpec

#: Environment variable listing extra scenario YAML files/directories.
ENV_VAR = "REPRO_SCENARIOS"

#: Directory of the built-in zoo.
DATA_DIR = Path(__file__).resolve().parent / "data"

_REGISTRY: Dict[str, ScenarioSpec] = {}
_DISCOVERED = False


def _yaml():
    try:
        import yaml
    except ImportError as exc:  # pragma: no cover - env without pyyaml
        raise ScenarioError(
            "loading scenario YAML files needs the optional dependency "
            "PyYAML (pip install pyyaml); dict-based specs via "
            "ScenarioSpec.from_dict work without it") from exc
    return yaml


def load_scenario_file(path: os.PathLike) -> ScenarioSpec:
    """Load and schema-validate one scenario YAML file."""
    path = Path(path)
    if not path.is_file():
        raise ScenarioError(f"scenario file {str(path)!r} does not exist")
    yaml = _yaml()
    try:
        payload = yaml.safe_load(path.read_text())
    except yaml.YAMLError as exc:
        raise ScenarioError(
            f"scenario file {str(path)!r} is not valid YAML: {exc}") from exc
    if not isinstance(payload, dict):
        raise ScenarioError(
            f"scenario file {str(path)!r} must contain a mapping, got "
            f"{type(payload).__name__}")
    return ScenarioSpec.from_dict(payload)


def register(spec: ScenarioSpec, replace: bool = False) -> ScenarioSpec:
    """Register a scenario spec under its name."""
    if not replace and spec.name in _REGISTRY:
        raise ScenarioError(
            f"scenario {spec.name!r} is already registered; "
            "pass replace=True to override")
    _REGISTRY[spec.name] = spec
    return spec


def clear(rediscover: bool = False) -> None:
    """Drop all registered scenarios (test isolation helper)."""
    global _DISCOVERED
    _REGISTRY.clear()
    _DISCOVERED = False
    if rediscover:
        discover()


def _candidate_files(root: Path) -> List[Path]:
    if root.is_dir():
        return sorted(p for p in root.iterdir()
                      if p.suffix in (".yaml", ".yml"))
    return [root]


def discover(force: bool = False) -> None:
    """Load built-in zoo scenarios plus any ``$REPRO_SCENARIOS`` extras."""
    global _DISCOVERED
    if _DISCOVERED and not force:
        return
    _DISCOVERED = True
    if DATA_DIR.is_dir():
        for path in sorted(DATA_DIR.glob("*.yaml")):
            register(load_scenario_file(path), replace=True)
    extra = os.environ.get(ENV_VAR, "")
    for token in filter(None, extra.split(os.pathsep)):
        root = Path(token)
        if not root.exists():
            raise ScenarioError(
                f"{ENV_VAR} entry {token!r} does not exist")
        for path in _candidate_files(root):
            register(load_scenario_file(path), replace=True)


def get(name: str) -> ScenarioSpec:
    """Look up a registered scenario by name."""
    discover()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ScenarioError(
            f"unknown scenario {name!r}; registered: {names()}") from None


def names() -> List[str]:
    """Sorted names of all registered scenarios."""
    discover()
    return sorted(_REGISTRY)


def iter_specs() -> Iterator[ScenarioSpec]:
    """All registered scenarios in name order."""
    discover()
    for name in sorted(_REGISTRY):
        yield _REGISTRY[name]
