"""The default numpy backend: the historical kernels, bit for bit.

These are the exact inline-numpy expressions that used to live in
``repro.fuzzy.tsk``, ``repro.anfis.gradient`` and ``repro.anfis.lse``,
moved behind the :class:`~repro.backend.base.ArrayBackend` protocol.
Operation order and associativity are preserved deliberately — the
seed-7 golden trace, the paper-number pins and the serving/observability
bit-identity tests all depend on this backend producing the same bits
as the pre-refactor code.

The *throughput* win of this backend comes not from changed kernels but
from the epoch-level :class:`~repro.backend.cache.ForwardCache`: the
hybrid trainer used to evaluate the Gaussian membership layer three
times per epoch (gradient pass, LSE design matrix, training RMSE); with
the cache each epoch pays for exactly one sweep, reusing the identical
arrays — so the cached path is bit-identical to the uncached one.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .base import WEIGHT_FLOOR, ArrayBackend


class NumpyBackend(ArrayBackend):
    """Bit-identical reference backend (the default)."""

    name = "numpy"
    bit_identical = True

    def gaussian_mf_batch(self, x: np.ndarray, means: np.ndarray,
                          sigmas: np.ndarray) -> np.ndarray:
        z = (x[:, None, :] - means[None, :, :]) / sigmas[None, :, :]
        return np.exp(-0.5 * z * z)

    def rule_firing(self, memberships: np.ndarray) -> np.ndarray:
        return np.prod(memberships, axis=2)

    def consequent_design_matrix(self, x: np.ndarray, wbar: np.ndarray,
                                 order: int) -> np.ndarray:
        if order == 0:
            return wbar
        n_samples = x.shape[0]
        m = wbar.shape[1]
        x_ext = np.hstack([x, np.ones((n_samples, 1))])  # (N, d+1)
        # (N, m, d+1): normalized weight times extended input.
        blocks = wbar[:, :, None] * x_ext[:, None, :]
        return blocks.reshape(n_samples, m * x_ext.shape[1])

    def premise_gradient_terms(self, x: np.ndarray, means: np.ndarray,
                               sigmas: np.ndarray, w: np.ndarray,
                               f: np.ndarray, total: np.ndarray,
                               y: np.ndarray
                               ) -> Tuple[np.ndarray, np.ndarray, float]:
        n = x.shape[0]
        total = np.maximum(total, WEIGHT_FLOOR)            # (N,)
        s = np.sum(w * f, axis=1) / total                  # (N,)
        err = s - y                                        # (N,)

        # dL/dw_j for every sample and rule: err * (f_j - S) / total.
        dl_dw = (err / total)[:, None] * (f - s[:, None])  # (N, m)

        diff = x[:, None, :] - means[None, :, :]           # (N, m, d)
        inv_sig_sq = 1.0 / (sigmas ** 2)                   # (m, d)
        w3 = w[:, :, None]                                 # (N, m, 1)
        dw_dmu = w3 * diff * inv_sig_sq[None, :, :]
        dw_dsigma = w3 * (diff ** 2) * (inv_sig_sq / sigmas)[None, :, :]

        dl3 = dl_dw[:, :, None]                            # (N, m, 1)
        d_means = np.sum(dl3 * dw_dmu, axis=0) / n
        d_sigmas = np.sum(dl3 * dw_dsigma, axis=0) / n
        loss = float(0.5 * np.mean(err ** 2))
        return d_means, d_sigmas, loss
