"""Tests for repro.datasets.export — NPZ/CSV round-trips."""

import numpy as np
import pytest

from repro.datasets.export import (EXPORT_VERSION, load_csv, load_npz,
                                   save_csv, save_npz)
from repro.exceptions import ConfigurationError


class TestNPZ:
    def test_roundtrip_lossless(self, material, tmp_path):
        path = tmp_path / "eval.npz"
        save_npz(material.evaluation, path)
        restored = load_npz(path)
        np.testing.assert_array_equal(restored.cues,
                                      material.evaluation.cues)
        np.testing.assert_array_equal(restored.labels,
                                      material.evaluation.labels)
        np.testing.assert_array_equal(restored.transition,
                                      material.evaluation.transition)
        assert [c.name for c in restored.classes] == [
            c.name for c in material.evaluation.classes]

    def test_version_checked(self, material, tmp_path):
        path = tmp_path / "eval.npz"
        save_npz(material.evaluation, path)
        data = dict(np.load(path, allow_pickle=False))
        data["version"] = np.array(EXPORT_VERSION + 1)
        np.savez_compressed(path, **data)
        with pytest.raises(ConfigurationError, match="version"):
            load_npz(path)

    def test_restored_dataset_usable_in_pipeline(self, material,
                                                 experiment, tmp_path):
        path = tmp_path / "analysis.npz"
        save_npz(material.analysis, path)
        restored = load_npz(path)
        from repro.core import calibrate
        cal = calibrate(experiment.augmented, restored)
        assert cal.s == pytest.approx(experiment.calibration.s)


class TestCSV:
    def test_roundtrip(self, material, tmp_path):
        path = tmp_path / "eval.csv"
        save_csv(material.evaluation, path)
        restored = load_csv(path)
        np.testing.assert_allclose(restored.cues,
                                   material.evaluation.cues)
        np.testing.assert_array_equal(restored.labels,
                                      material.evaluation.labels)
        np.testing.assert_array_equal(restored.transition,
                                      material.evaluation.transition)

    def test_header_required(self, tmp_path):
        path = tmp_path / "notes.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(ConfigurationError, match="header"):
            load_csv(path)

    def test_empty_data_rejected(self, material, tmp_path):
        path = tmp_path / "eval.csv"
        save_csv(material.evaluation, path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:2]) + "\n")
        with pytest.raises(ConfigurationError, match="no data rows"):
            load_csv(path)

    def test_class_table_preserved(self, material, tmp_path):
        path = tmp_path / "eval.csv"
        save_csv(material.evaluation, path)
        restored = load_csv(path)
        assert {c.index for c in restored.classes} == {0, 1, 2}
        assert {c.name for c in restored.classes} == {
            "lying", "writing", "playing"}

    def test_csv_float_precision(self, material, tmp_path):
        """repr-based serialization keeps full float64 precision."""
        path = tmp_path / "eval.csv"
        save_csv(material.evaluation, path)
        restored = load_csv(path)
        np.testing.assert_array_equal(restored.cues,
                                      material.evaluation.cues)
