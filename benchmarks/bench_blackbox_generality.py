"""Experiment ``blackbox`` — classifier independence of the CQM.

Paper section 1/2: the quality system treats the recognition algorithm as
a black box and is "applicable as an add-on to any context recognition
system".  This bench attaches the identical CQM construction to three
different classifiers and shows the measure separates right from wrong
decisions for each.
"""

import numpy as np
import pytest

from repro.classifiers import (KNNClassifier, MLPClassifier,
                               NearestCentroidClassifier, TSKClassifier)
from repro.core import (ConstructionConfig, QualityAugmentedClassifier,
                        build_quality_measure, calibrate)
from repro.stats.metrics import auc

FACTORIES = {
    "tsk-fis": lambda classes: TSKClassifier(classes, mode="index"),
    "nearest-centroid": lambda classes: NearestCentroidClassifier(classes),
    "knn": lambda classes: KNNClassifier(classes, k=5),
    "mlp": lambda classes: MLPClassifier(classes, epochs=200),
}


def _attach_cqm(material, name):
    classifier = FACTORIES[name](material.classes)
    classifier.fit(material.classifier_train.cues,
                   material.classifier_train.labels)
    result = build_quality_measure(
        classifier, material.quality_train, material.quality_check,
        config=ConstructionConfig(epochs=30))
    augmented = QualityAugmentedClassifier(classifier, result.quality)
    cal = calibrate(augmented, material.analysis)
    usable = cal.data.usable
    score = auc(cal.data.qualities[usable], cal.data.correct[usable])
    raw_acc = float(np.mean(cal.data.correct))
    return score, raw_acc, cal.s


@pytest.mark.parametrize("name", sorted(FACTORIES))
def test_cqm_generalizes_across_classifiers(benchmark, material, report,
                                            name):
    score, raw_acc, threshold = benchmark.pedantic(
        _attach_cqm, args=(material, name), rounds=1, iterations=1)
    report.row("blackbox", f"{name}: quality AUC",
               "separates for any black box",
               f"{score:.3f} (classifier acc {raw_acc:.2f}, s={threshold:.2f})")
    assert score > 0.65
