"""Tests for repro.bus.faults — frame-level fault injection."""

import pytest

from repro.bus.faults import (FaultyChannel, FrameFault, FrameFaultSchedule,
                              ScheduledFrameFault)
from repro.exceptions import ConfigurationError


def frame(time_s, n=0):
    return {"bus": "ev", "index": n, "event": {"time_s": time_s, "seq": n}}


def channel_for(sink, *entries):
    return FaultyChannel(sink.append, FrameFaultSchedule(entries=entries))


class TestValidation:
    def test_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            FrameFault("corrupt")

    def test_every_bound(self):
        with pytest.raises(ConfigurationError):
            FrameFault("drop", every=0)

    def test_window_bounds(self):
        with pytest.raises(ConfigurationError):
            ScheduledFrameFault(FrameFault("drop"), start_s=-1.0)
        with pytest.raises(ConfigurationError):
            ScheduledFrameFault(FrameFault("drop"), start_s=2.0, end_s=1.0)

    def test_empty_schedule(self):
        with pytest.raises(ConfigurationError):
            FrameFaultSchedule(entries=())


class TestScheduling:
    def test_active_window(self):
        entry = ScheduledFrameFault(FrameFault("drop"), start_s=2.0,
                                    end_s=4.0)
        assert not entry.active_at(1.9)
        assert entry.active_at(2.0)
        assert entry.active_at(3.9)
        assert not entry.active_at(4.0)

    def test_open_ended_window(self):
        entry = ScheduledFrameFault(FrameFault("drop"), start_s=1.0)
        assert entry.active_at(1e9)

    def test_faults_at_preserves_entry_order(self):
        schedule = FrameFaultSchedule(entries=(
            ScheduledFrameFault(FrameFault("delay")),
            ScheduledFrameFault(FrameFault("drop"), start_s=5.0),
        ))
        assert [f.kind for f in schedule.faults_at(0.0)] == ["delay"]
        assert [f.kind for f in schedule.faults_at(6.0)] == ["delay",
                                                            "drop"]


class TestFaultyChannel:
    def test_drop(self):
        sink = []
        channel = channel_for(
            sink, ScheduledFrameFault(FrameFault("drop", every=2)))
        for i in range(4):
            channel(frame(float(i), i))
        assert [f["index"] for f in sink] == [0, 2]
        assert channel.counters() == {"passed": 2, "dropped": 2,
                                      "duplicated": 0, "delayed": 0,
                                      "still_held": 0}

    def test_duplicate(self):
        sink = []
        channel = channel_for(sink, ScheduledFrameFault(FrameFault(
            "duplicate")))
        channel(frame(0.0, 0))
        assert [f["index"] for f in sink] == [0, 0]
        assert channel.n_duplicated == 1

    def test_delay_is_one_slot_reorder(self):
        sink = []
        channel = channel_for(
            sink, ScheduledFrameFault(FrameFault("delay", every=2)))
        for i in range(4):
            channel(frame(float(i), i))
        # Frames 1 and 3 are held and re-emitted after the next pass.
        assert [f["index"] for f in sink] == [0, 2, 1]
        assert channel.counters()["still_held"] == 1
        assert channel.flush() == 1
        assert [f["index"] for f in sink] == [0, 2, 1, 3]

    def test_only_scheduled_window_faults(self):
        sink = []
        channel = channel_for(sink, ScheduledFrameFault(
            FrameFault("drop"), start_s=1.0, end_s=3.0))
        for t in (0.0, 1.0, 2.0, 3.0):
            channel(frame(t))
        assert channel.n_dropped == 2
        assert channel.n_passed == 2

    def test_first_active_entry_wins(self):
        sink = []
        channel = channel_for(
            sink,
            ScheduledFrameFault(FrameFault("drop")),
            ScheduledFrameFault(FrameFault("duplicate")))
        channel(frame(0.0))
        assert sink == []
        assert channel.n_dropped == 1
        assert channel.n_duplicated == 0

    def test_frame_without_event_passes_through(self):
        sink = []
        channel = channel_for(sink, ScheduledFrameFault(
            FrameFault("drop"), start_s=1.0))
        channel({"bus": "ev", "index": 7})  # treated as time 0.0
        assert len(sink) == 1
