"""Higher-level situation detection from fused qualified contexts.

Paper section 5: "Our research will also look into how to support fusion
and aggregation for higher level contexts that may be able to classify
complex situations ... higher level context processors require a measure
to decide which of the simpler context information to believe."

:class:`SituationDetector` realizes that processor: it subscribes to the
low-level context topics (pen, chair, ...), keeps a quality-decayed
belief per source, combines the per-source dominant contexts through a
rule table into an office *situation*, and publishes situation events —
each weighted by the quality mass that produced it.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Mapping, Optional, Tuple

from ..core.fusion import TemporalAggregator
from ..exceptions import ConfigurationError
from ..types import ContextClass
from .base import Appliance
from .bus import EventBus
from .messages import ContextEvent

#: Canonical office situations.
WRITING_SESSION = ContextClass(index=0, name="writing-session")
DISCUSSION = ContextClass(index=1, name="discussion")
IDLE = ContextClass(index=2, name="idle")

SITUATIONS: Tuple[ContextClass, ...] = (WRITING_SESSION, DISCUSSION, IDLE)

#: Default rule table over (pen context, chair context) pairs.
#: A writing pen always signals a writing session; an occupied chair
#: without pen activity signals a discussion; everything still is idle.
DEFAULT_RULES: Dict[Tuple[str, str], ContextClass] = {
    ("writing", "empty"): WRITING_SESSION,
    ("writing", "sitting"): WRITING_SESSION,
    ("writing", "fidgeting"): WRITING_SESSION,
    ("playing", "sitting"): DISCUSSION,
    ("playing", "fidgeting"): DISCUSSION,
    ("lying", "sitting"): DISCUSSION,
    ("lying", "fidgeting"): DISCUSSION,
    ("lying", "empty"): IDLE,
    ("playing", "empty"): IDLE,
}

#: Topic situation events are published on.
SITUATION_TOPIC = "situation.office"


@dataclasses.dataclass(frozen=True)
class SituationState:
    """The detector's current belief."""

    situation: ContextClass
    confidence: float                 # min of the source shares in [0, 1]
    source_contexts: Mapping[str, str]


class SituationDetector(Appliance):
    """Rule-based higher-level context processor over qualified events.

    Parameters
    ----------
    bus:
        The office event bus.
    source_topics:
        Mapping of a role name (``"pen"``, ``"chair"``) to the topic that
        role's appliance publishes on.  The rule table is keyed by role
        order ``(pen, chair)``.
    rules:
        Rule table mapping ``(pen context name, chair context name)`` to
        a situation; defaults to :data:`DEFAULT_RULES`.
    min_quality:
        Events below this quality (or epsilon events) do not update the
        source beliefs — the "decide which ... to believe" gate.
    decay:
        Per-event exponential decay of accumulated per-source belief.
    """

    def __init__(self, bus: EventBus,
                 source_topics: Optional[Mapping[str, str]] = None,
                 rules: Optional[Mapping[Tuple[str, str],
                                         ContextClass]] = None,
                 min_quality: float = 0.0, decay: float = 0.7,
                 name: str = "situation-detector") -> None:
        super().__init__(name=name, bus=bus)
        topics = dict(source_topics) if source_topics is not None else {
            "pen": "context.pen", "chair": "context.chair"}
        if set(topics) != {"pen", "chair"}:
            raise ConfigurationError(
                f"source_topics must define 'pen' and 'chair', got "
                f"{sorted(topics)}")
        if not 0.0 <= min_quality <= 1.0:
            raise ConfigurationError(
                f"min_quality must be in [0, 1], got {min_quality}")
        self.rules = dict(rules) if rules is not None else dict(DEFAULT_RULES)
        self.min_quality = float(min_quality)
        self._beliefs: Dict[str, TemporalAggregator] = {
            role: TemporalAggregator(decay=decay) for role in topics}
        self._shares: Dict[str, float] = {}
        self.states: List[SituationState] = []
        self.ignored_events = 0
        self._topic_to_role = {topic: role for role, topic in topics.items()}
        for topic in topics.values():
            bus.subscribe(topic, self.on_event, name=name)

    # ------------------------------------------------------------------
    def on_event(self, event: ContextEvent) -> None:
        """Bus callback: update the source belief and re-evaluate rules."""
        role = self._topic_to_role.get(event.topic)
        if role is None:
            return
        if event.quality is None or event.quality < self.min_quality:
            self.ignored_events += 1
            return
        from ..types import Classification, QualifiedClassification
        import numpy as np

        qualified = QualifiedClassification(
            classification=Classification(cues=np.empty(0),
                                          context=event.context),
            quality=event.quality)
        state = self._beliefs[role].update(qualified)
        if state is not None:
            self._shares[role] = state[1]
        self._evaluate(event.time_s)

    def _evaluate(self, time_s: float) -> None:
        contexts = {}
        for role, aggregator in self._beliefs.items():
            dominant = aggregator.dominant()
            if dominant is None:
                return  # not enough evidence from every source yet
            contexts[role] = dominant.name
        key = (contexts["pen"], contexts["chair"])
        situation = self.rules.get(key)
        if situation is None:
            return
        confidence = min(self._shares.get(role, 0.0)
                         for role in self._beliefs)
        state = SituationState(situation=situation, confidence=confidence,
                               source_contexts=dict(contexts))
        previous = self.states[-1].situation if self.states else None
        self.states.append(state)
        if previous is None or previous.index != situation.index:
            self.publish_context(topic=SITUATION_TOPIC, context=situation,
                                 quality=confidence, time_s=time_s)

    # ------------------------------------------------------------------
    @property
    def current(self) -> Optional[SituationState]:
        """The most recent situation belief, if any."""
        return self.states[-1] if self.states else None

    def situation_history(self) -> List[ContextClass]:
        """Situations in publication order (changes only)."""
        return [e.context for e in self.published_events]

    def describe(self) -> str:
        return (f"SituationDetector({self.name}): fuses "
                f"{sorted(self._topic_to_role.values())} at "
                f"min_quality={self.min_quality}")
