"""Tests for repro.classifiers.centroid."""

import numpy as np
import pytest

from repro.classifiers.centroid import NearestCentroidClassifier
from repro.exceptions import NotFittedError, TrainingError


class TestNearestCentroid:
    def test_separates_blobs(self, three_classes, blob_data):
        x, y = blob_data
        clf = NearestCentroidClassifier(three_classes).fit(x, y)
        assert np.mean(clf.predict_indices(x) == y) > 0.95

    def test_requires_fit(self, three_classes):
        clf = NearestCentroidClassifier(three_classes)
        with pytest.raises(NotFittedError):
            clf.predict_indices(np.zeros((1, 3)))

    def test_every_class_needs_samples(self, three_classes, rng):
        clf = NearestCentroidClassifier(three_classes)
        x = rng.normal(size=(10, 3))
        y = np.array([0] * 5 + [1] * 5)  # class 2 missing
        with pytest.raises(TrainingError):
            clf.fit(x, y)

    def test_standardization_changes_geometry(self, three_classes, rng):
        # One dominating feature: standardization must rescale it.
        x = np.vstack([
            np.column_stack([rng.normal(0, 1, 30),
                             rng.normal(0, 1000, 30),
                             rng.normal(0, 1, 30)]),
            np.column_stack([rng.normal(4, 1, 30),
                             rng.normal(0, 1000, 30),
                             rng.normal(4, 1, 30)]),
            np.column_stack([rng.normal(-4, 1, 30),
                             rng.normal(0, 1000, 30),
                             rng.normal(-4, 1, 30)]),
        ])
        y = np.repeat([0, 1, 2], 30)
        std = NearestCentroidClassifier(three_classes,
                                        standardize=True).fit(x, y)
        raw = NearestCentroidClassifier(three_classes,
                                        standardize=False).fit(x, y)
        acc_std = np.mean(std.predict_indices(x) == y)
        acc_raw = np.mean(raw.predict_indices(x) == y)
        assert acc_std > acc_raw

    def test_single_vector(self, three_classes, blob_data):
        x, y = blob_data
        clf = NearestCentroidClassifier(three_classes).fit(x, y)
        assert clf.predict_indices(x[0]).shape == (1,)

    def test_constant_feature_no_nan(self, three_classes, rng):
        x = rng.normal(size=(60, 3))
        x[:, 2] = 5.0  # zero-variance column
        y = np.repeat([0, 1, 2], 20)
        clf = NearestCentroidClassifier(three_classes).fit(x, y)
        predictions = clf.predict_indices(x)
        assert np.all(np.isin(predictions, [0, 1, 2]))
