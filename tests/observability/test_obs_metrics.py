"""Tests for repro.observability.metrics — counters, gauges, histograms."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.observability.metrics import (TIME_EDGES, UNIT_EDGES, Counter,
                                         Gauge, Histogram, MetricsRegistry,
                                         linear_edges, log_edges,
                                         merge_snapshots)


class TestCounter:
    def test_monotone(self):
        c = Counter()
        c.inc()
        c.inc(5)
        assert c.value == 6
        with pytest.raises(ConfigurationError):
            c.inc(-1)


class TestGauge:
    def test_last_write_wins(self):
        g = Gauge()
        assert g.as_snapshot() is None
        g.set(3)
        g.set(7.5)
        assert g.as_snapshot() == 7.5


class TestEdges:
    def test_log_edges_cover_range(self):
        edges = log_edges(1e-6, 1e2, per_decade=8)
        assert edges[0] == pytest.approx(1e-6)
        assert edges[-1] == pytest.approx(1e2)
        assert all(b > a for a, b in zip(edges, edges[1:]))

    def test_linear_edges(self):
        edges = linear_edges(0.0, 1.0, n_bins=4)
        assert edges == (0.0, 0.25, 0.5, 0.75, 1.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            log_edges(0.0, 1.0)
        with pytest.raises(ConfigurationError):
            linear_edges(1.0, 0.0)
        with pytest.raises(ConfigurationError):
            Histogram(edges=[1.0])
        with pytest.raises(ConfigurationError):
            Histogram(edges=[1.0, 1.0, 2.0])


class TestHistogram:
    def test_exact_moments(self):
        hist = Histogram(edges=UNIT_EDGES)
        hist.observe_many([0.1, 0.2, 0.3, 0.4])
        assert hist.count == 4
        assert hist.mean == pytest.approx(0.25)
        assert hist.min == pytest.approx(0.1)
        assert hist.max == pytest.approx(0.4)

    def test_under_overflow_tallied(self):
        hist = Histogram(edges=UNIT_EDGES)
        hist.observe_many([-1.0, 0.5, 2.0])
        assert hist.n_underflow == 1
        assert hist.n_overflow == 1
        assert hist.count == 3
        assert hist.min == -1.0 and hist.max == 2.0

    def test_nan_inf_skipped(self):
        hist = Histogram(edges=UNIT_EDGES)
        hist.observe_many([0.5, float("nan"), float("inf")])
        assert hist.count == 1

    def test_empty_quantile_nan(self):
        hist = Histogram(edges=UNIT_EDGES)
        assert np.isnan(hist.quantile(0.5))
        assert np.isnan(hist.mean)

    def test_quantile_validation(self):
        hist = Histogram(edges=UNIT_EDGES)
        with pytest.raises(ConfigurationError):
            hist.quantile(1.5)

    def test_quantiles_on_known_data(self):
        hist = Histogram(edges=linear_edges(0.0, 1.0, n_bins=100))
        samples = np.arange(1, 101) / 100.0  # 0.01 .. 1.00
        hist.observe_many(samples)
        # inverted-CDF order statistic: p50 -> 50th sample = 0.50;
        # the estimate is within one bin width (0.01) of it.
        assert hist.p50 == pytest.approx(0.50, abs=0.0101)
        assert hist.p95 == pytest.approx(0.95, abs=0.0101)
        assert hist.p99 == pytest.approx(0.99, abs=0.0101)

    def test_quantile_clamped_to_observed_range(self):
        hist = Histogram(edges=UNIT_EDGES)
        hist.observe_many([0.301, 0.302])
        for q in (0.0, 0.5, 1.0):
            assert 0.301 <= hist.quantile(q) <= 0.302

    def test_quantile_with_underflow(self):
        hist = Histogram(edges=UNIT_EDGES)
        hist.observe_many([-5.0, -4.0, 0.5])
        assert hist.quantile(0.01) == -5.0  # rank 1 is an underflow
        assert hist.quantile(1.0) == 0.5

    def test_snapshot_round_trip(self):
        hist = Histogram(edges=UNIT_EDGES)
        hist.observe_many([0.1, 0.5, 0.9, 1.5])
        back = Histogram.from_snapshot(hist.as_snapshot())
        assert back.as_snapshot() == hist.as_snapshot()
        assert back.p50 == hist.p50


class TestRegistry:
    def test_get_or_create_is_stable(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert len(reg) == 1

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ConfigurationError, match="already exists"):
            reg.gauge("x")

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry().counter("")

    def test_convenience_writers(self):
        reg = MetricsRegistry()
        reg.inc("c", 2)
        reg.set_gauge("g", 1.5)
        reg.observe("h", 0.5, edges=UNIT_EDGES)
        reg.observe_many("h", [0.1, 0.9], edges=UNIT_EDGES)
        snap = reg.snapshot()
        assert snap["counters"]["c"] == 2
        assert snap["gauges"]["g"] == 1.5
        assert snap["histograms"]["h"]["count"] == 3

    def test_snapshot_keys_sorted(self):
        reg = MetricsRegistry()
        for name in ("z.last", "a.first", "m.mid"):
            reg.inc(name)
        snap = reg.snapshot()
        assert list(snap["counters"]) == sorted(snap["counters"])
        assert snap["schema"] == 1

    def test_snapshot_round_trip(self):
        reg = MetricsRegistry()
        reg.inc("c", 3)
        reg.set_gauge("g", 2.0)
        reg.gauge("g.unset")
        reg.observe_many("h", [0.2, 0.4], edges=UNIT_EDGES)
        back = MetricsRegistry.from_snapshot(reg.snapshot())
        assert back.snapshot() == reg.snapshot()


class TestMergeSemantics:
    def _snap(self, counter=0, gauge=None, values=()):
        reg = MetricsRegistry()
        if counter:
            reg.inc("c", counter)
        if gauge is not None:
            reg.set_gauge("g", gauge)
        if values:
            reg.observe_many("h", values, edges=UNIT_EDGES)
        return reg.snapshot()

    def test_counters_add(self):
        merged = merge_snapshots([self._snap(counter=2),
                                  self._snap(counter=3)])
        assert merged["counters"]["c"] == 5

    def test_gauges_last_write_wins_in_order(self):
        merged = merge_snapshots([self._snap(gauge=1.0),
                                  self._snap(gauge=9.0)])
        assert merged["gauges"]["g"] == 9.0
        merged = merge_snapshots([self._snap(gauge=9.0),
                                  self._snap(gauge=1.0)])
        assert merged["gauges"]["g"] == 1.0

    def test_none_gauge_does_not_clobber(self):
        reg = MetricsRegistry()
        reg.gauge("g")  # registered, never set
        merged = merge_snapshots([self._snap(gauge=4.0), reg.snapshot()])
        assert merged["gauges"]["g"] == 4.0

    def test_histograms_add(self):
        merged = merge_snapshots([self._snap(values=[0.1, 0.2]),
                                  self._snap(values=[0.3])])
        h = merged["histograms"]["h"]
        assert h["count"] == 3
        assert h["min"] == pytest.approx(0.1)
        assert h["max"] == pytest.approx(0.3)

    def test_mismatched_edges_rejected(self):
        a = MetricsRegistry()
        a.observe("h", 0.5, edges=UNIT_EDGES)
        b = MetricsRegistry()
        b.observe("h", 0.5, edges=TIME_EDGES)
        with pytest.raises(ConfigurationError, match="edges differ"):
            merge_snapshots([a.snapshot(), b.snapshot()])

    def test_merge_into_empty_is_identity(self):
        snap = self._snap(counter=4, gauge=2.0, values=[0.5])
        assert merge_snapshots([snap]) == snap
