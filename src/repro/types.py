"""Shared dataclasses and type aliases used across the :mod:`repro` package.

The vocabulary follows the paper:

* a *cue vector* ``v_C = (v_1, ..., v_n)`` holds the sensor cues that feed
  the context classifier (paper section 2.1.1);
* a *quality input vector* ``v_Q = (v_C, c)`` appends the numeric identifier
  of the classified context ``c``;
* a :class:`Classification` couples the cue vector with the classifier's
  decision; a :class:`QualifiedClassification` additionally carries the
  Context Quality Measure ``q``.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence, Tuple

import numpy as np

#: Array of cue vectors, shape ``(n_samples, n_cues)``.
CueMatrix = np.ndarray

#: A single cue vector, shape ``(n_cues,)``.
CueVector = np.ndarray


@dataclasses.dataclass(frozen=True)
class ContextClass:
    """A context class known to a classifier.

    Parameters
    ----------
    index:
        Numeric identifier ``c`` used in the quality input vector ``v_Q``.
    name:
        Human-readable label, e.g. ``"writing"``.
    """

    index: int
    name: str

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"class index must be >= 0, got {self.index}")
        if not self.name:
            raise ValueError("class name must be non-empty")


@dataclasses.dataclass(frozen=True)
class Classification:
    """Result of one black-box context classification.

    Attributes
    ----------
    cues:
        The cue vector ``v_C`` the decision was based on.
    context:
        The predicted :class:`ContextClass`.
    """

    cues: CueVector
    context: ContextClass

    @property
    def quality_input(self) -> np.ndarray:
        """The quality input vector ``v_Q = (v_1, ..., v_n, c)``."""
        return np.append(np.asarray(self.cues, dtype=float),
                         float(self.context.index))


@dataclasses.dataclass(frozen=True)
class QualifiedClassification:
    """A classification together with its Context Quality Measure.

    Attributes
    ----------
    classification:
        The underlying black-box decision.
    quality:
        The CQM value ``q`` in ``[0, 1]``, or ``None`` when the raw quality
        FIS output fell into the error state epsilon (paper section 2.1.3).
    """

    classification: Classification
    quality: Optional[float]

    @property
    def is_error_state(self) -> bool:
        """Whether the normalization mapped the FIS output to epsilon."""
        return self.quality is None

    @property
    def context(self) -> ContextClass:
        """Shortcut to the classified context."""
        return self.classification.context


@dataclasses.dataclass(frozen=True)
class LabeledWindow:
    """A sensor window with ground truth, used for training and evaluation.

    Attributes
    ----------
    cues:
        Cue vector ``v_C`` extracted from the window.
    true_context:
        Ground-truth context class of the window.
    """

    cues: CueVector
    true_context: ContextClass


def as_cue_matrix(cues: Sequence[Sequence[float]]) -> CueMatrix:
    """Coerce *cues* to a 2-D float array of shape ``(n_samples, n_cues)``.

    Raises
    ------
    repro.exceptions.DimensionError
        If the input cannot be interpreted as a 2-D matrix.
    """
    from .exceptions import DimensionError

    arr = np.asarray(cues, dtype=float)
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    if arr.ndim != 2:
        raise DimensionError(
            f"cue matrix must be 2-D, got shape {arr.shape}")
    if arr.shape[1] == 0:
        raise DimensionError("cue matrix must have at least one cue column")
    return arr


def split_xy(windows: Sequence[LabeledWindow]) -> Tuple[CueMatrix, np.ndarray]:
    """Split labeled windows into a cue matrix and an integer label vector."""
    from .exceptions import EmptyDatasetError

    if not windows:
        raise EmptyDatasetError("cannot split an empty window sequence")
    x = np.vstack([np.asarray(w.cues, dtype=float) for w in windows])
    y = np.array([w.true_context.index for w in windows], dtype=int)
    return x, y
