"""Tests for repro.sensors.faults — composable fault injection."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.sensors.faults import (DropoutFault, FaultChain,
                                  FaultInjectingSensor, FaultSchedule,
                                  JitterFault, NoiseBurstFault,
                                  SaturationFault, ScheduledFault,
                                  SpikeFault, StuckAtFault,
                                  standard_fault_suite)
from repro.sensors.signal import IDEAL_SENSOR


@pytest.fixture
def ramp():
    """A smooth, strictly increasing 3-axis test signal."""
    t = np.linspace(0.0, 1.0, 400)
    return np.column_stack([t, 1.4 * t, 1.8 * t])


class TestValidation:
    def test_dropout_rate_range(self):
        with pytest.raises(ConfigurationError):
            DropoutFault(rate=1.0)

    def test_dropout_gap_positive(self):
        with pytest.raises(ConfigurationError):
            DropoutFault(gap=0)

    def test_stuck_fraction_range(self):
        with pytest.raises(ConfigurationError):
            StuckAtFault(fraction=1.5)

    def test_stuck_bad_axis(self, ramp, rng):
        with pytest.raises(ConfigurationError):
            StuckAtFault(fraction=0.5, axes=(7,)).apply(ramp, rng)

    def test_spike_magnitude_positive(self):
        with pytest.raises(ConfigurationError):
            SpikeFault(magnitude=0.0)

    def test_saturation_limits_ordered(self):
        with pytest.raises(ConfigurationError):
            SaturationFault(min_limit=3.0, full_scale=2.0)

    def test_jitter_shift_positive(self):
        with pytest.raises(ConfigurationError):
            JitterFault(max_shift=0)

    def test_chain_needs_faults(self):
        with pytest.raises(ConfigurationError):
            FaultChain(faults=())

    def test_schedule_window_ordered(self):
        with pytest.raises(ConfigurationError):
            ScheduledFault(DropoutFault(), start_s=5.0, end_s=5.0)

    def test_signal_must_be_2d(self, rng):
        with pytest.raises(ConfigurationError):
            DropoutFault().apply(np.zeros(10), rng)


class TestFaultBehaviour:
    def test_dropout_makes_nan_gaps(self, ramp, rng):
        out = DropoutFault(rate=0.3, gap=4).apply(ramp, rng)
        lost = np.isnan(out).any(axis=1)
        assert 0.1 < np.mean(lost) < 0.6
        # Lost samples are NaN across all axes (whole reading vanished).
        assert np.all(np.isnan(out[lost]))

    def test_dropout_input_untouched(self, ramp, rng):
        before = ramp.copy()
        DropoutFault(rate=0.5).apply(ramp, rng)
        np.testing.assert_array_equal(ramp, before)

    def test_stuck_freezes_tail(self, ramp, rng):
        out = StuckAtFault(fraction=0.5).apply(ramp, rng)
        onset = ramp.shape[0] - ramp.shape[0] // 2
        np.testing.assert_array_equal(out[:onset], ramp[:onset])
        assert np.all(out[onset:] == out[onset])

    def test_stuck_level_overrides_held_value(self, ramp, rng):
        out = StuckAtFault(fraction=0.25, level=9.0).apply(ramp, rng)
        assert np.all(out[-10:] == 9.0)

    def test_spikes_hit_single_axes(self, ramp, rng):
        out = SpikeFault(rate=0.1, magnitude=50.0).apply(ramp, rng)
        hit = np.abs(out - ramp) > 1.0
        assert hit.any()
        # Each spike lands on exactly one axis of its sample.
        assert np.all(hit.sum(axis=1)[hit.any(axis=1)] == 1)

    def test_noise_burst_is_localized(self, ramp):
        fault = NoiseBurstFault(fraction=0.2, noise_std=0.5, n_bursts=1)
        out = fault.apply(ramp, np.random.default_rng(5))
        changed = np.abs(out - ramp).sum(axis=1) > 0
        assert 0.05 < np.mean(changed) < 0.5

    def test_saturation_clips_to_effective_limit(self, ramp, rng):
        fault = SaturationFault(severity=1.0, full_scale=2.0, min_limit=0.5)
        assert fault.limit == pytest.approx(0.5)
        out = fault.apply(ramp, rng)
        assert np.max(np.abs(out)) <= 0.5 + 1e-12

    def test_jitter_permutes_locally(self, ramp, rng):
        out = JitterFault(rate=1.0, max_shift=3).apply(ramp, rng)
        # Every output sample is some input sample at most 3 steps away.
        for i in (0, 100, 399):
            window = ramp[max(0, i - 3):i + 4]
            assert any(np.allclose(out[i], row) for row in window)

    def test_chain_composes_left_to_right(self, ramp, rng):
        chain = FaultChain((SaturationFault(severity=1.0, min_limit=0.5),
                            DropoutFault(rate=0.3)))
        out = chain.apply(ramp, np.random.default_rng(2))
        finite = out[~np.isnan(out)]
        assert np.isnan(out).any()
        assert np.max(np.abs(finite)) <= 0.5 + 1e-12
        assert chain.name == "saturation+dropout"

    def test_deterministic_per_seed(self, ramp):
        fault = DropoutFault(rate=0.3)
        a = fault.apply(ramp, np.random.default_rng(9))
        b = fault.apply(ramp, np.random.default_rng(9))
        np.testing.assert_array_equal(a, b)


class TestScaling:
    @pytest.mark.parametrize("name,fault",
                             sorted(standard_fault_suite().items()))
    def test_zero_intensity_is_benign(self, name, fault, ramp, rng):
        out = fault.scaled(0.0).apply(ramp, rng)
        np.testing.assert_allclose(out, ramp)

    @pytest.mark.parametrize("name,fault",
                             sorted(standard_fault_suite().items()))
    def test_full_intensity_is_identity_scaling(self, name, fault):
        assert fault.scaled(1.0) == fault

    def test_intensity_out_of_range(self):
        with pytest.raises(ConfigurationError):
            DropoutFault().scaled(1.5)

    def test_intensity_orders_severity(self, ramp):
        fault = DropoutFault(rate=0.6, gap=2)
        lost = [np.mean(np.isnan(fault.scaled(i).apply(
                    ramp, np.random.default_rng(3))))
                for i in (0.2, 1.0)]
        assert lost[0] < lost[1]


class TestSchedule:
    def test_faults_only_inside_window(self, ramp, rng):
        schedule = FaultSchedule((
            ScheduledFault(StuckAtFault(fraction=1.0, level=5.0),
                           start_s=1.0, end_s=2.0),
        ))
        out = schedule.apply(ramp, rng, rate_hz=100.0)
        np.testing.assert_array_equal(out[:100], ramp[:100])
        assert np.all(out[100:200] == 5.0)
        np.testing.assert_array_equal(out[200:], ramp[200:])

    def test_open_ended_window_runs_to_end(self, ramp, rng):
        schedule = FaultSchedule((
            ScheduledFault(StuckAtFault(fraction=1.0, level=1.0),
                           start_s=3.0),
        ))
        out = schedule.apply(ramp, rng, rate_hz=100.0)
        assert np.all(out[300:] == 1.0)

    def test_faults_at_reports_active_entries(self):
        schedule = FaultSchedule((
            ScheduledFault(DropoutFault(), start_s=0.0, end_s=10.0),
            ScheduledFault(SpikeFault(), start_s=5.0),
        ))
        assert len(schedule.faults_at(2.0)) == 1
        assert len(schedule.faults_at(7.0)) == 2
        assert len(schedule.faults_at(15.0)) == 1

    def test_scaled_schedule_scales_every_entry(self):
        schedule = FaultSchedule((
            ScheduledFault(DropoutFault(rate=0.4), start_s=0.0),
        ))
        assert schedule.scaled(0.5).entries[0].fault.rate == \
            pytest.approx(0.2)


class TestScheduleComposition:
    """Overlapping entries apply strictly in entry order (regression:
    the scenario zoo's composed fault schedules depend on it)."""

    STUCK = ScheduledFault(StuckAtFault(fraction=1.0, level=5.0),
                           start_s=1.0, end_s=3.0)
    SATURATE = ScheduledFault(SaturationFault(severity=1.0,
                                              min_limit=0.5),
                              start_s=1.0, end_s=3.0)

    def test_stuck_then_saturation_clips_the_held_level(self, ramp):
        schedule = FaultSchedule((self.STUCK, self.SATURATE))
        out = schedule.apply(ramp, np.random.default_rng(4),
                             rate_hz=100.0)
        assert np.all(out[100:300] == 0.5)

    def test_saturation_then_stuck_keeps_the_held_level(self, ramp):
        schedule = FaultSchedule((self.SATURATE, self.STUCK))
        out = schedule.apply(ramp, np.random.default_rng(4),
                             rate_hz=100.0)
        assert np.all(out[100:300] == 5.0)

    def test_partial_overlap_composes_only_inside_it(self, ramp):
        schedule = FaultSchedule((
            ScheduledFault(StuckAtFault(fraction=1.0, level=5.0),
                           start_s=0.0, end_s=2.0),
            ScheduledFault(SaturationFault(severity=1.0, min_limit=0.5),
                           start_s=1.0, end_s=3.0),
        ))
        out = schedule.apply(ramp, np.random.default_rng(4),
                             rate_hz=100.0)
        assert np.all(out[:100] == 5.0)        # stuck alone
        assert np.all(out[100:200] == 0.5)     # both: clip wins
        assert np.max(np.abs(out[200:300])) <= 0.5 + 1e-12  # sat alone
        np.testing.assert_array_equal(out[300:], ramp[300:])

    def test_merged_is_schedule_major(self, ramp):
        a = FaultSchedule((self.STUCK,))
        b = FaultSchedule((self.SATURATE,))
        merged = FaultSchedule.merged([a, b])
        assert merged.entries == (self.STUCK, self.SATURATE)
        out = merged.apply(ramp, np.random.default_rng(4), rate_hz=100.0)
        expected = FaultSchedule((self.STUCK, self.SATURATE)).apply(
            ramp, np.random.default_rng(4), rate_hz=100.0)
        np.testing.assert_array_equal(out, expected)

    def test_merged_order_matters_for_overlaps(self, ramp):
        a = FaultSchedule((self.STUCK,))
        b = FaultSchedule((self.SATURATE,))
        forward = FaultSchedule.merged([a, b]).apply(
            ramp, np.random.default_rng(4), rate_hz=100.0)
        backward = FaultSchedule.merged([b, a]).apply(
            ramp, np.random.default_rng(4), rate_hz=100.0)
        assert np.all(forward[100:300] == 0.5)
        assert np.all(backward[100:300] == 5.0)

    def test_merged_needs_schedules(self):
        with pytest.raises(ConfigurationError):
            FaultSchedule.merged([])


class TestFaultInjectingSensor:
    def test_acts_as_sensor_model(self, ramp, rng):
        sensor = FaultInjectingSensor(base=IDEAL_SENSOR,
                                      fault=DropoutFault(rate=0.3))
        out = sensor.apply(ramp, rng)
        assert out.shape == ramp.shape
        assert np.isnan(out).any()

    def test_no_fault_is_plain_base(self, ramp, rng):
        sensor = FaultInjectingSensor(base=IDEAL_SENSOR)
        np.testing.assert_array_equal(sensor.apply(ramp, rng), ramp)

    def test_schedule_uses_rate(self, ramp, rng):
        schedule = FaultSchedule((
            ScheduledFault(StuckAtFault(fraction=1.0, level=2.0),
                           start_s=2.0),
        ))
        sensor = FaultInjectingSensor(base=IDEAL_SENSOR, fault=schedule,
                                      rate_hz=100.0)
        out = sensor.apply(ramp, rng)
        np.testing.assert_array_equal(out[:200], ramp[:200])
        assert np.all(out[200:] == 2.0)

    def test_streams_epsilon_windows_through_node(self, experiment, rng):
        """End to end: a dropout sensor makes the node emit NaN cues and
        the CQM reports ε for them — the deployment path of §2.1.3."""
        from repro.datasets.activities import evaluation_script
        from repro.datasets.generator import generate_dataset
        from repro.sensors.node import SensorNode

        node = SensorNode(sensor=FaultInjectingSensor(
            fault=DropoutFault(rate=0.5, gap=10)))
        data = generate_dataset(
            lambda r: evaluation_script(r, blocks=1), seed=11, node=node)
        qualities = experiment.augmented.qualities(data.cues)
        assert np.isnan(qualities).any()

    def test_suite_has_enough_fault_types(self):
        assert len(standard_fault_suite()) >= 4
