"""Parametric membership functions.

The paper's quality FIS uses non-linear Gaussian membership functions
(section 2.1.2):

.. math::

    F_{ij}(v_i) = e^{-(v_i - \\mu_{ij})^2 / (2 \\sigma_{ij}^2)}

Other standard shapes (triangular, trapezoidal, generalized bell, sigmoid)
are provided for the Mamdani substrate and for ablations.  All functions are
vectorized over numpy arrays and return values in ``[0, 1]``.
"""

from __future__ import annotations

import abc
import dataclasses
from typing import Dict, Union

import numpy as np

from ..exceptions import ConfigurationError

ArrayLike = Union[float, np.ndarray]


class MembershipFunction(abc.ABC):
    """Abstract base class of all membership functions."""

    @abc.abstractmethod
    def __call__(self, x: ArrayLike) -> ArrayLike:
        """Evaluate the membership degree of *x*."""

    @abc.abstractmethod
    def parameters(self) -> Dict[str, float]:
        """Return the parameter dictionary describing this function."""

    def support_center(self) -> float:
        """A representative point of maximal membership (used by defuzzifiers)."""
        raise NotImplementedError


@dataclasses.dataclass
class GaussianMF(MembershipFunction):
    """Gaussian membership function ``exp(-(x - mean)^2 / (2 sigma^2))``.

    This is the antecedent shape used throughout the paper; its ``mean`` and
    ``sigma`` are the parameters tuned by the ANFIS backward pass.
    """

    mean: float
    sigma: float

    def __post_init__(self) -> None:
        if self.sigma <= 0:
            raise ConfigurationError(
                f"GaussianMF sigma must be > 0, got {self.sigma}")

    def __call__(self, x: ArrayLike) -> ArrayLike:
        x = np.asarray(x, dtype=float)
        z = (x - self.mean) / self.sigma
        return np.exp(-0.5 * z * z)

    def parameters(self) -> Dict[str, float]:
        return {"mean": self.mean, "sigma": self.sigma}

    def support_center(self) -> float:
        return self.mean


@dataclasses.dataclass
class TriangularMF(MembershipFunction):
    """Triangular membership function with feet *a*, *c* and peak *b*."""

    a: float
    b: float
    c: float

    def __post_init__(self) -> None:
        if not (self.a <= self.b <= self.c):
            raise ConfigurationError(
                f"TriangularMF requires a <= b <= c, got "
                f"({self.a}, {self.b}, {self.c})")
        if self.a == self.c:
            raise ConfigurationError("TriangularMF must have a < c")

    def __call__(self, x: ArrayLike) -> ArrayLike:
        x = np.asarray(x, dtype=float)
        left = ((x - self.a) / (self.b - self.a)
                if self.b > self.a else np.where(x >= self.b, 1.0, 0.0))
        right = ((self.c - x) / (self.c - self.b)
                 if self.c > self.b else np.where(x <= self.b, 1.0, 0.0))
        return np.clip(np.minimum(left, right), 0.0, 1.0)

    def parameters(self) -> Dict[str, float]:
        return {"a": self.a, "b": self.b, "c": self.c}

    def support_center(self) -> float:
        return self.b


@dataclasses.dataclass
class TrapezoidalMF(MembershipFunction):
    """Trapezoidal membership function with corners ``a <= b <= c <= d``."""

    a: float
    b: float
    c: float
    d: float

    def __post_init__(self) -> None:
        if not (self.a <= self.b <= self.c <= self.d):
            raise ConfigurationError(
                f"TrapezoidalMF requires a <= b <= c <= d, got "
                f"({self.a}, {self.b}, {self.c}, {self.d})")
        if self.a == self.d:
            raise ConfigurationError("TrapezoidalMF must have a < d")

    def __call__(self, x: ArrayLike) -> ArrayLike:
        x = np.asarray(x, dtype=float)
        with np.errstate(divide="ignore", invalid="ignore"):
            left = np.where(self.b > self.a, (x - self.a) / max(self.b - self.a, 1e-300), 1.0)
            right = np.where(self.d > self.c, (self.d - x) / max(self.d - self.c, 1e-300), 1.0)
        out = np.minimum(np.minimum(left, 1.0), right)
        return np.clip(out, 0.0, 1.0)

    def parameters(self) -> Dict[str, float]:
        return {"a": self.a, "b": self.b, "c": self.c, "d": self.d}

    def support_center(self) -> float:
        return 0.5 * (self.b + self.c)


@dataclasses.dataclass
class GeneralizedBellMF(MembershipFunction):
    """Generalized bell ``1 / (1 + |((x - c) / a)|^(2 b))`` (Jang 1993)."""

    a: float
    b: float
    c: float

    def __post_init__(self) -> None:
        if self.a <= 0:
            raise ConfigurationError(f"bell width a must be > 0, got {self.a}")
        if self.b <= 0:
            raise ConfigurationError(f"bell slope b must be > 0, got {self.b}")

    def __call__(self, x: ArrayLike) -> ArrayLike:
        x = np.asarray(x, dtype=float)
        return 1.0 / (1.0 + np.abs((x - self.c) / self.a) ** (2.0 * self.b))

    def parameters(self) -> Dict[str, float]:
        return {"a": self.a, "b": self.b, "c": self.c}

    def support_center(self) -> float:
        return self.c


@dataclasses.dataclass
class SigmoidMF(MembershipFunction):
    """Sigmoidal membership ``1 / (1 + exp(-slope (x - center)))``."""

    center: float
    slope: float

    def __call__(self, x: ArrayLike) -> ArrayLike:
        x = np.asarray(x, dtype=float)
        return 1.0 / (1.0 + np.exp(-self.slope * (x - self.center)))

    def parameters(self) -> Dict[str, float]:
        return {"center": self.center, "slope": self.slope}

    def support_center(self) -> float:
        # Point of membership 1 in the limit; use a finite representative.
        return self.center


def gaussian_sigma_from_radius(radius: float, value_range: float) -> float:
    """Initial Gaussian width from a subtractive-clustering radius.

    Follows the genfis2 convention: a cluster of (relative) radius ``r_a``
    over a dimension spanning ``value_range`` yields

    .. math:: \\sigma = r_a \\cdot \\text{range} / \\sqrt{8}

    so that the membership drops to ``exp(-4) \\approx 0.018`` at a distance
    of one radius — matching Chiu's potential kernel.
    """
    if radius <= 0:
        raise ConfigurationError(f"radius must be > 0, got {radius}")
    if value_range <= 0:
        raise ConfigurationError(
            f"value_range must be > 0, got {value_range}")
    return radius * value_range / np.sqrt(8.0)
