"""Wire-format round-trips, fuzzing, and validation of the serving
records — malformed frames must produce protocol error responses,
never a crash."""

import asyncio
import json

import numpy as np
import pytest

from repro.core.degradation import GateAction
from repro.exceptions import ConfigurationError
from repro.serving import ServeRequest, ServeResponse

from .conftest import make_requests


class TestServeRequest:
    def test_round_trip_without_class(self):
        request = ServeRequest(request_id=5, cues=np.array([1.0, 2.5, -3.0]))
        back = ServeRequest.from_json(request.to_json())
        assert back.request_id == 5
        assert back.class_index is None
        assert np.array_equal(back.cues, request.cues)

    def test_round_trip_with_class(self):
        request = ServeRequest(request_id=0, cues=np.ones(4), class_index=2)
        back = ServeRequest.from_json(request.to_json())
        assert back.class_index == 2

    def test_cues_are_flattened_floats(self):
        request = ServeRequest(request_id=1, cues=[[1, 2], [3, 4]])
        assert request.cues.shape == (4,)
        assert request.cues.dtype == float

    def test_empty_cues_rejected(self):
        with pytest.raises(ConfigurationError, match="empty cue"):
            ServeRequest(request_id=1, cues=np.empty(0))

    def test_bad_json_rejected(self):
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            ServeRequest.from_json("{nope")

    def test_missing_cues_rejected(self):
        with pytest.raises(ConfigurationError, match="'cues'"):
            ServeRequest.from_json('{"id": 3}')


class TestServeResponse:
    def _response(self, **overrides):
        base = dict(request_id=7, class_index=1, class_name="writing",
                    quality=0.83, action=GateAction.ACCEPT, degraded=False,
                    shed=False, package_version=2, batch_size=16,
                    latency_s=0.0031)
        base.update(overrides)
        return ServeResponse(**base)

    def test_round_trip(self):
        response = self._response()
        back = ServeResponse.from_json(response.to_json())
        assert back.request_id == 7
        assert back.class_index == 1
        assert back.class_name == "writing"
        assert back.quality == pytest.approx(0.83)
        assert back.action is GateAction.ACCEPT
        assert back.package_version == 2
        assert back.batch_size == 16
        assert back.latency_s == pytest.approx(0.0031, rel=1e-3)

    def test_epsilon_round_trip(self):
        response = self._response(quality=None, action=GateAction.REJECT,
                                  degraded=True)
        back = ServeResponse.from_json(response.to_json())
        assert back.quality is None
        assert back.is_error_state
        assert not back.accepted

    def test_shed_response_has_no_version(self):
        response = self._response(shed=True, package_version=None,
                                  quality=None, action=GateAction.REJECT,
                                  degraded=True, class_index=None,
                                  class_name=None, batch_size=0)
        back = ServeResponse.from_json(response.to_json())
        assert back.shed
        assert back.package_version is None
        assert back.class_index is None

    def test_key_excludes_scheduling_fields(self):
        a = self._response(batch_size=4, latency_s=0.001, package_version=1)
        b = self._response(batch_size=32, latency_s=0.9, package_version=2)
        assert a.key() == b.key()

    def test_key_includes_decision_fields(self):
        a = self._response()
        b = self._response(action=GateAction.REJECT)
        assert a.key() != b.key()


def _mangle(rng, line: str) -> str:
    """One seeded mutation of a valid JSONL frame."""
    mutation = rng.integers(0, 6)
    if mutation == 0:                      # truncate mid-line
        return line[:int(rng.integers(0, max(1, len(line))))]
    if mutation == 1:                      # byte flip
        k = int(rng.integers(0, len(line)))
        return line[:k] + chr(int(rng.integers(32, 127))) + line[k + 1:]
    if mutation == 2:                      # wrong JSON type
        return rng.choice(['[]', '"cues"', '42', 'null', 'true'])
    if mutation == 3:                      # non-numeric payloads
        return rng.choice(['{"id": "x", "cues": [1.0]}',
                           '{"cues": ["a", "b"]}',
                           '{"cues": {"0": 1.0}}',
                           '{"cues": [[1.0], [2.0, 3.0]]}',
                           '{"cues": [1.0], "class_index": "zero"}'])
    if mutation == 4:                      # empty-ish frames
        return rng.choice(['{}', '{"cues": []}', '{"id": 1}'])
    return line + line                     # doubled frame on one line


class TestProtocolFuzz:
    """Malformed frames must raise ConfigurationError — never anything
    else — and valid frames must survive arbitrary round-trips."""

    def test_mangled_frames_never_crash(self):
        rng = np.random.default_rng(42)
        base = ServeRequest(request_id=3, cues=np.array([0.1, 0.2, 0.3]),
                            class_index=1).to_json()
        outcomes = {"parsed": 0, "rejected": 0}
        for _ in range(300):
            frame = _mangle(rng, base)
            try:
                request = ServeRequest.from_json(frame)
            except ConfigurationError:
                outcomes["rejected"] += 1
            else:
                # A mutation may still be a valid frame; it must then
                # satisfy the record's own invariants.
                assert request.cues.size > 0
                assert request.cues.dtype == float
                outcomes["parsed"] += 1
        assert outcomes["rejected"] > 0
        assert outcomes["parsed"] > 0      # the fuzzer isn't vacuous

    def test_random_requests_round_trip(self):
        rng = np.random.default_rng(9)
        for k in range(100):
            cues = rng.normal(size=int(rng.integers(1, 9)))
            class_index = (int(rng.integers(0, 5))
                           if rng.random() < 0.5 else None)
            request = ServeRequest(request_id=k, cues=cues,
                                   class_index=class_index)
            back = ServeRequest.from_json(request.to_json())
            assert back.request_id == k
            assert back.class_index == class_index
            assert np.array_equal(back.cues, request.cues)

    def test_random_responses_round_trip(self):
        rng = np.random.default_rng(11)
        actions = list(GateAction)
        for k in range(100):
            shed = bool(rng.random() < 0.2)
            epsilon = shed or rng.random() < 0.2
            response = ServeResponse(
                request_id=k,
                class_index=None if shed else int(rng.integers(0, 3)),
                class_name=None if shed else "writing",
                quality=None if epsilon else float(rng.random()),
                action=actions[int(rng.integers(0, len(actions)))],
                degraded=epsilon, shed=shed,
                package_version=None if shed else int(rng.integers(1, 4)),
                batch_size=int(rng.integers(0, 33)),
                latency_s=float(rng.random() / 100))
            back = ServeResponse.from_json(response.to_json())
            assert back.key() == response.key()

    def test_truncations_of_a_valid_frame_all_rejected_or_valid(self):
        line = ServeRequest(request_id=1, cues=np.array([1.5, -2.0]),
                            class_index=2).to_json()
        for cut in range(len(line)):
            try:
                ServeRequest.from_json(line[:cut])
            except ConfigurationError:
                pass                        # the only acceptable failure


class TestSocketFuzz:
    """Socket-level robustness: bad frames get error replies and the
    server keeps serving — never a crash, never a hung connection."""

    @staticmethod
    async def _exchange(port, payload: bytes):
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        writer.write(payload)
        await writer.drain()
        writer.write_eof()
        lines = []
        while True:
            line = await asyncio.wait_for(reader.readline(), timeout=10)
            if not line:
                break
            lines.append(json.loads(line))
        writer.close()
        await writer.wait_closed()
        return lines

    def test_malformed_then_valid_frames_on_one_connection(
            self, registry, cue_pool):
        from .conftest import socket_server

        valid = ServeRequest(request_id=1,
                             cues=cue_pool[0]).to_json().encode()

        async def scenario():
            async with socket_server(registry) as port:
                return await self._exchange(
                    port, b'{"nope": 1}\n' + b'not json at all\n'
                    + b'\xff\xfe garbage bytes\n' + valid + b"\n")

        replies = asyncio.run(scenario())
        errors = [r for r in replies if "error" in r]
        answers = [r for r in replies if "error" not in r]
        assert len(errors) == 3
        assert all("bad request" in r["error"] for r in errors)
        assert len(answers) == 1
        assert answers[0]["id"] == 1

    def test_wrong_dimension_cues_get_error_response(self, registry,
                                                     cue_pool):
        from .conftest import socket_server

        bad = ServeRequest(request_id=5, cues=np.ones(
            cue_pool.shape[1] + 3)).to_json().encode()

        async def scenario():
            async with socket_server(registry) as port:
                return await self._exchange(port, bad + b"\n")

        replies = asyncio.run(scenario())
        assert len(replies) == 1
        assert replies[0]["id"] == 5
        assert "Error" in replies[0]["error"]    # DimensionError

    def test_oversized_frame_rejected_and_server_survives(
            self, registry, cue_pool):
        from .conftest import socket_server

        # Far beyond asyncio's 64 KiB default stream line limit.
        oversized = b'{"cues": [' + b"1.0, " * 60000 + b"1.0]}\n"
        valid = ServeRequest(request_id=2,
                             cues=cue_pool[0]).to_json().encode()

        async def scenario():
            async with socket_server(registry) as port:
                first = await self._exchange(port, oversized)
                # The listener must still accept fresh connections.
                second = await self._exchange(port, valid + b"\n")
                return first, second

        first, second = asyncio.run(scenario())
        assert len(first) == 1
        assert "line limit" in first[0]["error"]
        assert len(second) == 1
        assert second[0]["id"] == 2

    def test_oversized_batch_of_frames_all_answered(self, registry,
                                                    cue_pool):
        from .conftest import socket_server
        from repro.serving import ServingConfig

        requests = make_requests(cue_pool, 64, seed=8)
        payload = "".join(r.to_json() + "\n" for r in requests).encode()

        async def scenario():
            async with socket_server(
                    registry,
                    config=ServingConfig(max_batch=4,
                                         deadline_s=0.001)) as port:
                return await self._exchange(port, payload)

        replies = asyncio.run(scenario())
        assert {r["id"] for r in replies} == set(range(64))
        assert all("error" not in r for r in replies)
