"""Golden regression pins for the paper-facing numbers (seed 7).

The pipeline is deterministic for a fixed seed, so the headline numbers
are pinned tightly: a drift here means a behavioural change somewhere in
the cue → clustering → ANFIS → calibration chain, and must be a
conscious decision (update the goldens in the same commit and note why).
The looser paper-faithfulness ranges stay as a second line of defence —
they fail only when a change breaks the reproduction qualitatively.
"""

import pytest

# Golden values computed at seed 7 with the default ConstructionConfig
# (numpy 2.x, see EXPERIMENTS.md).  GOLDEN_ABS is deliberately far
# tighter than run-to-run noise (there is none — the run is
# deterministic) but loose enough to survive BLAS/platform rounding.
GOLDEN_ABS = 1e-6

GOLDEN = {
    "threshold": 0.6332453446766886,
    "p_right_above": 0.7858216848525837,
    "p_wrong_below": 0.8778012254295866,
    "accuracy_before": 0.75,
    "accuracy_after": 0.8888888888888888,
    "improvement_ratio": 0.18518518518518512,
    "discard_fraction": 0.25,
    "n_rules": 3,
}


class TestGoldenNumbers:
    def test_threshold(self, experiment):
        assert experiment.threshold \
            == pytest.approx(GOLDEN["threshold"], abs=GOLDEN_ABS)

    def test_selection_probabilities(self, experiment):
        probs = experiment.calibration.probabilities
        assert probs.right_given_above \
            == pytest.approx(GOLDEN["p_right_above"], abs=GOLDEN_ABS)
        assert probs.wrong_given_below \
            == pytest.approx(GOLDEN["p_wrong_below"], abs=GOLDEN_ABS)

    def test_filtering_improvement(self, experiment):
        outcome = experiment.evaluation_outcome
        assert outcome.accuracy_before \
            == pytest.approx(GOLDEN["accuracy_before"], abs=GOLDEN_ABS)
        assert outcome.accuracy_after \
            == pytest.approx(GOLDEN["accuracy_after"], abs=GOLDEN_ABS)
        ratio = outcome.improvement / outcome.accuracy_before
        assert ratio \
            == pytest.approx(GOLDEN["improvement_ratio"], abs=GOLDEN_ABS)
        assert outcome.discard_fraction \
            == pytest.approx(GOLDEN["discard_fraction"], abs=GOLDEN_ABS)

    def test_rule_count(self, experiment):
        assert experiment.construction.n_rules == GOLDEN["n_rules"]


class TestPaperFaithfulness:
    """Qualitative claims of the paper, robust to golden updates."""

    def test_threshold_separates_populations(self, experiment):
        est = experiment.calibration.estimates
        assert est.wrong.mu < experiment.threshold < est.right.mu

    def test_gating_improves_accuracy(self, experiment):
        outcome = experiment.evaluation_outcome
        assert outcome.accuracy_after > outcome.accuracy_before
        # Paper reports a 33% relative improvement on its 24 points;
        # our simulated material must at least land in that regime.
        assert outcome.improvement / outcome.accuracy_before > 0.10

    def test_selection_probabilities_useful(self, experiment):
        probs = experiment.calibration.probabilities
        assert probs.right_given_above > 0.75
        assert probs.wrong_given_below > 0.75
