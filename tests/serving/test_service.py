"""Service behavior: admission, shedding, drain, validation, metrics."""

import asyncio

import numpy as np
import pytest

from repro import observability as obs
from repro.core.degradation import DegradationPolicy, GateAction
from repro.exceptions import ConfigurationError, ServiceClosedError
from repro.serving import (InferenceService, ModelRegistry, ServingConfig,
                           serve_requests)
from repro.serving.service import _batch_compute

from .conftest import make_requests


def run(coro):
    return asyncio.run(coro)


class TestServingConfig:
    @pytest.mark.parametrize("kwargs", [{"queue_capacity": 0},
                                        {"n_workers": 0},
                                        {"poll_s": 0.0},
                                        {"max_batch": 0},
                                        {"deadline_s": -1.0}])
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            ServingConfig(**kwargs)

    def test_batching_view(self):
        config = ServingConfig(max_batch=7, deadline_s=0.01)
        assert config.batching.max_batch == 7
        assert config.batching.deadline_s == pytest.approx(0.01)


class TestLifecycle:
    def test_submit_before_start_rejected(self, registry, cue_pool):
        async def scenario():
            service = InferenceService(registry)
            await service.submit(cue_pool[0])

        with pytest.raises(ServiceClosedError, match="not started"):
            run(scenario())

    def test_submit_after_drain_rejected(self, registry, cue_pool):
        async def scenario():
            service = InferenceService(registry)
            async with service:
                pass
            await service.submit(cue_pool[0])

        with pytest.raises(ServiceClosedError, match="draining"):
            run(scenario())

    def test_empty_registry_fails_at_construction(self):
        with pytest.raises(ConfigurationError, match="no active model"):
            InferenceService(ModelRegistry())

    def test_start_is_idempotent(self, registry, cue_pool):
        async def scenario():
            service = InferenceService(registry)
            async with service:
                service.start()
                response = await service.submit(cue_pool[0])
            return response

        response = run(scenario())
        assert response.request_id == 0

    def test_drain_flushes_queued_requests(self, registry, cue_pool):
        """Everything admitted before drain resolves; nothing is lost."""
        requests = make_requests(cue_pool, 40)

        async def scenario():
            service = InferenceService(registry, config=ServingConfig(
                max_batch=8, deadline_s=0.001))
            service.start()
            futures = [await service._enqueue(r, wait=True)
                       for r in requests]
            await service.drain()
            return [f.result() for f in futures], service

        responses, service = run(scenario())
        assert len(responses) == 40
        assert service.in_flight == 0
        assert service.n_completed == 40
        assert [r.request_id for r in responses] == list(range(40))


class TestDrainIdempotence:
    """Regression: double drain used to double-count ``drains_total``.

    ``drain()`` followed by ``__aexit__`` (or any explicit re-drain) is
    the normal shutdown shape — e.g. a caller that drains to flush, then
    leaves the ``async with`` block — and must tear down exactly once.
    """

    def test_explicit_drain_plus_context_exit_counts_once(self, registry,
                                                          cue_pool):
        async def scenario():
            service = InferenceService(registry)
            async with service:
                await service.submit(cue_pool[0])
                await service.drain()
            return service

        with obs.observed(fresh=True) as (metrics, _):
            service = run(scenario())
            counters = metrics.snapshot()["counters"]
        assert counters["serving.drains_total"] == 1
        assert service.n_completed == 1

    def test_repeated_drain_is_a_noop(self, registry, cue_pool):
        async def scenario():
            service = InferenceService(registry)
            async with service:
                await service.submit(cue_pool[0])
                await service.drain()
                await service.drain()
                await service.drain()
            return service

        with obs.observed(fresh=True) as (metrics, _):
            run(scenario())
            counters = metrics.snapshot()["counters"]
        assert counters["serving.drains_total"] == 1

    def test_concurrent_drains_complete_together(self, registry, cue_pool):
        async def scenario():
            service = InferenceService(registry)
            async with service:
                await service.submit(cue_pool[0])
                await asyncio.gather(service.drain(), service.drain(),
                                     service.drain())
            return service

        with obs.observed(fresh=True) as (metrics, _):
            service = run(scenario())
            counters = metrics.snapshot()["counters"]
        assert counters["serving.drains_total"] == 1
        assert service.in_flight == 0

    def test_drain_before_start_is_a_noop(self, registry):
        async def scenario():
            service = InferenceService(registry)
            await service.drain()

        with obs.observed(fresh=True) as (metrics, _):
            run(scenario())
            counters = metrics.snapshot()["counters"]
        assert counters.get("serving.drains_total", 0) == 0


class TestValidation:
    def test_wrong_cue_count_rejected(self, registry):
        async def scenario():
            service = InferenceService(registry)
            async with service:
                await service.submit(np.ones(2))

        with pytest.raises(ConfigurationError, match="cues"):
            run(scenario())

    def test_no_classifier_requires_class_index(self, package, cue_pool):
        registry = ModelRegistry()
        registry.publish_and_activate(package)  # no classifier

        async def scenario(class_index):
            service = InferenceService(registry)
            async with service:
                return await service.submit(cue_pool[0],
                                            class_index=class_index)

        with pytest.raises(ConfigurationError, match="no classifier"):
            run(scenario(None))
        response = run(scenario(1))
        assert response.class_index == 1
        assert response.class_name is None


class TestShedding:
    def test_overload_sheds_epsilon(self, registry, cue_pool):
        """Open-loop submits beyond the queue bound get ε, instantly."""
        requests = make_requests(cue_pool, 30)

        async def scenario():
            # Tiny queue, huge deadline: the worker sits on its first
            # batch while we stuff the queue.
            service = InferenceService(registry, config=ServingConfig(
                queue_capacity=4, max_batch=64, deadline_s=0.2))
            async with service:
                futures = [await service._enqueue(r, wait=False)
                           for r in requests]
                responses = [await f for f in futures]
            return responses, service

        responses, service = run(scenario())
        shed = [r for r in responses if r.shed]
        served = [r for r in responses if not r.shed]
        assert service.n_shed == len(shed) > 0
        assert len(responses) == 30
        for r in shed:
            assert r.is_error_state
            assert r.action is GateAction.REJECT
            assert r.degraded
            assert r.package_version is None
            assert r.batch_size == 0
        for r in served:
            assert r.package_version == 1

    def test_wait_true_never_sheds(self, registry, cue_pool):
        requests = make_requests(cue_pool, 30)
        config = ServingConfig(queue_capacity=2, max_batch=4,
                               deadline_s=0.0)
        responses = serve_requests(registry, requests, config=config)
        assert len(responses) == 30
        assert not any(r.shed for r in responses)


class TestPolicies:
    def test_policy_flows_to_gate(self, registry, cue_pool):
        from repro.serving import ServeRequest

        requests = make_requests(cue_pool, 12)
        # A non-finite cue vector forces the CQM into the ε error state.
        broken = np.full_like(cue_pool[0], np.nan)
        requests.append(ServeRequest(request_id=12, cues=broken,
                                     class_index=0))
        config = ServingConfig(policy=DegradationPolicy.ABSTAIN)
        responses = serve_requests(registry, requests, config=config)
        # The ε-policy only governs error-state responses: under
        # ABSTAIN, every ε answer abstains instead of rejecting.
        epsilon = [r for r in responses if r.is_error_state]
        assert epsilon
        for r in epsilon:
            assert r.action is GateAction.ABSTAIN
            assert r.degraded

    def test_pinned_degrader_keeps_threshold(self, registry, cue_pool):
        from repro.core.degradation import GracefulDegrader

        requests = make_requests(cue_pool, 12)
        degrader = GracefulDegrader(threshold=0.0,
                                    policy=DegradationPolicy.REJECT)
        responses = serve_requests(registry, requests, degrader=degrader)
        # Threshold 0: every finite quality is accepted.
        for r in responses:
            if not r.is_error_state:
                assert r.accepted
        assert degrader.threshold == 0.0


class TestExecutor:
    def test_thread_executor_matches_inline(self, registry, cue_pool):
        from concurrent.futures import ThreadPoolExecutor

        requests = make_requests(cue_pool, 24)
        inline = serve_requests(registry, requests)

        async def scenario(executor):
            service = InferenceService(registry, executor=executor)
            async with service:
                return await service.serve_stream(requests)

        with ThreadPoolExecutor(max_workers=2) as executor:
            threaded = run(scenario(executor))
        assert [r.key() for r in threaded] == [r.key() for r in inline]


class TestBatchCompute:
    def test_given_class_indices_skip_the_classifier(self, registry,
                                                     cue_pool):
        model = registry.current()
        cues = cue_pool[:6]
        given = [1, None, 0, None, 2, 1]
        indices, qualities = _batch_compute(model, cues, given)
        predicted = model.classifier.predict_indices(cues)
        for k, g in enumerate(given):
            assert indices[k] == (g if g is not None else predicted[k])
        assert qualities.shape == (6,)

    def test_row_independence(self, registry, cue_pool):
        """Batch boundaries cannot change per-row results."""
        model = registry.current()
        cues = cue_pool[:16]
        given = [None] * 16
        full_idx, full_q = _batch_compute(model, cues, given)
        for split in (1, 5, 8):
            left_idx, left_q = _batch_compute(model, cues[:split],
                                              given[:split])
            right_idx, right_q = _batch_compute(model, cues[split:],
                                                given[split:])
            assert np.array_equal(np.concatenate([left_idx, right_idx]),
                                  full_idx)
            assert np.array_equal(np.concatenate([left_q, right_q]),
                                  full_q, equal_nan=True)


class TestServiceMetrics:
    def test_serving_metrics_recorded(self, registry, cue_pool):
        requests = make_requests(cue_pool, 20)
        with obs.observed(fresh=True) as (metrics, tracer):
            serve_requests(registry, requests,
                           config=ServingConfig(max_batch=8))
            snapshot = metrics.snapshot()
            span_names = [s.name for root in tracer.roots
                          for s in root.walk()]
        counters = snapshot["counters"]
        assert counters["serving.requests_total"] == 20
        assert counters["serving.responses_total"] == 20
        assert counters["serving.batches_total"] >= 1
        assert counters["serving.drains_total"] == 1
        assert "serving.batch_size" in snapshot["histograms"]
        assert "serving.latency_s" in snapshot["histograms"]
        assert snapshot["histograms"]["serving.latency_s"]["count"] == 20
        assert "serving.batch" in span_names
