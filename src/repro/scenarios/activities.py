"""Activity registries and scripts used by the scenario zoo.

Adds what the hard-coded experiments never needed:

* a **novel activity** — :class:`ShakingModel` — for out-of-distribution
  streams and for zoo scenarios whose classifier has never seen the
  class it is asked about (the generality claim of paper section 1);
* named chair scripts with *fixed* durations, so the declarative
  scenario layer can build AwareChair models deterministically.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

import numpy as np

from ..sensors.accelerometer import (ACTIVITY_MODELS, AWAREPEN_CLASSES,
                                     DEFAULT_STYLE, ActivityModel, UserStyle,
                                     _gravity)
from ..sensors.chair import AWARECHAIR_CLASSES, CHAIR_MODELS
from ..sensors.node import Segment
from ..types import ContextClass

#: A context class no shipped classifier is trained on: violently shaking
#: the pen (e.g. to restart a dried-out marker).
SHAKING = ContextClass(index=3, name="shaking")


class ShakingModel(ActivityModel):
    """Vigorous pen shaking: a high-frequency, large-amplitude oscillation.

    Deliberately unlike all three AwarePen training classes — higher
    frequency than writing, larger amplitude than playing — so windows of
    it are true out-of-distribution inputs for the quality system.
    """

    context = SHAKING

    def generate(self, n_samples: int, rate_hz: float,
                 rng: np.random.Generator,
                 style: UserStyle = DEFAULT_STYLE) -> np.ndarray:
        self._check(n_samples, rate_hz)
        t = np.arange(n_samples) / rate_hz
        g = _gravity(rng)
        trace = np.tile(g, (n_samples, 1))
        freq = rng.uniform(6.0, 9.0) * style.tempo_scale
        amp = 1.8 * style.amplitude_scale
        for axis in range(3):
            phase = rng.uniform(0.0, 2.0 * math.pi)
            trace[:, axis] += amp * rng.uniform(0.7, 1.0) * np.sin(
                2.0 * math.pi * freq * rng.uniform(0.95, 1.05) * t + phase)
        trace += rng.normal(0.0, 0.2 * style.amplitude_scale,
                            size=(n_samples, 3))
        return trace


#: Pen-family activity registry: canonical models plus the novel class.
PEN_MODELS: Dict[str, ActivityModel] = {
    **ACTIVITY_MODELS,
    SHAKING.name: ShakingModel(),
}

#: Label classes covering every pen-family activity a scenario can emit.
#: A superset of the classifier's classes is harmless for label mapping.
PEN_CLASSES: Tuple[ContextClass, ...] = AWAREPEN_CLASSES + (SHAKING,)

#: Per-family activity registries / label classes.
FAMILY_MODELS = {"pen": PEN_MODELS, "chair": CHAIR_MODELS}
FAMILY_CLASSES = {"pen": PEN_CLASSES, "chair": AWARECHAIR_CLASSES}


def chair_training_script(rng: np.random.Generator,
                          repetitions: int = 3) -> List[Segment]:
    """Clean per-class blocks for pre-training an AwareChair classifier."""
    segments: List[Segment] = []
    for _ in range(repetitions):
        for name in ("empty", "sitting", "fidgeting"):
            segments.append(Segment(CHAIR_MODELS[name],
                                    duration_s=float(rng.uniform(4, 7))))
    return segments


def chair_mixed_script(rng: np.random.Generator,
                       blocks: int = 3) -> List[Segment]:
    """Realistic occupancy mix for quality training / analysis roles."""
    names = ("sitting", "fidgeting", "sitting", "empty")
    segments: List[Segment] = []
    for _ in range(blocks):
        for name in names:
            segments.append(Segment(CHAIR_MODELS[name],
                                    duration_s=float(rng.uniform(3, 6))))
    return segments
