"""Tests for the ``repro bus`` CLI subcommands."""

import json

import pytest

from repro.bus.broker import BrokerCore, BusConfig
from repro.bus.drill import scripted_pen_events
from repro.bus.replay import RunMeta
from repro.cli import main


def make_log(path, n=12, seed=3):
    config = BusConfig(n_partitions=1, fsync_every=1)
    with BrokerCore(path, config) as core:
        for e in scripted_pen_events(seed, n):
            core.publish(e.to_wire())


class TestBusTail:
    def test_prints_jsonl_records(self, capsys, tmp_path):
        make_log(tmp_path / "log", n=5)
        assert main(["bus", "tail", "--log-dir",
                     str(tmp_path / "log")]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 5
        first = json.loads(out[0])
        assert first["offset"] == 0
        assert first["record"]["event"]["seq"] == 1

    def test_start_and_count(self, capsys, tmp_path):
        make_log(tmp_path / "log", n=8)
        assert main(["bus", "tail", "--log-dir", str(tmp_path / "log"),
                     "--start", "2", "--count", "3"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert [json.loads(line)["offset"] for line in out] == [2, 3, 4]


class TestBusReplay:
    def test_replay_without_golden(self, capsys, tmp_path):
        make_log(tmp_path / "log", n=6)
        RunMeta(seed=3).save(tmp_path / "log")
        assert main(["bus", "replay", "--log-dir",
                     str(tmp_path / "log")]) == 0
        assert "no golden" in capsys.readouterr().out

    def test_replay_writes_trace(self, capsys, tmp_path):
        make_log(tmp_path / "log", n=6)
        RunMeta(seed=3).save(tmp_path / "log")
        out_path = tmp_path / "trace.json"
        assert main(["bus", "replay", "--log-dir", str(tmp_path / "log"),
                     "--out", str(out_path)]) == 0
        assert out_path.exists()

    def test_missing_explicit_golden_fails(self, capsys, tmp_path):
        make_log(tmp_path / "log", n=6)
        RunMeta(seed=3).save(tmp_path / "log")
        assert main(["bus", "replay", "--log-dir", str(tmp_path / "log"),
                     "--golden", str(tmp_path / "nope.json")]) == 2


class TestBusDrill:
    def test_inproc_drill_passes(self, capsys, tmp_path):
        assert main(["bus", "drill", "--log-dir", str(tmp_path / "log"),
                     "--events", "80"]) == 0
        out = capsys.readouterr().out
        assert "drill inproc-fault: PASS" in out
        assert "redelivered" in out

    def test_drill_then_replay_diverges_nowhere(self, capsys, tmp_path):
        assert main(["bus", "drill", "--log-dir", str(tmp_path / "log"),
                     "--events", "60"]) == 0
        capsys.readouterr()
        assert main(["bus", "replay", "--log-dir",
                     str(tmp_path / "log")]) == 0


class TestParser:
    def test_bus_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main(["bus"])

    def test_bad_listen_address(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["bus", "serve", "--log-dir", str(tmp_path),
                  "--listen", "nonsense"])
