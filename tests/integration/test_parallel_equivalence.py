"""Serial, thread and process backends must be *bit-identical*.

The parallel layer's contract is stronger than "statistically the
same": for a fixed seed, every backend has to reproduce the serial
reference numbers exactly — otherwise a deployment flipping
``$REPRO_PARALLEL`` would silently change published results.
"""

import dataclasses
import math

import numpy as np
import pytest

from repro.core import ConstructionConfig
from repro.datasets import evaluation_script, generate_dataset
from repro.evaluation import MultiSeedRunner, ScenarioCrossValidator
from repro.parallel import BACKENDS
from repro.stats.bootstrap import (bootstrap_improvement,
                                   bootstrap_probability,
                                   bootstrap_statistic, bootstrap_threshold)

POOLED = [b for b in BACKENDS if b != "serial"]

CHEAP = ConstructionConfig(epochs=10)


def _same_float(a: float, b: float) -> bool:
    """Bitwise equality that also treats NaN == NaN (degenerate folds)."""
    return a == b or (math.isnan(a) and math.isnan(b))


def _assert_metrics_equal(a: dict, b: dict) -> None:
    assert set(a) == set(b)
    for key in a:
        assert _same_float(a[key], b[key]), (
            f"metric {key!r} differs: {a[key]!r} != {b[key]!r}")


@pytest.fixture(scope="module")
def labeled_q():
    rng = np.random.default_rng(12)
    n = 80
    correct = rng.random(n) < 0.8
    qualities = np.where(correct,
                         rng.normal(0.85, 0.08, n),
                         rng.normal(0.45, 0.12, n))
    return np.clip(qualities, 0.0, 1.0), correct


class TestBootstrapBackends:
    @pytest.mark.parametrize("backend", POOLED)
    def test_threshold_interval_identical(self, labeled_q, backend):
        q, c = labeled_q
        serial = bootstrap_threshold(q, c, n_resamples=200, seed=5,
                                     parallel="serial")
        pooled = bootstrap_threshold(q, c, n_resamples=200, seed=5,
                                     parallel=backend, max_workers=2)
        assert dataclasses.astuple(serial) == dataclasses.astuple(pooled)

    @pytest.mark.parametrize("backend", POOLED)
    def test_probability_interval_identical(self, labeled_q, backend):
        q, c = labeled_q
        serial = bootstrap_probability(q, c, n_resamples=120, seed=3)
        pooled = bootstrap_probability(q, c, n_resamples=120, seed=3,
                                       parallel=backend, max_workers=3)
        assert dataclasses.astuple(serial) == dataclasses.astuple(pooled)

    @pytest.mark.parametrize("backend", POOLED)
    def test_improvement_intervals_identical(self, labeled_q, backend):
        q, c = labeled_q
        serial = bootstrap_improvement(q, c, threshold=0.7,
                                       n_resamples=120, seed=9)
        pooled = bootstrap_improvement(q, c, threshold=0.7,
                                       n_resamples=120, seed=9,
                                       parallel=backend, max_workers=2)
        for s_interval, p_interval in zip(serial, pooled):
            assert (dataclasses.astuple(s_interval)
                    == dataclasses.astuple(p_interval))

    def test_chunking_matches_unchunked_percentiles(self, labeled_q):
        """Worker count must not leak into the interval."""
        q, c = labeled_q
        one = bootstrap_threshold(q, c, n_resamples=150, seed=1,
                                  parallel="thread", max_workers=1)
        four = bootstrap_threshold(q, c, n_resamples=150, seed=1,
                                   parallel="thread", max_workers=4)
        assert dataclasses.astuple(one) == dataclasses.astuple(four)

    def test_statistic_failures_counted_identically(self):
        rng = np.random.default_rng(0)
        q = rng.random(12)
        c = rng.random(12) < 0.5

        def fragile(qq, cc):
            if not np.any(cc):
                raise ValueError("no right points")
            return float(np.mean(qq[cc]))

        serial = bootstrap_statistic(q, c, fragile, n_resamples=100, seed=2)
        threaded = bootstrap_statistic(q, c, fragile, n_resamples=100,
                                       seed=2, parallel="thread",
                                       max_workers=3)
        assert serial.n_failed == threaded.n_failed
        assert dataclasses.astuple(serial) == dataclasses.astuple(threaded)


class TestMultiSeedBackends:
    @pytest.fixture(scope="class")
    def serial_report(self):
        return MultiSeedRunner(seeds=(7, 11), config=CHEAP).run()

    @pytest.mark.parametrize("backend", POOLED)
    def test_per_seed_metrics_identical(self, serial_report, backend):
        pooled = MultiSeedRunner(seeds=(7, 11), config=CHEAP,
                                 parallel=backend, max_workers=2).run()
        assert len(pooled.per_seed) == len(serial_report.per_seed)
        for serial_metrics, pooled_metrics in zip(serial_report.per_seed,
                                                  pooled.per_seed):
            _assert_metrics_equal(serial_metrics, pooled_metrics)


class TestCrossValBackends:
    @pytest.fixture(scope="class")
    def factory(self):
        def make(seed):
            return generate_dataset(
                lambda rng: evaluation_script(rng, blocks=2), seed=seed)
        return make

    @pytest.fixture(scope="class")
    def serial_folds(self, experiment, factory):
        cv = ScenarioCrossValidator(experiment.classifier, factory,
                                    n_folds=2, config=CHEAP)
        return cv.run().folds

    @pytest.mark.parametrize("backend", POOLED)
    def test_folds_identical(self, experiment, factory, serial_folds,
                             backend):
        cv = ScenarioCrossValidator(experiment.classifier, factory,
                                    n_folds=2, config=CHEAP,
                                    parallel=backend, max_workers=2)
        pooled_folds = cv.run().folds
        assert len(pooled_folds) == len(serial_folds)
        for serial_fold, pooled_fold in zip(serial_folds, pooled_folds):
            _assert_metrics_equal(dataclasses.asdict(serial_fold),
                                  dataclasses.asdict(pooled_fold))
