"""Bootstrap confidence intervals for the CQM statistics.

The paper's evaluation rests on 24 points and itself concedes that "a
small data set for testing ... is not significant enough" (section
2.3.1).  This module quantifies that small-sample uncertainty: bootstrap
resampling of the labeled quality values yields confidence intervals for
the threshold and the four selection probabilities.
"""

from __future__ import annotations

import dataclasses
import functools
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..exceptions import CalibrationError, ConfigurationError
from ..parallel import ParallelSpec, as_executor
from .mle import estimate_populations
from .probabilities import selection_probabilities
from .threshold import intersection_threshold


@dataclasses.dataclass(frozen=True)
class BootstrapInterval:
    """A percentile bootstrap interval for one statistic."""

    point: float
    low: float
    high: float
    confidence: float
    n_resamples: int
    n_failed: int

    @property
    def width(self) -> float:
        return self.high - self.low

    def contains(self, value: float) -> bool:
        """Whether *value* lies inside the interval."""
        return self.low <= value <= self.high


def _resample_chunk(statistic: Callable[[np.ndarray, np.ndarray], float],
                    qualities: np.ndarray, correct: np.ndarray,
                    indices: np.ndarray) -> Tuple[List[float], int]:
    """Evaluate *statistic* on a contiguous block of resample index rows.

    Module-level (and therefore picklable) so the process backend can run
    it; per-resample exceptions are swallowed and counted exactly like
    the historical serial loop.
    """
    values: List[float] = []
    failed = 0
    for idx in indices:
        try:
            values.append(statistic(qualities[idx], correct[idx]))
        except Exception:  # noqa: BLE001 - degenerate draws are expected
            failed += 1
    return values, failed


def bootstrap_statistic(qualities: np.ndarray, correct: np.ndarray,
                        statistic: Callable[[np.ndarray, np.ndarray], float],
                        n_resamples: int = 1000, confidence: float = 0.95,
                        seed: Optional[int] = 0,
                        parallel: ParallelSpec = None,
                        max_workers: Optional[int] = None
                        ) -> BootstrapInterval:
    """Percentile bootstrap of an arbitrary ``(q, correct) -> float``.

    Resamples that break the statistic (e.g. a draw with no wrong points,
    making the MLE impossible) are skipped and counted in ``n_failed``;
    at least half of the resamples must succeed.

    All resample index rows are drawn up front from one generator (a
    single vectorized ``integers`` call that reproduces the historical
    per-resample draws bit for bit) and only the statistic evaluations
    fan out across the chosen backend, so serial, thread and process runs
    return *identical* intervals for a fixed seed.  The process backend
    additionally requires *statistic* to be picklable — a module-level
    function or a :func:`functools.partial` of one.
    """
    qualities = np.asarray(qualities, dtype=float).ravel()
    correct = np.asarray(correct, dtype=bool).ravel()
    if qualities.shape != correct.shape:
        raise CalibrationError("qualities and correct must align")
    if qualities.size < 4:
        raise CalibrationError("need >= 4 points to bootstrap")
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError(
            f"confidence must be in (0, 1), got {confidence}")
    if n_resamples < 10:
        raise ConfigurationError(
            f"n_resamples must be >= 10, got {n_resamples}")

    rng = np.random.default_rng(seed)
    try:
        point = statistic(qualities, correct)
    except Exception as exc:  # noqa: BLE001 - surfaced as calibration error
        raise CalibrationError(
            f"bootstrap failed: statistic is undefined on the full "
            f"sample ({exc!r})") from exc
    n = qualities.size
    all_indices = rng.integers(0, n, size=(n_resamples, n))
    executor = as_executor(parallel, max_workers=max_workers)
    chunk_results = executor.map_chunked(
        functools.partial(_resample_chunk, statistic, qualities, correct),
        list(all_indices))
    values: List[float] = []
    failed = 0
    for chunk_values, chunk_failed in chunk_results:
        values.extend(chunk_values)
        failed += chunk_failed
    if len(values) < n_resamples / 2:
        raise CalibrationError(
            f"bootstrap failed on {failed}/{n_resamples} resamples — the "
            "data set is too small or too degenerate")
    alpha = (1.0 - confidence) / 2.0
    low, high = np.percentile(values, [100 * alpha, 100 * (1 - alpha)])
    return BootstrapInterval(point=float(point), low=float(low),
                             high=float(high), confidence=confidence,
                             n_resamples=n_resamples, n_failed=failed)


def _threshold_statistic(q: np.ndarray, c: np.ndarray) -> float:
    est = estimate_populations(q, c)
    return intersection_threshold(est.right, est.wrong).threshold


def bootstrap_threshold(qualities: np.ndarray, correct: np.ndarray,
                        n_resamples: int = 1000, confidence: float = 0.95,
                        seed: Optional[int] = 0,
                        parallel: ParallelSpec = None,
                        max_workers: Optional[int] = None
                        ) -> BootstrapInterval:
    """CI of the density-intersection threshold ``s``."""
    return bootstrap_statistic(qualities, correct, _threshold_statistic,
                               n_resamples=n_resamples,
                               confidence=confidence, seed=seed,
                               parallel=parallel, max_workers=max_workers)


def _probability_statistic(q: np.ndarray, c: np.ndarray,
                           which: str) -> float:
    est = estimate_populations(q, c)
    s = intersection_threshold(est.right, est.wrong).threshold
    probs = selection_probabilities(est.right, est.wrong, s)
    return getattr(probs, which)


def bootstrap_probability(qualities: np.ndarray, correct: np.ndarray,
                          which: str = "right_given_above",
                          n_resamples: int = 1000,
                          confidence: float = 0.95,
                          seed: Optional[int] = 0,
                          parallel: ParallelSpec = None,
                          max_workers: Optional[int] = None
                          ) -> BootstrapInterval:
    """CI of one of the four selection probabilities at the per-resample
    intersection threshold.

    *which* is an attribute name of
    :class:`repro.stats.probabilities.QualityProbabilities`.
    """
    valid = {"right_given_above", "wrong_given_below",
             "right_given_below", "wrong_given_above"}
    if which not in valid:
        raise ConfigurationError(
            f"which must be one of {sorted(valid)}, got {which!r}")
    statistic = functools.partial(_probability_statistic, which=which)
    return bootstrap_statistic(qualities, correct, statistic,
                               n_resamples=n_resamples,
                               confidence=confidence, seed=seed,
                               parallel=parallel, max_workers=max_workers)


def _accuracy_after_statistic(q: np.ndarray, c: np.ndarray,
                              threshold: float) -> float:
    kept = q > threshold
    if not np.any(kept):
        raise CalibrationError("empty acceptance side")
    return float(np.mean(c[kept]))


def _discard_statistic(q: np.ndarray, c: np.ndarray,
                       threshold: float) -> float:
    return float(np.mean(q <= threshold))


def bootstrap_improvement(qualities: np.ndarray, correct: np.ndarray,
                          threshold: float, n_resamples: int = 1000,
                          confidence: float = 0.95,
                          seed: Optional[int] = 0,
                          parallel: ParallelSpec = None,
                          max_workers: Optional[int] = None
                          ) -> Tuple[BootstrapInterval, BootstrapInterval]:
    """CIs of (accuracy after filtering, discard fraction) at a fixed s."""
    after = functools.partial(_accuracy_after_statistic, threshold=threshold)
    discard = functools.partial(_discard_statistic, threshold=threshold)
    return (bootstrap_statistic(qualities, correct, after,
                                n_resamples=n_resamples,
                                confidence=confidence, seed=seed,
                                parallel=parallel, max_workers=max_workers),
            bootstrap_statistic(qualities, correct, discard,
                                n_resamples=n_resamples,
                                confidence=confidence, seed=seed,
                                parallel=parallel, max_workers=max_workers))
