"""Lossy radio channel simulation for the office event bus.

The physical AwareOffice distributed context over a Particle RF network —
a best-effort broadcast medium that drops and occasionally duplicates
packets.  :class:`LossyBus` injects those faults at publish time so the
consuming appliances (camera, situation detector) can be tested for
robustness against realistic delivery semantics.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..exceptions import ConfigurationError
from .bus import EventBus
from .messages import ContextEvent


class LossyBus(EventBus):
    """Event bus with per-publish packet loss and duplication.

    Parameters
    ----------
    drop_rate:
        Probability an event is silently lost before delivery.
    duplicate_rate:
        Probability a delivered event is delivered twice (RF
        retransmission after a missed ACK).
    seed:
        RNG seed for reproducible loss patterns.
    """

    def __init__(self, drop_rate: float = 0.1,
                 duplicate_rate: float = 0.0,
                 seed: Optional[int] = 0) -> None:
        super().__init__()
        if not 0.0 <= drop_rate < 1.0:
            raise ConfigurationError(
                f"drop_rate must be in [0, 1), got {drop_rate}")
        if not 0.0 <= duplicate_rate < 1.0:
            raise ConfigurationError(
                f"duplicate_rate must be in [0, 1), got {duplicate_rate}")
        self.drop_rate = float(drop_rate)
        self.duplicate_rate = float(duplicate_rate)
        self._rng = np.random.default_rng(seed)
        self.n_dropped = 0
        self.n_duplicated = 0

    def publish(self, event: ContextEvent) -> int:
        """Publish with channel faults; returns successful deliveries."""
        if self._rng.random() < self.drop_rate:
            self.n_dropped += 1
            return 0
        delivered = super().publish(event)
        if self._rng.random() < self.duplicate_rate:
            self.n_duplicated += 1
            delivered += super().publish(event)
        return delivered

    @property
    def loss_fraction(self) -> float:
        """Observed fraction of publish attempts that were dropped."""
        attempts = self.n_published + self.n_dropped
        return self.n_dropped / attempts if attempts else 0.0
