"""Tests for repro.fuzzy.hedges."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.exceptions import ConfigurationError
from repro.fuzzy.hedges import (HEDGES, apply_hedge, extremely, indeed,
                                power_hedge, slightly, somewhat, very)
from repro.fuzzy.membership import GaussianMF
from repro.fuzzy.sets import FuzzySet

unit = st.floats(0.0, 1.0)


class TestHedgeMath:
    @given(mu=unit)
    def test_very_concentrates(self, mu):
        assert float(very(mu)) <= mu + 1e-12

    @given(mu=unit)
    def test_somewhat_dilates(self, mu):
        assert float(somewhat(mu)) >= mu - 1e-12

    @given(mu=unit)
    def test_order(self, mu):
        assert (float(extremely(mu)) <= float(very(mu)) + 1e-12
                <= mu + 2e-12)
        assert (mu <= float(somewhat(mu)) + 1e-12
                <= float(slightly(mu)) + 2e-12)

    @given(mu=unit)
    def test_all_preserve_unit_interval(self, mu):
        for hedge in HEDGES.values():
            v = float(hedge(mu))
            assert -1e-12 <= v <= 1.0 + 1e-12

    def test_indeed_fixed_points(self):
        assert float(indeed(0.0)) == pytest.approx(0.0)
        assert float(indeed(0.5)) == pytest.approx(0.5)
        assert float(indeed(1.0)) == pytest.approx(1.0)

    @given(mu=st.floats(0.0, 0.49))
    def test_indeed_suppresses_low(self, mu):
        assert float(indeed(mu)) <= mu + 1e-12

    @given(mu=st.floats(0.51, 1.0))
    def test_indeed_boosts_high(self, mu):
        assert float(indeed(mu)) >= mu - 1e-12

    def test_power_hedge(self):
        cube = power_hedge(3.0)
        assert float(cube(0.5)) == pytest.approx(0.125)
        with pytest.raises(ConfigurationError):
            power_hedge(0.0)


class TestHedgedSets:
    def test_apply_hedge_names(self):
        low = FuzzySet("quality.low", GaussianMF(mean=0.0, sigma=0.2))
        very_low = apply_hedge(low, "very")
        assert very_low.name == "very quality.low"

    def test_apply_hedge_membership(self):
        low = FuzzySet("low", GaussianMF(mean=0.0, sigma=0.2))
        very_low = apply_hedge(low, "very")
        x = 0.15
        assert float(very_low(x)) == pytest.approx(float(low(x)) ** 2)

    def test_unknown_hedge(self):
        low = FuzzySet("low", GaussianMF(mean=0.0, sigma=0.2))
        with pytest.raises(KeyError, match="very"):
            apply_hedge(low, "immensely")

    def test_hedged_mf_parameters(self):
        low = FuzzySet("low", GaussianMF(mean=0.0, sigma=0.2))
        very_low = apply_hedge(low, "very")
        params = very_low.mf.parameters()
        assert params["hedge"] == "very"
        assert params["mean"] == 0.0

    def test_support_center_passthrough(self):
        low = FuzzySet("low", GaussianMF(mean=0.3, sigma=0.2))
        assert apply_hedge(low, "very").mf.support_center() == 0.3

    def test_stacking_hedges(self):
        low = FuzzySet("low", GaussianMF(mean=0.0, sigma=0.2))
        very_very_low = apply_hedge(apply_hedge(low, "very"), "very")
        x = 0.1
        assert float(very_very_low(x)) == pytest.approx(float(low(x)) ** 4)
