"""Acceptance tests for the fault-intensity sweep (ISSUE PR 2 tentpole).

Two contracts are pinned here:

1. The sweep itself: ``repro faults-sweep`` must cover at least four
   fault types at three intensities without raising, and the CQM-gated
   pipeline must degrade *no worse* than the raw pipeline under faults.
2. Backend equivalence: for every ε-policy the sweep's numbers must be
   bit-identical across the serial, thread and process backends.
"""

import dataclasses

import numpy as np
import pytest

from repro.core.degradation import DegradationPolicy
from repro.evaluation.faults import (DEFAULT_INTENSITIES,
                                     degradation_margins, run_faults_sweep)
from repro.exceptions import ConfigurationError
from repro.parallel import BACKENDS
from repro.sensors.faults import standard_fault_suite

POOLED = [b for b in BACKENDS if b != "serial"]

#: Deterministic per-seed floor (seed 7 worst cell is saturation@1.0 at
#: about -0.09): the gate may cost at most this much accuracy in any
#: single cell, and must not lose on average.
CELL_TOLERANCE = 0.12


@pytest.fixture(scope="module")
def default_report(experiment):
    return run_faults_sweep(seed=7, blocks=2, experiment=experiment)


class TestSweepSurface:
    def test_covers_grid(self, default_report):
        report = default_report
        assert len(report.fault_names) >= 4
        assert len(DEFAULT_INTENSITIES) >= 3
        expected = len(report.fault_names) * len(DEFAULT_INTENSITIES)
        assert len(report.cells) == expected
        for cell in report.cells:
            assert cell.n_windows > 0

    def test_curve_is_per_fault_and_sorted(self, default_report):
        for name in default_report.fault_names:
            curve = default_report.curve(name)
            intensities = [cell.intensity for cell in curve]
            assert intensities == sorted(intensities)
            assert all(cell.fault == name for cell in curve)

    def test_faults_increase_epsilon_or_errors(self, default_report):
        """At full intensity most faults must actually bite: produce ε
        windows or drag raw accuracy down.  Not every model can — sample
        jitter only permutes readings locally, and the window-level
        feature extraction is permutation-invariant inside a window — so
        we require at least four of the six to have an observable
        effect rather than all of them."""
        biting = [
            name for name in default_report.fault_names
            if (default_report.curve(name)[-1].epsilon_fraction > 0.0 or
                default_report.curve(name)[-1].accuracy_raw <
                default_report.clean_accuracy_raw - 1e-9)
        ]
        assert len(biting) >= 4, f"only {biting} had observable effects"

    def test_report_renders(self, default_report):
        text = default_report.to_text()
        assert "fault" in text
        for name in default_report.fault_names:
            assert name in text

    def test_validation(self, experiment):
        with pytest.raises(ConfigurationError):
            run_faults_sweep(faults=("no-such-fault",),
                             experiment=experiment)
        with pytest.raises(ConfigurationError):
            run_faults_sweep(intensities=(1.5,), experiment=experiment)
        with pytest.raises(ConfigurationError):
            run_faults_sweep(intensities=(), experiment=experiment)


class TestGracefulDegradation:
    """ISSUE acceptance: with-CQM degrades no worse than without-CQM."""

    def test_gating_never_much_worse_per_cell(self, default_report):
        for cell in default_report.cells:
            assert cell.gating_gain >= -CELL_TOLERANCE, (
                f"{cell.fault}@{cell.intensity}: gated accuracy "
                f"{cell.accuracy_gated:.3f} fell more than "
                f"{CELL_TOLERANCE} below raw {cell.accuracy_raw:.3f}")

    def test_gating_wins_on_average(self, default_report):
        gains = [cell.gating_gain for cell in default_report.cells]
        assert float(np.mean(gains)) >= 0.0

    def test_worst_gain_helper_agrees(self, default_report):
        gains = [cell.gating_gain for cell in default_report.cells]
        assert default_report.worst_gating_gain() == \
            pytest.approx(min(gains))

    def test_margins_cover_every_fault(self, default_report):
        margins = degradation_margins(default_report)
        assert set(margins) == set(default_report.fault_names)
        for name, margin in margins.items():
            assert margin == pytest.approx(
                min(c.gating_gain for c in default_report.curve(name)))


class TestBackendEquivalence:
    """Every ε-policy must sweep bit-identically on every backend."""

    @pytest.fixture(scope="class")
    def serial_reference(self, experiment):
        refs = {}
        for policy in DegradationPolicy:
            refs[policy] = run_faults_sweep(
                seed=7, blocks=1, faults=("dropout", "saturation"),
                intensities=(0.5, 1.0), policy=policy,
                parallel="serial", experiment=experiment)
        return refs

    @pytest.mark.parametrize("backend", POOLED)
    @pytest.mark.parametrize("policy", tuple(DegradationPolicy))
    def test_pooled_matches_serial(self, serial_reference, experiment,
                                   backend, policy):
        pooled = run_faults_sweep(
            seed=7, blocks=1, faults=("dropout", "saturation"),
            intensities=(0.5, 1.0), policy=policy,
            parallel=backend, max_workers=2, experiment=experiment)
        reference = serial_reference[policy]
        assert len(pooled.cells) == len(reference.cells)
        for got, want in zip(pooled.cells, reference.cells):
            assert dataclasses.astuple(got) == dataclasses.astuple(want)

    def test_policy_is_recorded(self, serial_reference):
        for policy, report in serial_reference.items():
            assert report.policy is policy


class TestSuiteIntegration:
    def test_sweep_defaults_use_standard_suite(self, default_report):
        assert set(default_report.fault_names) <= \
            set(standard_fault_suite())
