"""Tests for repro.core.normalization — the L function (paper 2.1.3)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.normalization import (EPSILON, LOWER_LIMIT, UPPER_LIMIT,
                                      is_error_state, mapping_error,
                                      normalize_array, normalize_scalar)


class TestScalarL:
    def test_identity_inside_unit_interval(self):
        for x in (0.0, 0.25, 0.5, 0.99, 1.0):
            assert normalize_scalar(x) == x

    def test_reflection_below_zero(self):
        # "values [-0.5, 0) belong to zero with an error of mapping"
        assert normalize_scalar(-0.2) == pytest.approx(0.2)
        assert normalize_scalar(-0.5) == pytest.approx(0.5)

    def test_reflection_above_one(self):
        # Symmetric semantics at the other designated output.
        assert normalize_scalar(1.2) == pytest.approx(0.8)
        assert normalize_scalar(1.5) == pytest.approx(0.5)

    def test_epsilon_outside_bands(self):
        assert normalize_scalar(-0.51) is EPSILON
        assert normalize_scalar(1.51) is EPSILON
        assert normalize_scalar(5.0) is EPSILON
        assert normalize_scalar(-3.0) is EPSILON

    def test_nan_is_epsilon(self):
        assert normalize_scalar(float("nan")) is EPSILON

    def test_band_limits(self):
        assert LOWER_LIMIT == -0.5
        assert UPPER_LIMIT == 1.5

    @given(x=st.floats(min_value=-0.5, max_value=1.5,
                       allow_nan=False))
    def test_mappable_band_yields_unit_interval(self, x):
        q = normalize_scalar(x)
        assert q is not None
        assert 0.0 <= q <= 1.0

    @given(x=st.floats(allow_nan=False, allow_infinity=False))
    def test_codomain_invariant(self, x):
        q = normalize_scalar(x)
        assert q is None or 0.0 <= q <= 1.0

    def test_continuity_at_zero(self):
        # L is continuous at the band joints.
        assert normalize_scalar(-1e-9) == pytest.approx(
            normalize_scalar(1e-9), abs=1e-8)

    def test_continuity_at_one(self):
        assert normalize_scalar(1.0 - 1e-9) == pytest.approx(
            normalize_scalar(1.0 + 1e-9), abs=1e-8)


class TestArrayL:
    def test_matches_scalar(self):
        xs = np.array([-0.7, -0.3, 0.0, 0.4, 1.0, 1.3, 1.7])
        out = normalize_array(xs)
        for x, q in zip(xs, out):
            scalar = normalize_scalar(float(x))
            if scalar is None:
                assert np.isnan(q)
            else:
                assert q == pytest.approx(scalar)

    def test_epsilon_is_nan(self):
        out = normalize_array(np.array([2.0, -1.0]))
        assert np.all(np.isnan(out))

    def test_is_error_state(self):
        out = normalize_array(np.array([0.5, 2.0]))
        mask = is_error_state(out)
        assert not mask[0]
        assert mask[1]

    def test_is_error_state_scalar_none(self):
        assert bool(is_error_state(None))

    def test_preserves_shape(self):
        out = normalize_array(np.zeros((3, 4)))
        assert out.shape == (3, 4)


class TestMappingError:
    def test_zero_inside_interval(self):
        np.testing.assert_allclose(
            mapping_error(np.array([0.0, 0.5, 1.0])), 0.0)

    def test_reflection_distance(self):
        assert float(mapping_error(np.array([-0.2]))[0]) == pytest.approx(0.4)
        assert float(mapping_error(np.array([1.3]))[0]) == pytest.approx(0.6)

    def test_epsilon_nan(self):
        assert np.isnan(mapping_error(np.array([9.0]))[0])


class TestBoundaryPins:
    """Pin L at the exact band boundaries (ISSUE PR 2 satellite): the
    scalar and array paths must agree at -0.5, 0, 1, 1.5, NaN and ±inf,
    and is_error_state must honor its scalar/array type contract."""

    #: (raw input, expected quality or None for epsilon)
    PINS = [
        (-0.5, 0.5),            # lowest mappable value, reflected
        (0.0, 0.0),             # designated output "wrong"
        (1.0, 1.0),             # designated output "right"
        (1.5, 0.5),             # highest mappable value, reflected
        (float("nan"), None),
        (float("inf"), None),
        (float("-inf"), None),
    ]

    @pytest.mark.parametrize("raw,expected", PINS)
    def test_scalar_pin(self, raw, expected):
        got = normalize_scalar(raw)
        if expected is None:
            assert got is EPSILON
        else:
            assert got == pytest.approx(expected, abs=0.0)

    @pytest.mark.parametrize("raw,expected", PINS)
    def test_array_pin_agrees_with_scalar(self, raw, expected):
        got = normalize_array(np.array([raw]))[0]
        if expected is None:
            assert np.isnan(got)
        else:
            assert got == pytest.approx(expected, abs=0.0)

    def test_just_outside_bands_is_epsilon(self):
        for raw in (LOWER_LIMIT - 1e-12, UPPER_LIMIT + 1e-12,
                    float(np.nextafter(LOWER_LIMIT, -1.0)),
                    float(np.nextafter(UPPER_LIMIT, 2.0))):
            assert normalize_scalar(raw) is EPSILON
            assert np.isnan(normalize_array(np.array([raw]))[0])


class TestIsErrorStateContract:
    """Scalar in -> plain bool out; array in -> boolean ndarray out."""

    @pytest.mark.parametrize("value,expected", [
        (None, True),
        (float("nan"), True),
        (0.5, False),
        (np.float64("nan"), True),
        (np.float64(0.5), False),
    ])
    def test_scalar_returns_python_bool(self, value, expected):
        got = is_error_state(value)
        assert type(got) is bool
        assert got is expected

    def test_zero_d_array_returns_python_bool(self):
        got = is_error_state(np.array(np.nan))
        assert type(got) is bool and got is True

    def test_array_returns_bool_ndarray(self):
        got = is_error_state(np.array([0.5, np.nan]))
        assert isinstance(got, np.ndarray)
        assert got.dtype == bool
        np.testing.assert_array_equal(got, [False, True])

    def test_higher_dim_shape_preserved(self):
        got = is_error_state(np.full((2, 3), np.nan))
        assert isinstance(got, np.ndarray)
        assert got.shape == (2, 3)
        assert got.all()

    def test_empty_array_stays_array(self):
        got = is_error_state(np.array([]))
        assert isinstance(got, np.ndarray)
        assert got.shape == (0,)
