"""Online refinement of a deployed quality system.

The paper trains the quality FIS offline; in a long-lived AwareOffice
deployment, however, delayed ground truth trickles in (the user corrects
the camera, a second appliance confirms a context).  This module adapts
the *consequent* parameters of the deployed quality FIS with recursive
least squares as that feedback arrives — the premise structure stays
fixed, so adaptation is cheap enough for an appliance-class device.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

import numpy as np

from ..anfis.lse import RecursiveLSE, design_matrix
from ..exceptions import ConfigurationError, DimensionError
from .quality import QualityMeasure


@dataclasses.dataclass(frozen=True)
class FeedbackRecord:
    """One piece of delayed ground truth for a past classification."""

    cues: np.ndarray
    class_index: int
    was_correct: bool


@dataclasses.dataclass(frozen=True)
class AdapterSnapshot:
    """Frozen, copy-owning capture of an adapter's full mutable state.

    Everything :meth:`OnlineQualityAdapter.restore` needs to make the
    adapter — and the FIS coefficients it manages — bit-identical to the
    moment of :meth:`OnlineQualityAdapter.snapshot`: the RLS filter
    state (``theta``, covariance ``p``, update count), the feedback
    counters, the residual history and the coefficients currently
    written into the quality system.
    """

    theta: np.ndarray
    p: np.ndarray
    rls_n_updates: int
    n_feedback: int
    n_skipped: int
    residuals: tuple
    coefficients: np.ndarray


class OnlineQualityAdapter:
    """RLS adaptation of a quality FIS's consequents from feedback.

    Parameters
    ----------
    quality:
        The deployed quality measure; its FIS consequents are updated in
        place on every :meth:`feedback` call.
    forgetting:
        RLS forgetting factor in ``(0, 1]``; below 1 old evidence decays,
        letting the measure track drifting users.
    warmup:
        Number of feedback items absorbed before the adapter starts
        writing updated coefficients into the FIS (guards against a few
        early samples swinging a freshly initialized RLS state).
    initial_covariance:
        Initial RLS covariance scale; smaller values trust the deployed
        offline solution more and adapt more cautiously.
    guard_nonfinite:
        When true (default), feedback whose cues are not finite — the
        signature of a faulted sensor stream (NaN dropout gaps, ±inf
        spikes) — is skipped and counted in :attr:`n_skipped` instead of
        being folded into the RLS state.  A single NaN design row would
        otherwise poison ``theta`` irreversibly and destroy the deployed
        quality FIS on the next coefficient write-back.
    """

    def __init__(self, quality: QualityMeasure, forgetting: float = 0.995,
                 warmup: int = 10,
                 initial_covariance: float = 1e4,
                 guard_nonfinite: bool = True) -> None:
        if warmup < 0:
            raise ConfigurationError(f"warmup must be >= 0, got {warmup}")
        self.quality = quality
        system = quality.system
        if system.order == 0:
            n_parameters = system.n_rules
        else:
            n_parameters = system.n_rules * (system.n_inputs + 1)
        self._rls = RecursiveLSE(n_parameters=n_parameters, lam=forgetting,
                                 initial_covariance=initial_covariance)
        # Seed the RLS state with the deployed coefficients so adaptation
        # starts from the offline solution instead of zero.
        if system.order == 0:
            self._rls.theta = system.coefficients[:, -1].copy()
        else:
            self._rls.theta = system.coefficients.reshape(-1).copy()
        self.warmup = int(warmup)
        self.guard_nonfinite = bool(guard_nonfinite)
        self.n_feedback = 0
        self.n_skipped = 0
        self._residuals: List[float] = []

    # ------------------------------------------------------------------
    def feedback(self, record: FeedbackRecord) -> float:
        """Absorb one ground-truth record; returns the pre-update residual.

        The designated output is 1.0 for a correct and 0.0 for a wrong
        classification, exactly as in offline construction.  With the
        non-finite guard enabled, a record carrying NaN/inf cues is
        skipped (counted in :attr:`n_skipped`) and NaN is returned as its
        residual.
        """
        cues = np.asarray(record.cues, dtype=float).ravel()
        if cues.shape[0] != self.quality.n_cues:
            raise DimensionError(
                f"expected {self.quality.n_cues} cues, got {cues.shape[0]}")
        if self.guard_nonfinite and not np.all(np.isfinite(cues)):
            self.n_skipped += 1
            return float("nan")
        v_q = np.append(cues, float(record.class_index)).reshape(1, -1)
        row = design_matrix(self.quality.system, v_q)[0]
        target = 1.0 if record.was_correct else 0.0
        residual = self._rls.update(row, target)
        self.n_feedback += 1
        self._residuals.append(abs(residual))
        if self.n_feedback >= self.warmup:
            self.quality.system.coefficients = self._rls.coefficients_for(
                self.quality.system)
        return residual

    def feedback_batch(self, records: List[FeedbackRecord]) -> np.ndarray:
        """Absorb several records; returns their residuals.

        The design-matrix rows depend only on the (fixed) premise
        parameters, never on the consequents being adapted — so they are
        computed for the whole batch in **one** premise evaluation
        instead of one per record.  The RLS recursion itself stays
        sequential (each update conditions on the previous state) and the
        refreshed coefficients are written into the FIS once at the end;
        both the residuals and the final FIS state are identical to
        calling :meth:`feedback` record by record.
        """
        if not records:
            return np.empty(0)
        cue_rows = []
        usable = np.ones(len(records), dtype=bool)
        for k, record in enumerate(records):
            cues = np.asarray(record.cues, dtype=float).ravel()
            if cues.shape[0] != self.quality.n_cues:
                raise DimensionError(
                    f"expected {self.quality.n_cues} cues, "
                    f"got {cues.shape[0]}")
            if self.guard_nonfinite and not np.all(np.isfinite(cues)):
                usable[k] = False
            cue_rows.append(cues)
        residuals = np.full(len(records), np.nan)
        self.n_skipped += int(np.sum(~usable))
        if not np.any(usable):
            return residuals
        kept = [k for k in range(len(records)) if usable[k]]
        class_ids = np.array([float(records[k].class_index) for k in kept])
        v_q = np.hstack([np.vstack([cue_rows[k] for k in kept]),
                         class_ids[:, None]])
        rows = design_matrix(self.quality.system, v_q)
        targets = np.where([records[k].was_correct for k in kept], 1.0, 0.0)
        for i, k in enumerate(kept):
            residuals[k] = self._rls.update(rows[i], targets[i])
            self._residuals.append(abs(residuals[k]))
        self.n_feedback += len(kept)
        if self.n_feedback >= self.warmup:
            self.quality.system.coefficients = self._rls.coefficients_for(
                self.quality.system)
        return residuals

    # ------------------------------------------------------------------
    def snapshot(self) -> AdapterSnapshot:
        """Capture the complete mutable state as an immutable value.

        The intended uses are checkpointing a long-lived appliance
        (pair with :class:`~repro.core.persistence.QualityPackage` for
        the static parts) and speculative adaptation: snapshot, absorb
        doubtful feedback, and :meth:`restore` if it made things worse.
        """
        return AdapterSnapshot(
            theta=self._rls.theta.copy(),
            p=self._rls.p.copy(),
            rls_n_updates=self._rls.n_updates,
            n_feedback=self.n_feedback,
            n_skipped=self.n_skipped,
            residuals=tuple(self._residuals),
            coefficients=self.quality.system.coefficients.copy(),
        )

    def restore(self, snapshot: AdapterSnapshot) -> None:
        """Rewind adapter *and* FIS coefficients to *snapshot*.

        Bit-identical restoration: after this call, any feedback
        sequence produces exactly the residuals and coefficient
        trajectories it would have produced from the snapshot point.
        """
        expected = self._rls.theta.shape[0]
        theta = np.asarray(snapshot.theta, dtype=float)
        if theta.shape[0] != expected:
            raise DimensionError(
                f"snapshot has {theta.shape[0]} RLS parameters, this "
                f"adapter has {expected}")
        self._rls.theta = theta.copy()
        self._rls.p = np.asarray(snapshot.p, dtype=float).copy()
        self._rls.n_updates = int(snapshot.rls_n_updates)
        self.n_feedback = int(snapshot.n_feedback)
        self.n_skipped = int(snapshot.n_skipped)
        self._residuals = list(snapshot.residuals)
        self.quality.system.coefficients = np.asarray(
            snapshot.coefficients, dtype=float).copy()

    # ------------------------------------------------------------------
    def recent_residual(self, window: int = 50) -> Optional[float]:
        """Mean absolute residual over the last *window* feedback items."""
        if not self._residuals:
            return None
        tail = self._residuals[-window:]
        return float(np.mean(tail))

    @property
    def adapting(self) -> bool:
        """Whether updates are being written into the FIS yet."""
        return self.n_feedback >= self.warmup


class OnlineThresholdTracker:
    """Exponentially weighted tracking of the acceptance threshold.

    The companion to :class:`OnlineQualityAdapter`: while the adapter
    refits the quality FIS, this tracker maintains running estimates of
    the right/wrong quality populations from the same feedback stream and
    re-derives the density-intersection threshold on demand — so the
    operating point follows the (possibly drifting) measure.

    Parameters
    ----------
    initial_right, initial_wrong:
        Population Gaussians from offline calibration (the starting
        belief).
    alpha:
        EW update rate in ``(0, 1)``; higher adapts faster.
    min_sigma:
        Floor on the tracked standard deviations.
    """

    def __init__(self, initial_right: "Gaussian", initial_wrong: "Gaussian",
                 alpha: float = 0.05, min_sigma: float = 1e-3) -> None:
        from ..stats.gaussian import Gaussian  # noqa: F401  (typing aid)

        if not 0.0 < alpha < 1.0:
            raise ConfigurationError(f"alpha must be in (0, 1), got {alpha}")
        if min_sigma <= 0:
            raise ConfigurationError(
                f"min_sigma must be > 0, got {min_sigma}")
        self.alpha = float(alpha)
        self.min_sigma = float(min_sigma)
        self._mu = {True: float(initial_right.mu),
                    False: float(initial_wrong.mu)}
        self._var = {True: float(initial_right.sigma) ** 2,
                     False: float(initial_wrong.sigma) ** 2}
        self.n_updates = 0

    def observe(self, quality: Optional[float], was_correct: bool) -> None:
        """Fold one labeled quality value into the population estimates.

        Epsilon qualities — ``None`` at the scalar API level, NaN in
        vectorized arrays — carry no population information and are
        ignored, as is anything else non-finite.
        """
        if quality is None:
            return
        q = float(quality)
        if not np.isfinite(q):
            return
        mu = self._mu[was_correct]
        var = self._var[was_correct]
        delta = q - mu
        mu += self.alpha * delta
        var = (1.0 - self.alpha) * (var + self.alpha * delta * delta)
        self._mu[was_correct] = mu
        self._var[was_correct] = max(var, self.min_sigma ** 2)
        self.n_updates += 1

    @property
    def right(self):
        """Current right-population Gaussian."""
        from ..stats.gaussian import Gaussian
        return Gaussian(self._mu[True],
                        max(np.sqrt(self._var[True]), self.min_sigma))

    @property
    def wrong(self):
        """Current wrong-population Gaussian."""
        from ..stats.gaussian import Gaussian
        return Gaussian(self._mu[False],
                        max(np.sqrt(self._var[False]), self.min_sigma))

    def threshold(self) -> float:
        """The intersection threshold for the current populations.

        Falls back to the midpoint when the populations have drifted out
        of order (right below wrong) — a signal the measure itself needs
        re-training, which the caller can detect via :meth:`healthy`.
        """
        from ..stats.threshold import intersection_threshold
        if self._mu[True] <= self._mu[False]:
            return float(np.clip(
                0.5 * (self._mu[True] + self._mu[False]), 0.0, 1.0))
        result = intersection_threshold(self.right, self.wrong)
        return float(np.clip(result.threshold, 0.0, 1.0))

    def healthy(self) -> bool:
        """Whether the tracked populations are still in the right order."""
        return self._mu[True] > self._mu[False]
