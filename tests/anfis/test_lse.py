"""Tests for repro.anfis.lse — forward-pass least squares."""

import numpy as np
import pytest

from repro.anfis.lse import (RecursiveLSE, design_matrix, fit_consequents)
from repro.exceptions import DimensionError, TrainingError
from repro.fuzzy.tsk import TSKSystem


def wide_system(order=1, n_rules=2, n_inputs=2):
    """Rules with huge sigmas: behaves almost like a global linear model."""
    rng = np.random.default_rng(3)
    means = rng.normal(size=(n_rules, n_inputs))
    sigmas = np.full((n_rules, n_inputs), 50.0)
    coefficients = np.zeros((n_rules, n_inputs + 1))
    return TSKSystem(means, sigmas, coefficients, order=order)


class TestDesignMatrix:
    def test_shape_first_order(self, rng):
        sys = wide_system()
        x = rng.normal(size=(10, 2))
        a = design_matrix(sys, x)
        assert a.shape == (10, 2 * 3)

    def test_shape_zero_order(self, rng):
        sys = wide_system(order=0)
        x = rng.normal(size=(7, 2))
        a = design_matrix(sys, x)
        assert a.shape == (7, 2)

    def test_rows_reproduce_prediction(self, rng):
        sys = wide_system()
        sys.coefficients = rng.normal(size=sys.coefficients.shape)
        x = rng.normal(size=(5, 2))
        a = design_matrix(sys, x)
        manual = a @ sys.coefficients.reshape(-1)
        np.testing.assert_allclose(manual, sys.evaluate(x), rtol=1e-10)

    def test_input_validation(self):
        sys = wide_system()
        with pytest.raises(DimensionError):
            design_matrix(sys, np.zeros((3, 5)))


class TestFitConsequents:
    def test_recovers_linear_function(self, rng):
        # y = 2 x1 - x2 + 0.5 is exactly representable.
        sys = wide_system()
        x = rng.normal(size=(50, 2))
        y = 2.0 * x[:, 0] - x[:, 1] + 0.5
        coeffs, diag = fit_consequents(sys, x, y)
        sys.coefficients = coeffs
        np.testing.assert_allclose(sys.evaluate(x), y, atol=1e-8)
        assert diag.residual_rmse < 1e-8

    def test_zero_order_fits_constant(self, rng):
        sys = wide_system(order=0)
        x = rng.normal(size=(30, 2))
        y = np.full(30, 0.7)
        coeffs, diag = fit_consequents(sys, x, y)
        sys.coefficients = coeffs
        np.testing.assert_allclose(sys.evaluate(x), y, atol=1e-8)
        # Zero-order layout keeps the input columns zero.
        assert np.all(coeffs[:, :-1] == 0.0)

    def test_diagnostics_rank(self, rng):
        sys = wide_system()
        x = rng.normal(size=(50, 2))
        y = rng.normal(size=50)
        _, diag = fit_consequents(sys, x, y)
        assert diag.n_parameters == 6
        assert 1 <= diag.rank <= 6

    def test_sample_count_mismatch(self, rng):
        sys = wide_system()
        with pytest.raises(DimensionError):
            fit_consequents(sys, rng.normal(size=(5, 2)), np.zeros(4))

    def test_does_not_mutate_system(self, rng):
        sys = wide_system()
        before = sys.coefficients.copy()
        fit_consequents(sys, rng.normal(size=(10, 2)), rng.normal(size=10))
        np.testing.assert_array_equal(sys.coefficients, before)


class TestRecursiveLSE:
    def test_converges_to_batch_solution(self, rng):
        # The wide-rule design is nearly collinear, so individual
        # coefficients are not identifiable — compare *predictions*.
        sys = wide_system()
        x = rng.normal(size=(200, 2))
        y = 1.5 * x[:, 0] + 0.3 * x[:, 1] - 0.2
        batch, _ = fit_consequents(sys, x, y)
        rls = RecursiveLSE(n_parameters=6)
        a = design_matrix(sys, x)
        for row, target in zip(a, y):
            rls.update(row, target)
        batch_sys = sys.copy()
        batch_sys.coefficients = batch
        rls_sys = sys.copy()
        rls_sys.coefficients = rls.coefficients_for(sys)
        np.testing.assert_allclose(rls_sys.evaluate(x),
                                   batch_sys.evaluate(x), atol=1e-4)

    def test_residual_shrinks(self, rng):
        sys = wide_system()
        x = rng.normal(size=(100, 2))
        y = x[:, 0] - x[:, 1]
        a = design_matrix(sys, x)
        rls = RecursiveLSE(n_parameters=6)
        residuals = [abs(rls.update(row, t)) for row, t in zip(a, y)]
        assert np.mean(residuals[-20:]) < np.mean(residuals[:20])

    def test_validation(self):
        with pytest.raises(DimensionError):
            RecursiveLSE(n_parameters=0)
        with pytest.raises(TrainingError):
            RecursiveLSE(n_parameters=3, lam=0.0)
        rls = RecursiveLSE(n_parameters=3)
        with pytest.raises(DimensionError):
            rls.update(np.zeros(4), 1.0)

    def test_coefficients_for_zero_order(self):
        sys = wide_system(order=0)
        rls = RecursiveLSE(n_parameters=2)
        rls.theta = np.array([0.3, 0.7])
        coeffs = rls.coefficients_for(sys)
        assert coeffs.shape == sys.coefficients.shape
        np.testing.assert_allclose(coeffs[:, -1], [0.3, 0.7])

    def test_coefficients_for_wrong_size(self):
        sys = wide_system(order=1)
        rls = RecursiveLSE(n_parameters=2)
        with pytest.raises(DimensionError):
            rls.coefficients_for(sys)
