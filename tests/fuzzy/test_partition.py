"""Tests for repro.fuzzy.partition — grid-partition structure (genfis1)."""

import numpy as np
import pytest

from repro.anfis.lse import fit_consequents
from repro.exceptions import (ConfigurationError, DimensionError,
                              TrainingError)
from repro.fuzzy.partition import (MAX_GRID_RULES, grid_membership_centers,
                                   grid_partition_fis, grid_rule_count)


class TestCenters:
    def test_even_spacing(self):
        centers = grid_membership_centers(0.0, 1.0, 3)
        np.testing.assert_allclose(centers, [0.0, 0.5, 1.0])

    def test_single_mf_at_midpoint(self):
        np.testing.assert_allclose(grid_membership_centers(0.0, 2.0, 1),
                                   [1.0])

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            grid_membership_centers(0.0, 1.0, 0)
        with pytest.raises(ConfigurationError):
            grid_membership_centers(1.0, 1.0, 2)


class TestGridPartition:
    def test_rule_count(self, rng):
        x = rng.uniform(size=(50, 3))
        fis = grid_partition_fis(x, n_mfs=2)
        assert fis.n_rules == 8
        assert fis.n_inputs == 3

    def test_rule_count_helper(self):
        assert grid_rule_count(3, 2) == 8
        assert grid_rule_count(4, 3) == 81
        with pytest.raises(ConfigurationError):
            grid_rule_count(0, 2)

    def test_explosion_guard(self, rng):
        x = rng.uniform(size=(10, 13))
        with pytest.raises(TrainingError, match="combinatorial"):
            grid_partition_fis(x, n_mfs=2)
        assert 2 ** 13 > MAX_GRID_RULES

    def test_covers_data_range(self, rng):
        x = rng.uniform(-2.0, 5.0, size=(100, 2))
        fis = grid_partition_fis(x, n_mfs=3)
        assert fis.means.min() == pytest.approx(x.min(axis=0).min(), abs=0.1)
        assert fis.means.max() == pytest.approx(x.max(axis=0).max(), abs=0.1)

    def test_explicit_bounds(self, rng):
        x = rng.uniform(size=(20, 2))
        fis = grid_partition_fis(x, n_mfs=2, bounds=[(0.0, 1.0), (-1.0, 1.0)])
        assert set(np.round(np.unique(fis.means[:, 1]), 6)) == {-1.0, 1.0}

    def test_bounds_length_validated(self, rng):
        x = rng.uniform(size=(20, 2))
        with pytest.raises(ConfigurationError):
            grid_partition_fis(x, bounds=[(0.0, 1.0)])

    def test_constant_column_handled(self, rng):
        x = rng.uniform(size=(30, 2))
        x[:, 1] = 3.0
        fis = grid_partition_fis(x, n_mfs=2)
        assert np.all(fis.sigmas > 0)
        assert np.all(np.isfinite(fis.evaluate(x)))

    def test_validation(self, rng):
        with pytest.raises(DimensionError):
            grid_partition_fis(np.zeros(5))
        with pytest.raises(ConfigurationError):
            grid_partition_fis(rng.uniform(size=(10, 2)), overlap=0.0)

    def test_fits_nonlinear_function_after_lse(self, rng):
        """A grid partition plus LSE approximates a smooth 2-D surface."""
        x = rng.uniform(-1, 1, size=(300, 2))
        y = np.sin(2 * x[:, 0]) + 0.5 * x[:, 1] ** 2
        fis = grid_partition_fis(x, n_mfs=4)
        coeffs, _ = fit_consequents(fis, x, y)
        fis.coefficients = coeffs
        rmse = np.sqrt(np.mean((fis.evaluate(x) - y) ** 2))
        assert rmse < 0.1

    def test_more_mfs_more_capacity(self, rng):
        x = rng.uniform(-1, 1, size=(400, 2))
        y = np.sin(3 * x[:, 0]) * np.cos(2 * x[:, 1])
        errors = {}
        for n_mfs in (2, 5):
            fis = grid_partition_fis(x, n_mfs=n_mfs)
            coeffs, _ = fit_consequents(fis, x, y)
            fis.coefficients = coeffs
            errors[n_mfs] = np.sqrt(np.mean((fis.evaluate(x) - y) ** 2))
        assert errors[5] < errors[2]
