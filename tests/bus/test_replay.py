"""Tests for repro.bus.replay — log replay into golden traces."""

import dataclasses

import numpy as np
import pytest

from repro.appliances.awarepen import PEN_TOPIC
from repro.appliances.bus import EventBus
from repro.appliances.camera import WhiteboardCamera
from repro.bus.broker import BrokerCore, BusConfig
from repro.bus.drill import scripted_pen_events
from repro.bus.replay import (RunMeta, capture_bus_trace, check_replay,
                              dedupe_events, read_log_events, replay_log)
from repro.core.filtering import EpsilonPolicy, QualityFilter
from repro.exceptions import BusError, ConfigurationError
from repro.verify.golden import diff_traces


def pen_events(n=40, seed=3):
    return scripted_pen_events(seed, n)


class TestRunMeta:
    def test_save_load_roundtrip(self, tmp_path):
        meta = RunMeta(seed=7, gate_threshold=0.55,
                       gate_epsilon_policy="accept",
                       camera_topic=PEN_TOPIC)
        meta.save(tmp_path)
        assert RunMeta.load(tmp_path) == meta

    def test_load_missing_sidecar(self, tmp_path):
        with pytest.raises(BusError, match="meta.json"):
            RunMeta.load(tmp_path)

    def test_wrong_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="kind"):
            RunMeta.from_dict({"kind": "other", "seed": 1})

    def test_gate_reconstruction(self):
        assert RunMeta(seed=1).gate() is None
        gate = RunMeta(seed=1, gate_threshold=0.6,
                       gate_epsilon_policy="accept").gate()
        assert gate == QualityFilter(0.6, EpsilonPolicy.ACCEPT)


class TestDedupeEvents:
    def test_keeps_first_arrival_per_identity(self):
        events = pen_events(10)
        noisy = events + events[3:7] + [events[0]]
        assert dedupe_events(noisy) == events

    def test_distinct_sources_do_not_collide(self):
        a = scripted_pen_events(1, 5, source="pen-a")
        b = scripted_pen_events(1, 5, source="pen-b")
        assert len(dedupe_events(a + b)) == 10


class TestCaptureBusTrace:
    def test_per_source_stages_sorted(self):
        a = scripted_pen_events(1, 5, source="pen-b")
        b = scripted_pen_events(1, 5, source="pen-a")
        trace = capture_bus_trace(7, a + b)
        assert [s.stage for s in trace.stages] == ["events:pen-a",
                                                   "events:pen-b"]

    def test_insensitive_to_interleaving(self):
        events = pen_events(20)
        shuffled = list(events)
        np.random.default_rng(0).shuffle(shuffled)
        base = capture_bus_trace(7, events)
        other = capture_bus_trace(7, shuffled)
        assert diff_traces(base, other, rtol=0.0, atol=0.0).passed

    def test_epsilon_encoded_as_nan(self):
        events = pen_events(50)  # the script emits ~5% epsilon events
        assert any(e.quality is None for e in events)
        [stage] = capture_bus_trace(7, events).stages
        arrays = {a.name: a for a in stage.arrays}
        assert arrays["qualities"].n_nan == sum(
            1 for e in events if e.quality is None)


class TestReplayLog:
    def make_log(self, tmp_path, events):
        config = BusConfig(n_partitions=2, fsync_every=1)
        with BrokerCore(tmp_path, config) as core:
            for e in events:
                core.publish(e.to_wire())

    def test_read_log_events_in_offset_order(self, tmp_path):
        events = pen_events(15)
        self.make_log(tmp_path, events)
        assert read_log_events(tmp_path) == events

    def test_replay_without_camera(self, tmp_path):
        events = pen_events(15)
        self.make_log(tmp_path, events)
        RunMeta(seed=7).save(tmp_path)
        replayed = replay_log(tmp_path)
        live = capture_bus_trace(7, events)
        assert diff_traces(replayed, live, rtol=0.0, atol=0.0).passed

    def test_replay_rebuilds_camera_bit_identically(self, tmp_path):
        events = pen_events(60)
        self.make_log(tmp_path, events)
        meta = RunMeta(seed=7, gate_threshold=0.5, camera_topic=PEN_TOPIC)
        meta.save(tmp_path)

        # The live run: a gated camera fed by the same event stream.
        bus = EventBus()
        camera = WhiteboardCamera(bus, gate=QualityFilter(0.5))
        for e in events:
            bus.publish(e)
        camera.flush(max(e.time_s for e in events))
        assert camera.accepted_events > 0
        live = capture_bus_trace(7, events, camera=camera)

        golden_path = tmp_path / "golden.json"
        live.save(golden_path)
        diff = check_replay(tmp_path, golden_path)
        assert diff.passed
        assert diff.first_diverging_stage is None

    def test_divergence_detected(self, tmp_path):
        events = pen_events(20)
        self.make_log(tmp_path, events)
        RunMeta(seed=7).save(tmp_path)
        # Tamper with one event: a different quality on the same seq.
        tampered = list(events)
        tampered[4] = dataclasses.replace(tampered[4], quality=0.123456)
        golden_path = tmp_path / "golden.json"
        capture_bus_trace(7, tampered).save(golden_path)
        diff = check_replay(tmp_path, golden_path)
        assert not diff.passed
        assert diff.first_diverging_stage == "events:awarepen"
