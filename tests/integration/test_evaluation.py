"""Tests for repro.evaluation — multi-seed runner and scenario CV."""

import numpy as np
import pytest

from repro.core import ConstructionConfig
from repro.datasets import evaluation_script, generate_dataset
from repro.evaluation import (MetricSummary, MultiSeedRunner,
                              ScenarioCrossValidator, concatenate_datasets,
                              experiment_metrics)
from repro.exceptions import ConfigurationError


class TestMetricSummary:
    def test_statistics(self):
        summary = MetricSummary("x", np.array([1.0, 2.0, 3.0]))
        assert summary.mean == pytest.approx(2.0)
        assert summary.minimum == 1.0
        assert summary.maximum == 3.0
        assert "2.000" in summary.format()


class TestExperimentMetrics:
    def test_keys_and_ranges(self, experiment):
        metrics = experiment_metrics(experiment)
        for key in ("threshold", "accuracy_before", "accuracy_after",
                    "discard_fraction", "quality_auc"):
            assert key in metrics
        assert 0.0 < metrics["threshold"] < 1.0
        assert 0.0 <= metrics["discard_fraction"] <= 1.0


class TestMultiSeedRunner:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MultiSeedRunner(seeds=())
        with pytest.raises(ConfigurationError):
            MultiSeedRunner(seeds=(7, 7))

    def test_single_seed_allowed(self):
        # Degenerate aggregation (zero spread) backs traced smoke runs.
        runner = MultiSeedRunner(seeds=(7,))
        assert runner.seeds == (7,)

    def test_aggregates_across_seeds(self):
        report = MultiSeedRunner(seeds=(7, 11, 19)).run()
        assert len(report.per_seed) == 3
        threshold = report.summary("threshold")
        assert 0.0 < threshold.minimum <= threshold.maximum < 1.0
        improvement = report.summary("improvement")
        # The headline result must hold on average, not per lucky seed.
        assert improvement.mean > 0.0

    def test_unknown_metric_raises(self):
        report = MultiSeedRunner(seeds=(7, 11)).run()
        with pytest.raises(KeyError, match="threshold"):
            report.summary("nope")

    def test_to_text(self):
        report = MultiSeedRunner(seeds=(7, 11)).run()
        text = report.to_text()
        assert "threshold" in text
        assert "±" in text


class TestConcatenate:
    def test_stacks(self, material):
        merged = concatenate_datasets([material.analysis,
                                       material.quality_check])
        assert len(merged) == (len(material.analysis)
                               + len(material.quality_check))

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            concatenate_datasets([])

    def test_class_mismatch_rejected(self, material):
        from repro.sensors.chair import AWARECHAIR_CLASSES
        from repro.datasets.generator import WindowDataset
        other = WindowDataset(cues=material.analysis.cues,
                              labels=material.analysis.labels,
                              transition=material.analysis.transition,
                              classes=AWARECHAIR_CLASSES)
        # Same indices -> compatible; force an incompatible set instead.
        from repro.types import ContextClass
        incompatible = WindowDataset(
            cues=material.analysis.cues,
            labels=material.analysis.labels,
            transition=material.analysis.transition,
            classes=(ContextClass(5, "a"), ContextClass(6, "b"),
                     ContextClass(7, "c")))
        with pytest.raises(ConfigurationError):
            concatenate_datasets([material.analysis, incompatible])


class TestScenarioCrossValidation:
    def test_validation(self, experiment):
        with pytest.raises(ConfigurationError):
            ScenarioCrossValidator(
                experiment.classifier,
                lambda seed: None, n_folds=1)  # type: ignore[arg-type]

    def test_folds_generalize(self, experiment):
        def factory(seed):
            return generate_dataset(
                lambda rng: evaluation_script(rng, blocks=3), seed=seed)

        cv = ScenarioCrossValidator(
            experiment.classifier, factory, n_folds=3,
            config=ConstructionConfig(epochs=15))
        report = cv.run()
        assert len(report.folds) == 3
        # Held-out generalization: the measure ranks usefully on every
        # unseen scenario.
        assert report.mean_auc > 0.7
        assert report.mean_improvement > -0.05
        text = report.to_text()
        assert "fold 0" in text and "mean AUC" in text
