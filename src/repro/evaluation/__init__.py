"""Evaluation framework: multi-seed aggregation, scenario CV, throughput."""

from .crossval import (CrossValidationReport, FoldResult,
                       ScenarioCrossValidator, concatenate_datasets)
from .faults import (DEFAULT_INTENSITIES, FaultCell, FaultSweepReport,
                     degradation_margins, run_faults_sweep)
from .report import generate_report
from .runner import (MetricSummary, MultiSeedReport, MultiSeedRunner,
                     experiment_metrics)
from .throughput import ThroughputRecord, ThroughputReporter, best_of

__all__ = [
    "MultiSeedRunner", "MultiSeedReport", "MetricSummary",
    "experiment_metrics",
    "ScenarioCrossValidator", "CrossValidationReport", "FoldResult",
    "concatenate_datasets",
    "generate_report",
    "FaultCell", "FaultSweepReport", "run_faults_sweep",
    "degradation_margins", "DEFAULT_INTENSITIES",
    "ThroughputReporter", "ThroughputRecord", "best_of",
]
