"""Tests for repro.clustering.gk — Gustafson-Kessel clustering."""

import numpy as np
import pytest

from repro.clustering.gk import GustafsonKessel
from repro.exceptions import ConfigurationError, TrainingError


def elongated_blobs(rng):
    """Two ellipsoidal clusters that plain FCM's spherical metric blurs."""
    cov = np.array([[2.0, 0.0], [0.0, 0.02]])
    a = rng.multivariate_normal([0, 0], cov, size=60)
    b = rng.multivariate_normal([0, 2.0], cov, size=60)
    return np.vstack([a, b])


class TestValidation:
    def test_n_clusters(self):
        with pytest.raises(ConfigurationError):
            GustafsonKessel(n_clusters=0)

    def test_fuzzifier(self):
        with pytest.raises(ConfigurationError):
            GustafsonKessel(n_clusters=2, m=1.0)

    def test_regularization(self):
        with pytest.raises(ConfigurationError):
            GustafsonKessel(n_clusters=2, regularization=-1.0)

    def test_too_few_samples(self):
        with pytest.raises(TrainingError):
            GustafsonKessel(n_clusters=5, seed=0).fit(np.zeros((2, 2)))

    def test_data_2d(self):
        with pytest.raises(ConfigurationError):
            GustafsonKessel(n_clusters=2, seed=0).fit(np.zeros(5))


class TestClustering:
    def test_partition_property(self, rng):
        x = elongated_blobs(rng)
        result = GustafsonKessel(n_clusters=2, seed=0).fit(x)
        np.testing.assert_allclose(result.memberships.sum(axis=1), 1.0)

    def test_separates_elongated_clusters(self, rng):
        x = elongated_blobs(rng)
        result = GustafsonKessel(n_clusters=2, seed=0).fit(x)
        labels = result.hard_labels()
        first, second = labels[:60], labels[60:]
        purity_a = max(np.mean(first == 0), np.mean(first == 1))
        purity_b = max(np.mean(second == 0), np.mean(second == 1))
        assert purity_a > 0.9
        assert purity_b > 0.9

    def test_centers_near_truth(self, rng):
        x = elongated_blobs(rng)
        result = GustafsonKessel(n_clusters=2, seed=0).fit(x)
        for true in ([0.0, 0.0], [0.0, 2.0]):
            d = np.linalg.norm(result.centers - np.array(true), axis=1)
            assert np.min(d) < 0.5

    def test_covariances_capture_anisotropy(self, rng):
        x = elongated_blobs(rng)
        result = GustafsonKessel(n_clusters=2, seed=0).fit(x)
        for cov in result.covariances:
            eigenvalues = np.sort(np.linalg.eigvalsh(cov))
            assert eigenvalues[-1] > 10 * eigenvalues[0]

    def test_converges(self, rng):
        x = elongated_blobs(rng)
        result = GustafsonKessel(n_clusters=2, seed=0).fit(x)
        assert result.converged

    def test_deterministic(self, rng):
        x = elongated_blobs(rng)
        a = GustafsonKessel(n_clusters=2, seed=3).fit(x)
        b = GustafsonKessel(n_clusters=2, seed=3).fit(x)
        np.testing.assert_allclose(a.centers, b.centers)

    def test_objective_finite(self, rng):
        x = elongated_blobs(rng)
        result = GustafsonKessel(n_clusters=2, seed=0).fit(x)
        assert np.isfinite(result.objective)
        assert result.objective >= 0

    def test_degenerate_duplicate_points(self):
        x = np.vstack([np.tile([0.0, 0.0], (5, 1)),
                       np.tile([1.0, 1.0], (5, 1))])
        result = GustafsonKessel(n_clusters=2, seed=1).fit(x)
        assert result.n_clusters == 2
        assert np.all(np.isfinite(result.centers))
