"""Tests for repro.stats.bootstrap — small-sample uncertainty."""

import numpy as np
import pytest

from repro.exceptions import CalibrationError, ConfigurationError
from repro.stats.bootstrap import (bootstrap_improvement,
                                   bootstrap_probability,
                                   bootstrap_statistic, bootstrap_threshold)


@pytest.fixture
def labeled_q(rng):
    q = np.concatenate([rng.normal(0.85, 0.08, 60),
                        rng.normal(0.3, 0.15, 30)])
    correct = np.concatenate([np.ones(60, bool), np.zeros(30, bool)])
    return np.clip(q, 0, 1), correct


class TestBootstrapStatistic:
    def test_mean_interval_contains_point(self, labeled_q):
        q, correct = labeled_q
        interval = bootstrap_statistic(
            q, correct, lambda qq, cc: float(np.mean(qq)),
            n_resamples=300)
        assert interval.low <= interval.point <= interval.high
        assert interval.contains(interval.point)

    def test_confidence_widens_interval(self, labeled_q):
        q, correct = labeled_q
        narrow = bootstrap_statistic(
            q, correct, lambda qq, cc: float(np.mean(qq)),
            n_resamples=400, confidence=0.5, seed=1)
        wide = bootstrap_statistic(
            q, correct, lambda qq, cc: float(np.mean(qq)),
            n_resamples=400, confidence=0.99, seed=1)
        assert wide.width > narrow.width

    def test_deterministic_given_seed(self, labeled_q):
        q, correct = labeled_q
        a = bootstrap_statistic(q, correct,
                                lambda qq, cc: float(np.mean(qq)),
                                n_resamples=100, seed=9)
        b = bootstrap_statistic(q, correct,
                                lambda qq, cc: float(np.mean(qq)),
                                n_resamples=100, seed=9)
        assert (a.low, a.high) == (b.low, b.high)

    def test_validation(self, labeled_q):
        q, correct = labeled_q
        with pytest.raises(ConfigurationError):
            bootstrap_statistic(q, correct, lambda a, b: 0.0,
                                confidence=1.0)
        with pytest.raises(ConfigurationError):
            bootstrap_statistic(q, correct, lambda a, b: 0.0,
                                n_resamples=5)
        with pytest.raises(CalibrationError):
            bootstrap_statistic(np.zeros(2), np.zeros(2, bool),
                                lambda a, b: 0.0)

    def test_all_failing_statistic_raises(self, labeled_q):
        q, correct = labeled_q

        def broken(qq, cc):
            raise RuntimeError("always fails")

        with pytest.raises(CalibrationError, match="bootstrap failed"):
            bootstrap_statistic(q, correct, broken, n_resamples=50)


class TestThresholdBootstrap:
    def test_interval_brackets_full_sample_threshold(self, labeled_q):
        q, correct = labeled_q
        interval = bootstrap_threshold(q, correct, n_resamples=300)
        assert 0.0 < interval.low <= interval.point <= interval.high < 1.0

    def test_small_sample_wider_than_large(self, rng):
        def make(n):
            q = np.concatenate([rng.normal(0.85, 0.08, 2 * n),
                                rng.normal(0.3, 0.15, n)])
            c = np.concatenate([np.ones(2 * n, bool), np.zeros(n, bool)])
            return np.clip(q, 0, 1), c

        q_small, c_small = make(8)   # paper-sized: 24 points
        q_large, c_large = make(200)
        small = bootstrap_threshold(q_small, c_small, n_resamples=300)
        large = bootstrap_threshold(q_large, c_large, n_resamples=300)
        assert small.width > large.width

    def test_degenerate_resamples_counted(self, rng):
        # Only 2 wrong points: many resamples miss them entirely.
        q = np.concatenate([rng.normal(0.9, 0.05, 20), [0.1, 0.2]])
        correct = np.concatenate([np.ones(20, bool), [False, False]])
        interval = bootstrap_threshold(np.clip(q, 0, 1), correct,
                                       n_resamples=300)
        assert interval.n_failed > 0


class TestProbabilityBootstrap:
    def test_probability_in_unit_interval(self, labeled_q):
        q, correct = labeled_q
        interval = bootstrap_probability(q, correct,
                                         which="right_given_above",
                                         n_resamples=200)
        assert 0.0 <= interval.low <= interval.high <= 1.0

    def test_unknown_which_rejected(self, labeled_q):
        q, correct = labeled_q
        with pytest.raises(ConfigurationError):
            bootstrap_probability(q, correct, which="nonsense")


class TestImprovementBootstrap:
    def test_returns_two_intervals(self, labeled_q):
        q, correct = labeled_q
        after, discard = bootstrap_improvement(q, correct, threshold=0.6,
                                               n_resamples=200)
        assert after.point > np.mean(correct)  # filtering helps
        assert 0.0 <= discard.point <= 1.0
