"""Automated construction of the quality FIS (paper section 2.2).

The pipeline: classify a training scenario with the black-box classifier,
label every classification right (1) or wrong (0) against ground truth,
then

1. **structure identification** — subtractive clustering over the joint
   ``v_Q = (cues, c)`` space determines the rule count, antecedent weights
   and initial Gaussian membership functions;
2. **linear regression** — an SVD least-squares solve fits the linear
   consequents to the designated 0/1 outputs;
3. **ANFIS hybrid learning** — iterative backprop on the Gaussian
   parameters alternating with LSE re-fits, early-stopped on a check set.

The result is a :class:`repro.core.quality.QualityMeasure` ready to attach
to the classifier.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

import numpy as np

from .. import observability as obs
from ..anfis.initialization import fis_from_clusters
from ..anfis.lse import fit_consequents
from ..anfis.training import HybridTrainer, TrainingReport
from ..classifiers.base import ContextClassifier
from ..clustering.subtractive import SubtractiveClustering
from ..datasets.generator import WindowDataset
from ..exceptions import ConfigurationError, TrainingError
from .quality import QualityMeasure


@dataclasses.dataclass(frozen=True)
class ConstructionConfig:
    """Hyper-parameters of the automated construction.

    Parameters
    ----------
    radius:
        Subtractive-clustering radius ``r_a`` over the normalized joint
        input space.  The default 0.15 identifies one rule per dominant
        cue/class regime of the AwarePen data; the ``radius`` ablation
        bench sweeps this knob.
    order:
        Consequent order of the quality FIS.  The paper chooses linear
        consequents (order 1) "since the results for the reliability
        determination are better"; order 0 backs the ablation bench.
    epochs:
        Hybrid-learning epoch cap.
    learning_rate:
        Initial premise step size.
    patience:
        Early-stopping patience on the check set.
    """

    radius: float = 0.15
    order: int = 1
    epochs: int = 60
    learning_rate: float = 0.02
    patience: int = 6

    def __post_init__(self) -> None:
        if self.radius <= 0:
            raise ConfigurationError(f"radius must be > 0, got {self.radius}")
        if self.order not in (0, 1):
            raise ConfigurationError(f"order must be 0 or 1, got {self.order}")
        if self.epochs < 0:
            raise ConfigurationError(
                f"epochs must be >= 0, got {self.epochs}")


@dataclasses.dataclass(frozen=True)
class ConstructionResult:
    """Everything produced by one automated construction run."""

    quality: QualityMeasure
    training_report: Optional[TrainingReport]
    n_rules: int
    train_accuracy: float     # accuracy of the black box on the train role
    check_accuracy: float


def quality_training_data(classifier: ContextClassifier,
                          dataset: WindowDataset
                          ) -> Tuple[np.ndarray, np.ndarray, float]:
    """Build ``(v_Q, designated outputs, classifier accuracy)`` for a role.

    The designated output is 1 for a right and 0 for a wrong contextual
    classification (paper section 2.2).
    """
    predicted = classifier.predict_indices(dataset.cues)
    correct = predicted == dataset.labels
    v_q = np.hstack([dataset.cues, predicted[:, None].astype(float)])
    targets = correct.astype(float)
    return v_q, targets, float(np.mean(correct))


@obs.traced("construction.build_quality_measure")
def build_quality_measure(classifier: ContextClassifier,
                          train: WindowDataset,
                          check: WindowDataset,
                          config: ConstructionConfig = ConstructionConfig()
                          ) -> ConstructionResult:
    """Run the full automated construction against a black-box classifier.

    Parameters
    ----------
    classifier:
        The already-fitted black box whose decisions are to be qualified.
    train:
        Scenario data for clustering/LSE/backprop.
    check:
        Disjoint scenario data for early stopping ("the hybrid learning
        stops ... when a degradation of the error for a different check
        data set is continuously observed").
    config:
        Construction hyper-parameters.
    """
    v_train, y_train, train_acc = quality_training_data(classifier, train)
    v_check, y_check, check_acc = quality_training_data(classifier, check)

    if len(np.unique(y_train)) < 2:
        raise TrainingError(
            "the classifier is either always right or always wrong on the "
            "quality training data — the quality FIS cannot learn a "
            "discrimination; use a harder or easier scenario")

    clusters = SubtractiveClustering(radius=config.radius).fit(v_train)
    system = fis_from_clusters(clusters, order=config.order)
    coefficients, _ = fit_consequents(system, v_train, y_train)
    system.coefficients = coefficients

    report: Optional[TrainingReport] = None
    if config.epochs > 0:
        trainer = HybridTrainer(epochs=config.epochs,
                                learning_rate=config.learning_rate,
                                patience=config.patience)
        report = trainer.train(system, v_train, y_train, v_check, y_check)

    quality = QualityMeasure(system=system, n_cues=train.cues.shape[1])
    if obs.STATE.enabled:
        obs.get_registry().set_gauge("construction.n_rules", system.n_rules)
        span = obs.current_span()
        if span is not None and span.name == "construction.build_quality_measure":
            span.attrs.update(n_rules=system.n_rules,
                              train_accuracy=round(train_acc, 6),
                              check_accuracy=round(check_acc, 6))
    return ConstructionResult(
        quality=quality,
        training_report=report,
        n_rules=system.n_rules,
        train_accuracy=train_acc,
        check_accuracy=check_acc,
    )
