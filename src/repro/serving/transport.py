"""Transports for ``repro serve``: JSONL over stdio or a TCP socket.

The service itself (:mod:`repro.serving.service`) is transport-free;
this module adapts it to the two deployment shapes the CLI offers:

* **stdio** — read every JSONL request from a text stream, serve the
  whole set with backpressure, write JSONL responses in request order
  (batch-friendly, exercised by the CLI tests);
* **socket** — an :func:`asyncio.start_server` JSONL endpoint where each
  connection's lines become open-loop submissions and responses are
  written back as their micro-batches complete.  Closing the write side
  of a connection drains that connection: every admitted request is
  answered before the server closes it (the CI smoke asserts zero
  unanswered requests).

The socket endpoint optionally speaks a **control plane**
(``allow_control=True``): JSONL frames carrying a ``ctl`` key instead of
``cues``.  This is how the sharded tier (:mod:`repro.serving.sharding`)
drives its shard processes — ``publish`` (attach a shared-memory
artifact and register it), ``activate`` (hot-swap by version),
``stats`` and ``drain``.  Control frames are handled inline in frame
order, so a router that writes *publish* then *activate* observes the
acknowledgements in that order.  Public endpoints keep the control
plane off: a ``ctl`` frame is then just a bad request.
"""

from __future__ import annotations

import asyncio
import inspect
import json
from typing import Callable, IO, List, Optional

from ..exceptions import ConfigurationError
from .framing import iter_jsonl_frames
from .protocol import ServeRequest, ServeResponse
from .registry import ModelRegistry
from .service import InferenceService, ServingConfig, serve_requests


def read_requests(stream: IO[str]) -> List[ServeRequest]:
    """Parse one JSONL request per non-empty line of *stream*."""
    requests = []
    for line in stream:
        line = line.strip()
        if line:
            requests.append(ServeRequest.from_json(line))
    return requests


def serve_stdio(registry: ModelRegistry, stream_in: IO[str],
                stream_out: IO[str],
                config: ServingConfig = ServingConfig()) -> int:
    """Serve every request on *stream_in*; returns the response count."""
    requests = read_requests(stream_in)
    responses = serve_requests(registry, requests, config=config)
    for response in responses:
        stream_out.write(response.to_json() + "\n")
    return len(responses)


async def _handle_control(doc: dict, service, registry: ModelRegistry,
                          stop: "asyncio.Event") -> dict:
    """Execute one control frame against this endpoint's registry.

    Returns the acknowledgement document.  Failures come back as
    ``ok=false`` replies instead of tearing the connection: the fleet
    router needs the error, not an EOF.
    """
    op = doc.get("ctl")
    try:
        if op == "ping":
            return {"ctl": "ping", "ok": True}
        if op == "publish":
            from .shm import ShmHandle, load_artifact
            artifact = load_artifact(ShmHandle.from_dict(doc.get("shm")
                                                         or {}))
            version = registry.publish(artifact.package,
                                       classifier=artifact.classifier,
                                       tag=artifact.tag)
            return {"ctl": "publish", "ok": True, "version": version}
        if op == "activate":
            model = registry.activate(int(doc["version"]))
            return {"ctl": "activate", "ok": True,
                    "version": model.version}
        if op == "stats":
            return {"ctl": "stats", "ok": True, "stats": {
                "n_submitted": service.n_submitted,
                "n_shed": service.n_shed,
                "n_completed": service.n_completed,
                "n_batches": service.n_batches,
                "queue_depth": service.queue_depth,
                "active_version": registry.active_version,
                "versions": registry.versions(),
            }}
        if op == "drain":
            # Acknowledge first (the caller is waiting on this frame),
            # then let the serve loop tear down gracefully.
            stop.set()
            return {"ctl": "drain", "ok": True}
        return {"ctl": op, "ok": False,
                "error": f"unknown control op {op!r}"}
    except (ConfigurationError, KeyError, TypeError, ValueError) as exc:
        return {"ctl": op, "ok": False,
                "error": f"{type(exc).__name__}: {exc}"}


async def _handle_connection(service, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter,
                             registry: Optional[ModelRegistry] = None,
                             allow_control: bool = False,
                             stop: Optional["asyncio.Event"] = None
                             ) -> None:
    """One JSONL connection: lines in, responses out, drain on EOF."""
    write_lock = asyncio.Lock()
    tasks: List["asyncio.Task[None]"] = []

    async def _respond(request: ServeRequest) -> None:
        try:
            response = await service.submit(request.cues,
                                            class_index=request.class_index,
                                            request_id=request.request_id,
                                            key=request.stream_key)
        except Exception as exc:  # noqa: BLE001 - report, keep the connection
            async with write_lock:
                writer.write((json.dumps(
                    {"id": request.request_id,
                     "error": type(exc).__name__,
                     "message": str(exc)}) + "\n").encode())
                await writer.drain()
            return
        async with write_lock:
            writer.write((response.to_json() + "\n").encode())
            await writer.drain()

    loop = asyncio.get_running_loop()
    # Framing hardening (line limit, bad UTF-8, blank lines) lives in
    # the shared iterator so the bus endpoint behaves identically.
    async for text in iter_jsonl_frames(reader, writer, write_lock):
        if allow_control:
            try:
                doc = json.loads(text)
            except json.JSONDecodeError:
                doc = None
            if isinstance(doc, dict) and "ctl" in doc:
                # Control frames run inline (not as tasks) so their
                # acknowledgements keep frame order on this connection.
                reply = await _handle_control(doc, service, registry,
                                              stop)
                async with write_lock:
                    writer.write((json.dumps(reply) + "\n").encode())
                    await writer.drain()
                continue
        try:
            request = ServeRequest.from_json(text)
        except ConfigurationError as exc:
            async with write_lock:
                # json.dumps, not string interpolation: the offending
                # frame is echoed inside the message and may itself
                # contain quotes or backslashes.
                writer.write((json.dumps(
                    {"error": f"bad request: {exc}"}) + "\n").encode())
                await writer.drain()
            continue
        tasks.append(loop.create_task(_respond(request)))
    if tasks:
        # Connection-level drain: every admitted request is answered
        # before the stream closes.
        await asyncio.gather(*tasks)
    writer.close()
    await writer.wait_closed()


def _announce(message: str) -> None:
    """Default announcement hook: unbuffered print (pipes included)."""
    print(message, flush=True)


async def serve_connections(service, host: str, port: int,
                            describe: str = "",
                            registry: Optional[ModelRegistry] = None,
                            ready: Optional["asyncio.Event"] = None,
                            stop: Optional["asyncio.Event"] = None,
                            max_requests: Optional[int] = None,
                            announce=_announce,
                            allow_control: bool = False,
                            on_bound: Optional[Callable[[str, int], None]]
                            = None) -> None:
    """Run the JSONL TCP endpoint over an already-built service.

    The transport core shared by the single-process ``repro serve``
    (:func:`serve_socket`) and each shard process of the sharded tier
    (which passes ``allow_control=True`` so its router can publish,
    activate, inspect and drain it over the same connection).  *service*
    must expose the :class:`~repro.serving.service.InferenceService`
    surface: ``start``/``drain``, ``submit``, and the
    ``n_completed``/``n_shed``/``in_flight`` counters.

    *ready* (when given) is set once the socket is listening, and
    *on_bound* (when given) is called with the bound ``(host, port)`` —
    the hook a shard process uses to report its OS-assigned port 0
    binding back to the router.  With *max_requests* the server retires
    itself once that many requests have resolved (answered or shed).
    Shutdown is graceful: the listener closes first, then the service
    drains.
    """
    stop = stop if stop is not None else asyncio.Event()
    server = await asyncio.start_server(
        lambda r, w: _handle_connection(service, r, w, registry=registry,
                                        allow_control=allow_control,
                                        stop=stop),
        host, port)
    started = service.start()
    if inspect.isawaitable(started):
        await started

    async def _retire() -> None:
        while service.n_completed + service.n_shed < max_requests:
            await asyncio.sleep(0.01)
        stop.set()

    watcher = (asyncio.get_running_loop().create_task(_retire())
               if max_requests is not None else None)
    bound = server.sockets[0].getsockname()
    announce(f"serving on {bound[0]}:{bound[1]} {describe}".rstrip())
    if on_bound is not None:
        on_bound(bound[0], int(bound[1]))
    if ready is not None:
        ready.set()
    async with server:
        await stop.wait()
    if watcher is not None:
        watcher.cancel()
    await service.drain()
    announce(f"drained: {service.n_completed} served, "
             f"{service.n_shed} shed, {service.in_flight} in flight")


async def serve_socket(registry: ModelRegistry, host: str, port: int,
                       config: ServingConfig = ServingConfig(),
                       ready: Optional["asyncio.Event"] = None,
                       stop: Optional["asyncio.Event"] = None,
                       max_requests: Optional[int] = None,
                       announce=_announce,
                       allow_control: bool = False,
                       on_bound: Optional[Callable[[str, int], None]]
                       = None) -> None:
    """Run the JSONL TCP endpoint until *stop* is set (or forever).

    Builds a fresh :class:`InferenceService` over *registry* and
    delegates to :func:`serve_connections`; see there for the lifecycle
    knobs.  ``allow_control`` additionally enables the shard control
    plane on this endpoint — leave it off for public endpoints.
    """
    service = InferenceService(registry, config=config)
    await serve_connections(
        service, host, port,
        describe=(f"(batch<={config.max_batch}, "
                  f"deadline={config.deadline_s * 1e3:.1f}ms, "
                  f"queue={config.queue_capacity})"),
        registry=registry, ready=ready, stop=stop,
        max_requests=max_requests, announce=announce,
        allow_control=allow_control, on_bound=on_bound)
