"""Tests for repro.anfis.gradient — analytic vs numeric gradients."""

import numpy as np
import pytest

from repro.anfis.gradient import (apply_gradient_step,
                                  numeric_premise_gradients,
                                  premise_gradients)
from repro.exceptions import DimensionError
from repro.fuzzy.tsk import TSKSystem


def small_system():
    rng = np.random.default_rng(11)
    means = rng.normal(size=(3, 2))
    sigmas = rng.uniform(0.5, 1.5, size=(3, 2))
    coefficients = rng.normal(size=(3, 3))
    return TSKSystem(means, sigmas, coefficients, order=1)


class TestAnalyticGradients:
    def test_matches_finite_differences(self, rng):
        sys = small_system()
        x = rng.normal(size=(20, 2))
        y = rng.normal(size=20)
        analytic = premise_gradients(sys, x, y)
        num_means, num_sigmas = numeric_premise_gradients(sys, x, y)
        np.testing.assert_allclose(analytic.d_means, num_means,
                                   rtol=1e-4, atol=1e-7)
        np.testing.assert_allclose(analytic.d_sigmas, num_sigmas,
                                   rtol=1e-4, atol=1e-7)

    def test_zero_order_gradients_match(self, rng):
        sys = small_system()
        sys = TSKSystem(sys.means, sys.sigmas, sys.coefficients, order=0)
        x = rng.normal(size=(15, 2))
        y = rng.normal(size=15)
        analytic = premise_gradients(sys, x, y)
        num_means, num_sigmas = numeric_premise_gradients(sys, x, y)
        np.testing.assert_allclose(analytic.d_means, num_means,
                                   rtol=1e-4, atol=1e-7)
        np.testing.assert_allclose(analytic.d_sigmas, num_sigmas,
                                   rtol=1e-4, atol=1e-7)

    def test_loss_value(self, rng):
        sys = small_system()
        x = rng.normal(size=(10, 2))
        y = rng.normal(size=10)
        grads = premise_gradients(sys, x, y)
        expected = 0.5 * np.mean((sys.evaluate(x) - y) ** 2)
        assert grads.loss == pytest.approx(expected)

    def test_zero_gradient_at_perfect_fit(self, rng):
        # If the system already matches y exactly, gradients vanish.
        sys = small_system()
        x = rng.normal(size=(10, 2))
        y = sys.evaluate(x)
        grads = premise_gradients(sys, x, y)
        np.testing.assert_allclose(grads.d_means, 0.0, atol=1e-12)
        np.testing.assert_allclose(grads.d_sigmas, 0.0, atol=1e-12)
        assert grads.loss == pytest.approx(0.0, abs=1e-18)

    def test_dimension_validation(self, rng):
        sys = small_system()
        with pytest.raises(DimensionError):
            premise_gradients(sys, rng.normal(size=(5, 3)), np.zeros(5))
        with pytest.raises(DimensionError):
            premise_gradients(sys, rng.normal(size=(5, 2)), np.zeros(4))


class TestGradientStep:
    def test_descends_loss(self, rng):
        sys = small_system()
        x = rng.normal(size=(40, 2))
        y = np.sin(x[:, 0]) + 0.5 * x[:, 1]
        before = premise_gradients(sys, x, y).loss
        for _ in range(5):
            grads = premise_gradients(sys, x, y)
            apply_gradient_step(sys, grads, learning_rate=0.05)
        after = premise_gradients(sys, x, y).loss
        assert after < before

    def test_sigma_floor(self, rng):
        sys = small_system()
        x = rng.normal(size=(10, 2))
        y = rng.normal(size=10)
        grads = premise_gradients(sys, x, y)
        # Huge step would drive sigmas negative without the floor.
        apply_gradient_step(sys, grads, learning_rate=1e9, min_sigma=1e-4)
        assert np.all(sys.sigmas >= 1e-4)

    def test_rejects_bad_learning_rate(self, rng):
        sys = small_system()
        grads = premise_gradients(sys, rng.normal(size=(5, 2)), np.zeros(5))
        with pytest.raises(ValueError):
            apply_gradient_step(sys, grads, learning_rate=0.0)
