"""Differential verification: optimized pipeline vs reference kernels.

A :class:`DifferentialRunner` sweeps seeded inputs — plus adversarial
shapes the optimizations are most likely to mishandle: constant cues,
near-duplicate clusters, extreme sigmas, inputs far outside the trained
region — through every optimized stage and its naive twin from
:mod:`repro.verify.reference`, then reports the maximum absolute,
relative and ULP divergence per stage against an explicit tolerance.

A :class:`StageFault` injects a mutation into the *optimized* side of
one stage.  This powers the negative control pinned in
``tests/verify/``: perturbing a single TSK consequent coefficient must
make the run fail naming the ``tsk`` stage — evidence the harness can
actually catch the regressions it claims to guard against.
"""

from __future__ import annotations

import contextlib
import dataclasses
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..backend import get_backend, resolve_backend_name, use_backend
from ..clustering.subtractive import (SubtractiveClustering,
                                      initial_potentials,
                                      potential_reduction)
from ..anfis.gradient import premise_gradients
from ..anfis.lse import design_matrix, fit_consequents
from ..core.normalization import normalize_array, normalize_scalar
from ..exceptions import ConfigurationError
from ..fuzzy.tsk import TSKSystem
from ..sensors.cues import AWAREPEN_CUES
from ..stats.gaussian import Gaussian
from ..stats.threshold import intersection_threshold
from . import reference


def ulp_distance(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise distance in units of last place.

    Zero where both entries are NaN (the shared epsilon encoding),
    infinite where exactly one is.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    both_nan = np.isnan(a) & np.isnan(b)
    one_nan = np.isnan(a) ^ np.isnan(b)
    spacing = np.spacing(np.maximum(np.abs(a), np.abs(b)))
    spacing = np.where(spacing > 0, spacing, np.finfo(float).tiny)
    with np.errstate(invalid="ignore"):
        ulp = np.abs(a - b) / spacing
    ulp = np.where(both_nan, 0.0, ulp)
    ulp = np.where(one_nan, np.inf, ulp)
    return ulp


@dataclasses.dataclass(frozen=True)
class StageFault:
    """Mutation applied to the optimized side of one stage.

    Only the ``tsk`` stage currently supports fault injection (its
    optimized artifact, the :class:`TSKSystem`, has a natural mutation
    surface: the trained parameters).  ``mutate`` receives a fresh copy
    of the system and returns the system to evaluate.
    """

    stage: str
    mutate: Callable[[TSKSystem], TSKSystem]


#: A single comparison: (case label, optimized output, reference output).
CasePair = Tuple[str, np.ndarray, np.ndarray]


@dataclasses.dataclass(frozen=True)
class StageReport:
    """Divergence summary of one verified stage."""

    stage: str
    n_values: int
    max_abs: float
    max_rel: float
    max_ulp: float
    atol: float
    rtol: float
    passed: bool
    worst_case: str

    def to_text(self) -> str:
        status = "ok  " if self.passed else "FAIL"
        return (f"{status} {self.stage:<13} n={self.n_values:<6} "
                f"max_abs={self.max_abs:.3e} max_rel={self.max_rel:.3e} "
                f"max_ulp={self.max_ulp:.1f} "
                f"(atol={self.atol:.0e}, rtol={self.rtol:.0e})"
                + ("" if self.passed else f"  worst: {self.worst_case}"))


@dataclasses.dataclass(frozen=True)
class DifferentialReport:
    """All stage reports of one differential run."""

    seeds: Tuple[int, ...]
    stages: Tuple[StageReport, ...]

    @property
    def passed(self) -> bool:
        return all(stage.passed for stage in self.stages)

    @property
    def first_failure(self) -> Optional[str]:
        """Name of the first diverging stage, or ``None``."""
        for stage in self.stages:
            if not stage.passed:
                return stage.stage
        return None

    def to_text(self) -> str:
        lines = [f"differential verification over seeds {list(self.seeds)}:"]
        lines += ["  " + stage.to_text() for stage in self.stages]
        lines.append("  => " + ("all stages within tolerance" if self.passed
                                else f"FIRST DIVERGING STAGE: "
                                     f"{self.first_failure}"))
        return "\n".join(lines)


class _SeedContext:
    """Per-seed fixtures shared across stages (the experiment is the
    expensive one; it is built lazily and cached)."""

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)
        self._experiment = None

    def rng(self, salt: int) -> np.random.Generator:
        return np.random.default_rng(self.seed * 1009 + salt)

    @property
    def experiment(self):
        if self._experiment is None:
            from ..experiment import run_awarepen_experiment
            self._experiment = run_awarepen_experiment(seed=self.seed)
        return self._experiment


# ----------------------------------------------------------------------
# Stage case generators
# ----------------------------------------------------------------------
def _cases_cues(ctx: _SeedContext,
                mutate: Optional[Callable]) -> Iterator[CasePair]:
    rng = ctx.rng(1)
    signals = {
        "gaussian": rng.normal(0.0, 1.0, size=(120, 3)),
        "constant": np.full((64, 3), 0.731),
        "tiny-amplitude": 1e-12 * rng.normal(size=(64, 3)),
        "huge-amplitude": 1e8 * rng.normal(size=(64, 3)),
        "one-axis-dead": np.hstack([rng.normal(size=(64, 2)),
                                    np.zeros((64, 1))]),
    }
    for name, signal in signals.items():
        for window, hop in ((32, 16), (8, 8), (2, 1)):
            starts_opt, cues_opt = AWAREPEN_CUES.extract_all(
                signal, window, hop, batched=True)
            starts_ref, cues_ref = reference.std_cues(signal, window, hop)
            yield (f"{name}/w{window}h{hop}/starts",
                   starts_opt.astype(float), starts_ref.astype(float))
            yield f"{name}/w{window}h{hop}", cues_opt, cues_ref


def _random_system(rng: np.random.Generator, n_rules: int, n_inputs: int,
                   order: int, sigma_scale: float = 1.0) -> TSKSystem:
    means = rng.normal(0.0, 2.0, size=(n_rules, n_inputs))
    sigmas = sigma_scale * rng.uniform(0.3, 2.0, size=(n_rules, n_inputs))
    coefficients = rng.normal(0.0, 1.5, size=(n_rules, n_inputs + 1))
    return TSKSystem(means, sigmas, coefficients, order=order)


def _cases_membership(ctx: _SeedContext,
                      mutate: Optional[Callable]) -> Iterator[CasePair]:
    rng = ctx.rng(2)
    batteries = {
        "plain": _random_system(rng, 4, 3, order=1),
        "narrow-sigma": _random_system(rng, 3, 2, order=1,
                                       sigma_scale=1e-8),
        "wide-sigma": _random_system(rng, 3, 2, order=1, sigma_scale=1e8),
    }
    for name, system in batteries.items():
        x = rng.normal(0.0, 2.0, size=(16, system.n_inputs))
        # Far-field rows drive the exponent deep into underflow.
        x = np.vstack([x, system.means[0] + 40.0 * system.sigmas[0]])
        opt = system.memberships(x)
        ref = reference.tsk_memberships(system.means, system.sigmas, x)
        yield name, opt, ref


def _cases_tsk(ctx: _SeedContext,
               mutate: Optional[Callable]) -> Iterator[CasePair]:
    rng = ctx.rng(3)
    systems: Dict[str, Tuple[TSKSystem, np.ndarray]] = {}
    for order in (0, 1):
        system = _random_system(rng, 4, 3, order=order)
        systems[f"random-order{order}"] = (
            system, rng.normal(0.0, 2.0, size=(24, 3)))
    twin = _random_system(rng, 3, 2, order=1)
    twin.means[1] = twin.means[0] + 1e-9      # near-duplicate rules
    twin.sigmas[1] = twin.sigmas[0]
    systems["near-duplicate-rules"] = (twin,
                                       rng.normal(size=(16, 2)))
    far = _random_system(rng, 2, 2, order=1, sigma_scale=1e-6)
    far_x = far.means[0] + 1e6                # underflow -> uniform weights
    systems["weight-floor"] = (far, np.tile(far_x, (4, 1)))

    quality = ctx.experiment.augmented.quality
    material = ctx.experiment.material
    predicted = ctx.experiment.classifier.predict_indices(
        material.analysis.cues)
    v_q = np.hstack([material.analysis.cues,
                     predicted[:, None].astype(float)])
    systems["trained-quality-fis"] = (quality.system, v_q)

    for name, (system, x) in systems.items():
        optimized_system = mutate(system.copy()) if mutate else system
        opt = optimized_system.evaluate(x)
        ref = reference.tsk_evaluate(system.means, system.sigmas,
                                     system.coefficients, system.order, x)
        yield name, opt, ref


def _cases_gradient(ctx: _SeedContext,
                    mutate: Optional[Callable]) -> Iterator[CasePair]:
    rng = ctx.rng(9)
    batteries: Dict[str, Tuple[TSKSystem, np.ndarray]] = {}
    for order in (0, 1):
        system = _random_system(rng, 4, 3, order=order)
        batteries[f"random-order{order}"] = (
            system, rng.normal(0.0, 2.0, size=(24, 3)))
    narrow = _random_system(rng, 3, 2, order=1, sigma_scale=1e-3)
    batteries["narrow-sigma"] = (narrow, rng.normal(size=(16, 2)))
    single = _random_system(rng, 1, 2, order=1)
    batteries["single-rule"] = (single, rng.normal(size=(12, 2)))

    quality = ctx.experiment.augmented.quality
    from ..core.construction import quality_training_data
    v, y_q, _ = quality_training_data(
        ctx.experiment.classifier, ctx.experiment.material.quality_train)
    batteries["trained-quality-fis"] = (quality.system, v)

    for name, (system, x) in batteries.items():
        y = (y_q if name == "trained-quality-fis"
             else (ctx.rng(10).random(x.shape[0]) > 0.5).astype(float))
        grads = premise_gradients(system, x, y)
        ref_means, ref_sigmas, ref_loss = reference.premise_gradients_loop(
            system.means, system.sigmas, system.coefficients, system.order,
            x, y)
        yield f"{name}/d_means", grads.d_means, ref_means
        yield f"{name}/d_sigmas", grads.d_sigmas, ref_sigmas
        yield (f"{name}/loss", np.array([grads.loss]),
               np.array([ref_loss]))


def _cases_clustering(ctx: _SeedContext,
                      mutate: Optional[Callable]) -> Iterator[CasePair]:
    rng = ctx.rng(4)
    blob_a = rng.normal(0.0, 0.4, size=(60, 3))
    blob_b = rng.normal(3.0, 0.4, size=(60, 3))
    datasets = {
        "blobs": np.vstack([blob_a, blob_b]),
        "near-duplicate-clusters": np.vstack(
            [blob_a, blob_a + 1e-9, blob_b]),
        "constant-column": np.hstack(
            [rng.normal(size=(50, 2)), np.full((50, 1), 2.5)]),
        "single-point": np.array([[1.0, 2.0, 3.0]]),
    }
    v_train = np.hstack(
        [ctx.experiment.material.quality_train.cues,
         ctx.experiment.classifier.predict_indices(
             ctx.experiment.material.quality_train.cues)[:, None]
         .astype(float)])
    datasets["quality-vq"] = v_train[:160]

    for name, data in datasets.items():
        xn_ref = reference.unit_normalize(data)
        xn_opt = SubtractiveClustering()._normalize(data)[0]
        yield f"{name}/unit-norm", xn_opt, xn_ref
        pot_opt = initial_potentials(xn_opt, radius=0.5)
        pot_ref = reference.subtractive_potentials(xn_ref, radius=0.5)
        yield f"{name}/potentials", pot_opt, pot_ref
        center = int(np.argmax(pot_opt))
        red_opt = potential_reduction(pot_opt, xn_opt, center, radius=0.5)
        red_ref = potential_reduction(pot_ref, xn_ref, center, radius=0.5)
        yield f"{name}/reduction", red_opt, red_ref
        if data.shape[0] > 1:
            fit = SubtractiveClustering(radius=0.5).fit(data)
            idx = reference.subtractive_fit_indices(data, radius=0.5)
            yield (f"{name}/fit-centers", fit.centers,
                   data[np.asarray(idx, dtype=int)])


def _cases_lse(ctx: _SeedContext,
               mutate: Optional[Callable]) -> Iterator[CasePair]:
    from ..core.construction import quality_training_data

    system = ctx.experiment.augmented.quality.system
    v, y, _ = quality_training_data(
        ctx.experiment.classifier, ctx.experiment.material.quality_train)
    a_opt = design_matrix(system, v)
    a_ref = reference.lse_design_matrix(system.means, system.sigmas,
                                        system.order, v)
    yield "design-matrix", a_opt, a_ref

    coefficients, diagnostics = fit_consequents(system, v, y)
    theta_ref = reference.lse_solve_svd(a_opt, y)
    # Coefficients are compared through the fitted values: the solve is
    # only well-conditioned in prediction space.
    yield "fitted-values", a_opt @ coefficients.ravel(), a_opt @ theta_ref
    rmse_ref = float(np.sqrt(np.mean((a_opt @ theta_ref - y) ** 2)))
    yield ("residual-rmse", np.array([diagnostics.residual_rmse]),
           np.array([rmse_ref]))

    rng = ctx.rng(5)
    tall = rng.normal(size=(40, 4))
    deficient = np.hstack([tall, tall[:, :1]])     # duplicated column
    target = rng.normal(size=40)
    sol_opt = np.linalg.lstsq(deficient, target, rcond=None)[0]
    sol_ref = reference.lse_solve_svd(deficient, target)
    yield ("rank-deficient/fitted-values", deficient @ sol_opt,
           deficient @ sol_ref)


def _cases_normalization(ctx: _SeedContext,
                         mutate: Optional[Callable]) -> Iterator[CasePair]:
    eps = np.finfo(float).eps
    boundaries = np.array([-0.5 - eps, -0.5, -0.5 + eps, -eps, 0.0, eps,
                           1.0 - eps, 1.0, 1.0 + eps, 1.5 - eps, 1.5,
                           1.5 + eps, np.nan, np.inf, -np.inf])
    grid = np.linspace(-2.5, 3.0, 701)
    seeded = ctx.rng(6).normal(0.5, 1.2, size=256)
    for name, raw in (("boundaries", boundaries), ("grid", grid),
                      ("seeded", seeded)):
        yield name, normalize_array(raw), reference.normalize(raw)
        scalars = np.array([np.nan if normalize_scalar(v) is None
                            else normalize_scalar(v) for v in raw])
        yield f"{name}/scalar-vs-array", normalize_array(raw), scalars


def _cases_threshold(ctx: _SeedContext,
                     mutate: Optional[Callable]) -> Iterator[CasePair]:
    rng = ctx.rng(7)
    pairs = {
        "experiment": (ctx.experiment.calibration.estimates.right,
                       ctx.experiment.calibration.estimates.wrong),
        "equal-sigma": (Gaussian(0.8, 0.1), Gaussian(0.4, 0.1)),
        "near-equal-sigma": (Gaussian(0.8, 0.1),
                             Gaussian(0.4, 0.1 * (1.0 + 1e-13))),
        "unequal-sigma": (Gaussian(0.85, 0.07), Gaussian(0.45, 0.16)),
    }
    for k in range(6):
        mu_w = float(rng.uniform(0.2, 0.5))
        mu_r = float(rng.uniform(mu_w + 0.15, 0.95))
        pairs[f"random-{k}"] = (Gaussian(mu_r, float(rng.uniform(0.04, 0.2))),
                                Gaussian(mu_w, float(rng.uniform(0.04, 0.2))))
    for name, (right, wrong) in pairs.items():
        opt = intersection_threshold(right, wrong).threshold
        ref = reference.intersection_between_means(right, wrong)
        yield name, np.array([opt]), np.array([ref])


def _cases_serving(ctx: _SeedContext,
                   mutate: Optional[Callable]) -> Iterator[CasePair]:
    from ..core.persistence import QualityPackage
    from ..serving import (ModelRegistry, ServeRequest, ServingConfig,
                           serve_requests)

    experiment = ctx.experiment
    registry = ModelRegistry()
    registry.publish_and_activate(
        QualityPackage.from_calibration(experiment.augmented.quality,
                                        experiment.calibration),
        classifier=experiment.classifier, tag="verify")
    cues = experiment.material.analysis.cues
    rng = ctx.rng(8)
    rows = rng.integers(0, cues.shape[0], size=40)
    predicted = experiment.classifier.predict_indices(cues[rows])
    requests = []
    for k, (row, cls) in enumerate(zip(rows, predicted)):
        # Half the requests carry an external class id, half make the
        # service run its registered classifier.
        external = int(cls) if k % 2 == 0 else None
        requests.append(ServeRequest(request_id=k, cues=cues[int(row)],
                                     class_index=external))
    responses = serve_requests(
        registry, requests,
        config=ServingConfig(max_batch=7, deadline_s=0.001))

    quality = experiment.augmented.quality
    direct_q = quality.measure_batch(cues[rows], predicted.astype(float))
    served_q = np.array([np.nan if r.quality is None else r.quality
                         for r in sorted(responses,
                                         key=lambda r: r.request_id)])
    served_cls = np.array([r.class_index for r in
                           sorted(responses, key=lambda r: r.request_id)],
                          dtype=float)
    yield "served-vs-direct-q", served_q, direct_q
    yield "served-vs-direct-class", served_cls, predicted.astype(float)


@dataclasses.dataclass(frozen=True)
class _StageSpec:
    name: str
    cases: Callable[[_SeedContext, Optional[Callable]], Iterator[CasePair]]
    atol: float
    rtol: float


#: Verified stages in pipeline order.  ``serving`` and ``normalization``
#: are exact-match stages: their optimized paths claim bit identity.
STAGES: Tuple[_StageSpec, ...] = (
    _StageSpec("cues", _cases_cues, atol=1e-12, rtol=1e-9),
    _StageSpec("membership", _cases_membership, atol=1e-300, rtol=1e-9),
    _StageSpec("tsk", _cases_tsk, atol=1e-9, rtol=1e-7),
    _StageSpec("gradient", _cases_gradient, atol=1e-10, rtol=1e-6),
    _StageSpec("clustering", _cases_clustering, atol=1e-9, rtol=1e-9),
    _StageSpec("lse", _cases_lse, atol=1e-8, rtol=1e-6),
    _StageSpec("normalization", _cases_normalization, atol=0.0, rtol=0.0),
    _StageSpec("threshold", _cases_threshold, atol=1e-9, rtol=1e-9),
    _StageSpec("serving", _cases_serving, atol=0.0, rtol=0.0),
)

STAGE_NAMES: Tuple[str, ...] = tuple(spec.name for spec in STAGES)

#: Per-backend tolerance overrides, ``{backend: {stage: (atol, rtol)}}``.
#: The default tolerances in :data:`STAGES` are the ``numpy`` gates (the
#: backend that claims bit identity with the historical kernels); the
#: non-bit-identical backends get wider gates only on the stages their
#: fusion actually reassociates — log-space firing perturbs everything
#: built on rule weights (tsk, gradient, lse), matmul-shaped gradient
#: reductions perturb the gradient stage.  Exact-match stages
#: (normalization, serving) stay exact under every backend: both sides
#: of those comparisons run through the same backend.  The numbers are
#: duplicated in ``docs/paper_mapping.md`` — keep the two in sync.
BACKEND_TOLERANCES: Dict[str, Dict[str, Tuple[float, float]]] = {
    "fused": {
        "tsk": (1e-9, 1e-6),
        "gradient": (1e-9, 1e-5),
        "lse": (1e-7, 1e-5),
    },
    "numba": {
        "membership": (1e-300, 1e-6),
        "tsk": (1e-9, 1e-6),
        "gradient": (1e-9, 1e-5),
        "lse": (1e-7, 1e-5),
    },
}

#: Stages whose optimized side accepts a :class:`StageFault` mutation.
FAULT_STAGES: Tuple[str, ...] = ("tsk",)


class DifferentialRunner:
    """Sweep every stage over every seed and summarize the divergence.

    Parameters
    ----------
    seeds:
        Master seeds; each gets its own fixture battery (and, for the
        pipeline-coupled stages, its own trained experiment).
    stages:
        Stage-name subset to run (default: all, in pipeline order).
    fault:
        Optional :class:`StageFault` applied to the optimized side —
        the negative-control hook.
    backend:
        Numeric backend name to run the optimized side under (resolved
        through :func:`repro.backend.resolve_backend_name`, so the env
        fallback semantics apply).  ``None`` uses whatever backend is
        active.  Non-default backends are gated at the widened
        tolerances in :data:`BACKEND_TOLERANCES`.
    """

    def __init__(self, seeds: Sequence[int] = (7, 11, 13),
                 stages: Optional[Sequence[str]] = None,
                 fault: Optional[StageFault] = None,
                 backend: Optional[str] = None) -> None:
        if not seeds:
            raise ConfigurationError("need >= 1 seed")
        self.seeds = tuple(int(s) for s in seeds)
        wanted = list(stages) if stages is not None else list(STAGE_NAMES)
        unknown = [s for s in wanted if s not in STAGE_NAMES]
        if unknown:
            raise ConfigurationError(
                f"unknown stage(s) {unknown}; valid: {list(STAGE_NAMES)}")
        self.stages = tuple(spec for spec in STAGES if spec.name in wanted)
        if fault is not None and fault.stage not in FAULT_STAGES:
            raise ConfigurationError(
                f"stage {fault.stage!r} does not support fault injection; "
                f"supported: {list(FAULT_STAGES)}")
        self.fault = fault
        #: Resolved eagerly so a typo fails at construction (and the
        #: numba-missing fallback warns once, here, not per stage).
        self.backend = (resolve_backend_name(backend)
                        if backend is not None else None)

    def run(self) -> DifferentialReport:
        with contextlib.ExitStack() as stack:
            if self.backend is not None:
                stack.enter_context(use_backend(self.backend))
            backend_name = get_backend().name
            overrides = BACKEND_TOLERANCES.get(backend_name, {})
            contexts = [_SeedContext(seed) for seed in self.seeds]
            reports = []
            for spec in self.stages:
                if spec.name in overrides:
                    atol, rtol = overrides[spec.name]
                    spec = dataclasses.replace(spec, atol=atol, rtol=rtol)
                mutate = (self.fault.mutate
                          if self.fault is not None
                          and self.fault.stage == spec.name else None)
                reports.append(self._run_stage(spec, contexts, mutate))
        return DifferentialReport(seeds=self.seeds, stages=tuple(reports))

    def _run_stage(self, spec: _StageSpec, contexts: List[_SeedContext],
                   mutate: Optional[Callable]) -> StageReport:
        n_values = 0
        max_abs = max_rel = max_ulp = 0.0
        worst_case = ""
        passed = True
        for ctx in contexts:
            for case, optimized, ref in spec.cases(ctx, mutate):
                label = f"seed{ctx.seed}/{case}"
                opt = np.asarray(optimized, dtype=float).ravel()
                refv = np.asarray(ref, dtype=float).ravel()
                if opt.shape != refv.shape:
                    return StageReport(
                        stage=spec.name, n_values=n_values + opt.size,
                        max_abs=np.inf, max_rel=np.inf, max_ulp=np.inf,
                        atol=spec.atol, rtol=spec.rtol, passed=False,
                        worst_case=f"{label}: shape {opt.shape} vs "
                                   f"{refv.shape}")
                n_values += opt.size
                if opt.size == 0:
                    continue
                both_nan = np.isnan(opt) & np.isnan(refv)
                one_nan = np.isnan(opt) ^ np.isnan(refv)
                with np.errstate(invalid="ignore"):
                    abs_diff = np.where(both_nan, 0.0, np.abs(opt - refv))
                abs_diff = np.where(one_nan, np.inf, abs_diff)
                denom = np.where(np.abs(refv) > 0, np.abs(refv), 1.0)
                rel_diff = abs_diff / denom
                ulp = ulp_distance(opt, refv)
                case_abs = float(np.max(abs_diff))
                limit = spec.atol + spec.rtol * np.abs(
                    np.where(both_nan, 0.0, refv))
                case_ok = bool(np.all(np.where(
                    both_nan, True, abs_diff <= limit)))
                if case_abs >= max_abs:
                    max_abs = case_abs
                    if not case_ok or not worst_case:
                        worst_case = label
                max_rel = max(max_rel, float(np.max(rel_diff)))
                max_ulp = max(max_ulp, float(np.max(ulp)))
                if not case_ok:
                    passed = False
                    worst_case = label
        return StageReport(stage=spec.name, n_values=n_values,
                           max_abs=max_abs, max_rel=max_rel,
                           max_ulp=max_ulp, atol=spec.atol, rtol=spec.rtol,
                           passed=passed, worst_case=worst_case)
