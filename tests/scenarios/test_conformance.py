"""Cross-scenario conformance matrix.

Every registered scenario — including ones added later by dropping a
YAML file into the zoo — must

(a) validate against the declarative schema,
(b) reproduce its stored seed-7 golden trace,
(c) run identically on the in-process EventBus and the repro.bus
    broker (compared at zero tolerance, no content-hash mismatches),
(d) keep every published quality in [0, 1] or the epsilon encoding.

The parametrization reads the registry at collection time, so a new
scenario is covered automatically; the golden-inventory test fails
when its golden was not recorded.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.scenarios import capture_scenario_trace, registry
from repro.verify.golden import GoldenTrace, diff_traces

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"

ALL_SCENARIOS = registry.names()


def test_zoo_is_big_enough():
    assert len(ALL_SCENARIOS) >= 10


def test_every_scenario_has_a_golden_and_vice_versa():
    recorded = {path.stem for path in GOLDEN_DIR.glob("*.json")}
    assert recorded == set(ALL_SCENARIOS)


@pytest.mark.parametrize("name", ALL_SCENARIOS)
class TestConformance:
    def test_validates_against_schema(self, name):
        spec = registry.get(name)
        assert spec.validate() is spec

    def test_matches_stored_golden(self, name, scenario_runs):
        golden = GoldenTrace.load(GOLDEN_DIR / f"{name}.json")
        trace = capture_scenario_trace(scenario_runs(name))
        diff = diff_traces(trace, golden)
        assert diff.passed, diff.to_text()
        assert not diff.hash_mismatches, diff.to_text()

    def test_eventbus_and_broker_agree_bitwise(self, name, scenario_runs):
        on_bus = capture_scenario_trace(scenario_runs(name, "eventbus"))
        on_broker = capture_scenario_trace(scenario_runs(name, "broker"))
        diff = diff_traces(on_broker, on_bus, rtol=0.0, atol=0.0)
        assert diff.passed, diff.to_text()
        assert not diff.hash_mismatches, diff.to_text()

    def test_quality_contract_holds(self, name, scenario_runs):
        result = scenario_runs(name)
        assert result.events, "scenario published no context events"
        for record in result.events:
            q = record.qualities
            assert not np.any(np.isinf(q)), record.name
            finite = q[~np.isnan(q)]
            if finite.size:
                assert finite.min() >= 0.0, record.name
                assert finite.max() <= 1.0, record.name

    def test_run_reduces_consistently(self, name, scenario_runs):
        result = scenario_runs(name)
        assert result.scenario == name
        assert result.seed == 7
        assert result.n_correct + result.n_wrong == result.n_windows
        assert result.n_windows == sum(r.times.size for r in result.events)
        for record in result.events:
            assert np.all(np.diff(record.times) >= 0.0)
