"""Analytic gradients for the ANFIS backward pass.

The backward pass (paper section 2.2.4) backpropagates the squared error
between designated and actual output to the Gaussian membership layer and
descends its gradient with respect to the premise parameters ``mu_ij`` and
``sigma_ij``.

With weighted-sum-average output ``S(x) = sum_j wbar_j f_j`` and product
t-norm weights ``w_j = prod_i F_ij(x_i)``:

.. math::

    \\frac{\\partial S}{\\partial w_j} = \\frac{f_j - S}{\\sum_k w_k},
    \\qquad
    \\frac{\\partial w_j}{\\partial \\mu_{ij}}
        = w_j \\frac{x_i - \\mu_{ij}}{\\sigma_{ij}^2},
    \\qquad
    \\frac{\\partial w_j}{\\partial \\sigma_{ij}}
        = w_j \\frac{(x_i - \\mu_{ij})^2}{\\sigma_{ij}^3}.

Everything is vectorized over samples, rules and inputs.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

import numpy as np

from ..backend import ForwardCache, get_backend
from ..exceptions import DimensionError
from ..fuzzy.tsk import TSKSystem

_WEIGHT_FLOOR = 1e-300


@dataclasses.dataclass(frozen=True)
class PremiseGradients:
    """Gradients of the half-SSE loss with respect to premise parameters."""

    d_means: np.ndarray
    d_sigmas: np.ndarray
    loss: float


def premise_gradients(system: TSKSystem, x: np.ndarray, y: np.ndarray,
                      cache: Optional[ForwardCache] = None
                      ) -> PremiseGradients:
    """Gradient of ``0.5 * mean((S(x) - y)^2)`` w.r.t. means and sigmas.

    Vectorized across samples, rules *and* inputs through the active
    backend's :meth:`~repro.backend.base.ArrayBackend.premise_gradient_terms`
    kernel (the naive per-rule loop survives as the oracle — see
    :func:`numeric_premise_gradients` and
    ``repro.verify.reference.premise_gradients_loop``).

    Parameters
    ----------
    system:
        The TSK system whose premise parameters are being tuned.
    x:
        Inputs of shape ``(n_samples, n_inputs)``.
    y:
        Designated outputs of shape ``(n_samples,)`` — 1 for a right and 0
        for a wrong contextual classification in the quality use case.
    cache:
        Optional :class:`~repro.backend.ForwardCache` bound to
        ``(system, x)``; when supplied (the hybrid trainer does), the
        premise-side firing sweep is reused instead of recomputed —
        bit-identically, since a cache hit returns the same arrays.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float).ravel()
    if x.ndim != 2 or x.shape[1] != system.n_inputs:
        raise DimensionError(
            f"x must have shape (n, {system.n_inputs}), got {x.shape}")
    if y.shape[0] != x.shape[0]:
        raise DimensionError(
            f"y must have {x.shape[0]} entries, got {y.shape[0]}")

    backend = get_backend()
    if cache is not None and cache.matches(system, x):
        w, _, total = cache.firing()
        f = backend.rule_consequents(x, system.coefficients, system.order)
    else:
        # Fused forward pass: one membership evaluation instead of the
        # two separate (and separately validated) weight + consequent
        # passes.
        comps = system.evaluate_components(x, validate=False)
        w, f, total = comps.w, comps.f, comps.total
    d_means, d_sigmas, loss = backend.premise_gradient_terms(
        x, system.means, system.sigmas, w, f, total, y)
    return PremiseGradients(d_means=d_means, d_sigmas=d_sigmas, loss=loss)


def apply_gradient_step(system: TSKSystem, grads: PremiseGradients,
                        learning_rate: float,
                        min_sigma: float = 1e-4) -> None:
    """Descend the premise gradients in place.

    Sigmas are floored at *min_sigma* to keep the Gaussians well defined —
    the paper's hybrid learning otherwise risks collapsing a membership
    function onto a single training point.
    """
    if learning_rate <= 0:
        raise ValueError(f"learning_rate must be > 0, got {learning_rate}")
    system.means -= learning_rate * grads.d_means
    system.sigmas -= learning_rate * grads.d_sigmas
    np.maximum(system.sigmas, min_sigma, out=system.sigmas)
    system.touch_premises()


def numeric_premise_gradients(system: TSKSystem, x: np.ndarray,
                              y: np.ndarray,
                              eps: float = 1e-6
                              ) -> Tuple[np.ndarray, np.ndarray]:
    """Finite-difference gradients (testing aid, O(m*d) forward passes)."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float).ravel()

    def loss() -> float:
        err = system.evaluate(x) - y
        return float(0.5 * np.mean(err ** 2))

    d_means = np.zeros_like(system.means)
    d_sigmas = np.zeros_like(system.sigmas)
    for j in range(system.n_rules):
        for i in range(system.n_inputs):
            orig = system.means[j, i]
            system.means[j, i] = orig + eps
            hi = loss()
            system.means[j, i] = orig - eps
            lo = loss()
            system.means[j, i] = orig
            d_means[j, i] = (hi - lo) / (2 * eps)

            orig = system.sigmas[j, i]
            system.sigmas[j, i] = orig + eps
            hi = loss()
            system.sigmas[j, i] = orig - eps
            lo = loss()
            system.sigmas[j, i] = orig
            d_sigmas[j, i] = (hi - lo) / (2 * eps)
    return d_means, d_sigmas
