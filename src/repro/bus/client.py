"""Bus client: the EventBus-compatible adapter over a broker link.

:class:`BusClient` speaks the same ``subscribe`` / ``publish`` surface
as :class:`repro.appliances.bus.EventBus`, so every appliance runs
unmodified on either bus — ``AwareOffice(..., bus=BusClient(link))`` is
the whole migration.  Under that surface it implements the consumer half
of at-least-once delivery:

* **acks are contiguous** — per (topic, partition) the client acks the
  highest index such that *every* index from the subscription's start
  up to it has been received.  Cumulative broker acks therefore never
  cover a frame lost on the wire; the broker's retry timer re-sends it.
* **dedupe + reorder on (source, seq)** — redelivered duplicates are
  dropped, out-of-order arrivals wait in a per-source pending buffer,
  and handlers observe each source's events exactly once, in sequence
  order, no matter how the wire mangled them.

Two links are provided: :class:`InProcLink` calls a
:class:`~repro.bus.broker.BrokerCore` directly (synchronous delivery —
the fault-free office behaves exactly like the in-process bus) and
:class:`SocketLink` speaks the JSONL-over-TCP protocol of
:mod:`repro.bus.server`.
"""

from __future__ import annotations

import json
import queue
import socket
import threading
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..appliances.bus import (DeliveryError, Handler, MAX_DELIVERY_ERRORS,
                              topic_matches)
from ..appliances.messages import ContextEvent
from ..exceptions import BusError, ConfigurationError
from .broker import BrokerCore, PartitionKey

FrameFn = Callable[[Dict[str, object]], None]


# ----------------------------------------------------------------------
# Links
# ----------------------------------------------------------------------
class InProcLink:
    """Direct link to a :class:`BrokerCore` in the same process.

    ``wrap_send`` optionally wraps the broker→client frame callback —
    the hook :class:`repro.bus.faults.FaultyChannel` uses to drop,
    duplicate or delay frames in failure drills.
    """

    def __init__(self, broker: BrokerCore,
                 wrap_send: Optional[Callable[[FrameFn], FrameFn]] = None
                 ) -> None:
        self.broker = broker
        self._wrap = wrap_send

    def subscribe(self, pattern: str, name: str, from_start: bool,
                  on_frame: FrameFn) -> Tuple[int, Dict[str, int]]:
        send = on_frame if self._wrap is None else self._wrap(on_frame)
        return self.broker.subscribe(pattern, send, name=name,
                                     from_start=from_start)

    def publish(self, wire: Dict[str, object],
                key: Optional[str] = None) -> Tuple[int, int]:
        return self.broker.publish(wire, key=key)

    def ack(self, sid: int, topic: str, partition: int, index: int) -> None:
        self.broker.ack(sid, topic, partition, index)

    def unsubscribe(self, sid: int) -> None:
        self.broker.unsubscribe(sid)

    def stats(self) -> Dict[str, object]:
        return self.broker.stats()

    def close(self) -> None:
        pass


class SocketLink:
    """JSONL-over-TCP link to a :mod:`repro.bus.server` broker.

    One connection carries both planes: request/reply control frames
    (correlated by ``rid``, so a retried request cannot be matched to a
    stale reply) and asynchronous ``{"bus": "ev"}`` deliveries, which a
    reader thread routes to the subscribing client by ``sid``.
    Publishes are retried — at-least-once from the publishing side;
    consumers dedupe on ``(source, seq)``.

    Handlers run on the reader thread, so they must not issue blocking
    requests (e.g. ``publish``) over the *same* link — the thread that
    would process the reply is the one waiting for it.  Publishing
    appliances use their own link/connection; acks are fire-and-forget
    and safe from handlers.
    """

    def __init__(self, host: str, port: int, timeout_s: float = 10.0,
                 publish_retries: int = 3) -> None:
        if publish_retries < 1:
            raise ConfigurationError(
                f"publish_retries must be >= 1, got {publish_retries}")
        self.timeout_s = float(timeout_s)
        self.publish_retries = int(publish_retries)
        self._sock = socket.create_connection((host, port),
                                              timeout=self.timeout_s)
        self._wfile = self._sock.makefile("w", encoding="utf-8", newline="\n")
        self._send_lock = threading.Lock()
        self._req_lock = threading.Lock()
        self._replies: "queue.Queue[Dict[str, object]]" = queue.Queue()
        self._on_ev: Dict[int, FrameFn] = {}
        self._next_rid = 1
        self._closed = False
        self._reader = threading.Thread(target=self._read_loop, daemon=True)
        self._reader.start()

    # -- wire plumbing -------------------------------------------------
    def _read_loop(self) -> None:
        try:
            rfile = self._sock.makefile("r", encoding="utf-8")
            for line in rfile:
                line = line.strip()
                if not line:
                    continue
                try:
                    doc = json.loads(line)
                except json.JSONDecodeError:
                    continue  # a torn frame on close; drop it
                if isinstance(doc, dict) and doc.get("bus") == "ev":
                    handler = self._on_ev.get(doc.get("sid"))
                    if handler is not None:
                        handler(doc)
                else:
                    self._replies.put(doc)
        except OSError:
            pass  # socket closed under the reader

    def _send(self, doc: Dict[str, object]) -> None:
        payload = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        with self._send_lock:
            self._wfile.write(payload + "\n")
            self._wfile.flush()

    def _request(self, doc: Dict[str, object]) -> Dict[str, object]:
        """Send one control frame and wait for its rid-matched reply."""
        with self._req_lock:
            rid = self._next_rid
            self._next_rid += 1
            doc = dict(doc, rid=rid)
            self._send(doc)
            while True:
                try:
                    reply = self._replies.get(timeout=self.timeout_s)
                except queue.Empty:
                    raise BusError(
                        f"broker reply timed out after {self.timeout_s}s "
                        f"for {doc.get('bus')!r}") from None
                if not isinstance(reply, dict) or reply.get("rid") != rid:
                    continue  # stale reply from an earlier timed-out request
                if reply.get("error"):
                    raise BusError(f"broker rejected {doc.get('bus')!r}: "
                                   f"{reply['error']}")
                return reply

    # -- link surface --------------------------------------------------
    def subscribe(self, pattern: str, name: str, from_start: bool,
                  on_frame: FrameFn) -> Tuple[int, Dict[str, int]]:
        reply = self._request({"bus": "sub", "pattern": pattern,
                               "name": name, "from_start": bool(from_start)})
        sid = int(reply["sid"])
        # Frames sent between sub_ok and this registration are dropped
        # here and redelivered by the broker's retry timer.
        self._on_ev[sid] = on_frame
        starts = reply.get("starts") or {}
        return sid, {str(k): int(v) for k, v in starts.items()}

    def publish(self, wire: Dict[str, object],
                key: Optional[str] = None) -> Tuple[int, int]:
        last: Optional[BusError] = None
        for _ in range(self.publish_retries):
            try:
                reply = self._request({"bus": "pub", "event": wire,
                                       **({"key": key} if key else {})})
                return int(reply["partition"]), int(reply["offset"])
            except BusError as exc:
                if "rejected" in str(exc):
                    raise  # malformed event: retrying cannot help
                last = exc
        raise BusError(f"publish failed after {self.publish_retries} "
                       f"attempts: {last}")

    def ack(self, sid: int, topic: str, partition: int, index: int) -> None:
        # Fire-and-forget: no reply, so acking from the reader thread
        # never waits on the reply queue it would itself have to fill.
        self._send({"bus": "ack", "sid": sid, "topic": topic,
                    "partition": partition, "index": index})

    def unsubscribe(self, sid: int) -> None:
        self._on_ev.pop(sid, None)
        self._request({"bus": "unsub", "sid": sid})

    def stats(self) -> Dict[str, object]:
        reply = self._request({"bus": "stats"})
        return reply["stats"]  # type: ignore[return-value]

    def kill_partition(self, partition: int) -> int:
        reply = self._request({"bus": "kill", "partition": partition})
        return int(reply.get("lost", 0))

    def revive_partition(self, partition: int) -> None:
        self._request({"bus": "revive", "partition": partition})

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()


# ----------------------------------------------------------------------
# Client
# ----------------------------------------------------------------------
class _PartitionRecv:
    """Contiguous-receipt tracking for one (topic, partition)."""

    __slots__ = ("watermark", "beyond", "acked")

    def __init__(self, start: int) -> None:
        self.watermark = start - 1  # highest contiguously received index
        self.beyond: Set[int] = set()  # received indices > watermark
        self.acked = start - 1      # highest watermark sent as an ack


class _SourceRecv:
    """Dedupe + reorder state for one publishing source."""

    __slots__ = ("next_seq", "pending")

    def __init__(self, next_seq: Optional[int]) -> None:
        self.next_seq = next_seq    # None: adopt the first seq seen
        self.pending: Dict[int, ContextEvent] = {}


class _Route:
    """One broker subscription fanned out to local handler entries."""

    __slots__ = ("pattern", "sid", "entries", "parts", "sources")

    def __init__(self, pattern: str) -> None:
        self.pattern = pattern
        self.sid: Optional[int] = None
        self.entries: List[Tuple[str, str, Handler]] = []
        self.parts: Dict[PartitionKey, _PartitionRecv] = {}
        self.sources: Dict[str, _SourceRecv] = {}


class BusClient:
    """Drop-in :class:`~repro.appliances.bus.EventBus` over a broker link.

    Parameters
    ----------
    link:
        :class:`InProcLink` or :class:`SocketLink`.
    from_start:
        Subscriptions replay the log from offset 0 (and expect each
        source's sequence to start at 1).  Without it, delivery begins
        at the log tail and each source's first-seen seq is adopted as
        its baseline.
    max_delivery_errors:
        Bound on the local delivery-error ring, as on ``EventBus``.
    """

    def __init__(self, link, from_start: bool = False,
                 max_delivery_errors: int = MAX_DELIVERY_ERRORS) -> None:
        if max_delivery_errors < 1:
            raise ConfigurationError(
                f"max_delivery_errors must be >= 1, got "
                f"{max_delivery_errors}")
        self._link = link
        self._from_start = bool(from_start)
        self._lock = threading.RLock()
        self._routes: Dict[str, _Route] = {}
        from collections import deque
        self._delivery_errors = deque(maxlen=max_delivery_errors)
        self._errors_dropped = 0
        self._published = 0
        self._holding = False
        self.n_handled = 0
        self.dedupe_dropped = 0
        self.redeliveries_seen = 0
        self.acks_sent = 0
        self.last_publish: Optional[Tuple[int, int]] = None

    # -- EventBus surface ----------------------------------------------
    def subscribe(self, pattern: str, handler: Handler,
                  name: str = "anonymous") -> None:
        """Register *handler* for topics matching *pattern*."""
        if not pattern:
            raise ConfigurationError("pattern must be non-empty")
        with self._lock:
            route = self._routes.get(pattern)
            if route is not None:
                route.entries.append((pattern, name, handler))
                return
            route = _Route(pattern)
            route.entries.append((pattern, name, handler))
            self._routes[pattern] = route
        # Subscribe outside the lock: the in-process link may deliver
        # re-entrantly during from_start catch-up, and the socket link's
        # reader thread needs the lock to process concurrent frames.
        sid, starts = self._link.subscribe(
            pattern, name, self._from_start,
            lambda frame, _route=route: self._on_frame(_route, frame))
        with self._lock:
            route.sid = sid
            for label, start in starts.items():
                topic, _, part = label.rpartition("/")
                pkey = (topic, int(part))
                route.parts.setdefault(pkey, _PartitionRecv(start))

    def unsubscribe(self, handler: Handler) -> int:
        """Remove every subscription using *handler*; returns the count."""
        removed = 0
        drop: List[_Route] = []
        with self._lock:
            for route in self._routes.values():
                kept = [e for e in route.entries if e[2] != handler]
                removed += len(route.entries) - len(kept)
                route.entries = kept
                if not kept:
                    drop.append(route)
            for route in drop:
                del self._routes[route.pattern]
        for route in drop:
            if route.sid is not None:
                self._link.unsubscribe(route.sid)
        return removed

    def publish(self, event: ContextEvent) -> int:
        """Publish to the broker; returns synchronous local deliveries.

        On the in-process link, matching local handlers run before this
        returns (exactly the ``EventBus`` contract when fault-free); on
        the socket link delivery is asynchronous and the count is 0.
        """
        before = self.n_handled
        partition, offset = self._link.publish(event.to_wire())
        with self._lock:
            self._published += 1
            self.last_publish = (partition, offset)
        return self.n_handled - before

    # -- frame intake --------------------------------------------------
    def _on_frame(self, route: _Route, frame: Dict[str, object]) -> None:
        try:
            topic = str(frame["topic"])
            partition = int(frame["partition"])        # type: ignore[arg-type]
            index = int(frame["index"])                # type: ignore[arg-type]
            event = ContextEvent.from_wire(frame["event"])  # type: ignore[arg-type]
            sid = int(frame["sid"])                    # type: ignore[arg-type]
        except (KeyError, TypeError, ValueError, ConfigurationError) as exc:
            raise BusError(f"malformed delivery frame: {exc}") from exc
        acks: List[Tuple[int, str, int, int]] = []
        with self._lock:
            if frame.get("redelivery"):
                self.redeliveries_seen += 1
            pkey = (topic, partition)
            recv = route.parts.get(pkey)
            if recv is None:
                # Partition key born after subscribe: its records start
                # at index 0 for everyone.
                recv = route.parts[pkey] = _PartitionRecv(0)
            if index > recv.watermark and index not in recv.beyond:
                recv.beyond.add(index)
                while recv.watermark + 1 in recv.beyond:
                    recv.watermark += 1
                    recv.beyond.discard(recv.watermark)
            if not self._holding and recv.watermark > recv.acked:
                recv.acked = recv.watermark
                acks.append((sid, topic, partition, recv.watermark))
            self._ingest(route, event)
        for ack in acks:
            self.acks_sent += 1
            self._link.ack(*ack)

    def _ingest(self, route: _Route, event: ContextEvent) -> None:
        """Dedupe on (source, seq); release pending events in order."""
        src = route.sources.get(event.source)
        if src is None:
            src = route.sources[event.source] = _SourceRecv(
                1 if self._from_start else None)
        if src.next_seq is None:
            src.next_seq = event.seq
        if event.seq < src.next_seq or event.seq in src.pending:
            self.dedupe_dropped += 1
            return
        src.pending[event.seq] = event
        while src.next_seq in src.pending:
            ready = src.pending.pop(src.next_seq)
            src.next_seq += 1
            self._dispatch(route, ready)

    def _dispatch(self, route: _Route, event: ContextEvent) -> None:
        for _pattern, name, handler in list(route.entries):
            try:
                handler(event)
                self.n_handled += 1
            except Exception as exc:  # noqa: BLE001 - isolation, as EventBus
                if (len(self._delivery_errors)
                        == self._delivery_errors.maxlen):
                    self._errors_dropped += 1
                self._delivery_errors.append(DeliveryError(
                    topic=event.topic, event_id=event.event_id,
                    subscriber=name, error=repr(exc)))

    # -- ack control (drills) ------------------------------------------
    def hold_acks(self) -> None:
        """Stop sending acks (drill hook: fills the inflight window)."""
        with self._lock:
            self._holding = True

    def release_acks(self) -> None:
        """Resume acking; immediately acks current watermarks."""
        acks: List[Tuple[int, str, int, int]] = []
        with self._lock:
            self._holding = False
            for route in self._routes.values():
                if route.sid is None:
                    continue
                for (topic, partition), recv in route.parts.items():
                    if recv.watermark > recv.acked:
                        recv.acked = recv.watermark
                        acks.append((route.sid, topic, partition,
                                     recv.watermark))
        for ack in acks:
            self.acks_sent += 1
            self._link.ack(*ack)

    # -- diagnostics ---------------------------------------------------
    @property
    def n_published(self) -> int:
        """Events published through this client."""
        return self._published

    @property
    def delivery_errors(self) -> List[DeliveryError]:
        """Errors raised by local handlers (bounded ring, as EventBus)."""
        return list(self._delivery_errors)

    @property
    def n_delivery_errors_dropped(self) -> int:
        return self._errors_dropped

    @property
    def n_pending(self) -> int:
        """Events waiting in reorder buffers (should drain to 0)."""
        with self._lock:
            return sum(len(src.pending) for route in self._routes.values()
                       for src in route.sources.values())

    def subscriber_names(self) -> Dict[str, List[str]]:
        """Mapping pattern -> subscriber names (diagnostics)."""
        with self._lock:
            return {pattern: [name for _, name, _ in route.entries]
                    for pattern, route in self._routes.items()}

    def diagnostics(self) -> Dict[str, object]:
        """EventBus-shaped health view plus distributed-bus counters."""
        with self._lock:
            return {
                "n_published": self._published,
                "n_subscriptions": sum(len(r.entries)
                                       for r in self._routes.values()),
                "subscribers": {p: [n for _, n, _ in r.entries]
                                for p, r in self._routes.items()},
                "n_delivery_errors": len(self._delivery_errors),
                "n_delivery_errors_dropped": self._errors_dropped,
                "n_handled": self.n_handled,
                "dedupe_dropped": self.dedupe_dropped,
                "redeliveries_seen": self.redeliveries_seen,
                "acks_sent": self.acks_sent,
                "n_pending": self.n_pending,
            }

    def close(self) -> None:
        self._link.close()

    @staticmethod
    def _matches(pattern: str, topic: str) -> bool:
        return topic_matches(pattern, topic)
