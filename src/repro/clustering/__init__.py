"""Fuzzy clustering substrate: subtractive (Chiu), mountain, fuzzy c-means."""

from .fcm import FCMResult, FuzzyCMeans
from .gk import GKResult, GustafsonKessel
from .mountain import MountainClustering, MountainClusteringResult
from .subtractive import (SubtractiveClustering, SubtractiveClusteringResult,
                          subclust)
from .validation import (assign_nearest, davies_bouldin,
                         partition_coefficient, partition_entropy,
                         within_cluster_scatter)

__all__ = [
    "SubtractiveClustering", "SubtractiveClusteringResult", "subclust",
    "MountainClustering", "MountainClusteringResult",
    "FuzzyCMeans", "FCMResult",
    "GustafsonKessel", "GKResult",
    "assign_nearest", "within_cluster_scatter", "davies_bouldin",
    "partition_coefficient", "partition_entropy",
]
