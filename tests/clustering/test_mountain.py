"""Tests for repro.clustering.mountain (Yager & Filev)."""

import numpy as np
import pytest

from repro.clustering.mountain import MountainClustering
from repro.exceptions import ConfigurationError, TrainingError


def make_blobs(rng, centers, n=30, spread=0.1):
    return np.vstack([rng.normal(c, spread, size=(n, len(c)))
                      for c in centers])


class TestValidation:
    def test_grid_points(self):
        with pytest.raises(ConfigurationError):
            MountainClustering(grid_points_per_dim=1)

    def test_sigma_beta(self):
        with pytest.raises(ConfigurationError):
            MountainClustering(sigma=0.0)
        with pytest.raises(ConfigurationError):
            MountainClustering(beta=-1.0)

    def test_stop_ratio(self):
        with pytest.raises(ConfigurationError):
            MountainClustering(stop_ratio=1.0)

    def test_empty_data(self):
        with pytest.raises(TrainingError):
            MountainClustering().fit(np.zeros((0, 2)))

    def test_grid_explosion_guard(self):
        # The scalability problem the paper cites: exponential grids.
        x = np.zeros((5, 10))
        with pytest.raises(ConfigurationError, match="grid"):
            MountainClustering(grid_points_per_dim=10).fit(x)


class TestDiscovery:
    def test_two_blobs(self, rng):
        x = make_blobs(rng, [(0.0, 0.0), (5.0, 5.0)])
        result = MountainClustering(grid_points_per_dim=15,
                                    sigma=0.1, beta=0.15).fit(x)
        assert result.n_clusters >= 2
        for true in [(0.0, 0.0), (5.0, 5.0)]:
            d = np.linalg.norm(result.centers - np.array(true), axis=1)
            assert np.min(d) < 0.6

    def test_centers_on_grid(self, rng):
        # The paper's criticism: results are grid vertices, not data points.
        x = make_blobs(rng, [(0.0, 0.0), (5.0, 5.0)])
        g = 11
        result = MountainClustering(grid_points_per_dim=g).fit(x)
        span = x.max(axis=0) - x.min(axis=0)
        rel = (result.centers - x.min(axis=0)) / span
        steps = rel * (g - 1)
        np.testing.assert_allclose(steps, np.round(steps), atol=1e-8)

    def test_grid_dependence(self, rng):
        # Coarse vs fine grids may disagree — the documented weakness.
        x = make_blobs(rng, [(0, 0), (1.2, 1.2), (5, 5)], spread=0.15)
        coarse = MountainClustering(grid_points_per_dim=3).fit(x)
        fine = MountainClustering(grid_points_per_dim=25).fit(x)
        # No assertion of equality: just verify both run and the fine grid
        # resolves at least as many structures.
        assert fine.n_clusters >= coarse.n_clusters

    def test_mountain_values_decreasing(self, rng):
        x = make_blobs(rng, [(0, 0), (5, 5)])
        result = MountainClustering(grid_points_per_dim=12).fit(x)
        assert np.all(np.diff(result.mountain_values) <= 1e-9)

    def test_max_clusters(self, rng):
        x = make_blobs(rng, [(0, 0), (3, 0), (0, 3)])
        result = MountainClustering(grid_points_per_dim=12,
                                    max_clusters=1).fit(x)
        assert result.n_clusters == 1
