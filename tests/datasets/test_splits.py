"""Tests for repro.datasets.splits."""

import numpy as np
import pytest

from repro.datasets.splits import three_way_split, train_check_split
from repro.exceptions import ConfigurationError, EmptyDatasetError


class TestTrainCheckSplit:
    def test_partition(self):
        split = train_check_split(10, check_fraction=0.3, seed=0)
        merged = np.sort(np.concatenate([split.first, split.second]))
        np.testing.assert_array_equal(merged, np.arange(10))

    def test_fraction_respected(self):
        split = train_check_split(100, check_fraction=0.25, seed=1)
        assert len(split.second) == 25

    def test_deterministic(self):
        a = train_check_split(50, seed=7)
        b = train_check_split(50, seed=7)
        np.testing.assert_array_equal(a.first, b.first)

    def test_different_seeds_differ(self):
        a = train_check_split(50, seed=1)
        b = train_check_split(50, seed=2)
        assert not np.array_equal(a.first, b.first)

    def test_validation(self):
        with pytest.raises(EmptyDatasetError):
            train_check_split(1)
        with pytest.raises(ConfigurationError):
            train_check_split(10, check_fraction=0.0)
        with pytest.raises(ConfigurationError):
            train_check_split(10, check_fraction=1.0)

    def test_stratified_preserves_proportions(self):
        labels = np.array([0] * 80 + [1] * 20)
        split = train_check_split(100, check_fraction=0.25, seed=0,
                                  stratify_on=labels)
        check_labels = labels[split.second]
        assert np.sum(check_labels == 0) == 20
        assert np.sum(check_labels == 1) == 5

    def test_stratified_keeps_rare_class_in_train(self):
        labels = np.array([0] * 98 + [1] * 2)
        split = train_check_split(100, check_fraction=0.5, seed=0,
                                  stratify_on=labels)
        assert np.sum(labels[split.first] == 1) >= 1

    def test_stratified_length_checked(self):
        with pytest.raises(ConfigurationError):
            train_check_split(10, stratify_on=np.zeros(5, dtype=int))


class TestThreeWaySplit:
    def test_partition(self):
        train, check, test = three_way_split(40, seed=3)
        merged = np.sort(np.concatenate([train, check, test]))
        np.testing.assert_array_equal(merged, np.arange(40))

    def test_fractions(self):
        train, check, test = three_way_split(100, check_fraction=0.2,
                                             test_fraction=0.3, seed=0)
        assert len(train) == 50
        assert abs(len(check) - 20) <= 1
        assert abs(len(test) - 30) <= 1

    def test_fraction_sum_validated(self):
        with pytest.raises(ConfigurationError):
            three_way_split(10, check_fraction=0.5, test_fraction=0.5)
