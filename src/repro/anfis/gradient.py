"""Analytic gradients for the ANFIS backward pass.

The backward pass (paper section 2.2.4) backpropagates the squared error
between designated and actual output to the Gaussian membership layer and
descends its gradient with respect to the premise parameters ``mu_ij`` and
``sigma_ij``.

With weighted-sum-average output ``S(x) = sum_j wbar_j f_j`` and product
t-norm weights ``w_j = prod_i F_ij(x_i)``:

.. math::

    \\frac{\\partial S}{\\partial w_j} = \\frac{f_j - S}{\\sum_k w_k},
    \\qquad
    \\frac{\\partial w_j}{\\partial \\mu_{ij}}
        = w_j \\frac{x_i - \\mu_{ij}}{\\sigma_{ij}^2},
    \\qquad
    \\frac{\\partial w_j}{\\partial \\sigma_{ij}}
        = w_j \\frac{(x_i - \\mu_{ij})^2}{\\sigma_{ij}^3}.

Everything is vectorized over samples, rules and inputs.
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

import numpy as np

from ..exceptions import DimensionError
from ..fuzzy.tsk import TSKSystem

_WEIGHT_FLOOR = 1e-300


@dataclasses.dataclass(frozen=True)
class PremiseGradients:
    """Gradients of the half-SSE loss with respect to premise parameters."""

    d_means: np.ndarray
    d_sigmas: np.ndarray
    loss: float


def premise_gradients(system: TSKSystem, x: np.ndarray,
                      y: np.ndarray) -> PremiseGradients:
    """Gradient of ``0.5 * mean((S(x) - y)^2)`` w.r.t. means and sigmas.

    Parameters
    ----------
    system:
        The TSK system whose premise parameters are being tuned.
    x:
        Inputs of shape ``(n_samples, n_inputs)``.
    y:
        Designated outputs of shape ``(n_samples,)`` — 1 for a right and 0
        for a wrong contextual classification in the quality use case.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float).ravel()
    if x.ndim != 2 or x.shape[1] != system.n_inputs:
        raise DimensionError(
            f"x must have shape (n, {system.n_inputs}), got {x.shape}")
    if y.shape[0] != x.shape[0]:
        raise DimensionError(
            f"y must have {x.shape[0]} entries, got {y.shape[0]}")
    n = x.shape[0]

    # Fused forward pass: one membership evaluation instead of the two
    # separate (and separately validated) weight + consequent passes.
    comps = system.evaluate_components(x, validate=False)
    w, f = comps.w, comps.f                            # (N, m) each
    total = np.maximum(comps.total, _WEIGHT_FLOOR)     # (N,)
    s = np.sum(w * f, axis=1) / total                  # (N,)
    err = s - y                                        # (N,)

    # dL/dw_j for every sample and rule: err * (f_j - S) / total.
    dl_dw = (err / total)[:, None] * (f - s[:, None])  # (N, m)

    diff = x[:, None, :] - system.means[None, :, :]    # (N, m, d)
    inv_sig_sq = 1.0 / (system.sigmas ** 2)            # (m, d)
    # dw_j/dmu_ij = w_j * diff / sigma^2 ; dw_j/dsigma_ij = w_j * diff^2/sigma^3
    w3 = w[:, :, None]                                 # (N, m, 1)
    dw_dmu = w3 * diff * inv_sig_sq[None, :, :]
    dw_dsigma = w3 * (diff ** 2) * (inv_sig_sq / system.sigmas)[None, :, :]

    dl3 = dl_dw[:, :, None]                            # (N, m, 1)
    d_means = np.sum(dl3 * dw_dmu, axis=0) / n
    d_sigmas = np.sum(dl3 * dw_dsigma, axis=0) / n
    loss = float(0.5 * np.mean(err ** 2))
    return PremiseGradients(d_means=d_means, d_sigmas=d_sigmas, loss=loss)


def apply_gradient_step(system: TSKSystem, grads: PremiseGradients,
                        learning_rate: float,
                        min_sigma: float = 1e-4) -> None:
    """Descend the premise gradients in place.

    Sigmas are floored at *min_sigma* to keep the Gaussians well defined —
    the paper's hybrid learning otherwise risks collapsing a membership
    function onto a single training point.
    """
    if learning_rate <= 0:
        raise ValueError(f"learning_rate must be > 0, got {learning_rate}")
    system.means -= learning_rate * grads.d_means
    system.sigmas -= learning_rate * grads.d_sigmas
    np.maximum(system.sigmas, min_sigma, out=system.sigmas)


def numeric_premise_gradients(system: TSKSystem, x: np.ndarray,
                              y: np.ndarray,
                              eps: float = 1e-6
                              ) -> Tuple[np.ndarray, np.ndarray]:
    """Finite-difference gradients (testing aid, O(m*d) forward passes)."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float).ravel()

    def loss() -> float:
        err = system.evaluate(x) - y
        return float(0.5 * np.mean(err ** 2))

    d_means = np.zeros_like(system.means)
    d_sigmas = np.zeros_like(system.sigmas)
    for j in range(system.n_rules):
        for i in range(system.n_inputs):
            orig = system.means[j, i]
            system.means[j, i] = orig + eps
            hi = loss()
            system.means[j, i] = orig - eps
            lo = loss()
            system.means[j, i] = orig
            d_means[j, i] = (hi - lo) / (2 * eps)

            orig = system.sigmas[j, i]
            system.sigmas[j, i] = orig + eps
            hi = loss()
            system.sigmas[j, i] = orig - eps
            lo = loss()
            system.sigmas[j, i] = orig
            d_sigmas[j, i] = (hi - lo) / (2 * eps)
    return d_means, d_sigmas
