"""Statistical analysis substrate for the CQM (paper section 2.3)."""

from .bootstrap import (BootstrapInterval, bootstrap_improvement,
                        bootstrap_probability, bootstrap_statistic,
                        bootstrap_threshold)
from .gaussian import Gaussian
from .metrics import (ConfusionMatrix, FilterOutcome, accuracy, auc,
                      confusion_matrix, filter_outcome, roc_curve)
from .mle import (MixtureFit, PopulationEstimates, estimate_populations,
                  fit_gaussian_mle, fit_two_component_mixture)
from .significance import (PermutationResult, auc_permutation_test,
                           mcnemar_exact, paired_permutation_test)
from .reliability import (ReliabilityBin, ReliabilityDiagram,
                          apply_recalibration, recalibration_map,
                          reliability_diagram)
from .probabilities import (QualityProbabilities, empirical_probabilities,
                            probabilities_from_estimates,
                            selection_probabilities)
from .threshold import (ThresholdResult, density_intersections,
                        equal_error_threshold, intersection_threshold,
                        max_accuracy_threshold, youden_threshold)

__all__ = [
    "Gaussian",
    "BootstrapInterval", "bootstrap_statistic", "bootstrap_threshold",
    "bootstrap_probability", "bootstrap_improvement",
    "fit_gaussian_mle", "estimate_populations", "PopulationEstimates",
    "fit_two_component_mixture", "MixtureFit",
    "density_intersections", "intersection_threshold",
    "equal_error_threshold", "ThresholdResult",
    "youden_threshold", "max_accuracy_threshold",
    "selection_probabilities", "probabilities_from_estimates",
    "empirical_probabilities", "QualityProbabilities",
    "accuracy", "confusion_matrix", "ConfusionMatrix",
    "roc_curve", "auc", "filter_outcome", "FilterOutcome",
    "reliability_diagram", "ReliabilityDiagram", "ReliabilityBin",
    "recalibration_map", "apply_recalibration",
    "paired_permutation_test", "auc_permutation_test", "mcnemar_exact",
    "PermutationResult",
]
