"""Tests for repro.datasets.generator and activities."""

import numpy as np
import pytest

from repro.datasets.activities import (evaluation_script, stress_script,
                                       training_script)
from repro.datasets.generator import (WindowDataset, generate_dataset,
                                      make_awarepen_material,
                                      windows_to_dataset)
from repro.exceptions import (ConfigurationError, EmptyDatasetError)
from repro.sensors.accelerometer import AWAREPEN_CLASSES


class TestScripts:
    def test_training_script_covers_all_activities(self, rng):
        segments = training_script(rng, repetitions=2)
        names = {s.model.context.name for s in segments}
        assert names == {"lying", "writing", "playing"}
        assert len(segments) == 6

    def test_training_script_mixes_styles(self, rng):
        segments = training_script(rng, repetitions=4)
        styles = {s.style for s in segments}
        assert len(styles) == 2

    def test_evaluation_script_contains_thinking_pauses(self, rng):
        segments = evaluation_script(rng, blocks=2)
        # Pattern per block: writing, playing (thinking), writing, lying.
        names = [s.model.context.name for s in segments]
        assert names[:4] == ["writing", "playing", "writing", "lying"]

    def test_stress_script_never_repeats_consecutively(self, rng):
        segments = stress_script(rng, n_segments=40)
        names = [s.model.context.name for s in segments]
        assert all(a != b for a, b in zip(names, names[1:]))

    def test_scripts_deterministic(self):
        a = training_script(np.random.default_rng(5))
        b = training_script(np.random.default_rng(5))
        assert [s.duration_s for s in a] == [s.duration_s for s in b]


class TestWindowDataset:
    def test_validation(self, rng):
        cues = rng.normal(size=(5, 3))
        with pytest.raises(ConfigurationError):
            WindowDataset(cues=cues, labels=np.zeros(4, dtype=int),
                          transition=np.zeros(5, bool),
                          classes=AWAREPEN_CLASSES)

    def test_subset(self, material):
        sub = material.analysis.subset(np.array([0, 2, 4]))
        assert len(sub) == 3
        np.testing.assert_array_equal(sub.labels,
                                      material.analysis.labels[[0, 2, 4]])

    def test_class_counts_sum(self, material):
        counts = material.analysis.class_counts()
        assert sum(counts.values()) == len(material.analysis)

    def test_windows_to_dataset_empty(self):
        with pytest.raises(EmptyDatasetError):
            windows_to_dataset([], AWAREPEN_CLASSES)


class TestGeneration:
    def test_deterministic(self):
        a = generate_dataset(lambda r: training_script(r, repetitions=1),
                             seed=11)
        b = generate_dataset(lambda r: training_script(r, repetitions=1),
                             seed=11)
        np.testing.assert_array_equal(a.cues, b.cues)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_different_seeds_differ(self):
        a = generate_dataset(lambda r: training_script(r, repetitions=1),
                             seed=1)
        b = generate_dataset(lambda r: training_script(r, repetitions=1),
                             seed=2)
        assert not np.array_equal(a.cues, b.cues)

    def test_cue_dimensionality(self, material):
        assert material.classifier_train.cues.shape[1] == 3


class TestMaterial:
    def test_all_roles_present(self, material):
        assert len(material.classifier_train) > 50
        assert len(material.quality_train) > 50
        assert len(material.quality_check) > 20
        assert len(material.analysis) > 30
        assert len(material.evaluation) == 24

    def test_roles_are_disjoint_data(self, material):
        # Different seeded scenarios: no identical cue rows across roles.
        train_set = {tuple(row) for row in material.quality_train.cues}
        analysis_set = {tuple(row) for row in material.analysis.cues}
        assert not train_set & analysis_set

    def test_evaluation_size_configurable(self):
        m = make_awarepen_material(seed=3, evaluation_size=12)
        assert len(m.evaluation) == 12

    def test_evaluation_size_validated(self):
        with pytest.raises(ConfigurationError):
            make_awarepen_material(evaluation_size=2)

    def test_all_classes_in_training(self, material):
        counts = material.classifier_train.class_counts()
        assert all(v > 0 for v in counts.values())
