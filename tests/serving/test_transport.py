"""Transports and load generation: stdio, TCP socket, open-loop driver."""

import asyncio
import io

import numpy as np
import pytest

from repro.serving import (InferenceService, LoadgenConfig, ServeResponse,
                           ServingConfig, make_workload, read_requests,
                           run_loadgen, serve_socket, serve_stdio,
                           summarize)
from repro.serving.loadgen import _drive_socket

from .conftest import make_requests


class TestStdio:
    def test_jsonl_round_trip(self, registry, cue_pool):
        requests = make_requests(cue_pool, 10)
        stream_in = io.StringIO(
            "\n".join(r.to_json() for r in requests) + "\n\n")
        stream_out = io.StringIO()
        n = serve_stdio(registry, stream_in, stream_out)
        assert n == 10
        lines = [l for l in stream_out.getvalue().splitlines() if l]
        responses = [ServeResponse.from_json(line) for line in lines]
        assert [r.request_id for r in responses] == list(range(10))
        assert all(r.package_version == 1 for r in responses)

    def test_read_requests_skips_blank_lines(self, cue_pool):
        requests = make_requests(cue_pool, 3)
        text = "\n\n".join(r.to_json() for r in requests)
        parsed = read_requests(io.StringIO(text))
        assert len(parsed) == 3
        assert np.array_equal(parsed[0].cues, requests[0].cues)


class TestWorkload:
    def test_workload_is_seeded(self, cue_pool):
        config = LoadgenConfig(n_requests=20, rate_hz=1000.0, seed=5)
        a_req, a_arr = make_workload(config, cue_pool)
        b_req, b_arr = make_workload(config, cue_pool)
        assert np.array_equal(a_arr, b_arr)
        for x, y in zip(a_req, b_req):
            assert np.array_equal(x.cues, y.cues)
        c_req, c_arr = make_workload(
            LoadgenConfig(n_requests=20, rate_hz=1000.0, seed=6), cue_pool)
        assert not np.array_equal(a_arr, c_arr)

    def test_arrivals_are_monotone(self, cue_pool):
        _, arrivals = make_workload(LoadgenConfig(n_requests=50), cue_pool)
        assert np.all(np.diff(arrivals) >= 0)

    def test_with_class_index_needs_pool(self, cue_pool):
        from repro.exceptions import ConfigurationError
        with pytest.raises(ConfigurationError, match="class_pool"):
            make_workload(LoadgenConfig(n_requests=2,
                                        with_class_index=True), cue_pool)

    def test_summarize_percentiles(self, cue_pool):
        from repro.core.degradation import GateAction
        responses = [
            ServeResponse(request_id=k, class_index=0, class_name=None,
                          quality=0.9, action=GateAction.ACCEPT,
                          degraded=False, shed=False, package_version=1,
                          batch_size=1, latency_s=0.001 * (k + 1))
            for k in range(10)
        ]
        report = summarize(LoadgenConfig(n_requests=10), responses,
                           n_sent=10, wall_s=0.5)
        assert report.n_unanswered == 0
        assert report.latency_p50_s == pytest.approx(
            np.percentile([0.001 * (k + 1) for k in range(10)], 50))
        assert report.throughput_rps == pytest.approx(20.0)
        assert report.versions_seen == (1,)
        text = report.to_text()
        assert "p50/p95/p99" in text
        assert report.as_dict()["n_unanswered"] == 0


class TestRunLoadgen:
    def test_in_process_run_answers_everything(self, registry, cue_pool):
        config = LoadgenConfig(n_requests=50, rate_hz=5000.0, seed=9)
        report = run_loadgen(
            lambda: InferenceService(registry, config=ServingConfig(
                max_batch=16, deadline_s=0.001)),
            config, cue_pool)
        assert report.n_sent == 50
        assert report.n_unanswered == 0
        assert report.versions_seen == (1,)
        assert report.wall_s > 0
        assert np.isfinite(report.latency_p95_s)


class TestSocket:
    def test_socket_round_trip_with_drain(self, registry, cue_pool):
        """End-to-end over TCP: serve, drive, retire, zero unanswered."""
        config = LoadgenConfig(n_requests=40, rate_hz=4000.0, seed=4)
        requests, arrivals = make_workload(config, cue_pool)
        announcements = []

        async def scenario():
            ready = asyncio.Event()
            server_task = asyncio.get_running_loop().create_task(
                serve_socket(registry, "127.0.0.1", 0,
                             config=ServingConfig(max_batch=8,
                                                  deadline_s=0.001),
                             ready=ready, max_requests=len(requests),
                             announce=announcements.append))
            await asyncio.wait_for(ready.wait(), timeout=5)
            port = int(announcements[0].split()[2].rsplit(":", 1)[1])
            responses, wall_s = await _drive_socket(
                "127.0.0.1", port, requests, arrivals, timeout_s=10)
            await asyncio.wait_for(server_task, timeout=10)
            return responses, wall_s

        responses, wall_s = asyncio.run(scenario())
        report = summarize(config, responses, n_sent=len(requests),
                           wall_s=wall_s)
        assert report.n_unanswered == 0
        assert report.n_responses == 40
        assert {r.request_id for r in responses} == set(range(40))
        assert any(a.startswith("serving on") for a in announcements)
        assert any(a.startswith("drained:") for a in announcements)
        drained = [a for a in announcements if a.startswith("drained:")][0]
        assert "0 in flight" in drained

    def test_bad_request_line_gets_error_reply(self, registry, cue_pool):
        async def scenario():
            ready = asyncio.Event()
            stop = asyncio.Event()
            announcements = []
            server_task = asyncio.get_running_loop().create_task(
                serve_socket(registry, "127.0.0.1", 0, ready=ready,
                             stop=stop, announce=announcements.append))
            await asyncio.wait_for(ready.wait(), timeout=5)
            port = int(announcements[0].split()[2].rsplit(":", 1)[1])
            reader, writer = await asyncio.open_connection("127.0.0.1",
                                                           port)
            writer.write(b'{"nonsense": true}\n')
            await writer.drain()
            line = await asyncio.wait_for(reader.readline(), timeout=5)
            writer.close()
            await writer.wait_closed()
            stop.set()
            await asyncio.wait_for(server_task, timeout=10)
            return line.decode()

        line = asyncio.run(scenario())
        assert "bad request" in line
