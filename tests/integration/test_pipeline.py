"""Integration tests: full pipeline behaviour across modules."""

import numpy as np
import pytest

from repro.classifiers import (KNNClassifier, NearestCentroidClassifier,
                               TSKClassifier)
from repro.core import (ConstructionConfig, QualityAugmentedClassifier,
                        build_quality_measure, calibrate)
from repro.experiment import run_awarepen_experiment
from repro.stats.metrics import auc


class TestEndToEnd:
    def test_deterministic_given_seed(self, material):
        a = run_awarepen_experiment(material=material)
        b = run_awarepen_experiment(material=material)
        assert a.threshold == pytest.approx(b.threshold)
        np.testing.assert_allclose(a.evaluation_qualities,
                                   b.evaluation_qualities, equal_nan=True)

    def test_filtering_improves_accuracy(self, experiment):
        outcome = experiment.evaluation_outcome
        assert outcome.accuracy_after > outcome.accuracy_before

    def test_filter_removes_mostly_wrong(self, experiment):
        outcome = experiment.evaluation_outcome
        # More than half of what the gate removes must actually be wrong.
        removed_wrong = outcome.n_wrong_total - outcome.n_wrong_kept
        if outcome.n_discarded > 0:
            assert removed_wrong / outcome.n_discarded > 0.5

    def test_paper_shape_on_24_points(self, experiment):
        """The paper's evaluation shape: ~1/3 errors, most discarded."""
        outcome = experiment.evaluation_outcome
        assert outcome.n_total == 24
        assert 3 <= outcome.n_wrong_total <= 12
        assert 0.05 <= outcome.discard_fraction <= 0.5
        assert outcome.wrong_elimination >= 0.5

    def test_threshold_shifted_toward_one(self, experiment):
        """Paper 3.2: with more right than wrong training samples the
        threshold lies above the midpoint of the two designated outputs."""
        assert experiment.construction.train_accuracy > 0.5
        assert experiment.threshold > 0.5

    def test_quality_auc_on_unseen_data(self, experiment):
        q = experiment.evaluation_qualities
        correct = experiment.evaluation_correct
        usable = ~np.isnan(q)
        assert auc(q[usable], correct[usable]) > 0.7


class TestBlackBoxIndependence:
    """Paper section 2: the CQM attaches to ANY recognition algorithm."""

    @pytest.mark.parametrize("factory", [
        lambda classes: TSKClassifier(classes, mode="index"),
        lambda classes: NearestCentroidClassifier(classes),
        lambda classes: KNNClassifier(classes, k=5),
    ])
    def test_cqm_works_for_any_classifier(self, material, factory):
        classifier = factory(material.classes)
        classifier.fit(material.classifier_train.cues,
                       material.classifier_train.labels)
        result = build_quality_measure(
            classifier, material.quality_train, material.quality_check,
            config=ConstructionConfig(epochs=20))
        augmented = QualityAugmentedClassifier(classifier, result.quality)
        calibration = calibrate(augmented, material.analysis)
        # Separation must be meaningful for every black box.
        assert calibration.estimates.right.mu > calibration.estimates.wrong.mu
        usable = calibration.data.usable
        score = auc(calibration.data.qualities[usable],
                    calibration.data.correct[usable])
        assert score > 0.65
