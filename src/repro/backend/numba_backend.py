"""Optional numba-jitted backend for the TSK/ANFIS kernels.

``numba`` is a *soft* dependency: this module imports cleanly without
it (``NUMBA_AVAILABLE`` is then ``False``) and backend resolution falls
back to the default numpy backend with a logged warning — selecting
``REPRO_BACKEND=numba`` on a machine without numba degrades gracefully
instead of crashing the pipeline.

The jitted kernels are deliberately written as the textbook loops of
the paper's equations (one fused loop nest per kernel, no temporaries),
which is exactly the form LLVM vectorizes well.  Like the fused numpy
backend they compute firing strengths in log space (one ``exp`` per
rule) and are therefore *not* bit-identical to the default backend;
``repro verify --backend numba`` gates them at the tolerances
documented in ``docs/paper_mapping.md``.

Rule consequents and the design matrix stay on the inherited numpy
einsum/block kernels: they are BLAS-bound already, and the einsum keeps
the serving layer's batch-size-independence invariant.

First use of a kernel pays numba's JIT compilation cost (seconds);
:meth:`NumbaBackend.warmup` compiles all of them on toy inputs so
latency-sensitive callers (the serving layer, benchmarks) can front-load
it.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..exceptions import BackendError
from .base import WEIGHT_FLOOR
from .fused import FusedNumpyBackend

try:  # pragma: no cover - exercised only where numba is installed
    import numba

    NUMBA_AVAILABLE = True
except ImportError:  # pragma: no cover - the common case in this repo
    numba = None
    NUMBA_AVAILABLE = False


if NUMBA_AVAILABLE:  # pragma: no cover - compiled/run only with numba

    @numba.njit(cache=True)
    def _mf_kernel(x, means, sigmas):
        n, d = x.shape
        m = means.shape[0]
        out = np.empty((n, m, d))
        for i in range(n):
            for j in range(m):
                for k in range(d):
                    z = (x[i, k] - means[j, k]) / sigmas[j, k]
                    out[i, j, k] = np.exp(-0.5 * z * z)
        return out

    @numba.njit(cache=True)
    def _firing_kernel(x, means, sigmas, floor):
        n, d = x.shape
        m = means.shape[0]
        w = np.empty((n, m))
        wbar = np.empty((n, m))
        total = np.empty(n)
        for i in range(n):
            t = 0.0
            for j in range(m):
                acc = 0.0
                for k in range(d):
                    z = (x[i, k] - means[j, k]) / sigmas[j, k]
                    acc += z * z
                wj = np.exp(-0.5 * acc)
                w[i, j] = wj
                t += wj
            total[i] = t
            if t <= floor:
                uniform = 1.0 / m
                for j in range(m):
                    wbar[i, j] = uniform
            else:
                for j in range(m):
                    wbar[i, j] = w[i, j] / t
        return w, wbar, total

    @numba.njit(cache=True)
    def _gradient_kernel(x, means, sigmas, w, f, total, y, floor):
        n, d = x.shape
        m = means.shape[0]
        d_means = np.zeros((m, d))
        d_sigmas = np.zeros((m, d))
        sse = 0.0
        for i in range(n):
            t = total[i]
            if t < floor:
                t = floor
            s = 0.0
            for j in range(m):
                s += w[i, j] * f[i, j]
            s /= t
            e = s - y[i]
            sse += e * e
            for j in range(m):
                g = (e / t) * (f[i, j] - s) * w[i, j]
                for k in range(d):
                    diff = x[i, k] - means[j, k]
                    sg = sigmas[j, k]
                    d_means[j, k] += g * diff / (sg * sg)
                    d_sigmas[j, k] += g * diff * diff / (sg * sg * sg)
        inv_n = 1.0 / n
        for j in range(m):
            for k in range(d):
                d_means[j, k] *= inv_n
                d_sigmas[j, k] *= inv_n
        return d_means, d_sigmas, 0.5 * sse * inv_n


class NumbaBackend(FusedNumpyBackend):  # pragma: no cover - needs numba
    """JIT-compiled kernels behind the same five-method protocol."""

    name = "numba"
    bit_identical = False

    def __init__(self) -> None:
        if not NUMBA_AVAILABLE:
            raise BackendError(
                "the numba backend requires the optional 'numba' package")

    @staticmethod
    def _as_c(a: np.ndarray) -> np.ndarray:
        return np.ascontiguousarray(a, dtype=np.float64)

    def gaussian_mf_batch(self, x: np.ndarray, means: np.ndarray,
                          sigmas: np.ndarray) -> np.ndarray:
        return _mf_kernel(self._as_c(x), self._as_c(means),
                          self._as_c(sigmas))

    def firing_strengths(self, x: np.ndarray, means: np.ndarray,
                         sigmas: np.ndarray
                         ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        return _firing_kernel(self._as_c(x), self._as_c(means),
                              self._as_c(sigmas), WEIGHT_FLOOR)

    def rule_firing(self, memberships: np.ndarray) -> np.ndarray:
        # Product over the input axis; kept in numpy — the jitted
        # firing path computes w directly from (x, means, sigmas).
        return np.prod(memberships, axis=2)

    def premise_gradient_terms(self, x: np.ndarray, means: np.ndarray,
                               sigmas: np.ndarray, w: np.ndarray,
                               f: np.ndarray, total: np.ndarray,
                               y: np.ndarray
                               ) -> Tuple[np.ndarray, np.ndarray, float]:
        d_means, d_sigmas, loss = _gradient_kernel(
            self._as_c(x), self._as_c(means), self._as_c(sigmas),
            self._as_c(w), self._as_c(f), self._as_c(total),
            self._as_c(y), WEIGHT_FLOOR)
        return d_means, d_sigmas, float(loss)

    def warmup(self) -> None:
        """Compile every jitted kernel on toy inputs."""
        x = np.zeros((2, 2))
        params = np.ones((1, 2))
        coeffs = np.zeros((1, 3))
        self.gaussian_mf_batch(x, params, params)
        w, wbar, total = self.firing_strengths(x, params, params)
        f = self.rule_consequents(x, coeffs, 1)
        self.premise_gradient_terms(x, params, params, w, f, total,
                                    np.zeros(2))
