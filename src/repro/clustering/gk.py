"""Gustafson-Kessel clustering (fuzzy covariance).

A further member of the paper's "several algorithms of fuzzy clustering"
landscape (section 2.2.1): FCM with an adaptive Mahalanobis metric per
cluster, so clusters may be ellipsoidal.  Useful when cue distributions
are strongly anisotropic (e.g. the writing cluster of the AwarePen, which
is elongated along the stroke-energy axis).
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from ..exceptions import ConfigurationError, TrainingError


@dataclasses.dataclass(frozen=True)
class GKResult:
    """Outcome of a Gustafson-Kessel run."""

    centers: np.ndarray          # (c, d)
    memberships: np.ndarray      # (n, c)
    covariances: np.ndarray      # (c, d, d) normalized fuzzy covariances
    objective: float
    n_iterations: int
    converged: bool

    @property
    def n_clusters(self) -> int:
        return self.centers.shape[0]

    def hard_labels(self) -> np.ndarray:
        """Crisp assignment: argmax membership per sample."""
        return np.argmax(self.memberships, axis=1)


class GustafsonKessel:
    """GK clustering with volume-constrained cluster covariances.

    Parameters
    ----------
    n_clusters:
        Number of clusters.
    m:
        Fuzzifier (> 1).
    max_iter, tol:
        Iteration cap and membership-change convergence threshold.
    regularization:
        Ridge added to each fuzzy covariance before inversion; keeps the
        Mahalanobis metric defined for nearly flat clusters.
    seed:
        Seed for the random initial partition.
    """

    def __init__(self, n_clusters: int, m: float = 2.0, max_iter: int = 200,
                 tol: float = 1e-5, regularization: float = 1e-8,
                 seed: Optional[int] = None) -> None:
        if n_clusters < 1:
            raise ConfigurationError(
                f"n_clusters must be >= 1, got {n_clusters}")
        if m <= 1.0:
            raise ConfigurationError(f"fuzzifier m must be > 1, got {m}")
        if regularization < 0:
            raise ConfigurationError(
                f"regularization must be >= 0, got {regularization}")
        self.n_clusters = int(n_clusters)
        self.m = float(m)
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.regularization = float(regularization)
        self.seed = seed

    def fit(self, x: np.ndarray) -> GKResult:
        """Cluster *x* of shape ``(n_samples, d)``."""
        x = np.asarray(x, dtype=float)
        if x.ndim != 2:
            raise ConfigurationError(f"data must be 2-D, got {x.shape}")
        n, d = x.shape
        if n < self.n_clusters:
            raise TrainingError(
                f"need >= n_clusters={self.n_clusters} samples, got {n}")

        rng = np.random.default_rng(self.seed)
        u = rng.dirichlet(np.ones(self.n_clusters), size=n)
        exponent = 2.0 / (self.m - 1.0)

        centers = np.zeros((self.n_clusters, d))
        covariances = np.tile(np.eye(d), (self.n_clusters, 1, 1))
        objective = np.inf
        converged = False
        iteration = 0
        for iteration in range(1, self.max_iter + 1):
            um = u ** self.m
            weights = np.maximum(np.sum(um, axis=0), 1e-12)
            centers = (um.T @ x) / weights[:, None]

            dist_sq = np.empty((n, self.n_clusters))
            for k in range(self.n_clusters):
                diff = x - centers[k]
                cov = (um[:, k][:, None, None]
                       * np.einsum("ni,nj->nij", diff, diff)).sum(axis=0)
                cov = cov / weights[k]
                cov += self.regularization * np.eye(d)
                det = np.linalg.det(cov)
                if det <= 0:
                    cov += 1e-6 * np.eye(d)
                    det = np.linalg.det(cov)
                # Volume-normalized metric: det(A_k) = 1.
                a_k = (det ** (1.0 / d)) * np.linalg.inv(cov)
                covariances[k] = cov
                diff = x - centers[k]
                dist_sq[:, k] = np.maximum(
                    np.einsum("ni,ij,nj->n", diff, a_k, diff), 0.0)

            new_u = self._update_memberships(dist_sq, exponent)
            objective = float(np.sum((new_u ** self.m) * dist_sq))
            shift = float(np.max(np.abs(new_u - u)))
            u = new_u
            if shift < self.tol:
                converged = True
                break

        return GKResult(centers=centers, memberships=u,
                        covariances=covariances, objective=objective,
                        n_iterations=iteration, converged=converged)

    @staticmethod
    def _update_memberships(dist_sq: np.ndarray,
                            exponent: float) -> np.ndarray:
        zero_mask = dist_sq <= 1e-18
        safe = np.maximum(dist_sq, 1e-18)
        inv = safe ** (-exponent / 2.0)
        u = inv / np.sum(inv, axis=1, keepdims=True)
        rows = np.any(zero_mask, axis=1)
        if np.any(rows):
            u[rows] = 0.0
            u[rows] = zero_mask[rows] / np.sum(zero_mask[rows], axis=1,
                                               keepdims=True)
        return u
