"""The black-box context-classifier interface.

The paper "considers the context algorithm as a black box" (section 2):
the quality system only sees the cue vector and the produced class
identifier.  Everything in :mod:`repro.core` therefore depends solely on
this interface, never on a concrete classifier — that is the property the
``blackbox`` generality bench exercises.
"""

from __future__ import annotations

import abc
from typing import List, Sequence, Tuple

import numpy as np

from ..exceptions import ConfigurationError, NotFittedError
from ..types import Classification, ContextClass, as_cue_matrix


class ContextClassifier(abc.ABC):
    """Abstract supervised classifier over cue vectors.

    Subclasses implement :meth:`fit` and :meth:`predict_indices`; the base
    class provides class bookkeeping and the :class:`Classification`
    producing convenience API used by appliances and the quality layer.
    """

    def __init__(self, classes: Sequence[ContextClass]) -> None:
        if len(classes) < 2:
            raise ConfigurationError(
                f"a classifier needs >= 2 classes, got {len(classes)}")
        indices = [c.index for c in classes]
        if len(set(indices)) != len(indices):
            raise ConfigurationError("class indices must be unique")
        self.classes: Tuple[ContextClass, ...] = tuple(classes)
        self._by_index = {c.index: c for c in self.classes}
        self._fitted = False

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def fit(self, x: np.ndarray, y: np.ndarray) -> "ContextClassifier":
        """Train on cues *x* of shape ``(n, d)`` and class indices *y*."""

    @abc.abstractmethod
    def predict_indices(self, x: np.ndarray) -> np.ndarray:
        """Predicted class indices for a batch of cue vectors."""

    # ------------------------------------------------------------------
    def _mark_fitted(self) -> None:
        self._fitted = True

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError(
                f"{type(self).__name__} must be fitted before prediction")

    def _validate_training(self, x: np.ndarray,
                           y: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        x = as_cue_matrix(x)
        y = np.asarray(y, dtype=int).ravel()
        if y.shape[0] != x.shape[0]:
            raise ConfigurationError(
                f"x has {x.shape[0]} rows but y has {y.shape[0]}")
        unknown = set(np.unique(y)) - set(self._by_index)
        if unknown:
            raise ConfigurationError(
                f"training labels {sorted(unknown)} are not registered "
                f"classes {sorted(self._by_index)}")
        return x, y

    def class_for_index(self, index: int) -> ContextClass:
        """Resolve a class index to its :class:`ContextClass`."""
        try:
            return self._by_index[int(index)]
        except KeyError:
            raise KeyError(
                f"index {index} is not one of {sorted(self._by_index)}"
            ) from None

    # ------------------------------------------------------------------
    def classify(self, cues: np.ndarray) -> Classification:
        """Classify a single cue vector into a :class:`Classification`."""
        self._require_fitted()
        cues = np.asarray(cues, dtype=float).ravel()
        index = int(self.predict_indices(cues.reshape(1, -1))[0])
        return Classification(cues=cues, context=self.class_for_index(index))

    def classify_batch(self, x: np.ndarray) -> List[Classification]:
        """Classify a batch of cue vectors."""
        self._require_fitted()
        x = as_cue_matrix(x)
        indices = self.predict_indices(x)
        return [Classification(cues=row.copy(),
                               context=self.class_for_index(int(idx)))
                for row, idx in zip(x, indices)]
