"""Tests for repro.classifiers.knn."""

import numpy as np
import pytest

from repro.classifiers.knn import KNNClassifier
from repro.exceptions import ConfigurationError, NotFittedError


class TestKNN:
    def test_k_validated(self, three_classes):
        with pytest.raises(ConfigurationError):
            KNNClassifier(three_classes, k=0)

    def test_requires_fit(self, three_classes):
        with pytest.raises(NotFittedError):
            KNNClassifier(three_classes).predict_indices(np.zeros((1, 3)))

    def test_separates_blobs(self, three_classes, blob_data):
        x, y = blob_data
        clf = KNNClassifier(three_classes, k=5).fit(x, y)
        assert np.mean(clf.predict_indices(x) == y) > 0.95

    def test_k_one_memorizes_training_data(self, three_classes, blob_data):
        x, y = blob_data
        clf = KNNClassifier(three_classes, k=1).fit(x, y)
        np.testing.assert_array_equal(clf.predict_indices(x), y)

    def test_k_clipped_to_dataset(self, three_classes):
        x = np.array([[0.0, 0, 0], [5.0, 5, 5], [0.1, 0, 0]])
        y = np.array([0, 1, 0])
        clf = KNNClassifier(three_classes, k=50).fit(x, y)
        # k clipped to 3; majority of all three votes is class 0.
        assert clf.predict_indices(np.array([[0.0, 0.0, 0.0]]))[0] == 0

    def test_tie_break_prefers_nearer_class(self, three_classes):
        # Two votes each at k=2: class of the nearer neighbour wins.
        x = np.array([[0.0, 0.0, 0.0], [1.0, 0.0, 0.0]])
        y = np.array([0, 1])
        clf = KNNClassifier(three_classes, k=2, standardize=False).fit(x, y)
        assert clf.predict_indices(np.array([[0.2, 0.0, 0.0]]))[0] == 0
        assert clf.predict_indices(np.array([[0.8, 0.0, 0.0]]))[0] == 1

    def test_single_vector(self, three_classes, blob_data):
        x, y = blob_data
        clf = KNNClassifier(three_classes).fit(x, y)
        assert clf.predict_indices(x[0]).shape == (1,)

    def test_deterministic(self, three_classes, blob_data):
        x, y = blob_data
        a = KNNClassifier(three_classes).fit(x, y).predict_indices(x)
        b = KNNClassifier(three_classes).fit(x, y).predict_indices(x)
        np.testing.assert_array_equal(a, b)
