"""Sharded serving tier: ring math, shm artifacts, fleet semantics.

The acceptance criterion mirrors ``test_equivalence.py``: responses
from a sharded fleet must be **bit-identical** to the direct pipeline
for a fixed request stream.  On top of that, the consistent-hash ring
gets property-tested (resizing the fleet moves only the keys the new
shard wins), the shared-memory artifact path is round-tripped and
integrity-checked, and the coordinated hot-swap barrier is verified to
partition versions cleanly fleet-wide.
"""

import asyncio
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import observability as obs
from repro.exceptions import ConfigurationError, ServiceClosedError
from repro.serving import (HashRing, ServeRequest, ServingConfig,
                           ShardArtifact, ShardedService, ShardingConfig,
                           ShmHandle, load_artifact, publish_artifact,
                           serve_sharded_requests, unlink_artifact)

from .conftest import make_requests
from .test_equivalence import direct_reference


def run(coro):
    return asyncio.run(coro)


@pytest.fixture(scope="session")
def artifact(package, experiment):
    return ShardArtifact(package=package,
                         classifier=experiment.classifier, tag="test")


def keyed_requests(cue_pool, n, n_streams=7, seed=3):
    """Request stream where every request carries an appliance key."""
    plain = make_requests(cue_pool, n, seed=seed)
    return [ServeRequest(request_id=r.request_id, cues=r.cues,
                         class_index=r.class_index,
                         stream_key=f"appliance-{k % n_streams}")
            for k, r in enumerate(plain)]


#: Small fleet shape used by the process-spawning tests: modest spawn
#: cost, still exercises real cross-shard routing.
FLEET = ShardingConfig(n_shards=2, serving=ServingConfig(
    max_batch=8, deadline_s=0.001))


class TestHashRing:
    def test_routing_is_pinned(self):
        """Stable BLAKE2b placement: these literals must never move.

        The router and any external observer (logs, dashboards) agree
        on stream placement across processes and Python versions —
        which a salted ``hash()`` would silently break.
        """
        ring = HashRing(range(4), vnodes=64)
        assert [ring.shard_for(k) for k in
                ["appliance-0", "appliance-1", "appliance-2",
                 "user:alice", "user:bob", 42]] == [2, 0, 3, 0, 1, 0]

    def test_instances_agree(self):
        keys = [f"key-{i}" for i in range(200)]
        a = HashRing(range(5), vnodes=32)
        b = HashRing(range(5), vnodes=32)
        assert [a.shard_for(k) for k in keys] == [b.shard_for(k)
                                                 for k in keys]

    def test_every_shard_reachable_and_roughly_balanced(self):
        ring = HashRing(range(4), vnodes=64)
        counts = ring.distribution(f"k{i}" for i in range(2000))
        assert set(counts) == {0, 1, 2, 3}
        mean = 2000 / 4
        for shard, count in counts.items():
            assert count > 0.5 * mean, (shard, counts)

    def test_single_shard_takes_everything(self):
        ring = HashRing([0], vnodes=8)
        assert all(ring.shard_for(k) == 0 for k in range(50))

    @pytest.mark.parametrize("shards,vnodes", [([], 8), ([1, 1], 8),
                                               ([0], 0)])
    def test_invalid_construction(self, shards, vnodes):
        with pytest.raises(ConfigurationError):
            HashRing(shards, vnodes=vnodes)

    @settings(max_examples=60, deadline=None)
    @given(keys=st.lists(st.one_of(st.text(min_size=1, max_size=24),
                                   st.integers()),
                         min_size=1, max_size=100),
           n=st.integers(min_value=1, max_value=8),
           vnodes=st.integers(min_value=1, max_value=96))
    def test_resize_moves_keys_only_to_the_new_shard(self, keys, n,
                                                     vnodes):
        """Growing N → N+1 relocates a key only if the new shard wins
        it; no key migrates between pre-existing shards."""
        before = HashRing(range(n), vnodes=vnodes)
        after = HashRing(range(n + 1), vnodes=vnodes)
        for key in keys:
            old, new = before.shard_for(key), after.shard_for(key)
            assert new == old or new == n, (key, old, new)

    def test_resize_churn_is_about_one_over_n(self):
        """~K/N keys move on a grow — the consistent-hashing payoff."""
        keys = [f"k{i}" for i in range(5000)]
        before = HashRing(range(4), vnodes=64)
        after = HashRing(range(5), vnodes=64)
        moved = sum(1 for k in keys
                    if before.shard_for(k) != after.shard_for(k))
        # Expected 1/5 = 0.20; a naive ``hash(k) % n`` would move ~0.80.
        assert 0.05 < moved / len(keys) < 0.40


class TestShmArtifacts:
    @pytest.mark.parametrize("backend", ["shm", "mmap"])
    def test_round_trip(self, artifact, cue_pool, backend):
        handle = publish_artifact(artifact, backend=backend)
        try:
            loaded = load_artifact(handle)
        finally:
            unlink_artifact(handle)
        assert loaded.tag == "test"
        assert loaded.package.threshold == artifact.package.threshold
        cues = cue_pool[:8]
        indices = artifact.classifier.predict_indices(cues)
        assert np.array_equal(loaded.classifier.predict_indices(cues),
                              indices)
        assert np.array_equal(
            loaded.package.quality.measure_batch(cues, indices),
            artifact.package.quality.measure_batch(cues, indices),
            equal_nan=True)

    def test_unlink_is_idempotent(self, artifact):
        handle = publish_artifact(artifact, backend="shm")
        unlink_artifact(handle)
        unlink_artifact(handle)
        with pytest.raises(ConfigurationError):
            load_artifact(handle)

    def test_corrupted_payload_is_refused(self, artifact, tmp_path):
        handle = publish_artifact(artifact, backend="mmap",
                                  directory=tmp_path)
        try:
            with open(handle.name, "r+b") as fh:
                fh.seek(handle.size // 2)
                byte = fh.read(1)
                fh.seek(handle.size // 2)
                fh.write(bytes([byte[0] ^ 0xFF]))
            with pytest.raises(ConfigurationError, match="digest"):
                load_artifact(handle)
        finally:
            unlink_artifact(handle)

    def test_handle_round_trips_as_json(self, artifact):
        handle = publish_artifact(artifact, backend="shm")
        try:
            doc = json.loads(json.dumps(handle.to_dict()))
            assert ShmHandle.from_dict(doc) == handle
        finally:
            unlink_artifact(handle)

    @pytest.mark.parametrize("doc", [{}, {"backend": "tape"},
                                     {"backend": "shm", "name": "x",
                                      "size": -1, "digest": "00"}])
    def test_malformed_handle_rejected(self, doc):
        with pytest.raises(ConfigurationError):
            ShmHandle.from_dict(dict({"backend": "shm", "name": "x",
                                      "size": 1, "digest": "00"}, **doc)
                                if doc else {})


class TestShardingConfig:
    @pytest.mark.parametrize("kwargs", [{"n_shards": 0}, {"vnodes": 0},
                                        {"shm_backend": "tape"},
                                        {"start_method": "teleport"},
                                        {"spawn_timeout_s": 0.0}])
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            ShardingConfig(**kwargs)


class TestShardedEquivalence:
    """The acceptance criterion: sharded == direct, bit for bit."""

    def test_sharded_matches_direct_with_stream_keys(self, artifact,
                                                     experiment, package,
                                                     cue_pool):
        requests = keyed_requests(cue_pool, 60)
        reference = direct_reference(experiment, package, requests)
        responses = serve_sharded_requests(artifact, requests,
                                           config=FLEET)
        assert [r.key() for r in responses] == reference
        assert {r.package_version for r in responses} == {1}

    def test_sharded_matches_direct_without_keys(self, artifact,
                                                 experiment, package,
                                                 cue_pool):
        """No stream keys: routing falls back to request ids and the
        per-row results still match the direct pipeline exactly."""
        requests = make_requests(cue_pool, 40)
        reference = direct_reference(experiment, package, requests)
        responses = serve_sharded_requests(artifact, requests,
                                           config=FLEET)
        assert [r.key() for r in responses] == reference


class TestShardedFleet:
    def test_stream_affinity(self, artifact, cue_pool):
        """Every request of one stream lands on exactly one shard."""
        requests = keyed_requests(cue_pool, 20, n_streams=1)

        async def scenario():
            async with ShardedService(artifact, config=FLEET) as service:
                await service.serve_stream(requests)
                return await service.stats()

        stats = run(scenario())
        submitted = [shard["n_submitted"]
                     for shard in stats["shards"].values()]
        assert sorted(submitted) == [0, 20]
        assert stats["n_completed"] == 20

    def test_coordinated_swap_partitions_versions(self, artifact, package,
                                                  experiment, cue_pool):
        requests = keyed_requests(cue_pool, 16)

        async def scenario():
            async with ShardedService(artifact, config=FLEET) as service:
                pre = [await service.submit(r.cues, key=r.stream_key)
                       for r in requests[:8]]
                version = await service.publish_and_activate(
                    package, classifier=experiment.classifier, tag="v2")
                post = [await service.submit(r.cues, key=r.stream_key)
                        for r in requests[8:]]
                stats = await service.stats()
                return pre, version, post, stats, service.swap_history

        pre, version, post, stats, swaps = run(scenario())
        assert version == 2
        assert {r.package_version for r in pre} == {1}
        assert {r.package_version for r in post} == {2}
        assert swaps == [(None, 1), (1, 2)]
        for shard in stats["shards"].values():
            assert shard["active_version"] == 2
            assert shard["versions"] == [1, 2]

    def test_swap_under_concurrent_traffic(self, artifact, package,
                                           experiment, cue_pool):
        """The quiesce barrier holds under open submission: every
        response is attributable to exactly one version and none is
        lost or shed by the swap itself."""
        requests = keyed_requests(cue_pool, 40)

        async def scenario():
            async with ShardedService(artifact, config=FLEET) as service:
                async def one(r):
                    return await service.submit(r.cues, key=r.stream_key,
                                                wait=True)

                first = [asyncio.ensure_future(one(r))
                         for r in requests[:20]]
                swap = asyncio.ensure_future(service.publish_and_activate(
                    package, classifier=experiment.classifier))
                second = [asyncio.ensure_future(one(r))
                          for r in requests[20:]]
                responses = await asyncio.gather(*(first + second))
                await swap
                return responses

        responses = run(scenario())
        assert len(responses) == 40
        assert not any(r.shed for r in responses)
        versions = {r.package_version for r in responses}
        assert versions <= {1, 2} and versions

    def test_per_shard_shedding_preserved(self, artifact, cue_pool):
        """ε load-shedding keeps working inside each shard: open-loop
        overload past the per-shard admission bound sheds honestly."""
        requests = keyed_requests(cue_pool, 40, n_streams=1)
        config = ShardingConfig(n_shards=2, serving=ServingConfig(
            queue_capacity=2, max_batch=64, deadline_s=0.2))

        async def scenario():
            async with ShardedService(artifact, config=config) as service:
                futures = [await service._submit_future(
                    r.cues, class_index=None, request_id=r.request_id,
                    wait=False, key=r.stream_key) for r in requests]
                responses = await asyncio.gather(*futures)
                return responses, service.n_shed

        responses, n_shed = run(scenario())
        shed = [r for r in responses if r.shed]
        assert n_shed == len(shed) > 0
        for r in shed:
            assert r.is_error_state
            assert r.package_version is None

    def test_drain_is_idempotent_and_counted_once(self, artifact,
                                                  cue_pool):
        requests = keyed_requests(cue_pool, 6)

        async def scenario():
            service = ShardedService(artifact, config=FLEET)
            async with service:
                await service.serve_stream(requests)
                await service.drain()
                await service.drain()
            with pytest.raises(ServiceClosedError):
                await service.submit(requests[0].cues)
            return service

        with obs.observed(fresh=True) as (metrics, _):
            service = run(scenario())
            counters = metrics.snapshot()["counters"]
        assert counters["serving.sharding.drains_total"] == 1
        assert counters["serving.sharding.routed_total"] == 6
        assert service.n_completed == 6
        assert service.in_flight == 0

    def test_validation_mirrors_single_process(self, artifact, cue_pool):
        async def scenario(cues):
            async with ShardedService(artifact, config=FLEET) as service:
                await service.submit(cues)

        with pytest.raises(ConfigurationError, match="cues"):
            run(scenario(np.ones(2)))
