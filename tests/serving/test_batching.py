"""Micro-batch coalescing: flush rules, FIFO order, deadline bound."""

import asyncio
import time

import pytest

from repro.exceptions import ConfigurationError
from repro.serving import BatchingConfig, collect_batch, extend_batch


def run(coro):
    return asyncio.run(coro)


class TestBatchingConfig:
    def test_defaults(self):
        config = BatchingConfig()
        assert config.max_batch == 32
        assert config.deadline_s == pytest.approx(0.002)

    @pytest.mark.parametrize("kwargs", [{"max_batch": 0},
                                        {"deadline_s": -0.1}])
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            BatchingConfig(**kwargs)


class TestCollectBatch:
    def test_takes_everything_already_queued(self):
        async def scenario():
            queue = asyncio.Queue()
            for k in range(5):
                queue.put_nowait(k)
            return await collect_batch(
                queue, BatchingConfig(max_batch=32, deadline_s=0.0))

        assert run(scenario()) == [0, 1, 2, 3, 4]

    def test_max_batch_caps_the_flush(self):
        async def scenario():
            queue = asyncio.Queue()
            for k in range(10):
                queue.put_nowait(k)
            return await collect_batch(
                queue, BatchingConfig(max_batch=4, deadline_s=0.0))

        batch = run(scenario())
        assert batch == [0, 1, 2, 3]

    def test_preserves_fifo_order(self):
        async def scenario():
            queue = asyncio.Queue()
            config = BatchingConfig(max_batch=8, deadline_s=0.05)

            async def producer():
                for k in range(8):
                    await queue.put(k)
                    await asyncio.sleep(0.001)

            task = asyncio.get_running_loop().create_task(producer())
            batch = await collect_batch(queue, config)
            await task
            return batch

        assert run(scenario()) == list(range(8))

    def test_blocks_for_the_first_item(self):
        async def scenario():
            queue = asyncio.Queue()

            async def late_producer():
                await asyncio.sleep(0.02)
                await queue.put("late")

            task = asyncio.get_running_loop().create_task(late_producer())
            batch = await collect_batch(
                queue, BatchingConfig(max_batch=4, deadline_s=0.0))
            await task
            return batch

        assert run(scenario()) == ["late"]

    def test_deadline_bounds_the_wait(self):
        async def scenario():
            queue = asyncio.Queue()
            queue.put_nowait("only")
            start = time.perf_counter()
            batch = await collect_batch(
                queue, BatchingConfig(max_batch=32, deadline_s=0.02))
            return batch, time.perf_counter() - start

        batch, elapsed = run(scenario())
        assert batch == ["only"]
        # One lonely item: we waited roughly one deadline, not forever.
        assert elapsed < 0.5


class TestExtendBatch:
    def test_extends_in_place(self):
        async def scenario():
            queue = asyncio.Queue()
            queue.put_nowait("b")
            queue.put_nowait("c")
            items = ["a"]
            out = await extend_batch(
                queue, BatchingConfig(max_batch=3, deadline_s=0.0), items)
            return out, items

        out, items = run(scenario())
        assert out is items
        assert items == ["a", "b", "c"]

    def test_full_seed_skips_the_queue(self):
        async def scenario():
            queue = asyncio.Queue()
            queue.put_nowait("never")
            items = ["a", "b"]
            await extend_batch(
                queue, BatchingConfig(max_batch=2, deadline_s=0.0), items)
            return items, queue.qsize()

        items, remaining = run(scenario())
        assert items == ["a", "b"]
        assert remaining == 1
