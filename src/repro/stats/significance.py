"""Significance testing for reproduction claims.

"The CQM improves accuracy" is a comparison of paired observations on the
same windows — it deserves a p-value, not just a point difference.  This
module provides permutation tests for paired accuracy differences and for
AUC differences, plus a sign-flip test for per-seed metric deltas.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional

import numpy as np

from ..exceptions import CalibrationError, ConfigurationError
from .metrics import auc


@dataclasses.dataclass(frozen=True)
class PermutationResult:
    """Outcome of a permutation test."""

    observed: float
    p_value: float
    n_permutations: int
    greater_is_better: bool

    @property
    def significant(self) -> bool:
        """Conventional alpha = 0.05 verdict."""
        return self.p_value < 0.05


def paired_permutation_test(a: np.ndarray, b: np.ndarray,
                            statistic: Optional[
                                Callable[[np.ndarray], float]] = None,
                            n_permutations: int = 5000,
                            seed: Optional[int] = 0) -> PermutationResult:
    """Paired sign-flip permutation test on ``a - b``.

    Tests the one-sided hypothesis ``mean(statistic(a - b)) > 0`` by
    randomly flipping the sign of each paired difference.  *statistic*
    defaults to the mean.
    """
    a = np.asarray(a, dtype=float).ravel()
    b = np.asarray(b, dtype=float).ravel()
    if a.shape != b.shape:
        raise ConfigurationError("paired samples must align")
    if a.size < 2:
        raise CalibrationError("need >= 2 pairs")
    if n_permutations < 100:
        raise ConfigurationError(
            f"n_permutations must be >= 100, got {n_permutations}")
    stat = statistic if statistic is not None else (
        lambda d: float(np.mean(d)))
    diff = a - b
    observed = stat(diff)
    rng = np.random.default_rng(seed)
    count = 0
    for _ in range(n_permutations):
        signs = rng.choice([-1.0, 1.0], size=diff.size)
        if stat(diff * signs) >= observed:
            count += 1
    # Add-one smoothing keeps p strictly positive.
    p = (count + 1) / (n_permutations + 1)
    return PermutationResult(observed=float(observed), p_value=float(p),
                             n_permutations=n_permutations,
                             greater_is_better=True)


def auc_permutation_test(scores_a: np.ndarray, scores_b: np.ndarray,
                         positive: np.ndarray,
                         n_permutations: int = 2000,
                         seed: Optional[int] = 0) -> PermutationResult:
    """Permutation test for ``AUC(a) > AUC(b)`` on the same labels.

    Under the null the two scorers are exchangeable; each permutation
    swaps the two scores on a random subset of samples.
    """
    scores_a = np.asarray(scores_a, dtype=float).ravel()
    scores_b = np.asarray(scores_b, dtype=float).ravel()
    positive = np.asarray(positive, dtype=bool).ravel()
    if not (scores_a.shape == scores_b.shape == positive.shape):
        raise ConfigurationError("scores and labels must align")
    if n_permutations < 100:
        raise ConfigurationError(
            f"n_permutations must be >= 100, got {n_permutations}")
    observed = auc(scores_a, positive) - auc(scores_b, positive)
    rng = np.random.default_rng(seed)
    count = 0
    n = positive.size
    for _ in range(n_permutations):
        swap = rng.random(n) < 0.5
        perm_a = np.where(swap, scores_b, scores_a)
        perm_b = np.where(swap, scores_a, scores_b)
        if auc(perm_a, positive) - auc(perm_b, positive) >= observed:
            count += 1
    p = (count + 1) / (n_permutations + 1)
    return PermutationResult(observed=float(observed), p_value=float(p),
                             n_permutations=n_permutations,
                             greater_is_better=True)


def mcnemar_exact(only_a_right: int, only_b_right: int) -> float:
    """Exact McNemar p-value (two-sided) from the discordant counts.

    *only_a_right* counts windows system A got right and B wrong;
    *only_b_right* the converse.  Under the null the discordant pairs are
    Binomial(n, 0.5).
    """
    if only_a_right < 0 or only_b_right < 0:
        raise ConfigurationError("discordant counts must be >= 0")
    n = only_a_right + only_b_right
    if n == 0:
        return 1.0
    from math import comb
    k = min(only_a_right, only_b_right)
    tail = sum(comb(n, i) for i in range(0, k + 1)) / (2.0 ** n)
    return float(min(1.0, 2.0 * tail))
