"""Tests for repro.observability.spans — nesting, timing, serialization."""

import threading

import pytest

from repro.exceptions import ConfigurationError
from repro.observability.spans import Span, Tracer


class TestSpanBasics:
    def test_name_required(self):
        with pytest.raises(ConfigurationError):
            Span("")

    def test_walk_and_find(self):
        root = Span("root")
        child = Span("stage")
        grandchild = Span("stage")
        child.children.append(grandchild)
        root.children.append(child)
        assert [s.name for s in root.walk()] == ["root", "stage", "stage"]
        assert len(root.find("stage")) == 2
        assert root.n_descendants == 2

    def test_exclusive_wall(self):
        root = Span("root")
        root.wall_s = 1.0
        for wall in (0.25, 0.5):
            child = Span("c")
            child.wall_s = wall
            root.children.append(child)
        assert root.exclusive_wall_s == pytest.approx(0.25)

    def test_dict_round_trip(self):
        root = Span("root", attrs={"seed": 7})
        root.wall_s, root.cpu_s, root.start_s = 0.5, 0.4, 100.0
        child = Span("child")
        root.children.append(child)
        back = Span.from_dict(root.as_dict())
        assert back.as_dict() == root.as_dict()
        assert back.children[0].name == "child"
        assert back.attrs == {"seed": 7}


class TestTracerNesting:
    def test_lexical_nesting(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                with tracer.span("leaf"):
                    pass
            with tracer.span("sibling"):
                pass
        (root,) = tracer.roots
        assert root.name == "outer"
        assert [c.name for c in root.children] == ["inner", "sibling"]
        assert root.children[0].children[0].name == "leaf"

    def test_timing_monotone(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                sum(range(1000))
        (root,) = tracer.roots
        assert root.wall_s >= root.children[0].wall_s >= 0.0
        assert root.cpu_s >= 0.0

    def test_current(self):
        tracer = Tracer()
        assert tracer.current() is None
        with tracer.span("a") as span:
            assert tracer.current() is span
        assert tracer.current() is None

    def test_attrs_and_error_attr(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("risky", seed=3):
                raise ValueError("boom")
        (root,) = tracer.roots
        assert root.attrs["seed"] == 3
        assert root.attrs["error"] == "ValueError"

    def test_threads_get_separate_roots(self):
        tracer = Tracer()

        def work(tag):
            with tracer.span(f"thread.{tag}"):
                with tracer.span("leaf"):
                    pass

        threads = [threading.Thread(target=work, args=(i,))
                   for i in range(4)]
        with tracer.span("main"):
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        roots = tracer.roots
        # Worker spans never nest under the main thread's span.
        names = sorted(r.name for r in roots)
        assert names == sorted(["main"] + [f"thread.{i}" for i in range(4)])
        main_root = next(r for r in roots if r.name == "main")
        assert main_root.children == []

    def test_adopt_under_active_span(self):
        tracer = Tracer()
        grafted = Span("worker.root")
        with tracer.span("parent"):
            tracer.adopt(grafted)
        (root,) = tracer.roots
        assert root.children == [grafted]

    def test_adopt_as_root(self):
        tracer = Tracer()
        grafted = Span("worker.root")
        tracer.adopt(grafted)
        assert tracer.roots == [grafted]

    def test_clear(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        tracer.clear()
        assert tracer.roots == []
