"""Sensor-node abstraction: sampling, buffering and cue streaming.

Models the Particle Computer node attached to the AwarePen: it samples the
(simulated) accelerometer at a fixed rate, keeps a window buffer, and
emits one cue vector per hop — the on-node half of paper Fig. 4.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ConfigurationError
from ..types import ContextClass
from .accelerometer import ActivityModel, DEFAULT_STYLE, UserStyle, blend
from .cues import AWAREPEN_CUES, CuePipeline
from .signal import ADXL_SENSOR, SensorModel


@dataclasses.dataclass(frozen=True)
class Segment:
    """One scripted activity stretch within a scenario."""

    model: ActivityModel
    duration_s: float
    style: UserStyle = DEFAULT_STYLE

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ConfigurationError(
                f"duration_s must be > 0, got {self.duration_s}")


@dataclasses.dataclass(frozen=True)
class CueWindow:
    """One emitted window: timing, cues and ground truth."""

    start_sample: int
    time_s: float
    cues: np.ndarray
    true_context: ContextClass
    is_transition: bool


class SensorNode:
    """Simulated AwarePen sensor node.

    Parameters
    ----------
    rate_hz:
        Sampling rate of the accelerometer.
    window:
        Window length in samples over which cues are computed.
    hop:
        Hop between consecutive windows in samples.
    cues:
        Cue pipeline (defaults to the paper's per-axis std).
    sensor:
        Imperfection model applied to the ideal motion signal.
    transition_s:
        Crossfade length inserted between consecutive segments; windows
        overlapping a crossfade are flagged ``is_transition``.
    """

    def __init__(self, rate_hz: float = 100.0, window: int = 100,
                 hop: int = 50, cues: CuePipeline = AWAREPEN_CUES,
                 sensor: SensorModel = ADXL_SENSOR,
                 transition_s: float = 0.5) -> None:
        if rate_hz <= 0:
            raise ConfigurationError(f"rate_hz must be > 0, got {rate_hz}")
        if window < 2:
            raise ConfigurationError(f"window must be >= 2, got {window}")
        if hop < 1:
            raise ConfigurationError(f"hop must be >= 1, got {hop}")
        if transition_s < 0:
            raise ConfigurationError(
                f"transition_s must be >= 0, got {transition_s}")
        self.rate_hz = float(rate_hz)
        self.window = int(window)
        self.hop = int(hop)
        self.cues = cues
        self.sensor = sensor
        self.transition_s = float(transition_s)

    # ------------------------------------------------------------------
    def render_scenario(self, segments: Sequence[Segment],
                        rng: np.random.Generator
                        ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Render a scripted scenario into one continuous degraded signal.

        Returns ``(signal, labels, transition_mask)`` where *labels* holds
        the per-sample true class index and *transition_mask* marks samples
        inside an activity crossfade.
        """
        if not segments:
            raise ConfigurationError("scenario needs at least one segment")
        pieces: List[np.ndarray] = []
        labels: List[np.ndarray] = []
        transition: List[np.ndarray] = []
        fade = int(self.transition_s * self.rate_hz)

        previous_tail: Optional[np.ndarray] = None
        for segment in segments:
            n = max(int(segment.duration_s * self.rate_hz), self.window)
            trace = segment.model.generate(n, self.rate_hz, rng,
                                           style=segment.style)
            seg_labels = np.full(n, segment.model.context.index, dtype=int)
            seg_transition = np.zeros(n, dtype=bool)
            if previous_tail is not None and fade > 0:
                k = min(fade, len(previous_tail), n)
                if k > 1:
                    trace[:k] = blend(previous_tail[-k:], trace[:k])
                    seg_transition[:k] = True
            pieces.append(trace)
            labels.append(seg_labels)
            transition.append(seg_transition)
            previous_tail = trace

        ideal = np.vstack(pieces)
        signal = self.sensor.apply(ideal, rng)
        return signal, np.concatenate(labels), np.concatenate(transition)

    def stream(self, segments: Sequence[Segment],
               rng: np.random.Generator,
               classes: Sequence[ContextClass]) -> Iterator[CueWindow]:
        """Emit :class:`CueWindow` objects for a scripted scenario.

        *classes* maps class indices to :class:`ContextClass` objects (the
        per-sample labels produced by the activity models are indices).
        """
        by_index = {c.index: c for c in classes}
        signal, labels, transition = self.render_scenario(segments, rng)
        for start in range(0, signal.shape[0] - self.window + 1, self.hop):
            stop = start + self.window
            window_labels = labels[start:stop]
            majority = int(np.bincount(window_labels).argmax())
            if majority not in by_index:
                raise ConfigurationError(
                    f"no ContextClass registered for index {majority}")
            crosses_boundary = len(np.unique(window_labels)) > 1
            yield CueWindow(
                start_sample=start,
                time_s=start / self.rate_hz,
                cues=self.cues.extract(signal[start:stop]),
                true_context=by_index[majority],
                is_transition=bool(np.any(transition[start:stop])
                                   or crosses_boundary),
            )

    def collect(self, segments: Sequence[Segment],
                rng: np.random.Generator,
                classes: Sequence[ContextClass]) -> List[CueWindow]:
        """Materialize :meth:`stream` into a list."""
        return list(self.stream(segments, rng, classes))
