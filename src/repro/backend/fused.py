"""The fused numpy backend: fewer kernels, fewer temporaries.

Where the default backend preserves the historical operation order bit
for bit, this backend restructures the hot paths around two ideas:

* **Log-space firing.**  The product t-norm ``w_j = prod_i F_ij`` with
  Gaussian memberships is ``exp(-0.5 * sum_i z_ij^2)`` — one ``exp``
  over ``(n, m)`` instead of ``(n, m, d)`` exponentials followed by a
  product reduction.  ``exp(a + b)`` and ``exp(a) * exp(b)`` differ in
  the last ULPs, so the result is *not* bit-identical; ``repro verify
  --backend fused`` gates it at the tolerances documented in
  ``docs/paper_mapping.md``.
* **Matmul-shaped gradients.**  The backward pass collapses the chain
  ``sum_n dl_dw * w * diff / sigma^2`` into two small GEMMs over a
  flattened ``(n, m*d)`` view instead of six ``(n, m, d)``
  temporaries; for the small rule bases the paper's pipeline produces
  (a handful of rules, four inputs) this trades redundant element-wise
  kernel launches for one BLAS call.

Rule consequents deliberately stay on the same einsum as the default
backend: the per-row reduction must remain independent of batch size so
micro-batched serving responses stay bit-identical to the direct
pipeline (the ``serving`` verify stage is exact under every backend).

The membership *API* (:meth:`gaussian_mf_batch`, inherited) also keeps
the element-wise form — only the fused forward/firing path goes through
log space — so the ``membership`` verify stage stays bit-identical and
callers inspecting individual memberships see the textbook values.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .base import WEIGHT_FLOOR
from .numpy_backend import NumpyBackend


class FusedNumpyBackend(NumpyBackend):
    """Aggressively fused numpy kernels (gated tolerance, not bit-exact)."""

    name = "fused"
    bit_identical = False

    def firing_strengths(self, x: np.ndarray, means: np.ndarray,
                         sigmas: np.ndarray
                         ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        z = (x[:, None, :] - means[None, :, :]) / sigmas[None, :, :]
        # One exp over (n, m): w_j = exp(-0.5 * ||z_j||^2).
        w = np.exp(-0.5 * np.einsum("nmd,nmd->nm", z, z))
        wbar, total = self.normalize_firing(w)
        return w, wbar, total

    def premise_gradient_terms(self, x: np.ndarray, means: np.ndarray,
                               sigmas: np.ndarray, w: np.ndarray,
                               f: np.ndarray, total: np.ndarray,
                               y: np.ndarray
                               ) -> Tuple[np.ndarray, np.ndarray, float]:
        n, d = x.shape
        m = means.shape[0]
        total = np.maximum(total, WEIGHT_FLOOR)
        s = np.einsum("nm,nm->n", w, f) / total
        err = s - y
        # g = dL/dw * w, the shared factor of both parameter gradients.
        g = (err / total)[:, None] * (f - s[:, None]) * w   # (n, m)

        diff = (x[:, None, :] - means[None, :, :]).reshape(n, m * d)
        # Two GEMMs compute sum_n g[n, j] * diff[n, j, :] (and diff^2)
        # for every rule pair; only the diagonal blocks are the wanted
        # per-rule reductions — the m^2 overcompute is negligible for
        # the small rule bases this pipeline produces and far cheaper
        # than materializing (n, m, d) products.
        rows = np.arange(m)
        gd = (g.T @ diff).reshape(m, m, d)[rows, rows]          # (m, d)
        gd2 = (g.T @ (diff * diff)).reshape(m, m, d)[rows, rows]
        inv_sig_sq = 1.0 / (sigmas * sigmas)
        d_means = gd * inv_sig_sq / n
        d_sigmas = gd2 * (inv_sig_sq / sigmas) / n
        loss = float(0.5 * np.mean(err * err))
        return d_means, d_sigmas, loss
