"""Legacy setup shim: enables `python setup.py develop` in offline
environments lacking the `wheel` package (configuration lives in
pyproject.toml)."""
from setuptools import setup

setup()
