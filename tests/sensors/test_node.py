"""Tests for repro.sensors.node — scenario rendering and streaming."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.sensors.accelerometer import (ACTIVITY_MODELS, AWAREPEN_CLASSES,
                                         LYING, PLAYING, WRITING)
from repro.sensors.node import CueWindow, Segment, SensorNode


def two_segment_scenario():
    return [Segment(ACTIVITY_MODELS["lying"], duration_s=3.0),
            Segment(ACTIVITY_MODELS["playing"], duration_s=3.0)]


class TestSegment:
    def test_duration_positive(self):
        with pytest.raises(ConfigurationError):
            Segment(ACTIVITY_MODELS["lying"], duration_s=0.0)


class TestNodeValidation:
    def test_rate_positive(self):
        with pytest.raises(ConfigurationError):
            SensorNode(rate_hz=0.0)

    def test_window_min(self):
        with pytest.raises(ConfigurationError):
            SensorNode(window=1)

    def test_hop_min(self):
        with pytest.raises(ConfigurationError):
            SensorNode(hop=0)

    def test_transition_nonnegative(self):
        with pytest.raises(ConfigurationError):
            SensorNode(transition_s=-1.0)

    def test_empty_scenario(self, rng):
        with pytest.raises(ConfigurationError):
            SensorNode().render_scenario([], rng)


class TestRenderScenario:
    def test_shapes(self, rng):
        node = SensorNode(rate_hz=100.0)
        signal, labels, transition = node.render_scenario(
            two_segment_scenario(), rng)
        assert signal.shape == (600, 3)
        assert labels.shape == (600,)
        assert transition.shape == (600,)

    def test_labels_follow_segments(self, rng):
        node = SensorNode(rate_hz=100.0, transition_s=0.0)
        _, labels, _ = node.render_scenario(two_segment_scenario(), rng)
        assert set(labels[:300]) == {LYING.index}
        assert set(labels[300:]) == {PLAYING.index}

    def test_transition_marked(self, rng):
        node = SensorNode(rate_hz=100.0, transition_s=0.5)
        _, _, transition = node.render_scenario(two_segment_scenario(), rng)
        # The crossfade lives at the start of the second segment.
        assert np.any(transition[300:350])
        assert not np.any(transition[:300])

    def test_short_segment_padded_to_window(self, rng):
        node = SensorNode(rate_hz=100.0, window=100)
        segments = [Segment(ACTIVITY_MODELS["lying"], duration_s=0.1)]
        signal, _, _ = node.render_scenario(segments, rng)
        assert signal.shape[0] >= 100


class TestStream:
    def test_window_objects(self, rng):
        node = SensorNode(rate_hz=100.0, window=100, hop=50)
        windows = node.collect(two_segment_scenario(), rng, AWAREPEN_CLASSES)
        assert len(windows) == (600 - 100) // 50 + 1
        assert all(isinstance(w, CueWindow) for w in windows)
        assert all(w.cues.shape == (3,) for w in windows)

    def test_majority_labels(self, rng):
        node = SensorNode(rate_hz=100.0, window=100, hop=50,
                          transition_s=0.0)
        windows = node.collect(two_segment_scenario(), rng, AWAREPEN_CLASSES)
        assert windows[0].true_context.index == LYING.index
        assert windows[-1].true_context.index == PLAYING.index

    def test_boundary_window_flagged_as_transition(self, rng):
        node = SensorNode(rate_hz=100.0, window=100, hop=50,
                          transition_s=0.0)
        windows = node.collect(two_segment_scenario(), rng, AWAREPEN_CLASSES)
        boundary = [w for w in windows if 200 < w.start_sample < 300]
        assert any(w.is_transition for w in boundary)

    def test_time_stamps(self, rng):
        node = SensorNode(rate_hz=100.0, window=100, hop=50)
        windows = node.collect(two_segment_scenario(), rng, AWAREPEN_CLASSES)
        assert windows[0].time_s == 0.0
        assert windows[1].time_s == pytest.approx(0.5)

    def test_missing_class_registration(self, rng):
        node = SensorNode()
        with pytest.raises(ConfigurationError):
            node.collect(two_segment_scenario(), rng, (WRITING,))

    def test_cue_separation_between_activities(self, rng):
        # Windowed std must separate lying from playing clearly.
        node = SensorNode(rate_hz=100.0, window=100, hop=100,
                          transition_s=0.0)
        windows = node.collect(two_segment_scenario(), rng, AWAREPEN_CLASSES)
        lying_cues = np.array([w.cues for w in windows
                               if w.true_context.index == LYING.index])
        playing_cues = np.array([w.cues for w in windows
                                 if w.true_context.index == PLAYING.index])
        assert lying_cues.mean() < 0.1
        assert playing_cues.mean() > 0.3
