"""Interconnection of context recognition and quality measure (paper 2.1.1).

"Each time the contextual classification gets a new input ``v_C``, the
classification result is combined with this vector in a new vector
``v_Q``" — :class:`QualityAugmentedClassifier` performs exactly that
plumbing: it runs the black box, forms ``v_Q = (v_C, c)``, evaluates the
quality FIS and returns a :class:`QualifiedClassification`.

The black box is never introspected; only its emitted class identifier is
used.  This is what makes the CQM "applicable as an add-on to any context
recognition system".
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..classifiers.base import ContextClassifier
from ..types import QualifiedClassification, as_cue_matrix
from .quality import QualityMeasure


class QualityAugmentedClassifier:
    """A black-box classifier wrapped with its Context Quality Measure."""

    def __init__(self, classifier: ContextClassifier,
                 quality: QualityMeasure) -> None:
        self.classifier = classifier
        self.quality = quality

    def classify(self, cues: np.ndarray) -> QualifiedClassification:
        """Classify one cue vector and attach its CQM."""
        classification = self.classifier.classify(cues)
        return self.quality.qualify(classification)

    def classify_batch(self, x: np.ndarray) -> List[QualifiedClassification]:
        """Classify a batch of cue vectors with CQMs."""
        x = as_cue_matrix(x)
        classifications = self.classifier.classify_batch(x)
        return self.quality.qualify_batch(classifications)

    def qualities(self, x: np.ndarray) -> np.ndarray:
        """Only the quality values for a batch (NaN marks epsilon)."""
        x = as_cue_matrix(x)
        predicted = self.classifier.predict_indices(x)
        return self.quality.measure_batch(x, predicted.astype(float))

    @property
    def classes(self):
        """The underlying classifier's context classes."""
        return self.classifier.classes
