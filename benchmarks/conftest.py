"""Shared fixtures and paper-vs-measured reporting for the benches.

Every bench records comparison rows through the ``report`` fixture; a
``pytest_terminal_summary`` hook prints the collected table after the
pytest-benchmark output, so the paper-reproduction numbers are visible
even with output capturing enabled.
"""

from __future__ import annotations

from typing import List, Optional

import pytest

from repro.core import ConstructionConfig
from repro.datasets import make_awarepen_material
from repro.experiment import run_awarepen_experiment

_ROWS: List[tuple] = []


class PaperReport:
    """Collector for experiment-id / metric / paper / measured rows."""

    def row(self, experiment_id: str, metric: str, paper: str,
            measured: object, note: str = "") -> None:
        """Record one comparison row for the end-of-run table."""
        if isinstance(measured, float):
            measured = f"{measured:.4f}"
        _ROWS.append((experiment_id, metric, paper, str(measured), note))

    def series(self, experiment_id: str, name: str,
               values, fmt: str = "{:.3f}") -> None:
        """Record a whole data series (e.g. Fig. 5's 24 q values)."""
        rendered = ", ".join(
            "eps" if v is None or v != v else fmt.format(v) for v in values)
        _ROWS.append((experiment_id, f"series:{name}", "-", rendered, ""))


@pytest.fixture(scope="session")
def report() -> PaperReport:
    return PaperReport()


@pytest.fixture(scope="session")
def material():
    """The paper's data material (same seed as the test suite)."""
    return make_awarepen_material(seed=7)


@pytest.fixture(scope="session")
def experiment(material):
    """End-to-end pipeline result shared by all benches."""
    return run_awarepen_experiment(material=material,
                                   config=ConstructionConfig())


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _ROWS:
        return
    tr = terminalreporter
    tr.ensure_newline()
    tr.section("paper vs measured (CQM reproduction)", sep="=")
    width_id = max(len(r[0]) for r in _ROWS)
    width_metric = max(len(r[1]) for r in _ROWS)
    width_paper = max(len(r[2]) for r in _ROWS)
    for exp_id, metric, paper, measured, note in _ROWS:
        line = (f"{exp_id:<{width_id}}  {metric:<{width_metric}}  "
                f"paper={paper:<{width_paper}}  measured={measured}")
        if note:
            line += f"  ({note})"
        tr.write_line(line)
