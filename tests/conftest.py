"""Shared fixtures for the test suite.

Expensive artifacts (dataset material, the end-to-end experiment) are
session-scoped so the integration-heavy tests do not regenerate them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ConstructionConfig
from repro.datasets import make_awarepen_material
from repro.experiment import run_awarepen_experiment
from repro.types import ContextClass


@pytest.fixture(scope="session")
def material():
    """The paper's full data material (deterministic, seed 7)."""
    return make_awarepen_material(seed=7)


@pytest.fixture(scope="session")
def experiment(material):
    """End-to-end experiment result shared across tests."""
    return run_awarepen_experiment(material=material,
                                   config=ConstructionConfig())


@pytest.fixture
def rng():
    """Fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def three_classes():
    """A generic three-class context set."""
    return (ContextClass(0, "alpha"),
            ContextClass(1, "beta"),
            ContextClass(2, "gamma"))


@pytest.fixture
def blob_data(rng):
    """Three well-separated Gaussian blobs in 3-D with labels."""
    centers = np.array([[0.0, 0.0, 0.0],
                        [3.0, 3.0, 0.0],
                        [0.0, 3.0, 3.0]])
    xs, ys = [], []
    for label, center in enumerate(centers):
        xs.append(rng.normal(center, 0.3, size=(40, 3)))
        ys.append(np.full(40, label))
    return np.vstack(xs), np.concatenate(ys)
