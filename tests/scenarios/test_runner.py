"""Tests for the scenario runner and trace capture."""

import numpy as np
import pytest

from repro.appliances.office import AwareOffice
from repro.core.filtering import QualityFilter
from repro.exceptions import ScenarioError
from repro.scenarios import registry
from repro.scenarios.activities import FAMILY_MODELS
from repro.scenarios.runner import (capture_scenario_trace, run_scenario,
                                    run_scenario_on)
from repro.scenarios.spec import (ApplianceSpec, ScenarioSpec,
                                  SegmentSpec, SensorSpec)
from repro.verify.golden import diff_traces


class TestAwareOfficeEquivalence:
    def test_baseline_matches_hardcoded_office(self, experiment,
                                               scenario_runs):
        """The declarative awarepen-baseline reproduces the imperative
        AwareOffice run bit-for-bit: same windows, same decisions, same
        camera gating — the zoo re-expresses the paper scenario, it does
        not approximate it."""
        spec = registry.get("awarepen-baseline")
        sensor = spec.sensors[0]
        segments = sensor.build_segments(spec.resolved_styles(),
                                         FAMILY_MODELS["pen"])
        office = AwareOffice(
            experiment.augmented,
            gate=QualityFilter(threshold=experiment.threshold),
            node=sensor.build_node())
        report = office.run_scenario(segments,
                                     np.random.default_rng([7, 0]))

        result = scenario_runs("awarepen-baseline")
        camera = result.cameras[0]
        assert report.n_windows == result.n_windows
        assert report.correct_decisions == result.n_correct
        assert report.wrong_decisions == result.n_wrong
        assert report.accepted_events == camera.accepted_events
        assert report.rejected_events == camera.rejected_events
        assert report.n_snapshots == camera.n_snapshots

    def test_gate_rejects_something_ungated_accepts(self, scenario_runs):
        gated = scenario_runs("awarepen-baseline").cameras[0]
        ungated = scenario_runs("awarepen-ungated").cameras[0]
        assert gated.rejected_events > 0
        assert ungated.rejected_events == 0
        assert (ungated.accepted_events
                == gated.accepted_events + gated.rejected_events)


class TestDeterminism:
    def test_rerun_is_bit_identical(self, scenario_runs):
        cached = capture_scenario_trace(scenario_runs("awarepen-ungated"))
        fresh = capture_scenario_trace(
            run_scenario(registry.get("awarepen-ungated"), seed=7))
        diff = diff_traces(fresh, cached, rtol=0.0, atol=0.0)
        assert diff.passed, diff.to_text()
        assert not diff.hash_mismatches

    def test_seed_changes_the_stream(self, scenario_runs):
        seed7 = scenario_runs("faults-overlap-composed")
        seed8 = run_scenario(registry.get("faults-overlap-composed"),
                             seed=8)
        assert not np.array_equal(seed7.events[0].qualities,
                                  seed8.events[0].qualities)


class TestRunnerSurface:
    def test_events_follow_spec_appliance_order(self, scenario_runs):
        spec = registry.get("awareoffice-situations")
        result = scenario_runs("awareoffice-situations")
        sensing = [a.name for a in spec.sensing_appliances()]
        assert [r.name for r in result.events] == sensing
        assert [s.name for s in result.situations] == ["situations"]

    def test_situation_report_is_consistent(self, scenario_runs):
        report = scenario_runs("awareoffice-situations").situations[0]
        assert report.n_states == report.confidences.size
        assert report.n_states > 0

    def test_multipen_merges_both_streams(self, scenario_runs):
        result = scenario_runs("awareoffice-multipen")
        assert len(result.events) == 2
        assert len(result.cameras) == 2
        assert result.n_windows == sum(r.times.size
                                       for r in result.events)

    def test_invalid_spec_rejected_before_running(self):
        bad = ScenarioSpec(
            name="bad",
            sensors=(SensorSpec(
                name="s", family="pen",
                segments=(SegmentSpec(activity="writing",
                                      duration_s=1.0),)),),
            appliances=(ApplianceSpec(name="pen", kind="pen",
                                      sensor="ghost"),))
        with pytest.raises(ScenarioError, match="dangling"):
            run_scenario(bad, seed=7)

    def test_unknown_transport(self):
        spec = registry.get("awarepen-ungated")
        with pytest.raises(ScenarioError, match="transport 'carrier'"):
            run_scenario_on(spec, transport="carrier")

    def test_broker_transport_persists_a_log(self, tmp_path):
        spec = registry.get("faults-overlap-composed")
        result = run_scenario_on(spec, seed=7, transport="broker",
                                 log_dir=tmp_path)
        assert result.n_windows > 0
        assert any(tmp_path.rglob("*"))


class TestTraceCapture:
    def test_trace_covers_every_report(self, scenario_runs):
        result = scenario_runs("awareoffice-situations")
        trace = capture_scenario_trace(result)
        stages = [s.stage for s in trace.stages]
        for record in result.events:
            assert f"events:{record.name}" in stages
        for sit in result.situations:
            assert f"situation:{sit.name}" in stages
        assert stages[-1] == "summary"

    def test_trace_roundtrips_through_json(self, tmp_path, scenario_runs):
        from repro.verify.golden import GoldenTrace

        trace = capture_scenario_trace(scenario_runs("awarepen-ungated"))
        path = tmp_path / "trace.json"
        trace.save(path)
        loaded = GoldenTrace.load(path)
        diff = diff_traces(trace, loaded, rtol=0.0, atol=0.0)
        assert diff.passed and not diff.hash_mismatches
