"""Grid-partition structure identification (genfis1 / Jang 1993).

Jang's original ANFIS identifies structure by *grid partition*: each input
dimension gets a fixed number of evenly spaced membership functions and
every combination forms one rule.  The paper replaces this with
subtractive clustering because the grid explodes combinatorially
(``mfs_per_input ** n_inputs`` rules) and ignores the data distribution —
this module exists to make that trade-off measurable (see the
``structure`` ablation bench).
"""

from __future__ import annotations

import itertools
from typing import Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ConfigurationError, DimensionError, TrainingError
from .tsk import TSKSystem

#: Hard cap on the rule count a grid partition may produce.
MAX_GRID_RULES = 4096


def grid_membership_centers(low: float, high: float,
                            n_mfs: int) -> np.ndarray:
    """Evenly spaced Gaussian centers covering ``[low, high]``."""
    if n_mfs < 1:
        raise ConfigurationError(f"n_mfs must be >= 1, got {n_mfs}")
    if not low < high:
        raise ConfigurationError(
            f"need low < high, got ({low}, {high})")
    if n_mfs == 1:
        return np.array([0.5 * (low + high)])
    return np.linspace(low, high, n_mfs)


def grid_partition_fis(x: np.ndarray, n_mfs: int = 2, order: int = 1,
                       overlap: float = 0.5,
                       bounds: Optional[Sequence[Tuple[float, float]]] = None
                       ) -> TSKSystem:
    """Build a grid-partition TSK system over the data range of *x*.

    Parameters
    ----------
    x:
        Training inputs ``(n_samples, d)``; only used for the per-dimension
        ranges unless *bounds* is given.
    n_mfs:
        Membership functions per input dimension.
    order:
        Consequent order (0 or 1); coefficients start at zero — fit them
        with :func:`repro.anfis.lse.fit_consequents`.
    overlap:
        Gaussian width as a fraction of the spacing between adjacent
        centers (0.5 gives the classic half-overlapping partition).
    bounds:
        Optional explicit ``(low, high)`` per dimension.

    Raises
    ------
    repro.exceptions.TrainingError
        When the grid would exceed :data:`MAX_GRID_RULES` rules — the
        combinatorial explosion that motivates subtractive clustering.
    """
    x = np.asarray(x, dtype=float)
    if x.ndim != 2:
        raise DimensionError(f"x must be 2-D, got shape {x.shape}")
    if overlap <= 0:
        raise ConfigurationError(f"overlap must be > 0, got {overlap}")
    n_inputs = x.shape[1]
    n_rules = n_mfs ** n_inputs
    if n_rules > MAX_GRID_RULES:
        raise TrainingError(
            f"grid partition of {n_mfs}^{n_inputs} = {n_rules} rules "
            f"exceeds the cap of {MAX_GRID_RULES} — this is the "
            "combinatorial explosion the paper avoids via subtractive "
            "clustering")

    if bounds is not None:
        if len(bounds) != n_inputs:
            raise ConfigurationError(
                f"bounds must have {n_inputs} entries, got {len(bounds)}")
        lows = np.array([b[0] for b in bounds], dtype=float)
        highs = np.array([b[1] for b in bounds], dtype=float)
    else:
        lows = np.min(x, axis=0)
        highs = np.max(x, axis=0)
    spans = highs - lows
    degenerate = spans <= 0
    if np.any(degenerate):
        # Constant columns get a token span so the grid stays valid.
        lows = np.where(degenerate, lows - 0.5, lows)
        highs = np.where(degenerate, highs + 0.5, highs)
        spans = highs - lows

    per_dim_centers = [grid_membership_centers(lows[i], highs[i], n_mfs)
                       for i in range(n_inputs)]
    spacing = np.where(n_mfs > 1, spans / max(n_mfs - 1, 1), spans)
    sigmas_per_dim = np.maximum(overlap * spacing, 1e-4)

    means = np.array(list(itertools.product(*per_dim_centers)))
    sigmas = np.tile(sigmas_per_dim, (n_rules, 1))
    coefficients = np.zeros((n_rules, n_inputs + 1))
    return TSKSystem(means=means, sigmas=sigmas,
                     coefficients=coefficients, order=order)


def grid_rule_count(n_inputs: int, n_mfs: int) -> int:
    """The rule count a grid partition implies (for cost reporting)."""
    if n_inputs < 1 or n_mfs < 1:
        raise ConfigurationError("n_inputs and n_mfs must be >= 1")
    return n_mfs ** n_inputs
