"""Tests for repro.fuzzy.sets — fuzzy sets and linguistic variables."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.fuzzy.membership import GaussianMF, TriangularMF
from repro.fuzzy.sets import (CompositeFuzzySet, FuzzySet, LinguisticVariable)


@pytest.fixture
def low_high():
    low = FuzzySet("low", TriangularMF(a=0.0, b=0.0, c=0.5))
    high = FuzzySet("high", TriangularMF(a=0.5, b=1.0, c=1.0))
    return low, high


class TestFuzzySet:
    def test_callable(self, low_high):
        low, _ = low_high
        assert low(0.0) == pytest.approx(1.0)
        assert low(0.25) == pytest.approx(0.5)

    def test_alpha_cut(self, low_high):
        low, _ = low_high
        x = np.linspace(0, 1, 11)
        mask = low.alpha_cut(x, 0.5)
        assert mask[0]          # x = 0.0, membership 1.0
        assert not mask[-1]     # x = 1.0, membership 0.0

    def test_alpha_cut_validates_alpha(self, low_high):
        low, _ = low_high
        with pytest.raises(ConfigurationError):
            low.alpha_cut(np.array([0.0]), 1.5)

    def test_union_is_pointwise_max(self, low_high):
        low, high = low_high
        u = low.union(high)
        x = 0.25
        assert u(x) == pytest.approx(max(float(low(x)), float(high(x))))

    def test_intersection_is_pointwise_min(self, low_high):
        low, high = low_high
        i = low.intersection(high)
        x = 0.5
        assert i(x) == pytest.approx(min(float(low(x)), float(high(x))))

    def test_complement(self, low_high):
        low, _ = low_high
        c = low.complement()
        assert c(0.0) == pytest.approx(0.0)
        assert c.name == "NOT low"


class TestCompositeFuzzySet:
    def test_rejects_bad_op(self, low_high):
        with pytest.raises(ConfigurationError):
            CompositeFuzzySet("x", list(low_high), op="xor")

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            CompositeFuzzySet("x", [], op="and")


class TestLinguisticVariable:
    def test_add_and_get_terms(self):
        var = LinguisticVariable("std_x", (0.0, 2.0))
        var.add_term("low", GaussianMF(mean=0.0, sigma=0.2))
        var.add_term("high", GaussianMF(mean=1.5, sigma=0.3))
        assert len(var) == 2
        assert var["low"](0.0) == pytest.approx(1.0)
        assert var.term_names == ["low", "high"]

    def test_duplicate_term_rejected(self):
        var = LinguisticVariable("v", (0.0, 1.0))
        var.add_term("low", GaussianMF(mean=0.0, sigma=0.2))
        with pytest.raises(ConfigurationError):
            var.add_term("low", GaussianMF(mean=0.5, sigma=0.2))

    def test_missing_term_error_lists_options(self):
        var = LinguisticVariable("v", (0.0, 1.0))
        var.add_term("low", GaussianMF(mean=0.0, sigma=0.2))
        with pytest.raises(KeyError, match="low"):
            var["missing"]

    def test_invalid_universe(self):
        with pytest.raises(ConfigurationError):
            LinguisticVariable("v", (1.0, 1.0))

    def test_fuzzify(self):
        var = LinguisticVariable("v", (0.0, 1.0), terms={
            "low": GaussianMF(mean=0.0, sigma=0.3),
            "high": GaussianMF(mean=1.0, sigma=0.3),
        })
        memberships = var.fuzzify(0.0)
        assert memberships["low"] == pytest.approx(1.0)
        assert memberships["high"] < 0.1

    def test_grid(self):
        var = LinguisticVariable("v", (0.0, 2.0))
        g = var.grid(5)
        np.testing.assert_allclose(g, [0.0, 0.5, 1.0, 1.5, 2.0])

    def test_grid_resolution_validated(self):
        var = LinguisticVariable("v", (0.0, 1.0))
        with pytest.raises(ConfigurationError):
            var.grid(1)

    def test_iteration(self):
        var = LinguisticVariable("v", (0.0, 1.0), terms={
            "a": GaussianMF(mean=0.0, sigma=0.1),
            "b": GaussianMF(mean=1.0, sigma=0.1),
        })
        assert sorted(var) == ["a", "b"]
