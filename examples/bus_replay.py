#!/usr/bin/env python3
"""Distributed bus, persistent log, and bit-identical replay.

The in-process :class:`EventBus` generalises to a partitioned broker
(:mod:`repro.bus`) with an append-only event log.  This example streams
the scripted pen workload through a broker over a lossy channel that
drops, duplicates, and delays frames, shows the at-least-once machinery
converging anyway (redeliveries + consumer dedupe), and then replays the
persisted log to prove the run is reconstructible bit-for-bit.

Run:  python examples/bus_replay.py
"""

import tempfile
from pathlib import Path

from repro.bus import BrokerCore, BusClient, BusConfig, InProcLink
from repro.bus.drill import scripted_pen_events
from repro.bus.faults import (FaultyChannel, FrameFault,
                              FrameFaultSchedule, ScheduledFrameFault)
from repro.bus.replay import dedupe_events, read_log_events

N_EVENTS = 120
SEED = 7


def main() -> None:
    events = scripted_pen_events(SEED, N_EVENTS)
    with tempfile.TemporaryDirectory() as tmp:
        log_dir = Path(tmp) / "bus-log"
        schedule = FrameFaultSchedule((
            ScheduledFrameFault(FrameFault("drop", every=9)),
            ScheduledFrameFault(FrameFault("duplicate", every=7)),
            ScheduledFrameFault(FrameFault("delay", every=11)),
        ))
        channel = {}

        def lossy(send):
            channel["c"] = FaultyChannel(send, schedule)
            return channel["c"]

        config = BusConfig(n_partitions=2, fsync_every=8)
        received = []
        with BrokerCore(log_dir, config) as core:
            client = BusClient(InProcLink(core, wrap_send=lossy),
                               from_start=True)
            client.subscribe("context.*", received.append)
            for event in events:
                client.publish(event)
            # Drive redelivery ticks until every dropped frame is back.
            redelivered = 0
            while len(received) < N_EVENTS:
                redelivered += core.tick()
            channel["c"].flush()
            counters = channel["c"].counters()
            core.log.sync()
            logged = read_log_events(log_dir)

        print(f"published {N_EVENTS} pen events through a lossy channel")
        print(f"faults injected: {counters['dropped']} dropped, "
              f"{counters['duplicated']} duplicated, "
              f"{counters['delayed']} delayed")
        print(f"broker redelivered {redelivered} frames; consumer "
              f"dedupe dropped {client.dedupe_dropped} duplicates")
        print(f"delivered {len(received)} events, in order: "
              f"{[e.seq for e in received] == list(range(1, N_EVENTS + 1))}")

        replayed = dedupe_events(logged)
        print(f"\nevent log holds {len(logged)} records "
              f"-> {len(replayed)} unique events after dedupe")
        identical = replayed == events
        print(f"replayed events bit-identical to the published run: "
              f"{identical}")
        if not identical:
            raise SystemExit("replay diverged")


if __name__ == "__main__":
    main()
