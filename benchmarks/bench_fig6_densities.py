"""Experiment ``fig6`` — Gaussian densities and the optimal threshold.

Paper Fig. 6 shows the MLE-fitted right/wrong densities, the threshold
s = 0.81 at their intersection, and the hatched median cuts.  This bench
regenerates the densities, solves for the intersection, and samples both
curves the way the figure plots them.
"""

import numpy as np

from repro.core.calibration import calibrate


def test_fig6_densities_and_threshold(benchmark, experiment, report):
    material = experiment.material
    augmented = experiment.augmented

    calibration = benchmark(calibrate, augmented, material.analysis)

    est = calibration.estimates
    report.row("fig6", "mu_right", "high (grey curve)", est.right.mu)
    report.row("fig6", "sigma_right", "narrow", est.right.sigma)
    report.row("fig6", "mu_wrong", "low (black curve)", est.wrong.mu)
    report.row("fig6", "sigma_wrong", "broad", est.wrong.sigma)
    report.row("fig6", "threshold s", "0.81", calibration.s,
               f"method={calibration.threshold.method}")

    # The density curves of the figure, sampled on [0, 1].
    grid = np.linspace(0.0, 1.0, 11)
    report.series("fig6", "phi_right[0..1]", est.right.pdf(grid))
    report.series("fig6", "phi_wrong[0..1]", est.wrong.pdf(grid))

    # Figure property: at the intersection both densities agree.
    if calibration.threshold.method == "intersection":
        s = calibration.s
        assert float(est.right.pdf(s)) == float(est.wrong.pdf(s)) or (
            abs(float(est.right.pdf(s)) - float(est.wrong.pdf(s))) < 1e-6)
    # The threshold separates the means.
    assert est.wrong.mu < calibration.s < est.right.mu


def test_fig6_threshold_closer_to_one(benchmark, experiment, report):
    """Paper 3.2: the threshold 'is not in-between the highest (one) and
    the lowest (zero) measure but closer to the highest', reflecting the
    imbalanced training data."""
    s = benchmark.pedantic(lambda: experiment.threshold,
                           rounds=1, iterations=1)
    report.row("fig6", "s above midpoint", "yes (0.81 > 0.5)",
               f"{'yes' if s > 0.5 else 'no'} ({s:.3f})")
    assert s > 0.5


def test_per_class_thresholds(benchmark, experiment, report):
    """Extension of the Fig. 6 analysis: per-predicted-class operating
    points (the paper uses one global s)."""
    from repro.core.calibration import calibrate_per_class

    per = benchmark.pedantic(
        calibrate_per_class,
        args=(experiment.augmented, experiment.material.analysis),
        rounds=1, iterations=1)
    rendered = ", ".join(
        f"{idx}:{cal.threshold:.2f}{'*' if cal.fallback_used else ''}"
        for idx, cal in sorted(per.items()))
    report.row("fig6", "per-class thresholds (class:s, *=fallback)",
               "single global s = 0.81", rendered)
    assert all(0.0 < cal.threshold < 1.0 for cal in per.values())
