"""Simulated AwareOffice appliances: pen, camera, event bus, office."""

from .awarepen import PEN_TOPIC, AwarePen
from .base import Appliance
from .bus import DeliveryError, EventBus, topic_matches
from .camera import Snapshot, WhiteboardCamera
from .chair import CHAIR_TOPIC, AwareChair
from .display import OfficeDisplay
from .lossy import LossyBus
from .situation import (DEFAULT_RULES, DISCUSSION, IDLE, SITUATION_TOPIC,
                        SITUATIONS, SituationDetector, SituationState,
                        WRITING_SESSION)
from .messages import ContextEvent, derive_event_id
from .office import AwareOffice, OfficeRunReport

__all__ = [
    "ContextEvent", "derive_event_id",
    "EventBus", "DeliveryError", "topic_matches",
    "Appliance",
    "AwarePen", "PEN_TOPIC",
    "WhiteboardCamera", "Snapshot",
    "AwareOffice", "OfficeRunReport",
    "AwareChair", "CHAIR_TOPIC",
    "LossyBus",
    "OfficeDisplay",
    "SituationDetector", "SituationState", "SITUATION_TOPIC", "SITUATIONS",
    "WRITING_SESSION", "DISCUSSION", "IDLE", "DEFAULT_RULES",
]
