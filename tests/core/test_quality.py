"""Tests for repro.core.quality — the CQM evaluation layer."""

import numpy as np
import pytest

from repro.core.quality import QualityMeasure
from repro.exceptions import DimensionError
from repro.fuzzy.tsk import TSKSystem
from repro.types import Classification, ContextClass


def identity_quality(n_cues=2, offset=0.0):
    """Quality FIS whose raw output equals the class identifier + offset.

    One wide rule with f = c + offset makes expected q values trivial.
    """
    n_inputs = n_cues + 1
    means = np.zeros((1, n_inputs))
    sigmas = np.full((1, n_inputs), 100.0)
    coefficients = np.zeros((1, n_inputs + 1))
    coefficients[0, n_cues] = 1.0  # weight on the class-identifier input
    coefficients[0, -1] = offset
    return QualityMeasure(TSKSystem(means, sigmas, coefficients, order=1),
                          n_cues=n_cues)


class TestConstruction:
    def test_input_arity_enforced(self):
        sys = TSKSystem(np.zeros((1, 3)), np.ones((1, 3)),
                        np.zeros((1, 4)), order=1)
        QualityMeasure(sys, n_cues=2)  # OK
        with pytest.raises(DimensionError):
            QualityMeasure(sys, n_cues=3)

    def test_n_cues_positive(self):
        sys = TSKSystem(np.zeros((1, 2)), np.ones((1, 2)),
                        np.zeros((1, 3)), order=1)
        with pytest.raises(DimensionError):
            QualityMeasure(sys, n_cues=0)


class TestMeasure:
    def test_scalar_measure(self):
        qm = identity_quality()
        assert qm.measure(np.array([0.1, 0.2]), 1) == pytest.approx(1.0)
        assert qm.measure(np.array([0.1, 0.2]), 0) == pytest.approx(0.0)

    def test_reflection_band(self):
        qm = identity_quality(offset=-0.3)
        # class 0 -> raw -0.3 -> reflected to 0.3
        assert qm.measure(np.zeros(2), 0) == pytest.approx(0.3)

    def test_epsilon(self):
        qm = identity_quality()
        # class 2 -> raw 2.0 -> outside [-0.5, 1.5] -> epsilon
        assert qm.measure(np.zeros(2), 2) is None

    def test_cue_arity_checked(self):
        qm = identity_quality()
        with pytest.raises(DimensionError):
            qm.measure(np.zeros(3), 0)

    def test_batch_matches_scalar(self):
        qm = identity_quality(offset=0.1)
        cues = np.random.default_rng(0).normal(size=(5, 2))
        indices = np.array([0, 1, 0, 1, 0])
        batch = qm.measure_batch(cues, indices)
        for i in range(5):
            scalar = qm.measure(cues[i], int(indices[i]))
            assert batch[i] == pytest.approx(scalar)

    def test_batch_epsilon_is_nan(self):
        qm = identity_quality()
        out = qm.measure_batch(np.zeros((2, 2)), np.array([2, 1]))
        assert np.isnan(out[0])
        assert out[1] == pytest.approx(1.0)

    def test_batch_alignment_checked(self):
        qm = identity_quality()
        with pytest.raises(DimensionError):
            qm.measure_batch(np.zeros((3, 2)), np.zeros(2))


class TestQualify:
    def make_classification(self, index):
        return Classification(cues=np.array([0.1, 0.2]),
                              context=ContextClass(index, f"c{index}"))

    def test_qualify(self):
        qm = identity_quality()
        qc = qm.qualify(self.make_classification(1))
        assert qc.quality == pytest.approx(1.0)
        assert not qc.is_error_state
        assert qc.context.index == 1

    def test_qualify_epsilon(self):
        qm = identity_quality()
        qc = qm.qualify(self.make_classification(2))
        assert qc.quality is None
        assert qc.is_error_state

    def test_qualify_batch(self):
        qm = identity_quality()
        items = [self.make_classification(i) for i in (0, 1, 2)]
        out = qm.qualify_batch(items)
        assert out[0].quality == pytest.approx(0.0)
        assert out[1].quality == pytest.approx(1.0)
        assert out[2].quality is None

    def test_qualify_batch_empty(self):
        assert identity_quality().qualify_batch([]) == []

    def test_n_rules(self):
        assert identity_quality().n_rules == 1
