"""Deliberately naive reference implementations of the numerical kernels.

Every optimized hot path in the pipeline (vectorized cue extraction, the
fused/einsum TSK forward pass, the pairwise-identity clustering
potentials, the SVD least-squares solve, the normalization ``L``, the
closed-form density intersection) has a loop-based twin here that states
the paper's semantics as directly as possible — no broadcasting, no
algebraic identities, no shared subexpressions.  The differential runner
(:mod:`repro.verify.differential`) sweeps seeded and adversarial inputs
through both and reports the divergence; agreement within floating-point
tolerance is the evidence behind every "bit-identical" claim the
optimized layers make.

These functions are intentionally slow.  Never call them from library
code; they exist only as an oracle.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from ..exceptions import CalibrationError, DimensionError
from ..stats.gaussian import Gaussian

#: Same underflow floor as :data:`repro.fuzzy.tsk._WEIGHT_FLOOR` — the
#: reference restates the degradation contract, it does not import it.
WEIGHT_FLOOR = 1e-300


# ----------------------------------------------------------------------
# Sliding-window cues (paper Fig. 4: per-axis standard deviation)
# ----------------------------------------------------------------------
def std_cues(signal: np.ndarray, window: int,
             hop: int) -> Tuple[np.ndarray, np.ndarray]:
    """Loop-based sliding-window std cues.

    Two-pass standard deviation per axis per window, windows advanced by
    *hop*, tail windows shorter than *window* dropped — the semantics of
    ``AWAREPEN_CUES.extract_all`` stated with four explicit loops.
    """
    signal = np.asarray(signal, dtype=float)
    if signal.ndim != 2:
        raise DimensionError(f"signal must be 2-D, got {signal.shape}")
    n_samples, n_axes = signal.shape
    starts: List[int] = []
    rows: List[List[float]] = []
    for start in range(0, n_samples - window + 1, hop):
        row = []
        for axis in range(n_axes):
            values = [float(signal[start + k, axis]) for k in range(window)]
            mean = sum(values) / window
            var = sum((v - mean) ** 2 for v in values) / window
            row.append(math.sqrt(var))
        starts.append(start)
        rows.append(row)
    if not rows:
        return np.empty(0, dtype=int), np.empty((0, n_axes))
    return np.array(starts, dtype=int), np.array(rows, dtype=float)


# ----------------------------------------------------------------------
# Gaussian membership and the TSK forward pass (paper section 2.1.2)
# ----------------------------------------------------------------------
def gaussian_mf(x: float, mu: float, sigma: float) -> float:
    """``F(x) = exp(-(x - mu)^2 / (2 sigma^2))``, scalar, no identities."""
    return math.exp(-((x - mu) ** 2) / (2.0 * sigma ** 2))


def tsk_memberships(means: np.ndarray, sigmas: np.ndarray,
                    x: np.ndarray) -> np.ndarray:
    """Per-sample, per-rule, per-input memberships via scalar loops."""
    means = np.asarray(means, dtype=float)
    sigmas = np.asarray(sigmas, dtype=float)
    x = np.asarray(x, dtype=float)
    n, (m, d) = x.shape[0], means.shape
    out = np.empty((n, m, d))
    for s in range(n):
        for j in range(m):
            for i in range(d):
                out[s, j, i] = gaussian_mf(float(x[s, i]),
                                           float(means[j, i]),
                                           float(sigmas[j, i]))
    return out


def tsk_rule_outputs(coefficients: np.ndarray, order: int,
                     x: np.ndarray) -> np.ndarray:
    """Consequents ``f_j(x)`` by explicit dot-product loops.

    The optimized path computes this with ``einsum``; the reference
    accumulates ``a_1j x_1 + ... + a_nj x_n + a_(n+1)j`` term by term.
    """
    coefficients = np.asarray(coefficients, dtype=float)
    x = np.asarray(x, dtype=float)
    n, m = x.shape[0], coefficients.shape[0]
    d = coefficients.shape[1] - 1
    out = np.empty((n, m))
    for s in range(n):
        for j in range(m):
            if order == 0:
                out[s, j] = coefficients[j, -1]
                continue
            acc = 0.0
            for i in range(d):
                acc += float(coefficients[j, i]) * float(x[s, i])
            out[s, j] = acc + float(coefficients[j, -1])
    return out


def tsk_evaluate(means: np.ndarray, sigmas: np.ndarray,
                 coefficients: np.ndarray, order: int,
                 x: np.ndarray) -> np.ndarray:
    """Full weighted-sum-average TSK output, one sample at a time.

    Includes the underflow contract of the optimized system: when every
    rule's firing strength underflows (total <= :data:`WEIGHT_FLOOR`),
    the weights degrade to uniform ``1/m``.
    """
    x = np.asarray(x, dtype=float)
    memberships = tsk_memberships(means, sigmas, x)
    f = tsk_rule_outputs(coefficients, order, x)
    n, m = f.shape
    out = np.empty(n)
    for s in range(n):
        weights = []
        for j in range(m):
            w = 1.0
            for i in range(memberships.shape[2]):
                w *= memberships[s, j, i]
            weights.append(w)
        total = sum(weights)
        if total <= WEIGHT_FLOOR:
            wbar = [1.0 / m] * m
        else:
            wbar = [w / total for w in weights]
        out[s] = sum(wbar[j] * f[s, j] for j in range(m))
    return out


# ----------------------------------------------------------------------
# Premise gradients of the ANFIS backward pass (paper section 2.2.4)
# ----------------------------------------------------------------------
def premise_gradients_loop(means: np.ndarray, sigmas: np.ndarray,
                           coefficients: np.ndarray, order: int,
                           x: np.ndarray, y: np.ndarray
                           ) -> Tuple[np.ndarray, np.ndarray, float]:
    """Gradients of ``0.5 * mean((S(x) - y)^2)`` by scalar loops.

    States the chain rule of section 2.2.4 term by term — one sample,
    one rule, one input dimension at a time, no broadcasting, no shared
    subexpressions.  Mirrors the optimized contract of
    ``premise_gradient_terms``: the per-sample weight total is floored
    at :data:`WEIGHT_FLOOR` (the gradient path does not use the uniform
    fallback the inference path applies to dead samples).  Returns
    ``(d_means, d_sigmas, loss)``.
    """
    means = np.asarray(means, dtype=float)
    sigmas = np.asarray(sigmas, dtype=float)
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float).ravel()
    memberships = tsk_memberships(means, sigmas, x)
    f = tsk_rule_outputs(coefficients, order, x)
    n, m, d = memberships.shape
    d_means = np.zeros((m, d))
    d_sigmas = np.zeros((m, d))
    sse = 0.0
    for s in range(n):
        weights = []
        for j in range(m):
            w = 1.0
            for i in range(d):
                w *= memberships[s, j, i]
            weights.append(w)
        total = sum(weights)
        if total < WEIGHT_FLOOR:
            total = WEIGHT_FLOOR
        numerator = 0.0
        for j in range(m):
            numerator += weights[j] * f[s, j]
        s_out = numerator / total
        err = s_out - float(y[s])
        sse += err * err
        for j in range(m):
            # dL/dw_j = err * (f_j - S) / total
            dl_dw = (err / total) * (f[s, j] - s_out)
            for i in range(d):
                diff = float(x[s, i]) - float(means[j, i])
                sigma = float(sigmas[j, i])
                dw_dmu = weights[j] * diff / (sigma * sigma)
                dw_dsigma = weights[j] * diff * diff / (sigma ** 3)
                d_means[j, i] += dl_dw * dw_dmu
                d_sigmas[j, i] += dl_dw * dw_dsigma
    d_means /= n
    d_sigmas /= n
    loss = 0.5 * sse / n
    return d_means, d_sigmas, loss


# ----------------------------------------------------------------------
# Subtractive clustering (paper section 2.2.1, Chiu's potentials)
# ----------------------------------------------------------------------
def unit_normalize(x: np.ndarray) -> np.ndarray:
    """Per-dimension min-max normalization with zero-span guard."""
    x = np.asarray(x, dtype=float)
    out = np.empty_like(x)
    for i in range(x.shape[1]):
        lo = float(np.min(x[:, i]))
        hi = float(np.max(x[:, i]))
        span = hi - lo if hi - lo > 0 else 1.0
        for s in range(x.shape[0]):
            out[s, i] = (x[s, i] - lo) / span
    return out


def subtractive_potentials(xn: np.ndarray, radius: float) -> np.ndarray:
    """``P_i = sum_j exp(-4 ||x_i - x_j||^2 / r_a^2)`` by double loop.

    The optimized kernel expands ``||x_i - x_j||^2`` through the
    ``||a||^2 + ||b||^2 - 2 a.b`` identity; the reference subtracts and
    squares coordinate by coordinate.
    """
    xn = np.asarray(xn, dtype=float)
    alpha = 4.0 / (float(radius) ** 2)
    n = xn.shape[0]
    out = np.empty(n)
    for i in range(n):
        total = 0.0
        for j in range(n):
            sq = 0.0
            for k in range(xn.shape[1]):
                diff = xn[i, k] - xn[j, k]
                sq += diff * diff
            total += math.exp(-alpha * sq)
        out[i] = total
    return out


def subtractive_fit_indices(x: np.ndarray, radius: float = 0.5,
                            squash_factor: float = 1.25,
                            accept_ratio: float = 0.5,
                            reject_ratio: float = 0.15,
                            max_clusters: Optional[int] = None
                            ) -> List[int]:
    """Chiu's full accept/reject loop, naive arithmetic throughout.

    Returns the *indices* of the accepted centers in acceptance order —
    index equality with the optimized fit is a sharper check than
    comparing center coordinates (centers are exact data rows).
    """
    x = np.asarray(x, dtype=float)
    xn = unit_normalize(x)
    n = xn.shape[0]
    potentials = list(subtractive_potentials(xn, radius))
    beta = 4.0 / ((squash_factor * radius) ** 2)
    first_potential = max(potentials)
    centers: List[int] = []
    limit = max_clusters if max_clusters is not None else n
    while len(centers) < limit:
        candidate = int(np.argmax(potentials))
        p = potentials[candidate]
        if p <= 0:
            break
        ratio = p / first_potential
        if ratio >= accept_ratio:
            accept = True
        elif ratio < reject_ratio:
            break
        else:
            d_min = math.inf
            for idx in centers:
                sq = 0.0
                for k in range(xn.shape[1]):
                    diff = xn[candidate, k] - xn[idx, k]
                    sq += diff * diff
                d_min = min(d_min, math.sqrt(sq))
            if d_min / radius + ratio >= 1.0:
                accept = True
            else:
                potentials[candidate] = 0.0
                continue
        if accept:
            centers.append(candidate)
            for i in range(n):
                sq = 0.0
                for k in range(xn.shape[1]):
                    diff = xn[i, k] - xn[candidate, k]
                    sq += diff * diff
                potentials[i] -= p * math.exp(-beta * sq)
            potentials[candidate] = 0.0
    return centers


# ----------------------------------------------------------------------
# SVD least squares (paper section 2.2.2)
# ----------------------------------------------------------------------
def lse_design_matrix(means: np.ndarray, sigmas: np.ndarray,
                      order: int, x: np.ndarray) -> np.ndarray:
    """Design matrix rows ``[w1 x1, ..., w1, w2 x1, ...]`` by loops."""
    x = np.asarray(x, dtype=float)
    memberships = tsk_memberships(means, sigmas, x)
    n, m, d = memberships.shape
    rows = []
    for s in range(n):
        weights = []
        for j in range(m):
            w = 1.0
            for i in range(d):
                w *= memberships[s, j, i]
            weights.append(w)
        total = sum(weights)
        if total <= WEIGHT_FLOOR:
            wbar = [1.0 / m] * m
        else:
            wbar = [w / total for w in weights]
        if order == 0:
            rows.append(wbar)
            continue
        row: List[float] = []
        for j in range(m):
            for i in range(d):
                row.append(wbar[j] * float(x[s, i]))
            row.append(wbar[j])
        rows.append(row)
    return np.array(rows, dtype=float)


def lse_solve_svd(a: np.ndarray, y: np.ndarray,
                  rcond: Optional[float] = None) -> np.ndarray:
    """Minimum-norm least squares through an explicit SVD pseudo-inverse.

    ``theta = V diag(1/s_i) U^T y`` with singular values below
    ``rcond * s_max`` discarded — the decomposition ``numpy.linalg.lstsq``
    performs internally, spelled out.
    """
    a = np.asarray(a, dtype=float)
    y = np.asarray(y, dtype=float).ravel()
    u, s, vt = np.linalg.svd(a, full_matrices=False)
    if rcond is None:
        rcond = max(a.shape) * np.finfo(float).eps
    cutoff = rcond * (float(s[0]) if s.size else 0.0)
    inv = np.array([1.0 / sv if sv > cutoff else 0.0 for sv in s])
    return vt.T @ (inv * (u.T @ y))


# ----------------------------------------------------------------------
# Normalization L with the error state epsilon (paper section 2.1.3)
# ----------------------------------------------------------------------
def normalize(x: np.ndarray) -> np.ndarray:
    """``L`` applied scalar by scalar; epsilon is ``NaN`` in the output."""
    x = np.asarray(x, dtype=float).ravel()
    out = np.empty(x.shape)
    for i, value in enumerate(x):
        v = float(value)
        if math.isnan(v):
            out[i] = math.nan
        elif 0.0 <= v <= 1.0:
            out[i] = v
        elif -0.5 <= v < 0.0:
            out[i] = -v
        elif 1.0 < v <= 1.5:
            out[i] = 2.0 - v
        else:
            out[i] = math.nan
    return out


# ----------------------------------------------------------------------
# Density intersection / threshold s (paper section 2.3.2)
# ----------------------------------------------------------------------
def _log_pdf(g: Gaussian, x: float) -> float:
    z = (x - g.mu) / g.sigma
    return -0.5 * z * z - math.log(g.sigma * math.sqrt(2.0 * math.pi))


def intersection_between_means(right: Gaussian, wrong: Gaussian,
                               grid: int = 4096,
                               iterations: int = 200) -> float:
    """Threshold ``s`` by bracketing + bisection instead of the quadratic.

    Scans ``phi_r - phi_w`` (in log space) on a fine grid between the two
    means for a sign change and bisects it to machine precision.  When no
    sign change exists between the means the optimized path falls back to
    the midpoint; the reference mirrors that contract.
    """
    if right.mu <= wrong.mu:
        raise CalibrationError("expected mean(right) > mean(wrong)")
    lo, hi = wrong.mu, right.mu

    def g(x: float) -> float:
        return _log_pdf(right, x) - _log_pdf(wrong, x)

    xs = [lo + (hi - lo) * k / grid for k in range(grid + 1)]
    bracket = None
    for a, b in zip(xs[:-1], xs[1:]):
        ga, gb = g(a), g(b)
        if ga == 0.0:
            return a
        if ga * gb < 0.0:
            bracket = (a, b)
            break
    if bracket is None:
        return 0.5 * (right.mu + wrong.mu)
    a, b = bracket
    for _ in range(iterations):
        mid = 0.5 * (a + b)
        if mid == a or mid == b:
            break
        if g(a) * g(mid) <= 0.0:
            b = mid
        else:
            a = mid
    return 0.5 * (a + b)
