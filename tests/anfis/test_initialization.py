"""Tests for repro.anfis.initialization — genfis2-style structure ID."""

import numpy as np
import pytest

from repro.anfis.initialization import fis_from_clusters, initial_fis_from_data
from repro.clustering.subtractive import SubtractiveClustering
from repro.exceptions import DimensionError, TrainingError


@pytest.fixture
def xor_like(rng):
    """Data needing at least two rules: y high near two distinct centers."""
    a = rng.normal((0, 0), 0.15, size=(40, 2))
    b = rng.normal((2, 2), 0.15, size=(40, 2))
    x = np.vstack([a, b])
    y = np.concatenate([np.zeros(40), np.ones(40)])
    return x, y


class TestFisFromClusters:
    def test_one_rule_per_cluster(self, xor_like):
        x, _ = xor_like
        clusters = SubtractiveClustering(radius=0.5).fit(x)
        fis = fis_from_clusters(clusters)
        assert fis.n_rules == clusters.n_clusters
        assert fis.n_inputs == 2

    def test_means_are_cluster_centers(self, xor_like):
        x, _ = xor_like
        clusters = SubtractiveClustering(radius=0.5).fit(x)
        fis = fis_from_clusters(clusters)
        np.testing.assert_allclose(fis.means, clusters.centers)

    def test_sigmas_broadcast_per_dimension(self, xor_like):
        x, _ = xor_like
        clusters = SubtractiveClustering(radius=0.5).fit(x)
        fis = fis_from_clusters(clusters)
        for j in range(fis.n_rules):
            np.testing.assert_allclose(fis.sigmas[j],
                                       np.maximum(clusters.sigmas, 1e-4))

    def test_coefficients_start_zero(self, xor_like):
        x, _ = xor_like
        clusters = SubtractiveClustering(radius=0.5).fit(x)
        fis = fis_from_clusters(clusters)
        assert np.all(fis.coefficients == 0.0)

    def test_order_passthrough(self, xor_like):
        x, _ = xor_like
        clusters = SubtractiveClustering(radius=0.5).fit(x)
        assert fis_from_clusters(clusters, order=0).order == 0


class TestInitialFisFromData:
    def test_fits_separable_targets(self, xor_like):
        x, y = xor_like
        fis = initial_fis_from_data(x, y, radius=0.5)
        predictions = fis.evaluate(x)
        rmse = np.sqrt(np.mean((predictions - y) ** 2))
        assert rmse < 0.15

    def test_respects_custom_clusterer(self, xor_like):
        x, y = xor_like
        clusterer = SubtractiveClustering(radius=0.3, max_clusters=2)
        fis = initial_fis_from_data(x, y, clusterer=clusterer)
        assert fis.n_rules <= 2

    def test_validation(self, rng):
        with pytest.raises(DimensionError):
            initial_fis_from_data(np.zeros(5), np.zeros(5))
        with pytest.raises(DimensionError):
            initial_fis_from_data(np.zeros((5, 2)), np.zeros(4))
        with pytest.raises(TrainingError):
            initial_fis_from_data(np.zeros((1, 2)), np.zeros(1))

    def test_constant_column_does_not_break(self, rng):
        # A constant cue column would give sigma 0 without the guard.
        x = rng.normal(size=(30, 2))
        x[:, 1] = 1.0
        y = x[:, 0]
        fis = initial_fis_from_data(x, y, radius=0.5)
        assert np.all(fis.sigmas > 0)
        assert np.all(np.isfinite(fis.evaluate(x)))
