"""Experiment ``bus`` — distributed context-event bus throughput.

Measures the hot paths of :mod:`repro.bus` with the same scripted pen
workload the failure drills use (:func:`repro.bus.drill.scripted_pen_events`),
so the numbers are directly comparable to the drill logs:

* **publish + delivery** — events/s through a :class:`BrokerCore` with a
  subscribed :class:`BusClient` over the in-process link, i.e. the full
  log-append / partition-route / credit-window / ack round trip;
* **log append** — raw :class:`EventLog` append rate at two fsync
  cadences, showing what group-commit batching buys over fsync-per-record;
* **replay** — events/s to re-read, validate, and dedupe a persisted
  log, the cost floor of ``repro bus replay``;
* **drill** — wall time for the in-process fault drill to converge with
  drops, duplicates, and delays active.

Every run lands in ``BENCH_bus.json`` at the repo root, diffable across
PRs like the other ``BENCH_*.json`` artifacts.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path
from typing import Dict, List

import pytest

from repro.bus.broker import BrokerCore, BusConfig
from repro.bus.client import BusClient, InProcLink
from repro.bus.drill import run_inproc_fault_drill, scripted_pen_events
from repro.bus.log import EventLog
from repro.bus.replay import dedupe_events, read_log_events

#: Events per timed run (seeded; identical workload across kinds).
N_EVENTS = 2000
SEED = 7

#: fsync cadences for the append benchmark: every record vs group commit.
FSYNC_CADENCES = (1, 64)

#: The drill is the expensive case; keep it shorter than the raw sweeps.
DRILL_EVENTS = 300


def _report_path() -> Path:
    here = Path(__file__).resolve()
    for parent in here.parents:
        if (parent / "pyproject.toml").exists():
            return parent / "BENCH_bus.json"
    return Path.cwd() / "BENCH_bus.json"


class BusReporter:
    """Collects per-run measurements into ``BENCH_bus.json``."""

    def __init__(self) -> None:
        self.runs: List[Dict[str, object]] = []

    def add(self, kind: str, n_events: int, elapsed_s: float,
            extra: Dict[str, object] = None) -> None:
        row: Dict[str, object] = {
            "kind": kind,
            "n_events": n_events,
            "elapsed_s": elapsed_s,
            "events_per_s": n_events / elapsed_s if elapsed_s else 0.0,
        }
        if extra:
            row.update(extra)
        self.runs.append(row)

    def write(self, path: Path) -> Path:
        document = {
            "schema": 1,
            "environment": {
                "cpu_count": os.cpu_count(),
                "platform": platform.platform(),
                "python": platform.python_version(),
            },
            "runs": self.runs,
        }
        path.write_text(json.dumps(document, indent=2) + "\n")
        return path


@pytest.fixture(scope="module")
def bus_report():
    reporter = BusReporter()
    yield reporter
    reporter.write(_report_path())


@pytest.fixture(scope="module")
def workload():
    return scripted_pen_events(SEED, N_EVENTS)


def test_publish_delivery_throughput(tmp_path, workload, bus_report,
                                     report):
    """Full round trip: append, route, deliver under credits, ack."""
    config = BusConfig(n_partitions=2, fsync_every=64)
    received = []
    with BrokerCore(tmp_path / "log", config) as core:
        client = BusClient(InProcLink(core))
        client.subscribe("context.*", received.append)
        start = time.perf_counter()
        for event in workload:
            client.publish(event)
        elapsed = time.perf_counter() - start
        stats = core.stats()
    bus_report.add("publish-delivery", N_EVENTS, elapsed,
                   extra={"n_partitions": config.n_partitions,
                          "fsync_every": config.fsync_every,
                          "n_acked": stats["n_acked"]})
    report.row("bus", "publish+delivery", "-",
               f"{N_EVENTS / elapsed:.0f} events/s, 2 partitions")
    assert len(received) == N_EVENTS
    assert stats["n_acked"] == N_EVENTS


@pytest.mark.parametrize("fsync_every", FSYNC_CADENCES)
def test_log_append_throughput(tmp_path, workload, bus_report, report,
                               fsync_every):
    """Raw append rate: fsync-per-record vs group commit."""
    log = EventLog(tmp_path / f"log-{fsync_every}",
                   fsync_every=fsync_every)
    records = [{"event": e.to_wire(), "partition": 0} for e in workload]
    start = time.perf_counter()
    for record in records:
        log.append(record)
    log.sync()
    elapsed = time.perf_counter() - start
    bus_report.add("log-append", N_EVENTS, elapsed,
                   extra={"fsync_every": fsync_every,
                          "n_fsyncs": log.n_fsyncs})
    report.row("bus", f"log append (fsync_every={fsync_every})", "-",
               f"{N_EVENTS / elapsed:.0f} events/s, "
               f"{log.n_fsyncs} fsyncs")
    assert log.next_offset == N_EVENTS


def test_replay_read_throughput(tmp_path, workload, bus_report, report):
    """Read + validate + dedupe rate over a persisted log."""
    config = BusConfig(n_partitions=2, fsync_every=64)
    with BrokerCore(tmp_path / "log", config) as core:
        for event in workload:
            core.publish(event.to_wire())
    start = time.perf_counter()
    events = dedupe_events(read_log_events(tmp_path / "log"))
    elapsed = time.perf_counter() - start
    bus_report.add("replay-read", N_EVENTS, elapsed)
    report.row("bus", "replay read+dedupe", "-",
               f"{N_EVENTS / elapsed:.0f} events/s")
    assert len(events) == N_EVENTS


def test_fault_drill_wall_time(tmp_path, bus_report, report):
    """Convergence time with drops, duplicates, and delays active."""
    start = time.perf_counter()
    drill = run_inproc_fault_drill(tmp_path / "log", seed=SEED,
                                   n_events=DRILL_EVENTS)
    elapsed = time.perf_counter() - start
    bus_report.add("fault-drill", DRILL_EVENTS, elapsed,
                   extra={"n_redelivered": drill.n_redelivered,
                          "dedupe_dropped": drill.dedupe_dropped,
                          "passed": drill.passed})
    report.row("bus", "fault drill", "converges under faults",
               f"{elapsed:.2f}s for {DRILL_EVENTS} events, "
               f"{drill.n_redelivered} redelivered")
    assert drill.passed
