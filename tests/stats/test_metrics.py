"""Tests for repro.stats.metrics."""

import numpy as np
import pytest

from repro.exceptions import CalibrationError, DimensionError
from repro.stats.metrics import (accuracy, auc, confusion_matrix,
                                 filter_outcome, roc_curve)


class TestAccuracy:
    def test_basic(self):
        assert accuracy(np.array([1, 2, 3]), np.array([1, 2, 0])) == (
            pytest.approx(2 / 3))

    def test_empty_raises(self):
        with pytest.raises(DimensionError):
            accuracy(np.array([]), np.array([]))

    def test_shape_mismatch(self):
        with pytest.raises(DimensionError):
            accuracy(np.zeros(3), np.zeros(4))


class TestConfusionMatrix:
    def test_counts(self):
        cm = confusion_matrix(np.array([0, 0, 1, 1, 2]),
                              np.array([0, 1, 1, 1, 0]))
        assert cm.n_samples == 5
        assert cm.matrix[0, 0] == 1
        assert cm.matrix[0, 1] == 1
        assert cm.matrix[1, 1] == 2
        assert cm.matrix[2, 0] == 1

    def test_rates(self):
        cm = confusion_matrix(np.array([0, 0, 1, 1]),
                              np.array([0, 1, 1, 1]))
        assert cm.rate(0, 0) == pytest.approx(0.5)
        assert cm.per_class_recall() == {0: 0.5, 1: 1.0}

    def test_explicit_labels(self):
        cm = confusion_matrix(np.array([0]), np.array([0]),
                              labels=[0, 1, 2])
        assert cm.matrix.shape == (3, 3)

    def test_label_outside_set(self):
        with pytest.raises(DimensionError):
            confusion_matrix(np.array([5]), np.array([0]), labels=[0, 1])


class TestROC:
    def test_perfect_ranking_auc_one(self):
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        positive = np.array([True, True, False, False])
        assert auc(scores, positive) == pytest.approx(1.0)

    def test_reverse_ranking_auc_zero(self):
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        positive = np.array([True, True, False, False])
        assert auc(scores, positive) == pytest.approx(0.0)

    def test_random_ranking_near_half(self, rng):
        scores = rng.uniform(size=4000)
        positive = rng.uniform(size=4000) > 0.5
        assert auc(scores, positive) == pytest.approx(0.5, abs=0.05)

    def test_curve_endpoints(self):
        scores = np.array([0.9, 0.3, 0.6, 0.1])
        positive = np.array([True, False, True, False])
        fpr, tpr, thresholds = roc_curve(scores, positive)
        assert fpr[0] == 0.0 and tpr[0] == 0.0
        assert fpr[-1] == 1.0 and tpr[-1] == 1.0
        assert thresholds[0] == np.inf

    def test_needs_both_classes(self):
        with pytest.raises(CalibrationError):
            roc_curve(np.array([0.5, 0.6]), np.array([True, True]))


class TestFilterOutcome:
    def test_paper_headline_case(self):
        # 24 points, 8 wrong; a perfect gate discards exactly the wrong
        # third -> 33% discard, accuracy 0.67 -> 1.0.
        correct = np.array([True] * 16 + [False] * 8)
        qualities = np.where(correct, 0.9, 0.2)
        outcome = filter_outcome(correct, qualities, threshold=0.81)
        assert outcome.n_discarded == 8
        assert outcome.discard_fraction == pytest.approx(1 / 3)
        assert outcome.wrong_elimination == 1.0
        assert outcome.accuracy_before == pytest.approx(2 / 3)
        assert outcome.accuracy_after == 1.0
        assert outcome.improvement == pytest.approx(1 / 3)

    def test_partial_filter(self):
        correct = np.array([True, True, False, False])
        qualities = np.array([0.9, 0.4, 0.7, 0.1])
        outcome = filter_outcome(correct, qualities, threshold=0.5)
        assert outcome.n_kept == 2
        assert outcome.n_wrong_kept == 1
        assert outcome.n_right_discarded == 1
        assert outcome.accuracy_after == pytest.approx(0.5)

    def test_nothing_kept_keeps_before_accuracy(self):
        correct = np.array([True, False])
        outcome = filter_outcome(correct, np.array([0.1, 0.1]), 0.5)
        assert outcome.n_kept == 0
        assert outcome.accuracy_after == outcome.accuracy_before

    def test_all_right_elimination_is_one(self):
        correct = np.ones(5, bool)
        outcome = filter_outcome(correct, np.full(5, 0.9), 0.5)
        assert outcome.wrong_elimination == 1.0

    def test_empty_raises(self):
        with pytest.raises(DimensionError):
            filter_outcome(np.array([], bool), np.array([]), 0.5)
