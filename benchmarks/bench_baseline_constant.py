"""Experiment ``const-q`` — CQM vs the constant-quality baseline.

Paper section 4: related work "restricts itself to constant probabilistic
measures for algorithmic errors or sensor failure".  The baseline assigns
each context class one constant quality (its training accuracy), so it can
only accept or reject whole classes.  The CQM's per-classification value
retains far more correct decisions at comparable residual accuracy.
"""

from repro.core.filtering import (evaluate_constant_baseline,
                                  evaluate_filtering)


def test_cqm_beats_constant_baseline(benchmark, experiment, report):
    material = experiment.material

    cqm = benchmark(evaluate_filtering, experiment.augmented,
                    material.analysis, experiment.threshold)
    const = evaluate_constant_baseline(
        experiment.augmented, material.quality_train, material.analysis)

    cqm_right_kept = cqm.n_kept - cqm.n_wrong_kept
    const_right_kept = const.n_kept - const.n_wrong_kept

    report.row("const-q", "right decisions kept (CQM)",
               "per-classification granularity",
               f"{cqm_right_kept}/{cqm.n_total}")
    report.row("const-q", "right decisions kept (constant)",
               "whole-class granularity only",
               f"{const_right_kept}/{const.n_total}")
    report.row("const-q", "accuracy after (CQM)", "improved",
               cqm.accuracy_after)
    report.row("const-q", "accuracy after (constant)", "-",
               const.accuracy_after)
    report.row("const-q", "coverage (CQM vs constant)",
               "CQM higher",
               f"{cqm.n_kept / cqm.n_total:.2f} vs "
               f"{const.n_kept / const.n_total:.2f}")

    assert cqm_right_kept > const_right_kept
    assert cqm.accuracy_after > cqm.accuracy_before


def test_constant_baseline_cannot_flag_within_class(benchmark, experiment,
                                                    report):
    """The structural weakness: inside one predicted class the constant
    baseline assigns identical quality to right and wrong decisions, so
    its within-class AUC is exactly 0.5 (chance)."""
    import numpy as np

    from repro.core.filtering import ConstantQualityBaseline

    material = experiment.material
    classifier = experiment.classifier
    train_pred = classifier.predict_indices(material.quality_train.cues)
    baseline = benchmark.pedantic(
        ConstantQualityBaseline.from_training,
        args=(train_pred, train_pred == material.quality_train.labels),
        rounds=1, iterations=1)

    test_pred = classifier.predict_indices(material.analysis.cues)
    qualities = baseline.qualities_for(test_pred)
    # Within any single predicted class all constants coincide.
    spread = [np.ptp(qualities[test_pred == c]) for c in np.unique(test_pred)]
    report.row("const-q", "within-class quality spread (constant)",
               "0 (cannot discriminate)", f"{max(spread):.4f}")
    assert max(spread) == 0.0
