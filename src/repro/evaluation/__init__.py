"""Evaluation framework: multi-seed aggregation and scenario CV."""

from .crossval import (CrossValidationReport, FoldResult,
                       ScenarioCrossValidator, concatenate_datasets)
from .report import generate_report
from .runner import (MetricSummary, MultiSeedReport, MultiSeedRunner,
                     experiment_metrics)

__all__ = [
    "MultiSeedRunner", "MultiSeedReport", "MetricSummary",
    "experiment_metrics",
    "ScenarioCrossValidator", "CrossValidationReport", "FoldResult",
    "concatenate_datasets",
    "generate_report",
]
