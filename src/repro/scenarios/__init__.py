"""Declarative scenario zoo: specs, registry, runner, golden traces.

See :mod:`repro.scenarios.spec` for the schema,
:mod:`repro.scenarios.registry` for discovery, and
:mod:`repro.scenarios.runner` for execution on either bus.
"""

from .registry import (clear, discover, get, iter_specs, load_scenario_file,
                       names, register)
from .runner import (ScenarioRunResult, capture_scenario_trace, run_scenario,
                     run_scenario_on)
from .spec import (ApplianceSpec, ClassifierSpec, FaultWindowSpec,
                   ScenarioSpec, SegmentSpec, SensorSpec, StyleSpec)

__all__ = [
    "ApplianceSpec",
    "ClassifierSpec",
    "FaultWindowSpec",
    "ScenarioRunResult",
    "ScenarioSpec",
    "SegmentSpec",
    "SensorSpec",
    "StyleSpec",
    "capture_scenario_trace",
    "clear",
    "discover",
    "get",
    "iter_specs",
    "load_scenario_file",
    "names",
    "register",
    "run_scenario",
    "run_scenario_on",
]
