"""Layer-wise ANFIS view of a TSK system (paper Fig. 3).

The ANFIS of Jang (1993) is "a functional identical representation of a
FIS as neural network" (paper section 2.2.3).  :class:`ANFISNetwork` wraps
a :class:`TSKSystem` and exposes the five canonical layers:

1. adaptive Gaussian membership neurons ``F_ij(v_i)``,
2. product neurons computing rule weights ``w_j``,
3. normalization neurons ``wbar_j = w_j / sum_k w_k``,
4. adaptive consequent neurons ``wbar_j f_j(v_Q)``,
5. the output sum.

Only layers 1 and 4 hold adaptable parameters ("squared functions" in the
paper's figure); training happens through
:class:`repro.anfis.training.HybridTrainer` on the shared parameter arrays.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

import numpy as np

from ..fuzzy.tsk import TSKSystem


@dataclasses.dataclass(frozen=True)
class LayerOutputs:
    """All intermediate activations for a batch of inputs."""

    memberships: np.ndarray          # layer 1: (N, m, d)
    firing_strengths: np.ndarray     # layer 2: (N, m)
    normalized_strengths: np.ndarray  # layer 3: (N, m)
    weighted_consequents: np.ndarray  # layer 4: (N, m)
    output: np.ndarray               # layer 5: (N,)


class ANFISNetwork:
    """Neural-network view over the parameters of a TSK system."""

    def __init__(self, system: TSKSystem) -> None:
        self.system = system

    @property
    def n_adaptive_parameters(self) -> int:
        """Count of tunable parameters: premises (2 m d) + consequents."""
        m, d = self.system.means.shape
        premise = 2 * m * d
        consequent = m if self.system.order == 0 else m * (d + 1)
        return premise + consequent

    def forward(self, x: np.ndarray) -> LayerOutputs:
        """Full forward pass returning every layer's activations."""
        system = self.system
        memberships = system.memberships(x)
        w = np.prod(memberships, axis=2)
        wbar = system.normalized_firing_strengths(
            np.atleast_2d(np.asarray(x, dtype=float)))
        f = system.rule_outputs(np.atleast_2d(np.asarray(x, dtype=float)))
        weighted = wbar * f
        output = np.sum(weighted, axis=1)
        return LayerOutputs(
            memberships=memberships,
            firing_strengths=w,
            normalized_strengths=wbar,
            weighted_consequents=weighted,
            output=output,
        )

    def parameter_summary(self) -> Dict[str, int]:
        """Breakdown of the adaptable parameter counts (for reporting)."""
        m, d = self.system.means.shape
        return {
            "rules": m,
            "inputs": d,
            "premise_parameters": 2 * m * d,
            "consequent_parameters": (
                m if self.system.order == 0 else m * (d + 1)),
            "total": self.n_adaptive_parameters,
        }
