"""Tests for the ``repro scenario`` CLI subcommands."""

import pytest

from repro.cli import main
from repro.scenarios import registry
from repro.verify.golden import GoldenTrace

GOOD_YAML = """\
name: cli-extra
sensors:
  - name: accel
    family: pen
    segments:
      - {activity: writing, duration_s: 2.0}
appliances:
  - name: pen
    kind: pen
    sensor: accel
"""

BAD_YAML = """\
name: cli-broken
sensors:
  - name: accel
    family: pen
    segments:
      - {activity: juggling, duration_s: 2.0}
appliances:
  - name: pen
    kind: pen
    sensor: accel
"""


class TestList:
    def test_lists_every_registered_scenario(self, capsys):
        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == len(registry.names())
        assert any(line.startswith("awarepen-baseline") for line in out)


class TestValidate:
    def test_all_shipped_scenarios_are_valid(self, capsys):
        assert main(["scenario", "validate"]) == 0
        out = capsys.readouterr().out
        n = len(registry.names())
        assert f"{n}/{n} scenarios valid" in out

    def test_named_subset(self, capsys):
        assert main(["scenario", "validate", "awarepen-baseline"]) == 0
        assert "ok   awarepen-baseline" in capsys.readouterr().out

    def test_unknown_name_fails(self, capsys):
        assert main(["scenario", "validate", "nope"]) == 1
        assert "FAIL nope" in capsys.readouterr().out

    def test_file_mode_accepts_valid_yaml(self, tmp_path, capsys):
        path = tmp_path / "extra.yaml"
        path.write_text(GOOD_YAML)
        assert main(["scenario", "validate", "--file", str(path)]) == 0
        assert "1/1 scenarios valid" in capsys.readouterr().out

    def test_file_mode_rejects_broken_yaml(self, tmp_path, capsys):
        path = tmp_path / "broken.yaml"
        path.write_text(BAD_YAML)
        assert main(["scenario", "validate", "--file", str(path)]) == 1
        assert "FAIL" in capsys.readouterr().out


class TestRun:
    def test_run_reports_summary(self, primed_models, capsys):
        assert main(["scenario", "run", "awarepen-ungated",
                     "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "scenario 'awarepen-ungated'" in out
        assert "windows" in out and "accuracy" in out

    def test_unknown_scenario_errors(self, capsys):
        assert main(["scenario", "run", "nope"]) == 1
        assert "unknown scenario" in capsys.readouterr().err


class TestRecord:
    def test_record_writes_loadable_goldens(self, primed_models,
                                            tmp_path, capsys):
        assert main(["scenario", "record", "awarepen-ungated",
                     "--out", str(tmp_path), "--seed", "7"]) == 0
        path = tmp_path / "awarepen-ungated.json"
        assert path.exists()
        trace = GoldenTrace.load(path)
        assert trace.seed == 7
        assert trace.stages[-1].stage == "summary"

    def test_record_without_names_is_a_usage_error(self, tmp_path,
                                                   capsys):
        assert main(["scenario", "record",
                     "--out", str(tmp_path)]) == 2
