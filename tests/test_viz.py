"""Tests for repro.viz — ASCII renderers."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.stats.gaussian import Gaussian
from repro.viz import (comparison_table, density_plot, histogram,
                       quality_series, sparkline)


class TestQualitySeries:
    def test_markers(self):
        out = quality_series([0.9, 0.1, np.nan], [True, False, True])
        lines = out.splitlines()
        assert len(lines) == 4  # header + 3 rows
        assert "o" in lines[1]
        assert "+" in lines[2]
        assert "eps" in lines[3]

    def test_position_encodes_quality(self):
        out = quality_series([1.0, 0.0], [True, True], width=20)
        high, low = out.splitlines()[1:3]
        assert high.index("o") > low.index("o")

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            quality_series([0.5], [True], width=5)
        with pytest.raises(ConfigurationError):
            quality_series([0.5, 0.6], [True])


class TestDensityPlot:
    def test_structure(self):
        out = density_plot(Gaussian(0.85, 0.1), Gaussian(0.3, 0.2),
                           threshold=0.6, rows=8, width=40)
        lines = out.splitlines()
        assert len(lines) == 10  # 8 rows + axis + legend
        assert "r" in out and "w" in out
        assert "|" in out
        assert "s=0.600" in out

    def test_threshold_optional(self):
        out = density_plot(Gaussian(0.85, 0.1), Gaussian(0.3, 0.2))
        assert "threshold" not in out

    def test_threshold_column_position(self):
        out = density_plot(Gaussian(0.9, 0.05), Gaussian(0.1, 0.05),
                           threshold=0.5, width=41, rows=5)
        first_row = out.splitlines()[0]
        # Column 2 offsets the leading margin; the mid column holds '|'.
        assert first_row[2 + 20] == "|"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            density_plot(Gaussian(0.8, 0.1), Gaussian(0.2, 0.1), rows=1)


class TestHistogram:
    def test_counts_shown(self):
        out = histogram([0.1, 0.1, 0.9], bins=2, value_range=(0.0, 1.0))
        lines = out.splitlines()
        assert len(lines) == 2
        assert lines[0].endswith("2")
        assert lines[1].endswith("1")

    def test_nan_filtered(self):
        out = histogram([0.5, float("nan")], bins=1)
        assert out.splitlines()[0].endswith("1")

    def test_empty_raises(self):
        with pytest.raises(ConfigurationError):
            histogram([])


class TestSparkline:
    def test_monotone_values(self):
        out = sparkline([0.0, 0.5, 1.0])
        assert len(out) == 3
        assert out[0] < out[1] < out[2]

    def test_nan_gap(self):
        out = sparkline([0.0, np.nan, 1.0])
        assert out[1] == " "

    def test_constant_series(self):
        out = sparkline([0.5, 0.5])
        assert len(out) == 2
        assert out[0] == out[1]

    def test_empty_raises(self):
        with pytest.raises(ConfigurationError):
            sparkline([])


class TestComparisonTable:
    def test_alignment(self):
        out = comparison_table([("s", "0.81", "0.63"),
                                ("P(right|q>s)", "0.8112", "0.786")])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].index("paper") == lines[2].index("0.81")

    def test_row_width_validated(self):
        with pytest.raises(ConfigurationError):
            comparison_table([("only", "two")])

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            comparison_table([])
