"""The office display appliance: a live context/quality dashboard.

A consuming appliance with no sensor of its own: it subscribes to every
context and situation topic, keeps a short history per source, and
renders a terminal dashboard (sparklines of recent quality, the current
context per source, and the current office situation).  It demonstrates a
pure *consumer* of qualified context — the role most appliances in a
smart space play.
"""

from __future__ import annotations

import collections
import dataclasses
from typing import Deque, Dict, Optional

import numpy as np

from ..exceptions import ConfigurationError
from ..viz import sparkline
from .base import Appliance
from .bus import EventBus
from .messages import ContextEvent


@dataclasses.dataclass
class SourcePanel:
    """Rolling state for one event source."""

    history: Deque[float]
    last_context: Optional[str] = None
    last_time_s: float = 0.0
    n_events: int = 0
    n_epsilon: int = 0


class OfficeDisplay(Appliance):
    """Dashboard appliance subscribed to ``context.*`` and ``situation.*``.

    Parameters
    ----------
    bus:
        The office event bus.
    history:
        Ring-buffer length of per-source quality history.
    """

    def __init__(self, bus: EventBus, history: int = 30,
                 name: str = "office-display") -> None:
        super().__init__(name=name, bus=bus)
        if history < 2:
            raise ConfigurationError(f"history must be >= 2, got {history}")
        self.history = int(history)
        self._panels: Dict[str, SourcePanel] = {}
        self._situation: Optional[str] = None
        self._situation_confidence: Optional[float] = None
        bus.subscribe("context.*", self.on_context, name=name)
        bus.subscribe("situation.*", self.on_situation, name=name)

    # ------------------------------------------------------------------
    def on_context(self, event: ContextEvent) -> None:
        """Record one qualified low-level context event."""
        panel = self._panels.setdefault(
            event.topic,
            SourcePanel(history=collections.deque(maxlen=self.history)))
        panel.n_events += 1
        panel.last_context = event.context.name
        panel.last_time_s = event.time_s
        if event.quality is None:
            panel.n_epsilon += 1
            panel.history.append(np.nan)
        else:
            panel.history.append(float(event.quality))

    def on_situation(self, event: ContextEvent) -> None:
        """Record the current office situation."""
        self._situation = event.context.name
        self._situation_confidence = event.quality

    # ------------------------------------------------------------------
    def mean_quality(self, topic: str) -> Optional[float]:
        """Mean recent quality of one source (None if unknown/empty)."""
        panel = self._panels.get(topic)
        if panel is None or not panel.history:
            return None
        values = np.array(panel.history, dtype=float)
        finite = values[~np.isnan(values)]
        return float(np.mean(finite)) if finite.size else None

    def render(self) -> str:
        """The dashboard as a multi-line string."""
        lines = [f"[{self.name}]"]
        if self._situation is not None:
            conf = ("" if self._situation_confidence is None
                    else f" (confidence {self._situation_confidence:.2f})")
            lines.append(f"  situation: {self._situation}{conf}")
        else:
            lines.append("  situation: (none yet)")
        for topic in sorted(self._panels):
            panel = self._panels[topic]
            spark = sparkline(list(panel.history)) if panel.history else ""
            mean_q = self.mean_quality(topic)
            mean_text = "-" if mean_q is None else f"{mean_q:.2f}"
            lines.append(
                f"  {topic:<16} {panel.last_context or '?':<10} "
                f"q[{spark}] mean {mean_text} "
                f"({panel.n_events} events, {panel.n_epsilon} eps)")
        return "\n".join(lines)

    def describe(self) -> str:
        return (f"OfficeDisplay({self.name}): {len(self._panels)} sources, "
                f"history {self.history}")
