"""The four selection probabilities of the CQM analysis (paper 2.3.3).

With the fitted densities and a threshold ``s``:

* ``P(c = right | q > s)``  — probability a measure above the threshold
  indicates an actually right classification,
* ``P(c = wrong | q < s)``  — true-negative selection,
* ``P(c = right | q < s)``  — false negative (right classifications lost),
* ``P(c = wrong | q > s)``  — false positive (wrong classifications kept).

Following the paper the conditioning normalizes over the two *median cuts*
of the right and wrong densities on the respective side of ``s``; class
priors can optionally be mixed in for the prior-weighted variant.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from ..exceptions import CalibrationError
from .gaussian import Gaussian
from .mle import PopulationEstimates


@dataclasses.dataclass(frozen=True)
class QualityProbabilities:
    """The four probabilities of paper section 2.3.3 at threshold ``s``."""

    threshold: float
    right_given_above: float   # P(c = right | q > s)
    wrong_given_below: float   # P(c = wrong | q < s)
    right_given_below: float   # P(c = right | q < s) — false negative
    wrong_given_above: float   # P(c = wrong | q > s) — false positive

    def as_dict(self) -> dict:
        """Plain-dict view for reports and benches."""
        return {
            "s": self.threshold,
            "P(right|q>s)": self.right_given_above,
            "P(wrong|q<s)": self.wrong_given_below,
            "P(right|q<s)": self.right_given_below,
            "P(wrong|q>s)": self.wrong_given_above,
        }


def selection_probabilities(right: Gaussian, wrong: Gaussian,
                            threshold: float,
                            prior_right: Optional[float] = None
                            ) -> QualityProbabilities:
    """Compute the four probabilities from the fitted densities.

    Parameters
    ----------
    right, wrong:
        MLE Gaussians of the two populations.
    threshold:
        Acceptance threshold ``s``.
    prior_right:
        Optional prior probability of a right classification.  The paper's
        formulas (section 2.3.3) normalize the median cuts *without*
        priors — ``P(right|q>s) = Phi^c_r(s) / (Phi^c_r(s) + Phi^c_w(s))``
        — which corresponds to equal priors; pass the empirical prior for
        the Bayes-weighted variant.
    """
    if prior_right is not None and not 0.0 < prior_right < 1.0:
        raise CalibrationError(
            f"prior_right must be in (0, 1), got {prior_right}")
    w_r = 0.5 if prior_right is None else float(prior_right)
    w_w = 1.0 - w_r

    right_above = w_r * float(right.survival(threshold))
    wrong_above = w_w * float(wrong.survival(threshold))
    right_below = w_r * float(right.cdf(threshold))
    wrong_below = w_w * float(wrong.cdf(threshold))

    above = right_above + wrong_above
    below = right_below + wrong_below
    if above <= 0 or below <= 0:
        raise CalibrationError(
            f"threshold {threshold} leaves an empty side of the split")

    return QualityProbabilities(
        threshold=float(threshold),
        right_given_above=right_above / above,
        wrong_given_below=wrong_below / below,
        right_given_below=right_below / below,
        wrong_given_above=wrong_above / above,
    )


def probabilities_from_estimates(estimates: PopulationEstimates,
                                 threshold: float,
                                 use_empirical_prior: bool = False
                                 ) -> QualityProbabilities:
    """Convenience wrapper operating on :class:`PopulationEstimates`."""
    prior = None
    if use_empirical_prior:
        total = estimates.n_right + estimates.n_wrong
        prior = estimates.n_right / total if total else None
    return selection_probabilities(estimates.right, estimates.wrong,
                                   threshold, prior_right=prior)


def empirical_probabilities(qualities: np.ndarray, correct: np.ndarray,
                            threshold: float) -> QualityProbabilities:
    """The same four quantities measured directly on labeled data.

    Useful to validate the density-based numbers against ground truth on
    the analysis set (the paper's Fig. 5 data supports both views).
    """
    qualities = np.asarray(qualities, dtype=float).ravel()
    correct = np.asarray(correct, dtype=bool).ravel()
    if qualities.shape != correct.shape:
        raise CalibrationError("qualities and correct must align")
    above = qualities > threshold
    n_above = int(np.sum(above))
    n_below = int(np.sum(~above))
    if n_above == 0 or n_below == 0:
        raise CalibrationError(
            f"threshold {threshold} leaves an empty side of the data split")
    return QualityProbabilities(
        threshold=float(threshold),
        right_given_above=float(np.sum(correct & above)) / n_above,
        wrong_given_below=float(np.sum(~correct & ~above)) / n_below,
        right_given_below=float(np.sum(correct & ~above)) / n_below,
        wrong_given_above=float(np.sum(~correct & above)) / n_above,
    )
