"""Unit tests of the naive reference kernels themselves.

The reference implementations are the oracle of the differential
harness, so they get their own direct checks against closed forms and
hand-computed values — an oracle that is wrong in the same way as the
optimized code would make the whole harness vacuous.
"""

import math

import numpy as np
import pytest

from repro.exceptions import CalibrationError
from repro.stats.gaussian import Gaussian
from repro.verify import reference


class TestStdCues:
    def test_hand_computed_window(self):
        signal = np.array([[0.0], [2.0], [0.0], [2.0]])
        starts, cues = reference.std_cues(signal, window=4, hop=4)
        assert starts.tolist() == [0]
        assert cues[0][0] == pytest.approx(1.0)

    def test_constant_signal_is_zero(self):
        # 3.5 is exactly representable, so the two-pass std is exactly 0;
        # non-representable constants may leave ~1e-16 rounding residue.
        signal = np.full((16, 2), 3.5)
        _, cues = reference.std_cues(signal, window=8, hop=4)
        assert all(value == 0.0 for row in cues for value in row)

    def test_nonrepresentable_constant_is_rounding_noise(self):
        signal = np.full((16, 2), 3.7)
        _, cues = reference.std_cues(signal, window=8, hop=4)
        assert all(value <= 1e-12 for row in cues for value in row)

    def test_tail_window_dropped(self):
        signal = np.zeros((10, 1))
        starts, _ = reference.std_cues(signal, window=4, hop=3)
        assert starts.tolist() == [0, 3, 6]


class TestGaussianMF:
    def test_peak_and_inflection(self):
        assert reference.gaussian_mf(1.5, 1.5, 0.3) == 1.0
        assert reference.gaussian_mf(2.0, 1.0, 1.0) == pytest.approx(
            math.exp(-0.5))

    def test_far_field_underflows_to_zero(self):
        assert reference.gaussian_mf(1e6, 0.0, 1e-3) == 0.0


class TestTSKEvaluate:
    def test_single_rule_is_its_consequent(self):
        means = [[0.0, 0.0]]
        sigmas = [[1.0, 1.0]]
        coefficients = [[2.0, -1.0, 0.5]]
        x = [[1.0, 3.0]]
        out = reference.tsk_evaluate(means, sigmas, coefficients, 1, x)
        assert out[0] == pytest.approx(2.0 * 1.0 - 1.0 * 3.0 + 0.5)

    def test_order0_ignores_linear_terms(self):
        means = [[0.0], [4.0]]
        sigmas = [[1.0], [1.0]]
        coefficients = [[99.0, 1.0], [99.0, 3.0]]
        out = reference.tsk_evaluate(means, sigmas, coefficients, 0,
                                     [[0.0]])
        # At x=0 rule 1 dominates; output stays inside the constants.
        assert 1.0 <= out[0] <= 3.0
        assert out[0] == pytest.approx(1.0, abs=1e-3)

    def test_underflow_falls_back_to_uniform_weights(self):
        means = [[0.0], [1.0]]
        sigmas = [[1e-6], [1e-6]]
        coefficients = [[0.0, 2.0], [0.0, 6.0]]
        out = reference.tsk_evaluate(means, sigmas, coefficients, 0,
                                     [[1e6]])
        assert out[0] == pytest.approx(4.0)  # mean of the constants


class TestSubtractivePotentials:
    def test_tight_cluster_potentials_count_members(self):
        xn = np.zeros((5, 2))
        potentials = reference.subtractive_potentials(xn, radius=0.5)
        assert potentials == pytest.approx([5.0] * 5)

    def test_isolated_point_has_unit_potential(self):
        xn = np.array([[0.0, 0.0], [100.0, 100.0]])
        potentials = reference.subtractive_potentials(xn, radius=0.5)
        assert potentials == pytest.approx([1.0, 1.0])

    def test_fit_indices_two_blobs(self):
        rng = np.random.default_rng(5)
        x = np.vstack([rng.normal(0.0, 0.05, size=(20, 2)),
                       rng.normal(1.0, 0.05, size=(20, 2))])
        indices = reference.subtractive_fit_indices(x, radius=0.5)
        assert len(indices) == 2
        sides = {int(x[i, 0] > 0.5) for i in indices}
        assert sides == {0, 1}


class TestLSE:
    def test_solve_exact_system(self):
        a = np.array([[1.0, 0.0], [0.0, 2.0], [1.0, 1.0]])
        theta = np.array([3.0, -1.0])
        solution = reference.lse_solve_svd(a, a @ theta)
        assert solution == pytest.approx(theta)

    def test_rank_deficient_uses_pseudoinverse(self):
        a = np.array([[1.0, 1.0], [2.0, 2.0]])
        y = np.array([1.0, 2.0])
        solution = reference.lse_solve_svd(a, y)
        # Minimum-norm least squares: both columns share the weight.
        assert solution == pytest.approx([0.5, 0.5])


class TestNormalize:
    @pytest.mark.parametrize("raw, expected", [
        (0.0, 0.0), (1.0, 1.0), (0.4, 0.4),
        (-0.3, 0.3), (1.2, 0.8), (-0.5, 0.5), (1.5, 0.5),
    ])
    def test_mapping(self, raw, expected):
        assert reference.normalize(np.array([raw]))[0] == pytest.approx(
            expected)

    @pytest.mark.parametrize("raw", [-0.6, 1.6, np.nan, np.inf, -np.inf])
    def test_epsilon(self, raw):
        assert np.isnan(reference.normalize(np.array([raw]))[0])


class TestIntersectionBetweenMeans:
    def test_equal_sigma_is_midpoint(self):
        value = reference.intersection_between_means(
            Gaussian(0.8, 0.1), Gaussian(0.4, 0.1))
        assert value == pytest.approx(0.6)

    def test_matches_closed_form_for_unequal_sigma(self):
        right, wrong = Gaussian(0.85, 0.07), Gaussian(0.45, 0.16)
        value = reference.intersection_between_means(right, wrong)
        assert right.pdf(value) == pytest.approx(wrong.pdf(value),
                                                 rel=1e-9)
        assert wrong.mu < value < right.mu

    def test_requires_ordered_means(self):
        with pytest.raises(CalibrationError):
            reference.intersection_between_means(Gaussian(0.3, 0.1),
                                                 Gaussian(0.7, 0.1))
