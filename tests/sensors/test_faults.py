"""Tests for sensor fault injection and the CQM's behaviour under faults.

The last class probes an honest limitation: a fully stuck accelerometer
produces exactly the cue signature of a still pen, so the CQM — which
sees only cues and the emitted class — *cannot* flag that failure.  This
distinguishes the paper's quality-of-context from sensor-fault detection
(related work handles the latter with constant measures, paper §4).
"""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.sensors.accelerometer import ACTIVITY_MODELS
from repro.sensors.signal import (ADXL_SENSOR, FaultySensorModel,
                                  SensorModel)


class TestValidation:
    def test_stuck_from_nonnegative(self):
        with pytest.raises(ConfigurationError):
            FaultySensorModel(stuck_from=-1)

    def test_dropout_rate_range(self):
        with pytest.raises(ConfigurationError):
            FaultySensorModel(dropout_rate=1.0)

    def test_bad_axis(self, rng):
        model = FaultySensorModel(stuck_from=0, stuck_axes=(5,))
        with pytest.raises(ConfigurationError):
            model.apply(np.zeros((10, 3)), rng)


class TestStuckFault:
    def test_signal_frozen_after_onset(self, rng):
        model = FaultySensorModel(
            base=SensorModel(noise_std=0.0, bias_walk_std=0.0,
                             resolution_bits=None, full_scale=100.0),
            stuck_from=50)
        signal = rng.normal(size=(100, 3))
        out = model.apply(signal, rng)
        np.testing.assert_array_equal(out[:50], signal[:50])
        for i in range(50, 100):
            np.testing.assert_array_equal(out[i], out[50])

    def test_single_axis_stuck(self, rng):
        model = FaultySensorModel(
            base=SensorModel(noise_std=0.0, bias_walk_std=0.0,
                             resolution_bits=None, full_scale=100.0),
            stuck_from=0, stuck_axes=(1,))
        signal = rng.normal(size=(100, 3))
        out = model.apply(signal, rng)
        assert np.all(out[:, 1] == out[0, 1])
        np.testing.assert_array_equal(out[:, 0], signal[:, 0])

    def test_stuck_beyond_signal_is_noop(self, rng):
        model = FaultySensorModel(
            base=SensorModel(noise_std=0.0, bias_walk_std=0.0,
                             resolution_bits=None, full_scale=100.0),
            stuck_from=1000)
        signal = rng.normal(size=(100, 3))
        np.testing.assert_array_equal(model.apply(signal, rng), signal)


class TestDropout:
    def test_dropout_repeats_previous_sample(self):
        model = FaultySensorModel(
            base=SensorModel(noise_std=0.0, bias_walk_std=0.0,
                             resolution_bits=None, full_scale=1e6),
            dropout_rate=0.5)
        rng = np.random.default_rng(0)
        signal = np.arange(300, dtype=float).reshape(-1, 1) * np.ones((1, 3))
        out = model.apply(signal, rng)
        repeats = np.sum(np.all(out[1:] == out[:-1], axis=1))
        assert 100 < repeats < 200  # ~50% of samples held

    def test_dropout_creates_held_samples(self, rng):
        base = SensorModel(noise_std=0.0, bias_walk_std=0.0,
                           resolution_bits=None, full_scale=100.0)
        trace = ACTIVITY_MODELS["writing"].generate(2000, 100.0, rng)
        healthy = base.apply(trace, np.random.default_rng(1))
        lossy = FaultySensorModel(base=base, dropout_rate=0.8).apply(
            trace, np.random.default_rng(1))
        healthy_holds = np.sum(np.all(np.diff(healthy, axis=0) == 0, axis=1))
        lossy_holds = np.sum(np.all(np.diff(lossy, axis=0) == 0, axis=1))
        assert healthy_holds == 0
        assert lossy_holds > 1000  # ~80% of 2000 samples held


class TestCQMUnderFaults:
    def test_stuck_sensor_masquerades_as_lying(self, experiment, rng):
        """Honest limitation: a stuck sensor during writing produces the
        exact cue signature of a still pen; the classifier reports
        'lying' and the CQM assigns it *high* quality — quality of
        context is not sensor-fault detection."""
        from repro.sensors.cues import AWAREPEN_CUES

        trace = ACTIVITY_MODELS["writing"].generate(1000, 100.0, rng)
        stuck = FaultySensorModel(base=ADXL_SENSOR, stuck_from=0).apply(
            trace, rng)
        _, cues = AWAREPEN_CUES.extract_all(stuck, window=100, hop=100)
        qualified = [experiment.augmented.classify(c) for c in cues]
        # Every window is (wrongly, relative to the user's activity)
        # classified as lying...
        assert all(q.context.name == "lying" for q in qualified)
        # ...and carries high quality: the cue evidence genuinely
        # supports 'lying'.
        defined = [q.quality for q in qualified if q.quality is not None]
        assert np.mean(defined) > 0.5

    def test_partial_fault_lowers_quality(self, experiment, rng):
        """A *single* stuck axis leaves an inconsistent cue pattern
        (two live axes, one dead) that the quality FIS has never seen
        associated with a right classification — mean q must drop
        relative to the healthy signal."""
        from repro.sensors.cues import AWAREPEN_CUES

        trace = ACTIVITY_MODELS["writing"].generate(2000, 100.0, rng)
        healthy = ADXL_SENSOR.apply(trace, np.random.default_rng(3))
        faulty = FaultySensorModel(base=ADXL_SENSOR, stuck_from=0,
                                   stuck_axes=(0,)).apply(
            trace, np.random.default_rng(3))

        def mean_quality(signal):
            _, cues = AWAREPEN_CUES.extract_all(signal, window=100, hop=100)
            q = experiment.augmented.qualities(cues)
            defined = q[~np.isnan(q)]
            return float(np.mean(defined)) if defined.size else 0.0

        assert mean_quality(faulty) < mean_quality(healthy)
