"""Synthetic AwarePen datasets: scenario scripts, generation, splits."""

from .activities import evaluation_script, stress_script, training_script
from .dsl import STYLES, format_scenario, parse_scenario, parse_segment
from .export import load_csv, load_npz, save_csv, save_npz
from .generator import (AwarePenMaterial, WindowDataset, generate_dataset,
                        make_awarepen_material, windows_to_dataset)
from .splits import Split, three_way_split, train_check_split

__all__ = [
    "training_script", "evaluation_script", "stress_script",
    "WindowDataset", "windows_to_dataset", "generate_dataset",
    "AwarePenMaterial", "make_awarepen_material",
    "Split", "train_check_split", "three_way_split",
    "parse_scenario", "parse_segment", "format_scenario", "STYLES",
    "save_npz", "load_npz", "save_csv", "load_csv",
]
