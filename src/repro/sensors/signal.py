"""Sensor-signal degradation models.

The paper's AwarePen reads a 3-axis ADXL accelerometer on a Particle
Computer node.  Real MEMS accelerometers add white noise, slowly drifting
bias, saturation and ADC quantization to the true motion signal; this
module models those effects so the synthetic substrate exercises the same
robustness the physical deployment needed.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

import numpy as np

from ..exceptions import ConfigurationError


@dataclasses.dataclass(frozen=True)
class SensorModel:
    """Parametric imperfection model applied to an ideal acceleration signal.

    Parameters
    ----------
    noise_std:
        White Gaussian noise standard deviation in g.
    bias_walk_std:
        Per-sample standard deviation of the random-walk bias drift in g.
    full_scale:
        Saturation magnitude in g (ADXL202-style parts clip near +-2 g).
    resolution_bits:
        ADC resolution; quantization maps the ``[-full_scale, full_scale]``
        range onto ``2**resolution_bits`` steps.  ``None`` disables
        quantization.
    """

    noise_std: float = 0.02
    bias_walk_std: float = 0.0005
    full_scale: float = 2.0
    resolution_bits: Optional[int] = 10

    def __post_init__(self) -> None:
        if self.noise_std < 0:
            raise ConfigurationError(
                f"noise_std must be >= 0, got {self.noise_std}")
        if self.bias_walk_std < 0:
            raise ConfigurationError(
                f"bias_walk_std must be >= 0, got {self.bias_walk_std}")
        if self.full_scale <= 0:
            raise ConfigurationError(
                f"full_scale must be > 0, got {self.full_scale}")
        if self.resolution_bits is not None and self.resolution_bits < 2:
            raise ConfigurationError(
                f"resolution_bits must be >= 2, got {self.resolution_bits}")

    def apply(self, ideal: np.ndarray,
              rng: np.random.Generator) -> np.ndarray:
        """Degrade an ideal ``(n_samples, n_axes)`` signal.

        The input array is not modified.
        """
        ideal = np.asarray(ideal, dtype=float)
        if ideal.ndim != 2:
            raise ConfigurationError(
                f"signal must be 2-D (samples x axes), got {ideal.shape}")
        n, axes = ideal.shape
        out = ideal.copy()
        if self.noise_std > 0:
            out += rng.normal(0.0, self.noise_std, size=(n, axes))
        if self.bias_walk_std > 0:
            steps = rng.normal(0.0, self.bias_walk_std, size=(n, axes))
            out += np.cumsum(steps, axis=0)
        np.clip(out, -self.full_scale, self.full_scale, out=out)
        if self.resolution_bits is not None:
            levels = 2 ** self.resolution_bits
            step = 2.0 * self.full_scale / levels
            out = np.round(out / step) * step
        return out


#: A noise-free pass-through model, useful in unit tests.
IDEAL_SENSOR = SensorModel(noise_std=0.0, bias_walk_std=0.0,
                           resolution_bits=None)

#: Default model approximating the AwarePen's ADXL part.
ADXL_SENSOR = SensorModel()


@dataclasses.dataclass(frozen=True)
class FaultySensorModel:
    """Fault injector wrapping a base :class:`SensorModel`.

    Models the two classic MEMS failure modes the Quality-of-Context
    literature worries about (paper section 4 notes related work focuses
    on "algorithmic errors or sensor failure"):

    * **stuck-at** — from :attr:`stuck_from` on, :attr:`stuck_axes` hold
      their last healthy value (a frozen ADC or broken solder joint);
    * **dropout** — each sample is lost with probability
      :attr:`dropout_rate` and replaced by the previous delivered value
      (sample-and-hold behaviour of a lossy sensor bus).

    Parameters
    ----------
    base:
        The healthy degradation model applied first.
    stuck_from:
        Sample index at which the stuck fault begins; ``None`` disables.
    stuck_axes:
        Axes affected by the stuck fault (default: all).
    dropout_rate:
        Per-sample loss probability in ``[0, 1)``.
    """

    base: SensorModel = ADXL_SENSOR
    stuck_from: Optional[int] = None
    stuck_axes: Optional[tuple] = None
    dropout_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.stuck_from is not None and self.stuck_from < 0:
            raise ConfigurationError(
                f"stuck_from must be >= 0, got {self.stuck_from}")
        if not 0.0 <= self.dropout_rate < 1.0:
            raise ConfigurationError(
                f"dropout_rate must be in [0, 1), got {self.dropout_rate}")

    def apply(self, ideal: np.ndarray,
              rng: np.random.Generator) -> np.ndarray:
        """Degrade and then fault-inject an ideal signal."""
        out = self.base.apply(ideal, rng)
        n, axes = out.shape
        if self.dropout_rate > 0:
            lost = rng.random(size=n) < self.dropout_rate
            lost[0] = False  # the first sample is always delivered
            for i in range(1, n):
                if lost[i]:
                    out[i] = out[i - 1]
        if self.stuck_from is not None and self.stuck_from < n:
            affected = (tuple(range(axes)) if self.stuck_axes is None
                        else tuple(self.stuck_axes))
            for axis in affected:
                if not 0 <= axis < axes:
                    raise ConfigurationError(
                        f"stuck axis {axis} outside 0..{axes - 1}")
                out[self.stuck_from:, axis] = out[self.stuck_from, axis]
        return out
