"""End-to-end AwarePen experiment pipeline.

One call reproduces the paper's entire evaluation flow: generate the data
roles, pre-train the context classifier, automatically construct the
quality FIS, calibrate the threshold on the analysis set, and evaluate the
quality gate on the small test set.  The benches and examples all build on
this module so the experimental setup stays identical across them.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from . import observability as obs
from .classifiers.base import ContextClassifier
from .classifiers.fuzzy_classifier import TSKClassifier
from .core.calibration import Calibration, calibrate
from .core.construction import (ConstructionConfig, ConstructionResult,
                                build_quality_measure)
from .core.filtering import EpsilonPolicy, evaluate_filtering
from .core.interconnection import QualityAugmentedClassifier
from .datasets.generator import (AwarePenMaterial, WindowDataset,
                                 make_awarepen_material)
from .stats.metrics import FilterOutcome, accuracy


@dataclasses.dataclass(frozen=True)
class ExperimentResult:
    """Everything the paper's evaluation section reports, in one object."""

    material: AwarePenMaterial
    classifier: ContextClassifier
    construction: ConstructionResult
    augmented: QualityAugmentedClassifier
    calibration: Calibration
    evaluation_outcome: FilterOutcome
    evaluation_qualities: np.ndarray
    evaluation_correct: np.ndarray

    @property
    def threshold(self) -> float:
        """The calibrated acceptance threshold ``s``."""
        return self.calibration.s

    @property
    def test_accuracy_before(self) -> float:
        """Raw classifier accuracy on the evaluation set."""
        return self.evaluation_outcome.accuracy_before

    @property
    def test_accuracy_after(self) -> float:
        """Accuracy among the quality-accepted classifications."""
        return self.evaluation_outcome.accuracy_after


def train_default_classifier(material: AwarePenMaterial,
                             mode: str = "one-vs-rest",
                             radius: float = 0.5) -> TSKClassifier:
    """Pre-train the AwarePen TSK classifier on the clean recordings."""
    classifier = TSKClassifier(material.classes, mode=mode, radius=radius)
    classifier.fit(material.classifier_train.cues,
                   material.classifier_train.labels)
    return classifier


def run_awarepen_experiment(seed: int = 7,
                            evaluation_size: int = 24,
                            classifier: Optional[ContextClassifier] = None,
                            config: ConstructionConfig = ConstructionConfig(),
                            material: Optional[AwarePenMaterial] = None
                            ) -> ExperimentResult:
    """Run the full pipeline; deterministic for a fixed seed.

    Parameters
    ----------
    seed:
        Master seed for data generation.
    evaluation_size:
        Size of the small test set (the paper used 24 points).
    classifier:
        Optional pre-fitted black-box classifier; when omitted the
        AwarePen TSK classifier is trained on the clean recordings.
    config:
        Quality-FIS construction hyper-parameters.
    material:
        Optional pre-generated data roles (reuse across ablations).
    """
    with obs.trace("experiment.run", seed=seed):
        if material is None:
            with obs.trace("experiment.material"):
                material = make_awarepen_material(
                    seed=seed, evaluation_size=evaluation_size)
        if classifier is None:
            with obs.trace("experiment.classifier_fit"):
                classifier = train_default_classifier(material)

        with obs.trace("experiment.construction"):
            construction = build_quality_measure(
                classifier, material.quality_train, material.quality_check,
                config=config)
        augmented = QualityAugmentedClassifier(classifier,
                                               construction.quality)
        calibration = calibrate(augmented, material.analysis)

        with obs.trace("experiment.evaluation"):
            outcome = evaluate_filtering(
                augmented, material.evaluation, threshold=calibration.s,
                epsilon_policy=EpsilonPolicy.REJECT)

            predicted = classifier.predict_indices(material.evaluation.cues)
            qualities = augmented.quality.measure_batch(
                material.evaluation.cues, predicted.astype(float))
            correct = predicted == material.evaluation.labels

    return ExperimentResult(
        material=material,
        classifier=classifier,
        construction=construction,
        augmented=augmented,
        calibration=calibration,
        evaluation_outcome=outcome,
        evaluation_qualities=qualities,
        evaluation_correct=correct,
    )


def classifier_accuracy(classifier: ContextClassifier,
                        dataset: WindowDataset) -> float:
    """Convenience: accuracy of a classifier on a window dataset."""
    return accuracy(dataset.labels, classifier.predict_indices(dataset.cues))
