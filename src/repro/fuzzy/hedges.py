"""Linguistic hedges (Zadeh).

Hedges modify fuzzy sets the way adverbs modify adjectives: *very*
concentrates, *somewhat* dilates, *indeed* (contrast intensification)
sharpens.  They complete the fuzzy-set toolbox and let appliance rules be
phrased naturally ("IF quality IS very low THEN discard").
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Union

import numpy as np

from ..exceptions import ConfigurationError
from .membership import MembershipFunction
from .sets import FuzzySet

ArrayLike = Union[float, np.ndarray]


def very(mu: ArrayLike) -> ArrayLike:
    """Concentration: ``mu^2``."""
    return np.asarray(mu, dtype=float) ** 2


def extremely(mu: ArrayLike) -> ArrayLike:
    """Strong concentration: ``mu^3``."""
    return np.asarray(mu, dtype=float) ** 3


def somewhat(mu: ArrayLike) -> ArrayLike:
    """Dilation: ``sqrt(mu)``."""
    return np.sqrt(np.asarray(mu, dtype=float))


def slightly(mu: ArrayLike) -> ArrayLike:
    """Mild dilation: ``mu^(1/3)``."""
    return np.asarray(mu, dtype=float) ** (1.0 / 3.0)


def indeed(mu: ArrayLike) -> ArrayLike:
    """Contrast intensification: push memberships away from 0.5."""
    mu = np.asarray(mu, dtype=float)
    return np.where(mu <= 0.5, 2.0 * mu ** 2, 1.0 - 2.0 * (1.0 - mu) ** 2)


def power_hedge(p: float) -> Callable[[ArrayLike], ArrayLike]:
    """Generic power hedge ``mu -> mu^p`` (p > 0)."""
    if p <= 0:
        raise ConfigurationError(f"hedge power must be > 0, got {p}")

    def hedge(mu: ArrayLike) -> ArrayLike:
        return np.asarray(mu, dtype=float) ** p

    return hedge


HEDGES: Dict[str, Callable[[ArrayLike], ArrayLike]] = {
    "very": very,
    "extremely": extremely,
    "somewhat": somewhat,
    "slightly": slightly,
    "indeed": indeed,
}


@dataclasses.dataclass
class HedgedMF(MembershipFunction):
    """A membership function with a hedge applied to its output."""

    base: MembershipFunction
    hedge: Callable[[ArrayLike], ArrayLike]
    hedge_name: str = "hedged"

    def __call__(self, x: ArrayLike) -> ArrayLike:
        return self.hedge(self.base(x))

    def parameters(self) -> Dict[str, float]:
        params = dict(self.base.parameters())
        params["hedge"] = self.hedge_name  # type: ignore[assignment]
        return params

    def support_center(self) -> float:
        return self.base.support_center()


def apply_hedge(fuzzy_set: FuzzySet, hedge_name: str) -> FuzzySet:
    """Return a new fuzzy set with the named hedge applied.

    The result is named linguistically, e.g. ``"very quality.low"``.
    """
    try:
        hedge = HEDGES[hedge_name]
    except KeyError:
        raise KeyError(
            f"unknown hedge {hedge_name!r}; available: "
            f"{sorted(HEDGES)}") from None
    return FuzzySet(name=f"{hedge_name} {fuzzy_set.name}",
                    mf=HedgedMF(base=fuzzy_set.mf, hedge=hedge,
                                hedge_name=hedge_name))
