"""Tests for repro.core.explanation — quality-value decomposition."""

import numpy as np
import pytest

from repro.core.explanation import explain
from repro.exceptions import DimensionError


class TestDecomposition:
    def test_contributions_sum_to_raw(self, experiment, material):
        quality = experiment.augmented.quality
        cues = material.evaluation.cues[0]
        predicted = int(experiment.classifier.predict_indices(
            cues.reshape(1, -1))[0])
        exp = explain(quality, cues, predicted)
        total = sum(c.contribution for c in exp.contributions)
        assert total == pytest.approx(exp.raw_output, abs=1e-12)

    def test_quality_matches_measure(self, experiment, material):
        quality = experiment.augmented.quality
        for cues in material.evaluation.cues[:8]:
            predicted = int(experiment.classifier.predict_indices(
                cues.reshape(1, -1))[0])
            exp = explain(quality, cues, predicted)
            direct = quality.measure(cues, predicted)
            if direct is None:
                assert exp.quality is None
            else:
                assert exp.quality == pytest.approx(direct)

    def test_normalized_strengths_partition(self, experiment, material):
        quality = experiment.augmented.quality
        cues = material.evaluation.cues[3]
        exp = explain(quality, cues, 1)
        total = sum(c.normalized_strength for c in exp.contributions)
        assert total == pytest.approx(1.0)

    def test_one_contribution_per_rule(self, experiment, material):
        quality = experiment.augmented.quality
        exp = explain(quality, material.evaluation.cues[0], 0)
        assert len(exp.contributions) == quality.n_rules

    def test_dominant_rule(self, experiment, material):
        quality = experiment.augmented.quality
        exp = explain(quality, material.evaluation.cues[0], 0)
        dom = exp.dominant_rule
        assert dom.normalized_strength == max(
            c.normalized_strength for c in exp.contributions)

    def test_cue_arity_validated(self, experiment):
        with pytest.raises(DimensionError):
            explain(experiment.augmented.quality, np.zeros(5), 0)


class TestTextRendering:
    def test_contains_structure(self, experiment, material):
        quality = experiment.augmented.quality
        cues = material.evaluation.cues[0]
        exp = explain(quality, cues, 1)
        text = exp.to_text(cue_names=["std_x", "std_y", "std_z"])
        assert "std_x=" in text
        assert "c=1" in text
        assert "rule 1" in text
        assert "q =" in text

    def test_default_names(self, experiment, material):
        quality = experiment.augmented.quality
        exp = explain(quality, material.evaluation.cues[0], 0)
        assert "v_1=" in exp.to_text()

    def test_name_count_validated(self, experiment, material):
        quality = experiment.augmented.quality
        exp = explain(quality, material.evaluation.cues[0], 0)
        with pytest.raises(DimensionError):
            exp.to_text(cue_names=["only_one"])

    def test_dominant_marker(self, experiment, material):
        quality = experiment.augmented.quality
        # Find an input with a clearly dominant rule.
        for cues in material.evaluation.cues:
            exp = explain(quality, cues, 0)
            if exp.dominant_rule.normalized_strength > 0.5:
                assert "<== dominant" in exp.to_text()
                break
        else:
            pytest.skip("no dominant-rule input in the evaluation set")
