"""repro — Context Quality Measure (CQM) for smart appliances.

A complete, from-scratch reproduction of

    M. Berchtold, C. Decker, T. Riedel, T. Zimmer, M. Beigl:
    "Using a Context Quality Measure for Improving Smart Appliances",
    ICDCS Workshops 2007.

Subpackages
-----------
``repro.fuzzy``
    TSK/Mamdani fuzzy inference, membership functions, norms.
``repro.clustering``
    Subtractive, mountain and fuzzy c-means clustering.
``repro.anfis``
    ANFIS hybrid learning (LSE forward pass + gradient backward pass).
``repro.stats``
    MLE Gaussians, density-intersection thresholds, CQM probabilities.
``repro.sensors``
    Simulated 3-axis accelerometer, degradation models, cue extraction.
``repro.classifiers``
    Black-box context classifiers (TSK-FIS, nearest centroid, k-NN).
``repro.datasets``
    Scripted AwarePen scenarios, dataset generation and splits.
``repro.core``
    The contribution: quality FIS construction, normalization,
    interconnection, calibration, filtering, prediction and fusion.
``repro.appliances``
    The AwareOffice simulation: event bus, AwarePen, whiteboard camera.
``repro.observability``
    Metrics registry, span tracing and exporters watching the pipeline.
``repro.serving``
    Micro-batching, quality-gated asyncio inference service with a
    versioned model registry, ε load-shedding and hot-swap.
``repro.experiment``
    One-call end-to-end pipeline used by examples and benchmarks.
"""

from . import (anfis, appliances, classifiers, clustering, core, datasets,
               fuzzy, observability, parallel, sensors, serving, stats)
from .exceptions import (CalibrationError, ConfigurationError, DimensionError,
                         EmptyDatasetError, NotFittedError, ReproError,
                         ServiceClosedError, TrainingError)
from .experiment import (ExperimentResult, run_awarepen_experiment,
                         train_default_classifier)
from .types import (Classification, ContextClass, LabeledWindow,
                    QualifiedClassification)

__version__ = "1.0.0"

__all__ = [
    "fuzzy", "clustering", "anfis", "stats", "sensors", "classifiers",
    "datasets", "core", "appliances", "parallel", "observability",
    "serving",
    "ContextClass", "Classification", "QualifiedClassification",
    "LabeledWindow",
    "ReproError", "ConfigurationError", "NotFittedError", "DimensionError",
    "TrainingError", "CalibrationError", "EmptyDatasetError",
    "ServiceClosedError",
    "run_awarepen_experiment", "ExperimentResult",
    "train_default_classifier",
    "__version__",
]
