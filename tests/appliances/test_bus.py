"""Tests for repro.appliances.bus and messages."""

import pytest

from repro.appliances.bus import EventBus
from repro.appliances.messages import ContextEvent
from repro.exceptions import ConfigurationError
from repro.types import ContextClass

CTX = ContextClass(1, "writing")


def make_event(topic="context.pen", quality=0.9):
    return ContextEvent.create(source="pen", topic=topic, context=CTX,
                               quality=quality, time_s=1.0)


class TestContextEvent:
    def test_ids_monotonic(self):
        a = make_event()
        b = make_event()
        assert b.event_id > a.event_id

    def test_has_quality(self):
        assert make_event(quality=0.5).has_quality
        assert not make_event(quality=None).has_quality


class TestEventBus:
    def test_exact_topic_delivery(self):
        bus = EventBus()
        received = []
        bus.subscribe("context.pen", received.append, name="camera")
        delivered = bus.publish(make_event())
        assert delivered == 1
        assert len(received) == 1

    def test_no_delivery_on_other_topic(self):
        bus = EventBus()
        received = []
        bus.subscribe("context.chair", received.append)
        assert bus.publish(make_event()) == 0
        assert received == []

    def test_wildcard_prefix(self):
        bus = EventBus()
        received = []
        bus.subscribe("context.*", received.append)
        bus.publish(make_event("context.pen"))
        bus.publish(make_event("context.chair"))
        bus.publish(make_event("status.pen"))
        assert len(received) == 2

    def test_multiple_subscribers(self):
        bus = EventBus()
        a, b = [], []
        bus.subscribe("context.pen", a.append)
        bus.subscribe("context.*", b.append)
        assert bus.publish(make_event()) == 2
        assert len(a) == 1 and len(b) == 1

    def test_failure_isolation(self):
        """A raising subscriber must not block other deliveries."""
        bus = EventBus()
        received = []

        def broken(event):
            raise RuntimeError("camera offline")

        bus.subscribe("context.pen", broken, name="broken-camera")
        bus.subscribe("context.pen", received.append, name="good-camera")
        delivered = bus.publish(make_event())
        assert delivered == 1
        assert len(received) == 1
        errors = bus.delivery_errors
        assert len(errors) == 1
        assert errors[0].subscriber == "broken-camera"
        assert "camera offline" in errors[0].error

    def test_unsubscribe(self):
        bus = EventBus()
        received = []
        bus.subscribe("context.pen", received.append)
        assert bus.unsubscribe(received.append) == 1
        bus.publish(make_event())
        assert received == []

    def test_empty_pattern_rejected(self):
        with pytest.raises(ConfigurationError):
            EventBus().subscribe("", lambda e: None)

    def test_counters(self):
        bus = EventBus()
        bus.publish(make_event())
        bus.publish(make_event())
        assert bus.n_published == 2

    def test_subscriber_names(self):
        bus = EventBus()
        bus.subscribe("context.*", lambda e: None, name="camera")
        assert bus.subscriber_names() == {"context.*": ["camera"]}


class TestReentrantUnsubscribe:
    """Handlers may (un)subscribe during delivery without breakage."""

    def test_handler_unsubscribing_itself(self):
        bus = EventBus()
        received = []

        def once(event):
            received.append(event)
            bus.unsubscribe(once)

        bus.subscribe("context.pen", once, name="once")
        assert bus.publish(make_event()) == 1
        assert bus.publish(make_event()) == 0
        assert len(received) == 1
        assert bus.delivery_errors == []

    def test_earlier_handler_unsubscribes_later_one(self):
        """A subscription removed mid-event is skipped, not called."""
        bus = EventBus()
        late_calls = []

        def late(event):
            late_calls.append(event)

        def early(event):
            bus.unsubscribe(late)

        bus.subscribe("context.pen", early, name="early")
        bus.subscribe("context.pen", late, name="late")
        delivered = bus.publish(make_event())
        assert delivered == 1
        assert late_calls == []
        assert bus.delivery_errors == []

    def test_handler_subscribing_new_one_sees_next_event_only(self):
        bus = EventBus()
        new_calls = []

        def newcomer(event):
            new_calls.append(event)

        def recruiter(event):
            bus.unsubscribe(newcomer)  # idempotence guard
            bus.subscribe("context.pen", newcomer, name="new")

        bus.subscribe("context.pen", recruiter, name="recruiter")
        bus.publish(make_event())
        assert new_calls == []  # not the event that recruited it
        bus.publish(make_event())
        assert len(new_calls) == 1

    def test_mutual_unsubscribe_is_safe(self):
        """Two handlers each removing the other: exactly one survives."""
        bus = EventBus()
        calls = []

        def a(event):
            calls.append("a")
            bus.unsubscribe(b)

        def b(event):
            calls.append("b")
            bus.unsubscribe(a)

        bus.subscribe("context.pen", a, name="a")
        bus.subscribe("context.pen", b, name="b")
        delivered = bus.publish(make_event())
        assert delivered == 1
        assert calls == ["a"]
        assert bus.delivery_errors == []
        # The survivor still receives subsequent events.
        assert bus.publish(make_event()) == 1
