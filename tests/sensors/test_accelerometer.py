"""Tests for repro.sensors.accelerometer — activity motion models."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.sensors.accelerometer import (ACTIVITY_MODELS, AWAREPEN_CLASSES,
                                         DEFAULT_STYLE, ERRATIC_STYLE, LYING,
                                         PLAYING, WRITING, LyingStillModel,
                                         PlayingModel, UserStyle,
                                         WritingModel, blend, model_for)

RATE = 100.0


def variance_of(model, rng, n=2000, style=DEFAULT_STYLE):
    trace = model.generate(n, RATE, rng, style=style)
    return float(np.mean(np.std(trace, axis=0)))


class TestClasses:
    def test_canonical_classes(self):
        assert [c.index for c in AWAREPEN_CLASSES] == [0, 1, 2]
        assert {c.name for c in AWAREPEN_CLASSES} == {
            "lying", "writing", "playing"}

    def test_model_for(self):
        assert isinstance(model_for(LYING), LyingStillModel)
        assert isinstance(model_for(WRITING), WritingModel)
        assert isinstance(model_for(PLAYING), PlayingModel)

    def test_model_for_unknown(self):
        from repro.types import ContextClass
        with pytest.raises(KeyError):
            model_for(ContextClass(9, "juggling"))


class TestUserStyle:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            UserStyle(amplitude_scale=0.0)
        with pytest.raises(ConfigurationError):
            UserStyle(tremor=-0.1)
        with pytest.raises(ConfigurationError):
            UserStyle(pause_probability=1.5)


class TestActivitySignatures:
    def test_variance_ordering(self, rng):
        """The core property the cues rely on: lying << writing < playing."""
        lying = variance_of(ACTIVITY_MODELS["lying"], rng)
        writing = variance_of(ACTIVITY_MODELS["writing"], rng)
        playing = variance_of(ACTIVITY_MODELS["playing"], rng)
        assert lying < 0.05
        assert writing > 3 * lying
        assert playing > 1.5 * writing

    def test_lying_magnitude_near_one_g(self, rng):
        trace = ACTIVITY_MODELS["lying"].generate(500, RATE, rng)
        magnitudes = np.linalg.norm(trace, axis=1)
        assert np.mean(magnitudes) == pytest.approx(1.0, abs=0.05)

    def test_writing_has_periodic_energy(self, rng):
        trace = ACTIVITY_MODELS["writing"].generate(
            4096, RATE, rng, style=UserStyle(pause_probability=0.0))
        x = trace[:, 0] - np.mean(trace[:, 0])
        spectrum = np.abs(np.fft.rfft(x))
        freqs = np.fft.rfftfreq(len(x), d=1.0 / RATE)
        peak_freq = freqs[np.argmax(spectrum[1:]) + 1]
        # Stroke frequencies live in the 1.5-10 Hz band.
        assert 1.0 < peak_freq < 12.0

    def test_erratic_style_reduces_writing_energy(self, rng):
        default = variance_of(ACTIVITY_MODELS["writing"],
                              np.random.default_rng(1), style=DEFAULT_STYLE)
        erratic = variance_of(ACTIVITY_MODELS["writing"],
                              np.random.default_rng(1), style=ERRATIC_STYLE)
        assert erratic < default

    def test_pauses_create_quiet_stretches(self):
        rng = np.random.default_rng(3)
        style = UserStyle(pause_probability=1.0)  # always pausing
        trace = ACTIVITY_MODELS["writing"].generate(1000, RATE, rng,
                                                    style=style)
        paused_var = float(np.mean(np.std(trace, axis=0)))
        rng = np.random.default_rng(3)
        style = UserStyle(pause_probability=0.0)
        trace = ACTIVITY_MODELS["writing"].generate(1000, RATE, rng,
                                                    style=style)
        active_var = float(np.mean(np.std(trace, axis=0)))
        assert paused_var < 0.5 * active_var

    def test_shapes_and_validation(self, rng):
        for model in ACTIVITY_MODELS.values():
            assert model.generate(50, RATE, rng).shape == (50, 3)
            with pytest.raises(ConfigurationError):
                model.generate(0, RATE, rng)
            with pytest.raises(ConfigurationError):
                model.generate(10, 0.0, rng)

    def test_deterministic_given_rng(self):
        for name, model in ACTIVITY_MODELS.items():
            a = model.generate(100, RATE, np.random.default_rng(9))
            b = model.generate(100, RATE, np.random.default_rng(9))
            np.testing.assert_array_equal(a, b, err_msg=name)


class TestBlend:
    def test_endpoints(self):
        a = np.zeros((100, 3))
        b = np.ones((100, 3))
        mix = blend(a, b)
        np.testing.assert_allclose(mix[0], 0.0)
        np.testing.assert_allclose(mix[-1], 1.0)

    def test_midpoint(self):
        a = np.zeros((101, 3))
        b = np.ones((101, 3))
        np.testing.assert_allclose(blend(a, b)[50], 0.5)

    def test_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            blend(np.zeros((5, 3)), np.zeros((6, 3)))
