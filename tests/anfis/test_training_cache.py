"""Regression: the epoch-level forward cache must not change training.

Satellite of the backend PR: ``HybridTrainer`` reuses the premise-side
firing sweep across the per-epoch gradient, LSE and RMSE consumers.
These tests pin the contract that the cached run is *bit-identical* to
the uncached one — per backend — and that the cache actually removes
the redundant sweeps it claims to.
"""

import numpy as np
import pytest

from repro import backend as bk
from repro.anfis.training import HybridTrainer
from repro.fuzzy.tsk import TSKSystem


@pytest.fixture(autouse=True)
def _default_backend(monkeypatch):
    monkeypatch.delenv(bk.ENV_VAR, raising=False)
    bk.set_backend(None)
    yield
    bk.set_backend(None)


@pytest.fixture
def workload(rng):
    x = rng.normal(size=(96, 3))
    y = (rng.random(96) > 0.5).astype(float)
    means = rng.normal(size=(4, 3))
    sigmas = rng.uniform(0.5, 2.0, size=(4, 3))
    coefficients = rng.normal(size=(4, 4))
    template = TSKSystem(means, sigmas, coefficients, order=1)
    return x, y, template


def _train(template, x, y, use_cache, backend, check=True):
    with bk.use_backend(backend):
        system = template.copy()
        trainer = HybridTrainer(epochs=12, use_cache=use_cache, patience=4)
        kwargs = (dict(x_check=x[:32], y_check=y[:32]) if check else {})
        report = trainer.train(system, x, y, **kwargs)
    return system, report


@pytest.mark.parametrize("backend", ["numpy", "fused"])
class TestCachedTrainingBitIdentity:
    def test_trained_parameters_identical(self, workload, backend):
        x, y, template = workload
        cached, rep_c = _train(template, x, y, True, backend)
        plain, rep_p = _train(template, x, y, False, backend)
        assert np.array_equal(cached.means, plain.means)
        assert np.array_equal(cached.sigmas, plain.sigmas)
        assert np.array_equal(cached.coefficients, plain.coefficients)

    def test_history_identical(self, workload, backend):
        x, y, template = workload
        _, rep_c = _train(template, x, y, True, backend)
        _, rep_p = _train(template, x, y, False, backend)
        assert [(e.train_rmse, e.check_rmse, e.learning_rate)
                for e in rep_c.history] == \
               [(e.train_rmse, e.check_rmse, e.learning_rate)
                for e in rep_p.history]
        assert rep_c.best_epoch == rep_p.best_epoch
        assert rep_c.stopped_early == rep_p.stopped_early

    def test_no_check_set_path_identical(self, workload, backend):
        x, y, template = workload
        cached, _ = _train(template, x, y, True, backend, check=False)
        plain, _ = _train(template, x, y, False, backend, check=False)
        assert np.array_equal(cached.coefficients, plain.coefficients)


class TestCacheEffectiveness:
    def test_one_firing_sweep_per_epoch(self, workload, monkeypatch):
        """Cache on: epoch 0 pays one sweep, then one per gradient step.

        Uncached, every epoch pays three (gradients, design matrix,
        train RMSE).  Counted by intercepting the backend kernel.
        """
        x, y, template = workload
        calls = {"n": 0}
        backend = bk.get_backend("numpy")
        original = type(backend).firing_strengths

        def counting(self, *args, **kwargs):
            calls["n"] += 1
            return original(self, *args, **kwargs)

        monkeypatch.setattr(type(backend), "firing_strengths", counting)
        epochs = 6
        system = template.copy()
        HybridTrainer(epochs=epochs, use_cache=True).train(system, x, y)
        cached_calls = calls["n"]

        calls["n"] = 0
        system = template.copy()
        HybridTrainer(epochs=epochs, use_cache=False).train(system, x, y)
        uncached_calls = calls["n"]

        # epoch-0 fit + one recompute per epoch's gradient step.
        assert cached_calls == 1 + epochs
        # epoch-0 fit + (gradient, LSE, RMSE) per epoch.
        assert uncached_calls == 1 + 3 * epochs
