"""The whiteboard camera appliance.

Paper section 1: "the context received from the pen is used by the camera
of the whiteboard to take a picture copy of the content when a writing
session was over.  Thus, to allow for a high [quality] of the whiteboard
camera decision, a measure for the context input is required."

The camera subscribes to pen context events, gates them through a
:class:`QualityFilter`, tracks writing sessions, and "takes a picture"
(records a snapshot) when a trusted writing session ends.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from ..core.filtering import QualityFilter
from ..exceptions import ConfigurationError
from ..sensors.accelerometer import WRITING
from ..types import ContextClass
from .awarepen import PEN_TOPIC
from .base import Appliance
from .bus import EventBus
from .messages import ContextEvent


@dataclasses.dataclass(frozen=True)
class Snapshot:
    """One picture the camera decided to take."""

    time_s: float
    session_start_s: float
    n_writing_events: int
    trigger_event_id: int


class WhiteboardCamera(Appliance):
    """Quality-gated snapshot camera.

    Parameters
    ----------
    bus:
        The office event bus.
    gate:
        Quality filter; only events passing the gate influence the session
        state.  Pass ``None`` to model the paper's *before* condition (the
        camera believes every context event).
    writing_class:
        The context class that constitutes a writing session.
    min_session_events:
        Writing events needed before an ended session is photographed
        (debounces single spurious detections).
    """

    def __init__(self, bus: EventBus, gate: Optional[QualityFilter] = None,
                 writing_class: ContextClass = WRITING,
                 min_session_events: int = 2,
                 name: str = "whiteboard-camera",
                 topic: str = PEN_TOPIC) -> None:
        super().__init__(name=name, bus=bus)
        if min_session_events < 1:
            raise ConfigurationError(
                f"min_session_events must be >= 1, got {min_session_events}")
        self.gate = gate
        self.writing_class = writing_class
        self.min_session_events = int(min_session_events)
        self.snapshots: List[Snapshot] = []
        self.accepted_events = 0
        self.rejected_events = 0
        self._session_start: Optional[float] = None
        self._session_events = 0
        bus.subscribe(topic, self.on_event, name=self.name)

    # ------------------------------------------------------------------
    def on_event(self, event: ContextEvent) -> None:
        """Bus callback: update session state from one context event."""
        if self.gate is not None:
            accepted = (event.quality is not None
                        and event.quality > self.gate.threshold) or (
                            event.quality is None
                            and not self._rejects_epsilon())
            if not accepted:
                self.rejected_events += 1
                return
        self.accepted_events += 1

        if event.context.index == self.writing_class.index:
            if self._session_start is None:
                self._session_start = event.time_s
                self._session_events = 0
            self._session_events += 1
        else:
            self._maybe_snapshot(event)

    def _rejects_epsilon(self) -> bool:
        from ..core.filtering import EpsilonPolicy
        assert self.gate is not None
        return self.gate.epsilon_policy is EpsilonPolicy.REJECT

    def _maybe_snapshot(self, event: ContextEvent) -> None:
        if (self._session_start is not None
                and self._session_events >= self.min_session_events):
            self.snapshots.append(Snapshot(
                time_s=event.time_s,
                session_start_s=self._session_start,
                n_writing_events=self._session_events,
                trigger_event_id=event.event_id,
            ))
        self._session_start = None
        self._session_events = 0

    def flush(self, time_s: float) -> None:
        """End-of-simulation: close any open writing session."""
        if (self._session_start is not None
                and self._session_events >= self.min_session_events):
            self.snapshots.append(Snapshot(
                time_s=time_s,
                session_start_s=self._session_start,
                n_writing_events=self._session_events,
                trigger_event_id=-1,
            ))
        self._session_start = None
        self._session_events = 0

    # ------------------------------------------------------------------
    def describe(self) -> str:
        mode = "ungated" if self.gate is None else (
            f"gated at s={self.gate.threshold:.3f}")
        return f"WhiteboardCamera({self.name}): {mode}"
