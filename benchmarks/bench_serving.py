"""Experiment ``serving`` — micro-batching inference service under load.

Open-loop, seeded load generation (:mod:`repro.serving.loadgen`) against
the in-process :class:`~repro.serving.service.InferenceService`, swept
across the two knobs that shape a micro-batching deployment:

* the **batch deadline** — how long the first request in a batch may
  wait for company (latency floor vs batch efficiency);
* the **worker count** — concurrent batch consumers on the queue.

A final overload run shrinks the admission queue until the service
sheds, demonstrating the ε load-shedding path under honest open-loop
pressure.  Every run lands in ``BENCH_serving.json`` at the repo root
(throughput, exact latency percentiles, shed rate), diffable across
PRs like ``BENCH_throughput.json``.
"""

from __future__ import annotations

import json
import os
import platform
from pathlib import Path
from typing import Dict, List

import pytest

from repro.core.degradation import DegradationPolicy
from repro.core.persistence import QualityPackage
from repro.serving import (InferenceService, LoadgenConfig, ModelRegistry,
                           ServingConfig, run_loadgen)

#: Requests per swept configuration (seeded; arrival process included).
N_REQUESTS = 300
RATE_HZ = 2500.0
SEED = 7

#: The sweep grid: micro-batch flush deadlines x queue workers.
DEADLINES_S = (0.0005, 0.002, 0.008)
WORKERS = (1, 2)

#: Overload run: a deliberately tiny admission queue at a hot rate.
SHED_QUEUE = 8
SHED_RATE_HZ = 20000.0


def _report_path() -> Path:
    here = Path(__file__).resolve()
    for parent in here.parents:
        if (parent / "pyproject.toml").exists():
            return parent / "BENCH_serving.json"
    return Path.cwd() / "BENCH_serving.json"


class ServingReporter:
    """Collects per-configuration runs into ``BENCH_serving.json``."""

    def __init__(self) -> None:
        self.runs: List[Dict[str, object]] = []

    def add(self, kind: str, config: ServingConfig, report) -> None:
        row: Dict[str, object] = {
            "kind": kind,
            "deadline_ms": config.deadline_s * 1e3,
            "max_batch": config.max_batch,
            "n_workers": config.n_workers,
            "queue_capacity": config.queue_capacity,
        }
        row.update(report.as_dict())
        self.runs.append(row)

    def write(self, path: Path) -> Path:
        document = {
            "schema": 1,
            "environment": {
                "cpu_count": os.cpu_count(),
                "platform": platform.platform(),
                "python": platform.python_version(),
            },
            "runs": self.runs,
        }
        path.write_text(json.dumps(document, indent=2) + "\n")
        return path


@pytest.fixture(scope="module")
def serving_report():
    reporter = ServingReporter()
    yield reporter
    reporter.write(_report_path())


@pytest.fixture(scope="module")
def registry(experiment):
    package = QualityPackage.from_calibration(
        experiment.augmented.quality, experiment.calibration)
    reg = ModelRegistry()
    reg.publish_and_activate(package, classifier=experiment.classifier,
                             tag="bench")
    return reg


def _run(registry, cue_pool, serving_config, n_requests=N_REQUESTS,
         rate_hz=RATE_HZ):
    config = LoadgenConfig(n_requests=n_requests, rate_hz=rate_hz,
                           seed=SEED)
    return run_loadgen(
        lambda: InferenceService(registry, config=serving_config),
        config, cue_pool)


@pytest.mark.parametrize("deadline_s", DEADLINES_S)
@pytest.mark.parametrize("n_workers", WORKERS)
def test_deadline_worker_sweep(registry, experiment, serving_report,
                               report, deadline_s, n_workers):
    """Throughput/latency across the deadline x workers grid.

    The invariants every cell must hold: zero unanswered requests (the
    drain guarantee) and zero sheds (the queue is sized for the load).
    """
    config = ServingConfig(deadline_s=deadline_s, n_workers=n_workers)
    out = _run(registry, experiment.material.analysis.cues, config)
    serving_report.add("sweep", config, out)
    report.row("serving",
               f"deadline={deadline_s * 1e3:.1f}ms workers={n_workers}",
               "-",
               f"{out.throughput_rps:.0f} rps, "
               f"p95={out.latency_p95_s * 1e3:.2f}ms")
    assert out.n_unanswered == 0
    assert out.n_shed == 0
    assert out.n_responses == N_REQUESTS


def test_overload_sheds_but_answers_everything(registry, experiment,
                                               serving_report, report):
    """A tiny queue at a hot rate must shed — with ε responses, not
    hangs: every request is still answered immediately."""
    config = ServingConfig(queue_capacity=SHED_QUEUE, max_batch=8,
                           deadline_s=0.004,
                           policy=DegradationPolicy.REJECT)
    out = _run(registry, experiment.material.analysis.cues, config,
               rate_hz=SHED_RATE_HZ)
    serving_report.add("overload", config, out)
    report.row("serving", f"overload (queue={SHED_QUEUE})",
               "epsilon load-shedding",
               f"shed {out.shed_rate * 100:.0f}%, "
               f"{out.n_unanswered} unanswered")
    assert out.n_unanswered == 0
    assert out.n_shed > 0
    # Shed responses carry the paper's error state, not a fabricated q.
    assert out.n_responses == N_REQUESTS
