"""Extension bench ``situations`` — §5 higher-level context fusion.

Paper section 5: higher-level context processors "require a measure to
decide which of the simpler context information to believe".  Two
quality-aware appliances (AwarePen + AwareChair) feed a rule-based
situation detector over a scripted office morning with known ground-truth
situations; the bench compares believing everything (min_quality = 0)
against gating at the pen's calibrated threshold.
"""

import numpy as np
import pytest

from repro.appliances import AwareChair, AwarePen, EventBus
from repro.appliances.situation import DEFAULT_RULES, SituationDetector
from repro.classifiers import NearestCentroidClassifier
from repro.core import (ConstructionConfig, QualityAugmentedClassifier,
                        build_quality_measure)
from repro.datasets.generator import generate_dataset
from repro.sensors.accelerometer import ACTIVITY_MODELS, ERRATIC_STYLE
from repro.sensors.chair import AWARECHAIR_CLASSES, CHAIR_MODELS
from repro.sensors.node import Segment, SensorNode

#: Scripted office morning with per-segment ground truth.
DURATIONS = [8, 6, 10, 6, 8, 10, 6, 8, 9, 7]
PEN_SCRIPT = ["lying", "lying", "writing", "playing", "writing", "lying",
              "writing", "playing", "writing", "lying"]
CHAIR_SCRIPT = ["empty", "fidgeting", "sitting", "sitting", "sitting",
                "sitting", "sitting", "fidgeting", "sitting", "empty"]


@pytest.fixture(scope="module")
def chair_augmented():
    def chair_script(rng, repetitions=4):
        return [Segment(CHAIR_MODELS[n], duration_s=float(rng.uniform(4, 7)))
                for _ in range(repetitions)
                for n in ("empty", "sitting", "fidgeting")]

    train = generate_dataset(chair_script, seed=90,
                             classes=AWARECHAIR_CLASSES)
    quality_train = generate_dataset(chair_script, seed=91,
                                     classes=AWARECHAIR_CLASSES)
    check = generate_dataset(lambda r: chair_script(r, 2), seed=92,
                             classes=AWARECHAIR_CLASSES)
    classifier = NearestCentroidClassifier(AWARECHAIR_CLASSES)
    classifier.fit(train.cues, train.labels)
    result = build_quality_measure(classifier, quality_train, check,
                                   config=ConstructionConfig(epochs=20))
    return QualityAugmentedClassifier(classifier, result.quality)


@pytest.fixture(scope="module")
def office_streams(experiment):
    node = SensorNode()
    pen_script = [Segment(ACTIVITY_MODELS[p], duration_s=float(d),
                          style=ERRATIC_STYLE)
                  for p, d in zip(PEN_SCRIPT, DURATIONS)]
    chair_script = [Segment(CHAIR_MODELS[c], duration_s=float(d))
                    for c, d in zip(CHAIR_SCRIPT, DURATIONS)]
    pen_windows = node.collect(pen_script, np.random.default_rng(5),
                               experiment.augmented.classes)
    chair_windows = node.collect(chair_script, np.random.default_rng(6),
                                 AWARECHAIR_CLASSES)
    return pen_windows, chair_windows


def run_detector(experiment, chair_augmented, office_streams, min_quality):
    pen_windows, chair_windows = office_streams
    bus = EventBus()
    pen = AwarePen(bus, experiment.augmented)
    chair = AwareChair(bus, chair_augmented)
    detector = SituationDetector(bus, min_quality=min_quality, decay=0.6)
    right = total = flips = 0
    previous = None
    for pw, cw in zip(pen_windows, chair_windows):
        pen.process_window(pw.cues, pw.time_s)
        chair.process_window(cw.cues, cw.time_s)
        truth = DEFAULT_RULES.get((pw.true_context.name,
                                   cw.true_context.name))
        current = detector.current
        if truth is None or current is None:
            continue
        total += 1
        right += int(current.situation.index == truth.index)
        if previous is not None and current.situation.index != previous:
            flips += 1
        previous = current.situation.index
    return right / total, flips, detector.ignored_events


def test_quality_gated_fusion(benchmark, experiment, chair_augmented,
                              office_streams, report):
    gated_acc, gated_flips, ignored = benchmark.pedantic(
        run_detector,
        args=(experiment, chair_augmented, office_streams,
              experiment.threshold),
        rounds=1, iterations=1)
    naive_acc, naive_flips, _ = run_detector(
        experiment, chair_augmented, office_streams, 0.0)

    report.row("situations", "situation accuracy (gated vs believe-all)",
               "quality decides what to believe (§5)",
               f"{gated_acc:.3f} vs {naive_acc:.3f}")
    report.row("situations", "spurious situation flips (gated vs naive)",
               "fewer with quality gate",
               f"{gated_flips} vs {naive_flips}")
    report.row("situations", "low-quality events ignored",
               "-", str(ignored))

    assert gated_acc >= naive_acc - 0.02
    assert gated_flips <= naive_flips
    assert ignored > 0


def test_situation_detection_latency(benchmark, experiment, chair_augmented,
                                     office_streams, report):
    """Per-window cost of the full two-appliance + fusion pipeline."""
    pen_windows, chair_windows = office_streams
    bus = EventBus()
    pen = AwarePen(bus, experiment.augmented)
    chair = AwareChair(bus, chair_augmented)
    SituationDetector(bus, min_quality=0.3, decay=0.6)
    pw, cw = pen_windows[0], chair_windows[0]

    def step():
        pen.process_window(pw.cues, pw.time_s)
        chair.process_window(cw.cues, cw.time_s)

    benchmark(step)
    stats = benchmark.stats.stats
    report.row("situations", "office step latency (2 appliances + fusion)",
               "real time", f"{stats.mean * 1e6:.0f} us")
    assert stats.mean < 0.5
