"""Observability inside an asyncio event loop (serving's environment).

The metrics registry is lock-protected and spans keep thread-local
stacks — both were built for threads.  The serving layer exercises them
from coroutines instead: many concurrent tasks interleaving on one
loop thread, plus worker threads feeding the same registry.  These
tests pin that combination.
"""

import asyncio
import threading

import pytest

from repro import observability as obs
from repro.observability.metrics import MetricsRegistry, linear_edges


def run(coro):
    return asyncio.run(coro)


class TestMetricsFromCoroutines:
    def test_concurrent_tasks_share_one_registry(self):
        async def scenario():
            registry = obs.enable(fresh=True)[0]

            async def worker(worker_id):
                for k in range(50):
                    registry.inc("async.iterations_total")
                    registry.observe("async.value", worker_id + k,
                                     edges=linear_edges(0, 100))
                    if k % 10 == 0:
                        await asyncio.sleep(0)  # force interleaving

            await asyncio.gather(*(worker(w) for w in range(8)))
            return registry.snapshot()

        try:
            snapshot = run(scenario())
        finally:
            obs.disable()
        assert snapshot["counters"]["async.iterations_total"] == 400
        assert snapshot["histograms"]["async.value"]["count"] == 400

    def test_event_loop_plus_worker_threads(self):
        """Coroutines and a thread pool hammer the same registry."""
        registry = MetricsRegistry()

        def thread_work():
            for _ in range(200):
                registry.inc("mixed.total")

        async def scenario():
            loop = asyncio.get_running_loop()

            async def coro_work():
                for k in range(200):
                    registry.inc("mixed.total")
                    if k % 50 == 0:
                        await asyncio.sleep(0)

            thread_jobs = [loop.run_in_executor(None, thread_work)
                           for _ in range(3)]
            await asyncio.gather(coro_work(), coro_work(), *thread_jobs)

        run(scenario())
        assert registry.snapshot()["counters"]["mixed.total"] == 1000


class TestSpansFromCoroutines:
    def test_span_nesting_within_one_task_step(self):
        """Spans opened and closed without awaiting in between nest
        correctly — the discipline the serving batch loop follows."""

        async def scenario():
            _, tracer = obs.enable(fresh=True)

            async def batch(n):
                # No awaits inside the span: it opens and closes within
                # one scheduler step, so interleaved tasks cannot
                # corrupt the thread-local stack.
                with obs.trace("async.batch", n=n):
                    with obs.trace("async.gate"):
                        pass
                await asyncio.sleep(0)

            await asyncio.gather(*(batch(n) for n in range(10)))
            return list(tracer.roots)

        try:
            roots = run(scenario())
        finally:
            obs.disable()
        assert len(roots) == 10
        for root in roots:
            assert root.name == "async.batch"
            assert [c.name for c in root.children] == ["async.gate"]

    def test_trace_disabled_is_noop_under_asyncio(self):
        async def scenario():
            with obs.trace("async.ghost"):
                await asyncio.sleep(0)
            return True

        assert run(scenario())
        assert not obs.is_enabled()

    def test_observed_around_a_whole_loop(self):
        """The context-manager API wraps an entire asyncio run."""

        async def scenario():
            obs.inc("loop.events")
            async with _noop():
                obs.inc("loop.events")

        with obs.observed(fresh=True) as (registry, _):
            run(scenario())
            snapshot = registry.snapshot()
        assert snapshot["counters"]["loop.events"] == 2


class _noop:
    async def __aenter__(self):
        return self

    async def __aexit__(self, *exc):
        return False


class TestServingMetricsUnderConcurrency:
    def test_gauge_last_write_wins_across_tasks(self):
        async def scenario():
            registry = obs.enable(fresh=True)[0]

            async def setter(value):
                await asyncio.sleep(0.001 * value)
                registry.set_gauge("async.depth", value)

            await asyncio.gather(*(setter(v) for v in (3, 1, 2)))
            return registry.snapshot()

        try:
            snapshot = run(scenario())
        finally:
            obs.disable()
        assert snapshot["gauges"]["async.depth"] == 3
