"""Tests for repro.bus.log — the append-only segmented event log."""

import json

import pytest

from repro.bus.log import EventLog
from repro.exceptions import BusError, ConfigurationError


def rec(i):
    return {"topic": "context.pen", "n": i}


class TestAppendRead:
    def test_offsets_contiguous(self, tmp_path):
        with EventLog(tmp_path) as log:
            offsets = [log.append(rec(i)) for i in range(5)]
        assert offsets == [0, 1, 2, 3, 4]

    def test_roundtrip(self, tmp_path):
        with EventLog(tmp_path) as log:
            for i in range(4):
                log.append(rec(i))
            got = list(log.read())
        assert got == [(i, rec(i)) for i in range(4)]

    def test_read_start_and_count(self, tmp_path):
        with EventLog(tmp_path) as log:
            for i in range(10):
                log.append(rec(i))
            window = list(log.read(start=3, count=4))
        assert [offset for offset, _ in window] == [3, 4, 5, 6]

    def test_len_and_next_offset(self, tmp_path):
        with EventLog(tmp_path) as log:
            assert len(log) == 0
            log.append(rec(0))
            assert log.next_offset == 1
            assert len(log) == 1

    def test_read_negative_start_rejected(self, tmp_path):
        with EventLog(tmp_path) as log:
            with pytest.raises(ConfigurationError):
                list(log.read(start=-1))


class TestSegments:
    def test_rotation_creates_segments(self, tmp_path):
        with EventLog(tmp_path, segment_records=3) as log:
            for i in range(8):
                log.append(rec(i))
            segments = log.segments()
        assert [p.name for p in segments] == [
            "events-000000000000.jsonl",
            "events-000000000003.jsonl",
            "events-000000000006.jsonl",
        ]

    def test_read_spans_segments(self, tmp_path):
        with EventLog(tmp_path, segment_records=2) as log:
            for i in range(7):
                log.append(rec(i))
            got = [offset for offset, _ in log.read()]
        assert got == list(range(7))

    def test_reopen_continues_offsets(self, tmp_path):
        with EventLog(tmp_path, segment_records=3) as log:
            for i in range(4):
                log.append(rec(i))
        with EventLog(tmp_path, segment_records=3) as log:
            assert log.next_offset == 4
            assert log.append(rec(4)) == 4
            got = [offset for offset, _ in log.read()]
        assert got == list(range(5))

    def test_reopened_tail_segment_still_rotates(self, tmp_path):
        """A recovered tail keeps its record count toward rotation."""
        with EventLog(tmp_path, segment_records=3) as log:
            log.append(rec(0))
            log.append(rec(1))
        with EventLog(tmp_path, segment_records=3) as log:
            for i in range(2, 7):
                log.append(rec(i))
            names = [p.name for p in log.segments()]
        assert "events-000000000003.jsonl" in names
        assert "events-000000000006.jsonl" in names


class TestDurability:
    def test_fsync_batching(self, tmp_path):
        with EventLog(tmp_path, fsync_every=4) as log:
            for i in range(8):
                log.append(rec(i))
            assert log.n_fsyncs == 2
            log.append(rec(8))
            log.sync()
            assert log.n_fsyncs == 3
            log.sync()  # nothing pending: no extra fsync
            assert log.n_fsyncs == 3

    def test_torn_tail_truncated_on_open(self, tmp_path):
        with EventLog(tmp_path) as log:
            log.append(rec(0))
            log.append(rec(1))
            [segment] = log.segments()
        with segment.open("a", encoding="utf-8") as handle:
            handle.write('{"offset": 2, "record"')  # crash mid-append
        with EventLog(tmp_path) as log:
            assert log.next_offset == 2
            assert log.append(rec(2)) == 2
            got = [record["n"] for _, record in log.read()]
        assert got == [0, 1, 2]

    def test_offset_gap_detected(self, tmp_path):
        with EventLog(tmp_path) as log:
            for i in range(3):
                log.append(rec(i))
            [segment] = log.segments()
        lines = segment.read_text().strip().splitlines()
        segment.write_text("\n".join([lines[0], lines[2]]) + "\n")
        with EventLog(tmp_path) as log:
            with pytest.raises(BusError, match="gap"):
                list(log.read())

    def test_corrupt_line_detected(self, tmp_path):
        with EventLog(tmp_path) as log:
            log.append(rec(0))
            [segment] = log.segments()
        with segment.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps({"no_offset": True}) + "\n")
        with EventLog(tmp_path) as log:
            with pytest.raises(BusError, match="corrupt"):
                list(log.read())


class TestValidation:
    def test_segment_records_bound(self, tmp_path):
        with pytest.raises(ConfigurationError):
            EventLog(tmp_path, segment_records=0)

    def test_fsync_every_bound(self, tmp_path):
        with pytest.raises(ConfigurationError):
            EventLog(tmp_path, fsync_every=0)
