"""Property tests: every backend computes the same TSK forward pass.

Satellite of the backend PR: :func:`hypothesis` drives random shapes,
degenerate sigmas and single-rule systems through
``tsk_forward_components`` on every available backend and demands
ULP-bounded agreement with the default ``numpy`` backend (which itself
is pinned bit-for-bit against the loop oracle by the differential
runner).  The fused/numba kernels reassociate the firing product into
log space, so their gate is a ULP budget, not bit identity — the same
budgets ``repro verify --backend NAME`` enforces.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.backend import available_backends, get_backend

#: Max ULP divergence tolerated per forward-pass component against the
#: numpy backend.  exp(-0.5*sum(z^2)) vs prod(exp(-0.5*z^2)) differs in
#: the last few bits per factor; the budget scales generously above the
#: observed worst case (a few hundred ULP on adversarial sigmas).
ULP_BUDGET = 1e6

_NON_DEFAULT = [n for n in available_backends() if n != "numpy"]

_dims = st.tuples(
    st.integers(min_value=1, max_value=24),   # samples
    st.integers(min_value=1, max_value=6),    # rules
    st.integers(min_value=1, max_value=5),    # inputs
)


def _ulp(a, b):
    from repro.verify import ulp_distance
    return float(np.max(ulp_distance(a, b))) if a.size else 0.0


def _workload(dims, seed, sigma_scale, order):
    n, m, d = dims
    rng = np.random.default_rng(seed)
    x = rng.normal(0.0, 2.0, size=(n, d))
    means = rng.normal(0.0, 2.0, size=(m, d))
    sigmas = sigma_scale * rng.uniform(0.3, 2.0, size=(m, d))
    coefficients = rng.normal(0.0, 1.5, size=(m, d + 1))
    return x, means, sigmas, coefficients, order


@pytest.mark.parametrize("backend", _NON_DEFAULT)
class TestForwardComponentsAgree:
    @given(dims=_dims, seed=st.integers(0, 2**32 - 1),
           order=st.sampled_from([0, 1]))
    @settings(max_examples=60, deadline=None)
    def test_random_shapes(self, backend, dims, seed, order):
        self._compare(backend, _workload(dims, seed, 1.0, order))

    @given(dims=_dims, seed=st.integers(0, 2**32 - 1),
           sigma_scale=st.sampled_from([1e-6, 1e-3, 1e3, 1e6]))
    @settings(max_examples=40, deadline=None)
    def test_degenerate_sigmas(self, backend, dims, seed, sigma_scale):
        """Near-collapsed and near-flat Gaussians (underflow territory)."""
        self._compare(backend, _workload(dims, seed, sigma_scale, 1))

    @given(seed=st.integers(0, 2**32 - 1),
           n=st.integers(min_value=1, max_value=16))
    @settings(max_examples=30, deadline=None)
    def test_single_rule(self, backend, seed, n):
        """m=1: normalization must yield wbar == 1 on every backend."""
        workload = _workload((n, 1, 3), seed, 1.0, 1)
        self._compare(backend, workload)
        x, means, sigmas, coefficients, order = workload
        wbar = get_backend(backend).tsk_forward_components(
            x, means, sigmas, coefficients, order)[0]
        assert np.array_equal(wbar, np.ones_like(wbar))

    @staticmethod
    def _compare(backend, workload):
        x, means, sigmas, coefficients, order = workload
        base = get_backend("numpy").tsk_forward_components(
            x, means, sigmas, coefficients, order)
        other = get_backend(backend).tsk_forward_components(
            x, means, sigmas, coefficients, order)
        for name, a, b in zip(("wbar", "f", "output", "w", "total"),
                              base, other):
            assert a.shape == b.shape
            assert _ulp(a, b) <= ULP_BUDGET, (
                f"{name} diverges by {_ulp(a, b):.0f} ULP on backend "
                f"{backend}")


@pytest.mark.parametrize("backend", _NON_DEFAULT)
class TestGradientTermsAgree:
    @given(dims=_dims, seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_gradients(self, backend, dims, seed):
        x, means, sigmas, coefficients, order = _workload(dims, seed,
                                                          1.0, 1)
        rng = np.random.default_rng(seed ^ 0xA5A5)
        y = (rng.random(x.shape[0]) > 0.5).astype(float)
        base_bk = get_backend("numpy")
        w, wbar, total = base_bk.firing_strengths(x, means, sigmas)
        f = base_bk.rule_consequents(x, coefficients, order)
        base = base_bk.premise_gradient_terms(x, means, sigmas, w, f,
                                              total, y)
        other = get_backend(backend).premise_gradient_terms(
            x, means, sigmas, w, f, total, y)
        # Gradients can legitimately be ~0, where ULP explodes; gate on
        # abs+rel instead (the verify runner's gradient-stage gates).
        for name, a, b in zip(("d_means", "d_sigmas"), base, other):
            np.testing.assert_allclose(
                np.asarray(b), np.asarray(a), atol=1e-9, rtol=1e-5,
                err_msg=f"{name} diverges on backend {backend}")
        assert other[2] == pytest.approx(base[2], rel=1e-9, abs=1e-12)
