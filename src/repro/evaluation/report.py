"""Markdown report generation for a full experiment run.

``python -m repro full-report`` (or :func:`generate_report`) renders a
self-contained markdown document: setup, Fig. 5 series, Fig. 6 estimates,
the four probabilities with paper references, the filtering outcome, the
per-class thresholds and the reliability summary — the machine-written
counterpart of EXPERIMENTS.md for any seed or configuration.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..core.calibration import calibrate_per_class
from ..experiment import ExperimentResult, run_awarepen_experiment
from ..stats.reliability import reliability_diagram

#: Paper reference values quoted in the report.
PAPER = {
    "threshold": "0.81",
    "P(right|q>s)": "0.8112",
    "P(wrong|q<s)": "0.8112",
    "P(wrong|q>s)": "0.0217",
    "P(right|q<s)": "0.0846",
    "discard": "0.33 (8/24)",
    "accuracy": "0.67 -> 1.00",
}


def _table(headers: List[str], rows: List[List[str]]) -> List[str]:
    lines = ["| " + " | ".join(headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    lines.extend("| " + " | ".join(row) + " |" for row in rows)
    return lines


def generate_report(result: Optional[ExperimentResult] = None,
                    seed: int = 7) -> str:
    """Render the markdown report for *result* (or a fresh seeded run)."""
    if result is None:
        result = run_awarepen_experiment(seed=seed)
    cal = result.calibration
    est = cal.estimates
    outcome = result.evaluation_outcome

    lines: List[str] = []
    lines.append("# CQM experiment report")
    lines.append("")
    lines.append(f"Pipeline: {result.construction.n_rules}-rule quality "
                 f"FIS over {result.augmented.quality.n_cues} cues + class "
                 f"id; classifier accuracy on quality-training data "
                 f"{result.construction.train_accuracy:.3f}.")
    lines.append("")

    lines.append("## Populations and threshold (Fig. 6)")
    lines.append("")
    lines.extend(_table(
        ["quantity", "paper", "measured"],
        [["right population", "narrow, near 1",
          f"N({est.right.mu:.3f}, {est.right.sigma:.3f}²), "
          f"n={est.n_right}"],
         ["wrong population", "broad, low",
          f"N({est.wrong.mu:.3f}, {est.wrong.sigma:.3f}²), "
          f"n={est.n_wrong}"],
         ["threshold s", PAPER["threshold"],
          f"{cal.s:.4f} ({cal.threshold.method})"]]))
    lines.append("")

    lines.append("## Selection probabilities (paper §3.2)")
    lines.append("")
    prob_rows = []
    for key, value in cal.probabilities.as_dict().items():
        if key == "s":
            continue
        prob_rows.append([key, PAPER.get(key, "-"), f"{value:.4f}"])
    lines.extend(_table(["probability", "paper", "measured"], prob_rows))
    lines.append("")

    lines.append("## Evaluation set (Fig. 5 + headline)")
    lines.append("")
    q = result.evaluation_qualities
    correct = result.evaluation_correct
    usable = ~np.isnan(q)
    lines.extend(_table(
        ["quantity", "paper", "measured"],
        [["test points", "24", str(outcome.n_total)],
         ["wrong classifications", "8 (33%)",
          f"{outcome.n_wrong_total} "
          f"({outcome.n_wrong_total / outcome.n_total * 100:.0f}%)"],
         ["discard fraction", PAPER["discard"],
          f"{outcome.discard_fraction:.3f} "
          f"({outcome.n_discarded}/{outcome.n_total})"],
         ["accuracy", PAPER["accuracy"],
          f"{outcome.accuracy_before:.2f} -> "
          f"{outcome.accuracy_after:.2f}"],
         ["mean q right / wrong", "separated",
          f"{np.mean(q[usable & correct]):.3f} / "
          f"{np.mean(q[usable & ~correct]):.3f}"
          if np.any(usable & ~correct) else "n/a"]]))
    lines.append("")

    lines.append("## Per-class thresholds (extension)")
    lines.append("")
    per = calibrate_per_class(result.augmented, result.material.analysis)
    per_rows = []
    for idx, class_cal in sorted(per.items()):
        name = result.classifier.class_for_index(idx).name
        flag = " (fallback)" if class_cal.fallback_used else ""
        per_rows.append([name, str(class_cal.n_windows),
                         f"{class_cal.threshold:.3f}{flag}"])
    lines.extend(_table(["predicted class", "windows", "threshold"],
                        per_rows))
    lines.append("")

    lines.append("## Reliability (extension)")
    lines.append("")
    analysis_pred = result.classifier.predict_indices(
        result.material.analysis.cues)
    analysis_q = result.augmented.quality.measure_batch(
        result.material.analysis.cues, analysis_pred.astype(float))
    analysis_correct = analysis_pred == result.material.analysis.labels
    diagram = reliability_diagram(analysis_q, analysis_correct, n_bins=6)
    lines.append(f"ECE = {diagram.expected_calibration_error:.4f}, "
                 f"MCE = {diagram.max_calibration_error:.4f} "
                 f"over {diagram.n_total} analysis windows.")
    lines.append("")
    return "\n".join(lines)
