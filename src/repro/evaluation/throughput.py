"""Throughput measurement records and the ``BENCH_throughput.json`` report.

``benchmarks/bench_throughput.py`` measures the repo's hot paths —
windows/s of cue extraction, samples/s of the batched CQM, wall-clock
speedup of parallel vs serial crossval/bootstrap — and writes them here
as one JSON document so the perf trajectory is tracked from PR to PR:
compare two checkouts by diffing their ``BENCH_throughput.json``.
"""

from __future__ import annotations

import dataclasses
import json
import os
import platform
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union


@dataclasses.dataclass(frozen=True)
class ThroughputRecord:
    """One measured number with enough context to compare across PRs."""

    name: str
    value: float
    unit: str
    note: str = ""

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {"name": self.name, "value": self.value,
                                  "unit": self.unit}
        if self.note:
            out["note"] = self.note
        return out


class ThroughputReporter:
    """Collects :class:`ThroughputRecord` rows and writes the report.

    The JSON layout is flat and stable on purpose — tooling diffing two
    reports should not need to understand the benchmark internals::

        {
          "schema": 1,
          "environment": {"cpu_count": 8, ...},
          "records": [{"name": ..., "value": ..., "unit": ...}, ...]
        }
    """

    def __init__(self) -> None:
        self._records: List[ThroughputRecord] = []

    def record(self, name: str, value: float, unit: str,
               note: str = "") -> ThroughputRecord:
        """Add one measurement row (replacing any same-named older row)."""
        rec = ThroughputRecord(name=name, value=float(value), unit=unit,
                               note=note)
        self._records = [r for r in self._records if r.name != name]
        self._records.append(rec)
        return rec

    @property
    def records(self) -> List[ThroughputRecord]:
        return list(self._records)

    def as_dict(self) -> Dict[str, object]:
        return {
            "schema": 1,
            "environment": {
                "cpu_count": os.cpu_count(),
                "platform": platform.platform(),
                "python": platform.python_version(),
            },
            "records": [r.as_dict() for r in self._records],
        }

    def write(self, path: Union[str, Path]) -> Path:
        """Write the JSON report; returns the resolved path."""
        path = Path(path)
        path.write_text(json.dumps(self.as_dict(), indent=2) + "\n")
        return path


def best_of(fn: Callable[[], object], repeats: int = 5,
            min_time: float = 0.0) -> float:
    """Best-of-N wall-clock seconds for one call of *fn*.

    Best-of (not mean) is the standard noise-robust estimator for
    single-machine microbenchmarks: scheduling hiccups only ever make a
    run *slower*.  With *min_time* > 0 each sample loops the call until
    that much time has passed and reports the per-call average, keeping
    microsecond-scale paths measurable.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    best = float("inf")
    for _ in range(repeats):
        n_calls = 0
        start = time.perf_counter()
        while True:
            fn()
            n_calls += 1
            elapsed = time.perf_counter() - start
            if elapsed >= min_time:
                break
        best = min(best, elapsed / n_calls)
    return best


def default_report_path(start: Optional[Path] = None) -> Path:
    """``BENCH_throughput.json`` at the repository root.

    Walks up from *start* (default: this file) to the first directory
    containing ``pyproject.toml``; falls back to the current directory.
    """
    here = (start or Path(__file__)).resolve()
    for parent in here.parents:
        if (parent / "pyproject.toml").exists():
            return parent / "BENCH_throughput.json"
    return Path.cwd() / "BENCH_throughput.json"
